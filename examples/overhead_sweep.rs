//! Mini Figure 2: measure profiling overhead on one benchmark across
//! sampling periods, for both profilers.
//!
//! ```text
//! cargo run --release --example overhead_sweep [benchmark] [scale]
//! ```

use viprof_repro::workloads::{calibrate, find_benchmark, programs, run_benchmark, ProfilerKind};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "antlr".into());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let params = find_benchmark(&name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}; see `catalog()`"));
    let built = programs::build(&params);
    let plan = calibrate(&built, scale);

    let base = run_benchmark(&built, &plan, ProfilerKind::None, 1, false);
    println!(
        "{name}: base {:.2}s simulated ({} GCs, {} compiles, {} recompiles)\n",
        base.seconds, base.vm.gcs, base.vm.compiles, base.vm.recompiles
    );
    println!(
        "{:<12}{:>10}{:>12}{:>12}{:>14}",
        "profiler", "period", "sim s", "slowdown", "samples"
    );
    for period in [45_000u64, 90_000, 450_000] {
        for (label, kind) in [
            ("OProfile", ProfilerKind::oprofile_at(period)),
            ("VIProf", ProfilerKind::viprof_at(period)),
        ] {
            let out = run_benchmark(&built, &plan, kind, 1, false);
            println!(
                "{:<12}{:>10}{:>12.3}{:>12.4}{:>14}",
                label,
                period,
                out.seconds,
                out.seconds / base.seconds,
                out.db.map(|d| d.total_samples()).unwrap_or(0)
            );
        }
    }
}
