//! Bring your own workload: write a program against the mini bytecode,
//! watch the adaptive optimizer promote it tier by tier, and see every
//! recompilation and GC-induced code move land in the epoch code maps.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use viprof_repro::oprofile::{OpConfig, ReportOptions};
use viprof_repro::sim_jvm::{
    AosPolicy, ClassId, MethodAsm, MethodId, Op, OptLevel, ProgramBuilder, NativeRegistry, Vm,
    VmConfig,
};
use viprof_repro::sim_os::{Machine, MachineConfig};
use viprof_repro::viprof::codemap::CodeMapSet;
use viprof_repro::viprof::{ReportSpec, Viprof};

fn main() {
    let mut b = ProgramBuilder::new();
    let cls = b.add_class("fib.Memo", 64);

    // fib(n) with an explicit memo array — recursion + heap traffic.
    let fib = MethodId(0);
    let code = vec![
        // if n < 2 return n
        Op::Load(0),
        Op::Const(2),
        Op::Lt,
        Op::JumpIfZero(2),
        Op::Load(0),
        Op::Ret,
        // return fib(n-1) + fib(n-2)
        Op::Load(0),
        Op::Const(1),
        Op::Sub,
        Op::Call(fib),
        Op::Load(0),
        Op::Const(2),
        Op::Sub,
        Op::Call(fib),
        Op::Add,
        Op::Ret,
    ];
    let fib_m = b.add_method(cls, "fib.Memo.fib", 1, 1, code);
    assert_eq!(fib_m, fib);

    // driver: sum fib(1..=18), allocating a scratch object per step.
    let mut asm = MethodAsm::new();
    asm.op(Op::Const(0)).op(Op::Store(1));
    asm.counted_loop(0, 18, |l| {
        l.op(Op::New(ClassId(0)))
            .op(Op::Pop)
            .op(Op::Load(0))
            .op(Op::Call(fib))
            .op(Op::Load(1))
            .op(Op::Add)
            .op(Op::Store(1));
    });
    asm.op(Op::Load(1)).op(Op::Ret);
    let main = b.add_method(cls, "fib.Main.run", 0, 2, asm.assemble().unwrap());
    b.set_entry(main);
    let program = b.build().unwrap();

    let mut machine = Machine::new(MachineConfig::default());
    let viprof = Viprof::builder()
        .config(OpConfig::time_at(30_000))
        .start(&mut machine);
    let mut vm = Vm::boot(
        &mut machine,
        program,
        NativeRegistry::new(),
        VmConfig {
            heap_bytes: 64 * 1024, // tiny: lots of GC epochs
            aos: AosPolicy {
                opt1_threshold: 50,
                opt2_threshold: 5_000,
            },
            ..VmConfig::default()
        },
        Box::new(viprof.make_agent()),
    );

    let pid = vm.pid;
    for round in 0..6 {
        let result = vm.run(&mut machine);
        println!(
            "round {round}: fib sum = {:?}, fib tier = {}, epoch = {}, code at {:?}",
            result,
            vm.opt_level(fib),
            vm.epoch(),
            vm.code_range(fib).map(|(s, _)| format!("{s:#x}"))
        );
    }
    assert_eq!(vm.opt_level(fib), OptLevel::Opt2, "fib must reach O2");
    vm.shutdown(&mut machine);
    let db = viprof.stop(&mut machine);

    // Inspect the epoch code maps the agent wrote.
    let maps = CodeMapSet::load(&machine.kernel.vfs, pid).expect("maps");
    println!(
        "\nagent wrote {} epoch maps, {} entries total",
        maps.maps().len(),
        maps.total_entries()
    );
    let fib_entries: Vec<String> = maps
        .maps()
        .iter()
        .flat_map(|m| {
            m.entries()
                .iter()
                .filter(|e| e.signature == "fib.Memo.fib")
                .map(move |e| format!("epoch {} @ {:#x} ({})", m.epoch, e.addr, e.level))
        })
        .collect();
    println!("fib.Memo.fib body history ({} records):", fib_entries.len());
    for e in fib_entries.iter().take(10) {
        println!("  {e}");
    }

    let report = Viprof::make_report(
        &db,
        &machine.kernel,
        &ReportSpec {
            options: ReportOptions {
                min_primary_percent: 0.5,
                ..ReportOptions::default()
            },
            ..ReportSpec::default()
        },
    )
    .unwrap()
    .lines;
    println!("\n{}", report.render_text());
}
