//! The paper's Figure-1 case study as an example: profile DaCapo `ps`
//! with stock OProfile and with VIProf, and contrast what each can see.
//! Also prints the cross-layer call-sequence profile (§4.2).
//!
//! ```text
//! cargo run --release --example vertical_profile
//! ```

use viprof_repro::oprofile::{opreport, OpConfig, ReportOptions};
use viprof_repro::sim_os::{Machine, MachineConfig};
use viprof_repro::viprof::{ReportSpec, Viprof};
use viprof_repro::workloads::{
    calibrate, find_benchmark, programs, run_benchmark, runner, ProfilerKind,
};

fn main() {
    let params = find_benchmark("ps").expect("ps in catalog");
    let built = programs::build(&params);
    // A quarter of the paper's 12-second run keeps this example snappy.
    let plan = calibrate(&built, 0.25);
    let config = OpConfig::figure1(90_000, 9_000);
    let opts = ReportOptions {
        min_primary_percent: 0.05,
        max_rows: Some(14),
        ..ReportOptions::default()
    };

    // --- stock OProfile: JIT code is an anonymous range, the VM is a
    //     symbol-less boot image ---
    let run = run_benchmark(
        &built,
        &plan,
        ProfilerKind::Oprofile(config.clone()),
        7,
        true,
    );
    let report = opreport(run.db.as_ref().unwrap(), &run.machine.kernel, &opts);
    println!("=== What OProfile sees ===\n");
    print!("{}", report.render_text());

    // --- VIProf: same workload, every layer resolved ---
    let run = run_benchmark(&built, &plan, ProfilerKind::Viprof(config.clone()), 7, true);
    let report = Viprof::make_report(
        run.db.as_ref().unwrap(),
        &run.machine.kernel,
        &ReportSpec {
            options: opts.clone(),
            ..ReportSpec::default()
        },
    )
    .expect("post-processing")
    .lines;
    println!("\n=== What VIProf sees (same run) ===\n");
    print!("{}", report.render_text());

    // --- cross-layer call graph: drive a session by hand to keep the
    //     collector ---
    let mut machine = Machine::new(MachineConfig {
        seed: 7,
        ..MachineConfig::default()
    });
    let vp = Viprof::builder().config(config).start(&mut machine);
    runner::execute_plan(&mut machine, &built, &plan, Box::new(vp.make_agent()));
    vp.stop(&mut machine);
    println!("\n=== Call-sequence profile across layers ===\n");
    print!("{}", vp.callgraph.lock().render_text(8));
}
