//! Quickstart: profile a small Java-like program with VIProf and print
//! the vertically integrated report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use viprof_repro::oprofile::{OpConfig, ReportOptions};
use viprof_repro::sim_jvm::{
    ClassId, MethodAsm, NativeFn, NativeRegistry, Op, ProgramBuilder, Vm, VmConfig,
};
use viprof_repro::sim_os::{Machine, MachineConfig};
use viprof_repro::viprof::{ReportSpec, Viprof};

fn main() {
    // 1. A machine: 3.4 GHz CPU + Linux-like kernel, as in the paper.
    let mut machine = Machine::new(MachineConfig::default());

    // 2. Start VIProf: cycle samples every 90K cycles plus L2 misses.
    let viprof = Viprof::builder()
        .config(OpConfig::figure1(90_000, 2_000))
        .start(&mut machine);

    // 3. A little program: a hot loop, some allocation, and a memset.
    let mut natives = NativeRegistry::new();
    let memset = natives.register(NativeFn::memset());
    let mut b = ProgramBuilder::new();
    let class = b.add_class("demo.Item", 4);
    let mut asm = MethodAsm::new();
    asm.op(Op::Const(0)).op(Op::Store(0));
    asm.counted_loop(1, 200_000, |l| {
        l.op(Op::Load(0)).op(Op::Const(3)).op(Op::Add).op(Op::Store(0));
    });
    asm.counted_loop(2, 500, |l| {
        l.op(Op::New(ClassId(0))).op(Op::Pop);
    });
    asm.op(Op::Const(65_536)).op(Op::NativeCall(memset)).op(Op::Pop);
    asm.op(Op::Load(0)).op(Op::Ret);
    let main = b.add_method(class, "demo.Main.run", 0, 3, asm.assemble().unwrap());
    b.set_entry(main);
    let program = b.build_with_natives(&natives).unwrap();

    // 4. Boot a VM wired to the profiler (the VM Agent registers the
    //    heap, logs compiles, flags GC moves, writes epoch code maps).
    let mut vm = Vm::boot(
        &mut machine,
        program,
        natives,
        VmConfig {
            heap_bytes: 1024 * 1024,
            ..VmConfig::default()
        },
        Box::new(viprof.make_agent()),
    );

    // 5. Run it: a few detailed calls (the first baseline-compiles,
    //    repeats drive the adaptive optimizer), then a batched phase —
    //    the fast-forward mode the long benchmark runs use.
    for _ in 0..4 {
        vm.run(&mut machine);
    }
    let entry = vm.program().entry;
    vm.run_batched(&mut machine, entry, &[], 400);
    vm.shutdown(&mut machine);
    let db = viprof.stop(&mut machine);

    // 6. Post-process: JIT samples resolve to method names via the
    //    epoch code maps, VM internals via RVM.map.
    let report = Viprof::make_report(
        &db,
        &machine.kernel,
        &ReportSpec {
            options: ReportOptions {
                min_primary_percent: 0.2,
                ..ReportOptions::default()
            },
            ..ReportSpec::default()
        },
    )
    .expect("post-processing")
    .lines;

    println!(
        "simulated {:.1} ms, {} samples, {} GC epochs\n",
        machine.seconds() * 1e3,
        db.total_samples(),
        vm.epoch() + 1
    );
    print!("{}", report.render_text());
}
