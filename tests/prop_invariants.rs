//! Property-based tests of the core data-structure invariants, checked
//! against straightforward oracles.

use proptest::prelude::*;
use viprof_repro::oprofile::{RingBuffer, SampleBucket, SampleOrigin};
use viprof_repro::sim_cpu::{
    Cache, CacheConfig, Counter, CounterSpec, FracAcc, HwEvent, Pid,
};
use viprof_repro::sim_os::{AddressSpace, Image, ImageId, Symbol, Vma};

// ---------- VMA map vs. linear-scan oracle ----------

fn arb_ranges() -> impl Strategy<Value = Vec<(u64, u64)>> {
    // Candidate [start, end) pairs within a small window so overlaps
    // actually happen.
    prop::collection::vec((0u64..2_000, 1u64..200), 0..40)
        .prop_map(|v| v.into_iter().map(|(s, l)| (s, s + l)).collect())
}

proptest! {
    #[test]
    fn vma_map_matches_linear_oracle(ranges in arb_ranges(), probes in prop::collection::vec(0u64..2_500, 50)) {
        let mut space = AddressSpace::new();
        let mut accepted: Vec<(u64, u64)> = Vec::new();
        for (s, e) in ranges {
            let overlaps = accepted.iter().any(|(as_, ae)| s < *ae && *as_ < e);
            let result = space.map(Vma::anon(s, e));
            prop_assert_eq!(result.is_ok(), !overlaps, "map({:#x},{:#x})", s, e);
            if result.is_ok() {
                accepted.push((s, e));
            }
        }
        for p in probes {
            let oracle = accepted.iter().find(|(s, e)| p >= *s && p < *e);
            let got = space.lookup(p).map(|v| (v.start, v.end));
            prop_assert_eq!(got, oracle.copied(), "probe {:#x}", p);
        }
    }

    // ---------- counter overflow arithmetic ----------

    #[test]
    fn counter_overflow_count_is_partition_invariant(
        period in 1u64..200_000,
        chunks in prop::collection::vec(0u64..500_000, 1..40)
    ) {
        let total: u64 = chunks.iter().sum();
        let mut c = Counter::new(CounterSpec::new(HwEvent::Cycles, period));
        let mut overflows = 0;
        for n in &chunks {
            overflows += c.add(*n).count;
        }
        prop_assert_eq!(overflows, total / period);
        prop_assert_eq!(c.total_events(), total);
        // Remaining distance is consistent with the total.
        prop_assert_eq!(c.until_overflow(), period - total % period);
    }

    #[test]
    fn counter_overflow_positions_are_strictly_spaced(
        period in 1u64..10_000,
        n in 1u64..100_000
    ) {
        let mut c = Counter::new(CounterSpec::new(HwEvent::Cycles, period));
        let o = c.add(n);
        let positions: Vec<u64> = o.iter().collect();
        for w in positions.windows(2) {
            prop_assert_eq!(w[1] - w[0], period);
        }
        if let Some(first) = positions.first() {
            // Fresh counter: the first overflow is exactly at `period`.
            prop_assert_eq!(*first, period);
        }
        for p in &positions {
            prop_assert!(*p >= 1 && *p <= n);
        }
    }

    // ---------- FracAcc ----------

    #[test]
    fn fracacc_partition_invariance(
        rate in 0.0f64..8.0,
        chunks in prop::collection::vec(0u64..100_000, 1..30)
    ) {
        let total: u64 = chunks.iter().sum();
        let mut one = FracAcc::new();
        let expected = one.take(rate, total);
        let mut split = FracAcc::new();
        let mut got = 0u64;
        for c in &chunks {
            got += split.take(rate, *c);
        }
        prop_assert_eq!(got, expected);
        // And the total is within 1 of the ideal.
        let ideal = rate * total as f64;
        prop_assert!((got as f64 - ideal).abs() <= 1.0 + ideal * 1e-9,
            "got {} ideal {}", got, ideal);
    }

    // ---------- ring buffer vs. VecDeque oracle ----------

    #[test]
    fn ring_buffer_matches_deque_oracle(
        capacity in 1usize..64,
        ops in prop::collection::vec(prop::option::of(0u64..1_000), 1..300)
    ) {
        let mut ring = RingBuffer::new(capacity);
        let mut oracle: std::collections::VecDeque<u64> = Default::default();
        let mut oracle_dropped = 0u64;
        let sample = |addr: u64| SampleBucket {
            origin: SampleOrigin::Unknown,
            event: HwEvent::Cycles,
            addr,
            epoch: 0,
        };
        for op in ops {
            match op {
                Some(addr) => {
                    if oracle.len() == capacity {
                        oracle_dropped += 1;
                    } else {
                        oracle.push_back(addr);
                    }
                    ring.push(sample(addr));
                }
                None => {
                    let drained: Vec<u64> = ring.drain().iter().map(|b| b.addr).collect();
                    let expect: Vec<u64> = oracle.drain(..).collect();
                    prop_assert_eq!(drained, expect);
                }
            }
        }
        prop_assert_eq!(ring.dropped, oracle_dropped);
        let drained: Vec<u64> = ring.drain().iter().map(|b| b.addr).collect();
        let expect: Vec<u64> = oracle.drain(..).collect();
        prop_assert_eq!(drained, expect);
    }

    // ---------- ring buffer: total sample accounting ----------

    #[test]
    fn ring_buffer_accounts_for_every_push(
        capacity in 0usize..32,
        ops in prop::collection::vec(prop::option::of(0u64..1_000), 1..300)
    ) {
        // Capacity 0 (a misconfigured --buffer-size) clamps to one slot
        // instead of panicking, and across arbitrary push/drain
        // interleavings every sample ever offered is accounted for:
        // attempts == accepted + dropped, accepted == drained + buffered.
        let mut ring = RingBuffer::new(capacity);
        prop_assert_eq!(ring.capacity(), capacity.max(1));
        let sample = |addr: u64| SampleBucket {
            origin: SampleOrigin::Unknown,
            event: HwEvent::Cycles,
            addr,
            epoch: 0,
        };
        let mut attempts = 0u64;
        let mut drained_total = 0u64;
        for op in ops {
            match op {
                Some(addr) => {
                    attempts += 1;
                    ring.push(sample(addr));
                }
                None => drained_total += ring.drain().len() as u64,
            }
            prop_assert_eq!(attempts, ring.pushed + ring.dropped);
            prop_assert_eq!(ring.pushed, drained_total + ring.len() as u64);
        }
    }

    // ---------- symbol table vs. linear oracle ----------

    #[test]
    fn symbol_resolution_matches_linear_oracle(
        sizes in prop::collection::vec((1u64..100, 0u64..50), 1..60),
        probes in prop::collection::vec(0u64..8_000, 40)
    ) {
        // Build non-overlapping symbols with random gaps.
        let mut img = Image::new("test.so", 1 << 20);
        let mut offset = 0u64;
        let mut table: Vec<(u64, u64, String)> = Vec::new();
        for (i, (size, gap)) in sizes.iter().enumerate() {
            offset += gap;
            let name = format!("sym{i}");
            img.add_symbol(Symbol::new(name.clone(), offset, *size));
            table.push((offset, offset + size, name));
            offset += size;
        }
        for p in probes {
            let oracle = table.iter().find(|(s, e, _)| p >= *s && p < *e).map(|(_, _, n)| n.clone());
            let got = img.resolve(p).map(|s| s.name.clone());
            prop_assert_eq!(got, oracle);
        }
    }

    // ---------- cache: bounded capacity + LRU sanity ----------

    #[test]
    fn cache_hits_iff_within_associativity_window(
        accesses in prop::collection::vec(0u64..16u64, 1..200)
    ) {
        // Single-set cache (1 set × 4 ways): LRU over line indices —
        // compare against a brute-force LRU list.
        let mut cache = Cache::new(CacheConfig::new(4 * 64, 64, 4));
        let mut lru: Vec<u64> = Vec::new();
        for line in accesses {
            let addr = line * 64 * 1; // all map to set 0 only if sets==1
            let hit = cache.access(addr);
            let oracle_hit = lru.contains(&line);
            prop_assert_eq!(hit, oracle_hit, "line {}", line);
            lru.retain(|l| *l != line);
            lru.push(line);
            if lru.len() > 4 {
                lru.remove(0);
            }
        }
    }

    // ---------- registration table ----------

    #[test]
    fn registry_classification_matches_ranges(
        vms in prop::collection::vec((1u32..20, 0u64..1_000, 1u64..500), 0..8),
        probes in prop::collection::vec((1u32..20, 0u64..2_000), 30)
    ) {
        use viprof_repro::viprof::registry::JitRegistry;
        let mut reg = JitRegistry::new();
        let mut oracle: Vec<(u32, u64, u64)> = Vec::new();
        for (pid, start, len) in vms {
            // Same generation throughout: re-registration is a heap
            // resize (`Resumed`), never a conflict.
            reg.register(Pid(pid), 0, (start, start + len)).unwrap();
            oracle.retain(|(p, _, _)| *p != pid);
            oracle.push((pid, start, start + len));
        }
        for (pid, pc) in probes {
            let expect = oracle
                .iter()
                .any(|(p, s, e)| *p == pid && pc >= *s && pc < *e);
            prop_assert_eq!(reg.classify(Pid(pid), pc).is_some(), expect);
        }
    }
}

// ---------- sample DB serialization fuzz ----------

proptest! {
    #[test]
    fn sample_db_serialization_round_trips(
        entries in prop::collection::vec(
            (0u8..4, 0u32..9, 0u64..1u64<<40, 0u64..64, 1u64..1_000),
            0..150
        ),
        dropped in 0u64..1_000
    ) {
        use viprof_repro::oprofile::SampleDb;
        let mut db = SampleDb::new();
        for (tag, id, addr, epoch, count) in entries {
            let origin = match tag {
                0 => SampleOrigin::Image(ImageId(id)),
                1 => SampleOrigin::Anon { pid: Pid(id), start: addr & !0xfff, end: (addr & !0xfff) + 0x1000 },
                2 => SampleOrigin::JitApp { pid: Pid(id), gen: id % 3 },
                _ => SampleOrigin::Unknown,
            };
            db.add(SampleBucket { origin, event: HwEvent::Cycles, addr, epoch }, count);
        }
        db.dropped = dropped;
        let back = SampleDb::from_bytes(&db.to_bytes()).unwrap();
        prop_assert_eq!(back, db);
    }

    #[test]
    fn sample_db_rejects_arbitrary_bytes(garbage in prop::collection::vec(any::<u8>(), 0..200)) {
        use viprof_repro::oprofile::SampleDb;
        // Must never panic: either Ok (legit header by chance — only if
        // it starts with the magic) or Err.
        let _ = SampleDb::from_bytes(&garbage);
    }
}
