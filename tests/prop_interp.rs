//! Differential testing of the bytecode interpreter against a Rust
//! oracle, plus end-to-end "compilation doesn't change semantics"
//! checks: the same program must produce the same result interpreted,
//! baseline-compiled, recompiled at O2, and under GC pressure.

use proptest::prelude::*;
use viprof_repro::sim_jvm::{
    AosPolicy, ClassId, MethodAsm, NativeRegistry, Op, ProgramBuilder, ProgramDef, Tiering,
    Value, Vm, VmConfig,
};
use viprof_repro::sim_os::{Machine, MachineConfig};

/// A random straight-line arithmetic expression in RPN over one input.
#[derive(Debug, Clone)]
enum Step {
    PushConst(i64),
    PushInput,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Neg,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            3 => (-1_000i64..1_000).prop_map(Step::PushConst),
            2 => Just(Step::PushInput),
            2 => Just(Step::Add),
            2 => Just(Step::Sub),
            1 => Just(Step::Mul),
            1 => Just(Step::Div),
            1 => Just(Step::Rem),
            1 => Just(Step::Neg),
        ],
        1..40,
    )
}

/// Compile the steps to bytecode (tracking stack depth so the program
/// is well-formed) and simultaneously evaluate the oracle.
fn build_and_oracle(steps: &[Step], input: i64) -> (ProgramDef, i64) {
    let mut code = Vec::new();
    let mut stack: Vec<i64> = Vec::new();
    for s in steps {
        match s {
            Step::PushConst(v) => {
                code.push(Op::Const(*v));
                stack.push(*v);
            }
            Step::PushInput => {
                code.push(Op::Load(0));
                stack.push(input);
            }
            Step::Neg => {
                if stack.is_empty() {
                    continue;
                }
                code.push(Op::Neg);
                let a = stack.pop().unwrap();
                stack.push(a.wrapping_neg());
            }
            bin => {
                if stack.len() < 2 {
                    continue;
                }
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                let (op, r) = match bin {
                    Step::Add => (Op::Add, a.wrapping_add(b)),
                    Step::Sub => (Op::Sub, a.wrapping_sub(b)),
                    Step::Mul => (Op::Mul, a.wrapping_mul(b)),
                    Step::Div => (Op::Div, a.checked_div(b).unwrap_or(0)),
                    Step::Rem => (Op::Rem, a.checked_rem(b).unwrap_or(0)),
                    _ => unreachable!(),
                };
                code.push(op);
                stack.push(r);
            }
        }
    }
    let expected = stack.last().copied().unwrap_or(0);
    if stack.is_empty() {
        code.push(Op::Const(0));
    }
    code.push(Op::Ret);

    let mut b = ProgramBuilder::new();
    let c = b.add_class("prop.T", 0);
    let m = b.add_method(c, "prop.T.expr", 1, 1, code);
    b.set_entry(m);
    (b.build().expect("generated program valid"), expected)
}

fn run_with(program: &ProgramDef, input: i64, config: VmConfig, calls: u32) -> i64 {
    let mut machine = Machine::new(MachineConfig::default());
    let mut vm = Vm::boot(
        &mut machine,
        program.clone(),
        NativeRegistry::new(),
        config,
        Box::new(viprof_repro::sim_jvm::NullHooks),
    );
    let entry = vm.program().entry;
    let mut last = Value::I64(0);
    for _ in 0..calls {
        last = vm.call(&mut machine, entry, &[Value::I64(input)]);
    }
    last.as_i64()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn expression_semantics_match_oracle(steps in arb_steps(), input in -10_000i64..10_000) {
        let (program, expected) = build_and_oracle(&steps, input);
        // Interpreted.
        let interp = run_with(
            &program,
            input,
            VmConfig {
                tiering: Tiering::InterpretThenCompile { compile_threshold: u64::MAX },
                ..VmConfig::default()
            },
            1,
        );
        prop_assert_eq!(interp, expected, "interpreted");
        // Baseline-compiled on first use.
        let compiled = run_with(&program, input, VmConfig::default(), 1);
        prop_assert_eq!(compiled, expected, "baseline");
        // Hot path: recompiled at O2 after many invocations.
        let hot = run_with(
            &program,
            input,
            VmConfig {
                aos: AosPolicy::eager(),
                ..VmConfig::default()
            },
            20,
        );
        prop_assert_eq!(hot, expected, "optimized");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn loops_and_heap_survive_gc_pressure(
        iters in 1i64..300,
        objs in 1i64..30,
        field_val in -1_000i64..1_000
    ) {
        // acc = Σ_{i=1..iters} 1, while allocating `objs` objects per
        // iteration and stashing one live object's field across GCs.
        let mut b = ProgramBuilder::new();
        let c = b.add_class("gc.Node", 2);
        let mut asm = MethodAsm::new();
        // keeper = new Node; keeper.f1 = field_val
        asm.op(Op::New(ClassId(0)))
            .op(Op::Store(2))
            .op(Op::Load(2))
            .op(Op::Const(field_val))
            .op(Op::PutField(1));
        asm.op(Op::Const(0)).op(Op::Store(1));
        asm.counted_loop(0, iters, |l| {
            l.op(Op::Load(1)).op(Op::Const(1)).op(Op::Add).op(Op::Store(1));
            l.counted_loop(3, objs, |inner| {
                inner.op(Op::New(ClassId(0))).op(Op::Pop);
            });
        });
        // return acc + keeper.f1 (the keeper must survive every GC)
        asm.op(Op::Load(1)).op(Op::Load(2)).op(Op::GetField(1)).op(Op::Add).op(Op::Ret);
        let m = b.add_method(c, "gc.Main.run", 0, 4, asm.assemble().unwrap());
        b.set_entry(m);
        let program = b.build().unwrap();

        let mut machine = Machine::new(MachineConfig::default());
        let mut vm = Vm::boot(
            &mut machine,
            program,
            NativeRegistry::new(),
            VmConfig {
                heap_bytes: 8 * 1024, // force many collections
                ..VmConfig::default()
            },
            Box::new(viprof_repro::sim_jvm::NullHooks),
        );
        let r = vm.run(&mut machine);
        prop_assert_eq!(r, Value::I64(iters + field_val));
        // With enough churn the heap must actually have collected.
        if iters * objs > 200 {
            prop_assert!(vm.stats.gcs > 0);
        }
    }
}
