//! Cross-crate integration tests: the whole stack driven end to end,
//! checking the properties the per-crate unit tests can't see.

use viprof_repro::oprofile::{opreport, OpConfig, Oprofile, ReportOptions, SampleDb};
use viprof_repro::sim_cpu::HwEvent;
use viprof_repro::viprof::codemap::CodeMapSet;
use viprof_repro::viprof::{ReportSpec, Viprof};
use viprof_repro::workloads::{
    calibrate, find_benchmark, programs, run_benchmark, BuiltWorkload, ProfilerKind, WorkPlan,
};

fn small_workload(name: &str) -> (BuiltWorkload, WorkPlan) {
    let mut params = find_benchmark(name).expect("benchmark exists");
    params.support_methods = params.support_methods.min(120);
    params.heap_mb = 2;
    let built = programs::build(&params);
    let plan = calibrate(&built, 0.02);
    (built, plan)
}

#[test]
fn whole_runs_are_bit_deterministic() {
    let (built, plan) = small_workload("fop");
    let a = run_benchmark(&built, &plan, ProfilerKind::viprof_at(50_000), 42, true);
    let b = run_benchmark(&built, &plan, ProfilerKind::viprof_at(50_000), 42, true);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.db.as_ref().unwrap(), b.db.as_ref().unwrap());
    assert_eq!(a.vm, b.vm);
}

#[test]
fn viprof_and_oprofile_count_the_same_events_differently() {
    // Same plan, same seed, no noise: both profilers see (nearly) the
    // same number of samples — they differ only in classification.
    let (built, plan) = small_workload("fop");
    let o = run_benchmark(&built, &plan, ProfilerKind::oprofile_at(90_000), 1, false);
    let v = run_benchmark(&built, &plan, ProfilerKind::viprof_at(90_000), 1, false);
    let od = o.driver.unwrap();
    let vd = v.driver.unwrap();
    // Sample counts are in the same ballpark (the VIProf run is longer:
    // its agent's map writes are themselves profiled — extra kernel and
    // VM-image samples, not extra JIT samples).
    let ratio = od.total as f64 / vd.total as f64;
    assert!((0.7..1.3).contains(&ratio), "{od:?} vs {vd:?}");
    // OProfile's anon ≈ VIProf's jit (the same PCs, reclassified).
    assert!(od.anon > 0);
    assert_eq!(od.jit, 0);
    assert_eq!(vd.anon, 0);
    assert!(vd.jit > 0);
    let reclass = od.anon as f64 / vd.jit as f64;
    assert!((0.8..1.25).contains(&reclass), "anon {} vs jit {}", od.anon, vd.jit);
}

#[test]
fn report_percentages_are_consistent() {
    let (built, plan) = small_workload("ps");
    let out = run_benchmark(
        &built,
        &plan,
        ProfilerKind::Viprof(OpConfig::figure1(50_000, 2_000)),
        3,
        true,
    );
    let db = out.db.as_ref().unwrap();
    let report = Viprof::make_report(db, &out.machine.kernel, &ReportSpec::default())
        .unwrap()
        .lines;
    assert_eq!(report.events, vec![HwEvent::Cycles, HwEvent::L2Miss]);
    // Unfiltered percentages sum to 100 per event column.
    for col in 0..report.events.len() {
        let sum: f64 = report.rows.iter().map(|r| r.percents[col]).sum();
        assert!(
            (sum - 100.0).abs() < 1e-6,
            "column {col} sums to {sum}"
        );
        // And counts sum to the db totals.
        let count: u64 = report.rows.iter().map(|r| r.counts[col]).sum();
        assert_eq!(count, db.total(report.events[col]));
    }
}

#[test]
fn sample_db_round_trips_through_the_vfs() {
    let (built, plan) = small_workload("fop");
    let out = run_benchmark(&built, &plan, ProfilerKind::viprof_at(70_000), 5, false);
    let db = out.db.as_ref().unwrap();
    let raw = out
        .machine
        .kernel
        .vfs
        .read(viprof_repro::oprofile::session::SAMPLES_PATH)
        .expect("stop() persists the db");
    let parsed = SampleDb::from_bytes(raw).unwrap();
    assert_eq!(&parsed, db);
}

#[test]
fn code_maps_on_disk_resolve_every_jit_sample() {
    let (built, plan) = small_workload("antlr");
    let out = run_benchmark(&built, &plan, ProfilerKind::viprof_at(40_000), 9, false);
    let db = out.db.as_ref().unwrap();
    let pid = db
        .iter()
        .find_map(|(b, _)| match b.origin {
            viprof_repro::oprofile::SampleOrigin::JitApp { pid, .. } => Some(pid),
            _ => None,
        })
        .expect("JIT samples exist");
    let maps = CodeMapSet::load(&out.machine.kernel.vfs, pid).unwrap();
    assert!(!maps.is_empty());
    let mut jit = 0u64;
    let mut resolved = 0u64;
    for (b, c) in db.iter() {
        if matches!(b.origin, viprof_repro::oprofile::SampleOrigin::JitApp { .. }) {
            jit += c;
            if maps.resolve(b.addr, b.epoch).is_some() {
                resolved += c;
            }
        }
    }
    assert!(jit > 100, "need a meaningful sample count, got {jit}");
    // Flag-only agent: ≥99 % (see E4 for the documented residue).
    assert!(
        resolved as f64 / jit as f64 > 0.99,
        "resolved {resolved}/{jit}"
    );
}

#[test]
fn profiler_sessions_are_serially_reusable() {
    // Start/stop OProfile then VIProf on one machine: no leakage.
    let mut params = find_benchmark("fop").unwrap();
    params.support_methods = 40;
    params.heap_mb = 2;
    let built = programs::build(&params);
    let mut machine = viprof_repro::sim_os::Machine::new(Default::default());

    let op = Oprofile::start(&mut machine, OpConfig::time_at(50_000));
    let mut vm = viprof_repro::sim_jvm::Vm::boot(
        &mut machine,
        built.program.clone(),
        built.natives.clone(),
        viprof_repro::workloads::runner::vm_config(&built.params),
        Box::new(viprof_repro::sim_jvm::NullHooks),
    );
    vm.call(&mut machine, built.startup, &[]);
    let db1 = op.stop(&mut machine);
    assert!(db1.total_samples() > 0);

    let vp = Viprof::builder()
        .config(OpConfig::time_at(50_000))
        .start(&mut machine);
    let mut vm2 = viprof_repro::sim_jvm::Vm::boot(
        &mut machine,
        built.program.clone(),
        built.natives.clone(),
        viprof_repro::workloads::runner::vm_config(&built.params),
        Box::new(vp.make_agent()),
    );
    vm2.call(&mut machine, built.startup, &[]);
    vm2.shutdown(&mut machine);
    let db2 = vp.stop(&mut machine);
    assert!(db2.total_samples() > 0);
    assert!(vp.driver_stats().jit + vp.driver_stats().image > 0);
}

#[test]
fn opreport_of_viprof_db_degrades_not_crashes() {
    // Classic opreport over a VIProf-tagged db: JIT buckets render as
    // opaque rows rather than panicking.
    let (built, plan) = small_workload("fop");
    let out = run_benchmark(&built, &plan, ProfilerKind::viprof_at(60_000), 2, false);
    let report = opreport(
        out.db.as_ref().unwrap(),
        &out.machine.kernel,
        &ReportOptions::default(),
    );
    assert!(report
        .rows
        .iter()
        .any(|r| r.image.starts_with("JIT.App") && r.symbol == "(no symbols)"));
}

#[test]
fn exported_session_reports_identically_offline() {
    // Export a finished session to disk, re-import it cold (no machine,
    // no simulation state) and check the merged report is identical —
    // the `viprof-report` CLI path.
    let (built, plan) = small_workload("ps");
    let mut out = run_benchmark(
        &built,
        &plan,
        ProfilerKind::Viprof(OpConfig::figure1(50_000, 2_000)),
        11,
        true,
    );
    let db = out.db.clone().unwrap();
    let live_report = Viprof::make_report(&db, &out.machine.kernel, &ReportSpec::default())
        .unwrap()
        .lines;

    let dir = std::env::temp_dir().join(format!("viprof-session-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Viprof::export_session(&mut out.machine, &dir).unwrap();
    let kernel = Viprof::import_session(&dir).unwrap();
    let raw = kernel
        .vfs
        .read(viprof_repro::oprofile::session::SAMPLES_PATH)
        .expect("db persisted in session");
    let db2 = SampleDb::from_bytes(raw).unwrap();
    assert_eq!(db2, db);
    let offline_report = Viprof::make_report(&db2, &kernel, &ReportSpec::default())
        .unwrap()
        .lines;
    assert_eq!(offline_report.rows, live_report.rows);
    assert_eq!(offline_report.totals, live_report.totals);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn faster_sampling_more_samples_more_overhead() {
    let (built, plan) = small_workload("fop");
    let mut last_samples = 0u64;
    let mut last_cycles = u64::MAX;
    for period in [450_000u64, 90_000, 45_000] {
        let out = run_benchmark(&built, &plan, ProfilerKind::viprof_at(period), 1, false);
        let samples = out.db.unwrap().total_samples();
        assert!(samples > last_samples, "period {period}");
        last_samples = samples;
        if last_cycles != u64::MAX {
            assert!(out.cycles > last_cycles, "period {period} must cost more");
        }
        last_cycles = out.cycles;
    }
}
