//! Property tests for process-churn robustness (ISSUE 7):
//!
//! 1. The kernel's LIFO pid allocator is deterministic per op sequence:
//!    replaying the same spawn/exit schedule on a fresh kernel yields
//!    the identical `(pid, gen)` trace, and every reuse matches a
//!    brute-force stack oracle (most recently freed pid first, its
//!    generation bumped past every earlier incarnation).
//!
//! 2. Cross-incarnation isolation: a sample stamped `(pid, gen)` only
//!    ever resolves against maps written by that exact incarnation.
//!    Across 256 random multi-incarnation layouts the resolver, the
//!    sharded engine at every thread count, and the per-incarnation
//!    breakdown all agree with a per-key oracle, samples of a map-less
//!    generation are blocked (never borrowed from a sibling), and
//!    `quality.accounted()` still covers 100 % of the database.

use proptest::prelude::*;
use viprof_repro::oprofile::{SampleBucket, SampleDb, SampleOrigin};
use viprof_repro::sim_cpu::{HwEvent, Pid, ProcKey};
use viprof_repro::sim_os::Kernel;
use viprof_repro::viprof::codemap::{map_path, render_map, CodeMapEntry};
use viprof_repro::viprof::resolve::ResolveOptions;
use viprof_repro::viprof::{ResolutionEngine, ViprofResolver};

// ---------- LIFO pid allocator: determinism + stack oracle ----------

/// `None` = spawn, `Some(i)` = exit the `i % live`-th live process.
fn op_strategy() -> impl Strategy<Value = Vec<Option<usize>>> {
    prop::collection::vec(prop::option::of(0usize..8), 1..200)
}

/// Run one schedule, checking each spawn against the oracle. Returns
/// the `(pid, gen)` trace of every spawn for cross-run comparison.
fn run_schedule(ops: &[Option<usize>]) -> Vec<(u32, u32)> {
    let mut k = Kernel::new();
    let mut live: Vec<Pid> = Vec::new();
    // Oracle state: fresh-pid counter, freed-pid stack, max gen per pid.
    let mut next_fresh = 1u32;
    let mut free: Vec<u32> = Vec::new();
    let mut gens: std::collections::BTreeMap<u32, u32> = Default::default();
    let mut trace = Vec::new();
    for op in ops {
        match op {
            Some(i) if !live.is_empty() => {
                let pid = live.remove(i % live.len());
                let p = k.exit_process(pid).expect("live process exits");
                assert_eq!(p.pid, pid);
                free.push(pid.0);
            }
            Some(_) => {} // Exit with nothing live: no-op.
            None => {
                let pid = k.spawn("vm");
                let (want_pid, want_gen) = match free.pop() {
                    Some(raw) => (raw, gens.get(&raw).map_or(0, |g| g + 1)),
                    None => {
                        let raw = next_fresh;
                        next_fresh += 1;
                        (raw, 0)
                    }
                };
                assert_eq!(pid.0, want_pid, "LIFO reuse order");
                assert_eq!(k.generation(pid), want_gen, "generation bump");
                assert_eq!(
                    k.proc_key(pid),
                    Some(ProcKey::new(pid, want_gen)),
                    "live key matches the allocator's answer"
                );
                gens.insert(pid.0, want_gen);
                live.push(pid);
                trace.push((pid.0, want_gen));
            }
        }
    }
    trace
}

proptest! {
    #[test]
    fn pid_allocator_reuse_order_is_deterministic(ops in op_strategy()) {
        let first = run_schedule(&ops);
        // Same schedule, fresh kernel: bit-identical (pid, gen) trace.
        let second = run_schedule(&ops);
        prop_assert_eq!(first, second);
    }
}

// ---------- cross-incarnation isolation, 256 random layouts ----------

const SIGS: [&str; 4] = ["app.A.run", "app.B.step", "app.C.scan", "app.D.gc"];

fn entry_strategy() -> impl Strategy<Value = CodeMapEntry> {
    (0u64..0x1000, 1u64..0x100, 0usize..SIGS.len()).prop_map(|(addr, size, sig)| CodeMapEntry {
        addr,
        size,
        level: "O1".to_string(),
        signature: SIGS[sig].to_string(),
    })
}

/// Incarnations: map from `(pid, gen)` to the entries this incarnation
/// wrote (possibly none on disk at all, modelled by `None`).
fn incarnation_strategy(
) -> impl Strategy<Value = std::collections::BTreeMap<(u32, u32), Option<Vec<CodeMapEntry>>>> {
    prop::collection::btree_map(
        (1u32..4, 0u32..3),
        prop::option::of(prop::collection::vec(entry_strategy(), 0..5)),
        1..7,
    )
}

/// Samples stamped with arbitrary `(pid, gen)` — including generations
/// that never wrote maps and pids nothing registered.
fn sample_strategy() -> impl Strategy<Value = Vec<(u32, u32, u64, u64, u64)>> {
    prop::collection::vec((1u32..5, 0u32..4, 0u64..0x1100, 0u64..3, 1u64..20), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn samples_only_resolve_against_their_own_incarnation(
        incarnations in incarnation_strategy(),
        samples in sample_strategy(),
    ) {
        let mut k = Kernel::new();
        for ((pid, gen), entries) in &incarnations {
            let Some(entries) = entries else { continue };
            let key = ProcKey::new(Pid(*pid), *gen);
            // Two epochs per incarnation so chained lookups run too.
            for epoch in 0..2u64 {
                k.vfs.write(
                    map_path(key, epoch),
                    render_map(entries).into_bytes(),
                );
            }
        }
        let mut db = SampleDb::new();
        for (pid, gen, addr, epoch, count) in &samples {
            db.add(
                SampleBucket {
                    origin: SampleOrigin::JitApp { pid: Pid(*pid), gen: *gen },
                    event: HwEvent::Cycles,
                    addr: *addr,
                    epoch: *epoch,
                },
                *count,
            );
        }

        let (resolver, _) =
            ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        let pids_with_maps: std::collections::BTreeSet<u32> = incarnations
            .iter()
            .filter(|(_, e)| e.is_some())
            .map(|((p, _), _)| *p)
            .collect();

        // Per-bucket oracle: resolution may consult the stamped
        // incarnation's own maps and nothing else.
        let mut want_resolved = 0u64;
        let mut want_stale = 0u64;
        let mut want_unresolved = 0u64;
        let mut want_blocked = 0u64;
        for (bucket, count) in db.iter() {
            let SampleOrigin::JitApp { pid, gen } = bucket.origin else { unreachable!() };
            let own = resolver.codemaps(ProcKey::new(pid, gen));
            let (_, sym) = resolver.label(bucket, &k);
            match own {
                Some(set) => match set.resolve_salvage(bucket.addr, bucket.epoch) {
                    Some((e, stale)) => {
                        prop_assert_eq!(&sym, &e.signature, "label came from own maps");
                        if stale { want_stale += count } else { want_resolved += count }
                    }
                    None => {
                        prop_assert_eq!(sym.as_str(), "(unresolved jit)");
                        want_unresolved += count;
                    }
                },
                None => {
                    // THE invariant: no maps for this generation means
                    // no symbol, even when a sibling incarnation of the
                    // pid has perfectly good maps covering this addr.
                    prop_assert_eq!(sym.as_str(), "(unresolved jit)");
                    if pids_with_maps.contains(&pid.0) {
                        want_blocked += count;
                    } else {
                        want_unresolved += count;
                    }
                }
            }
        }

        // Whole-run quality matches the oracle and accounts for 100 %.
        let q = resolver.quality(&db);
        prop_assert_eq!(q.resolved, want_resolved);
        prop_assert_eq!(q.stale_epoch, want_stale);
        prop_assert_eq!(q.unresolved, want_unresolved);
        prop_assert_eq!(q.cross_incarnation_blocked, want_blocked);
        prop_assert_eq!(q.accounted(), db.total_samples());

        // The sharded engine agrees at every thread count.
        let engine = ResolutionEngine::build(&resolver);
        for threads in [1usize, 4] {
            prop_assert_eq!(engine.quality(&db, threads), q, "threads={}", threads);
        }

        // The per-incarnation breakdown partitions the same totals.
        let rows = resolver.incarnations(&db);
        for w in rows.windows(2) {
            prop_assert!((w[0].pid, w[0].gen) < (w[1].pid, w[1].gen), "sorted rows");
        }
        for r in &rows {
            prop_assert_eq!(
                r.samples,
                r.resolved + r.stale_epoch + r.unresolved + r.blocked
            );
            if r.blocked > 0 {
                prop_assert!(
                    resolver.codemaps(ProcKey::new(Pid(r.pid), r.gen)).is_none()
                        && pids_with_maps.contains(&r.pid),
                    "blocked rows are exactly map-less gens of mapped pids"
                );
            }
        }
        prop_assert_eq!(rows.iter().map(|r| r.samples).sum::<u64>(), db.total_samples());
        prop_assert_eq!(rows.iter().map(|r| r.resolved).sum::<u64>(), q.resolved);
        prop_assert_eq!(rows.iter().map(|r| r.stale_epoch).sum::<u64>(), q.stale_epoch);
        prop_assert_eq!(rows.iter().map(|r| r.unresolved).sum::<u64>(), q.unresolved);
        prop_assert_eq!(
            rows.iter().map(|r| r.blocked).sum::<u64>(),
            q.cross_incarnation_blocked
        );
    }
}
