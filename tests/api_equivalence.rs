//! Deprecation-shim equivalence: every `#[deprecated]` entrypoint must
//! be a behaviour-preserving wrapper over its builder/options
//! replacement. Same seed, same workload → bit-identical sample
//! databases, cycle counts, quality accounting and rendered report
//! bytes.
#![allow(deprecated)]

use viprof_repro::oprofile::{OpConfig, ReportOptions, SampleDb, SupervisorConfig};
use viprof_repro::sim_os::{Machine, MachineConfig};
use viprof_repro::viprof::resolve::ResolveOptions;
use viprof_repro::viprof::{
    viprof_report, FaultPlan, ReportSpec, ResolutionEngine, Viprof, ViprofResolver,
};
use viprof_repro::workloads::runner::execute_plan;
use viprof_repro::workloads::{calibrate, find_benchmark, programs, BuiltWorkload, WorkPlan};

const SEED: u64 = 9;

fn small_workload() -> (BuiltWorkload, WorkPlan) {
    let mut params = find_benchmark("fop").expect("benchmark exists");
    params.support_methods = params.support_methods.min(120);
    params.heap_mb = 2;
    let built = programs::build(&params);
    let plan = calibrate(&built, 0.02);
    (built, plan)
}

/// Drive one full session with `start` supplying the profiler; returns
/// everything equivalence needs to compare.
fn run_session(
    built: &BuiltWorkload,
    plan: &WorkPlan,
    start: impl FnOnce(&mut Machine) -> Viprof,
) -> (SampleDb, u64, Machine) {
    let mut machine = Machine::new(MachineConfig {
        seed: SEED,
        ..MachineConfig::default()
    });
    let vp = start(&mut machine);
    execute_plan(&mut machine, built, plan, Box::new(vp.make_agent()));
    let db = vp.stop(&mut machine);
    (db, machine.cpu.clock.cycles(), machine)
}

#[test]
fn start_shim_equals_builder() {
    let (built, plan) = small_workload();
    let (db_old, cycles_old, _) = run_session(&built, &plan, |m| {
        Viprof::start(m, OpConfig::time_at(60_000))
    });
    let (db_new, cycles_new, _) = run_session(&built, &plan, |m| {
        Viprof::builder().config(OpConfig::time_at(60_000)).start(m)
    });
    assert_eq!(cycles_old, cycles_new);
    assert_eq!(db_old, db_new);
}

#[test]
fn start_with_faults_shim_equals_builder() {
    let (built, plan) = small_workload();
    let fp = FaultPlan::new(21)
        .with_overflow_bursts(0.2, 2)
        .with_lost_maps(0.4)
        .with_garbled_lines(0.2);
    let (db_old, cycles_old, _) = run_session(&built, &plan, |m| {
        Viprof::start_with_faults(m, OpConfig::time_at(60_000), &fp)
    });
    let (db_new, cycles_new, _) = run_session(&built, &plan, |m| {
        Viprof::builder()
            .config(OpConfig::time_at(60_000))
            .faults(&fp)
            .start(m)
    });
    assert_eq!(cycles_old, cycles_new);
    assert_eq!(db_old, db_new);
}

#[test]
fn manual_supervised_config_equals_builder_toggles() {
    // The pre-builder idiom: hand-chain with_journal + with_supervisor
    // onto the config before start_with_faults. The builder spelling
    // must reproduce it bit for bit.
    let (built, plan) = small_workload();
    let fp = FaultPlan::new(33).with_daemon_crash(3, 2).with_torn_maps(0.5);
    let (db_old, cycles_old, m_old) = run_session(&built, &plan, |m| {
        Viprof::start_with_faults(
            m,
            OpConfig::time_at(60_000)
                .with_journal()
                .with_supervisor(fp.supervisor_config()),
            &fp,
        )
    });
    let (db_new, cycles_new, m_new) = run_session(&built, &plan, |m| {
        Viprof::builder()
            .config(OpConfig::time_at(60_000))
            .journal(true)
            .supervised(true)
            .faults(&fp)
            .start(m)
    });
    assert_eq!(cycles_old, cycles_new);
    assert_eq!(db_old, db_new);
    // The recovered reports agree byte for byte as well.
    let old = Viprof::make_report(&db_old, &m_old.kernel, &ReportSpec::recovered()).unwrap();
    let new = Viprof::make_report(&db_new, &m_new.kernel, &ReportSpec::recovered()).unwrap();
    assert_eq!(old, new);
}

#[test]
fn supervised_false_override_differs_from_supervised_config() {
    // Sanity that the toggle actually reaches the supervisor: forcing
    // it off beats a config that asked for one.
    let (built, plan) = small_workload();
    let mut machine = Machine::new(MachineConfig {
        seed: SEED,
        ..MachineConfig::default()
    });
    let vp = Viprof::builder()
        .config(OpConfig::time_at(60_000).with_supervisor(SupervisorConfig::default()))
        .supervised(false)
        .start(&mut machine);
    execute_plan(&mut machine, &built, &plan, Box::new(vp.make_agent()));
    vp.stop(&mut machine);
    assert!(vp.supervisor_stats().is_none());
}

#[test]
fn report_shims_equal_make_report() {
    let (built, plan) = small_workload();
    let (db, _, machine) = run_session(&built, &plan, |m| {
        Viprof::builder().config(OpConfig::time_at(60_000)).start(m)
    });
    let kernel = &machine.kernel;
    let options = ReportOptions {
        min_primary_percent: 0.05,
        ..ReportOptions::default()
    };
    let spec = ReportSpec {
        options: options.clone(),
        ..ReportSpec::default()
    };
    let unified = Viprof::make_report(&db, kernel, &spec).unwrap();

    let old = Viprof::report(&db, kernel, &options).unwrap();
    assert_eq!(old, unified.lines);
    assert_eq!(old.render_text(), unified.lines.render_text());
    assert_eq!(old.render_csv(), unified.lines.render_csv());

    let (old_r, old_q) = Viprof::report_with_quality(&db, kernel, &options).unwrap();
    assert_eq!(old_r, unified.lines);
    assert_eq!(old_q, unified.quality);
}

#[test]
fn recovery_shim_equals_make_report_recovered() {
    let (built, plan) = small_workload();
    let fp = FaultPlan::new(11).with_torn_maps(1.0);
    let (db, _, machine) = run_session(&built, &plan, |m| {
        Viprof::builder()
            .config(OpConfig::time_at(60_000))
            .journal(true)
            .faults(&fp)
            .start(m)
    });
    let kernel = &machine.kernel;
    let options = ReportOptions::default();
    let unified = Viprof::make_report(
        &db,
        kernel,
        &ReportSpec {
            options: options.clone(),
            recover: true,
            ..ReportSpec::default()
        },
    )
    .unwrap();
    let (old_r, old_q, old_rec) = Viprof::report_with_recovery(&db, kernel, &options).unwrap();
    assert_eq!(old_r, unified.lines);
    assert_eq!(old_r.render_text(), unified.lines.render_text());
    assert_eq!(old_q, unified.quality);
    assert_eq!(Some(old_rec), unified.recovery);
}

#[test]
fn resolver_load_shims_equal_load_with() {
    let (built, plan) = small_workload();
    let fp = FaultPlan::new(11).with_torn_maps(1.0);
    let (db, _, machine) = run_session(&built, &plan, |m| {
        Viprof::builder()
            .config(OpConfig::time_at(60_000))
            .journal(true)
            .faults(&fp)
            .start(m)
    });
    let kernel = &machine.kernel;
    let options = ReportOptions::default();

    let old = ViprofResolver::load(kernel).unwrap();
    let (new, rec) = ViprofResolver::load_with(kernel, ResolveOptions::default()).unwrap();
    assert_eq!(rec, Default::default(), "plain load reports no recovery");
    assert_eq!(old.quality(&db), new.quality(&db));
    assert_eq!(
        viprof_report(&db, kernel, &old, &options),
        viprof_report(&db, kernel, &new, &options)
    );

    let (old_rec, old_rep) = ViprofResolver::load_recovered(kernel).unwrap();
    let (new_rec, new_rep) =
        ViprofResolver::load_with(kernel, ResolveOptions::recovered()).unwrap();
    assert_eq!(old_rep, new_rep);
    assert_eq!(old_rec.quality(&db), new_rec.quality(&db));
    assert_eq!(
        viprof_report(&db, kernel, &old_rec, &options),
        viprof_report(&db, kernel, &new_rec, &options)
    );
    // And the engine built from either recovered resolver agrees.
    assert_eq!(
        ResolutionEngine::build(&old_rec).quality(&db, 4),
        new_rec.quality(&db)
    );
}
