//! v0.3 surface equivalence: the consolidated API's spellings of one
//! post-processing pass must agree bit for bit. Same seed, same
//! workload → identical sample databases, cycle counts, quality
//! accounting and rendered report bytes — whether the caller goes
//! through `Viprof::make_report`, a hand-held `ResolutionEngine`, or
//! the streaming `LiveEngine`.
//!
//! This file compiles with `-D deprecated` in `scripts/verify.sh`: it
//! is the proof that the supported surface needs no removed v0.2 shim.

use viprof_repro::oprofile::{OpConfig, ReportOptions, SampleDb, SupervisorConfig};
use viprof_repro::sim_os::{Machine, MachineConfig};
use viprof_repro::viprof::resolve::ResolveOptions;
use viprof_repro::viprof::{
    viprof_report, FaultPlan, LiveSpec, ReportSpec, ResolutionEngine, Viprof, ViprofResolver,
};
use viprof_repro::workloads::runner::execute_plan;
use viprof_repro::workloads::{calibrate, find_benchmark, programs, BuiltWorkload, WorkPlan};

const SEED: u64 = 9;

fn small_workload() -> (BuiltWorkload, WorkPlan) {
    let mut params = find_benchmark("fop").expect("benchmark exists");
    params.support_methods = params.support_methods.min(120);
    params.heap_mb = 2;
    let built = programs::build(&params);
    let plan = calibrate(&built, 0.02);
    (built, plan)
}

/// Drive one full session with `start` supplying the profiler; returns
/// everything equivalence needs to compare.
fn run_session(
    built: &BuiltWorkload,
    plan: &WorkPlan,
    start: impl FnOnce(&mut Machine) -> Viprof,
) -> (SampleDb, u64, Machine) {
    let mut machine = Machine::new(MachineConfig {
        seed: SEED,
        ..MachineConfig::default()
    });
    let vp = start(&mut machine);
    execute_plan(&mut machine, built, plan, Box::new(vp.make_agent()));
    let db = vp.stop(&mut machine);
    (db, machine.cpu.clock.cycles(), machine)
}

#[test]
fn preconfigured_opconfig_equals_builder_toggles() {
    // Journal + supervisor hand-chained onto the config before the
    // builder sees it, vs. the builder's own toggles: bit-identical
    // sessions either way.
    let (built, plan) = small_workload();
    let fp = FaultPlan::new(33).with_daemon_crash(3, 2).with_torn_maps(0.5);
    let (db_old, cycles_old, m_old) = run_session(&built, &plan, |m| {
        Viprof::builder()
            .config(
                OpConfig::time_at(60_000)
                    .with_journal()
                    .with_supervisor(fp.supervisor_config()),
            )
            .faults(&fp)
            .start(m)
    });
    let (db_new, cycles_new, m_new) = run_session(&built, &plan, |m| {
        Viprof::builder()
            .config(OpConfig::time_at(60_000))
            .journal(true)
            .supervised(true)
            .faults(&fp)
            .start(m)
    });
    assert_eq!(cycles_old, cycles_new);
    assert_eq!(db_old, db_new);
    // The recovered reports agree byte for byte as well.
    let old = Viprof::make_report(&db_old, &m_old.kernel, &ReportSpec::recovered()).unwrap();
    let new = Viprof::make_report(&db_new, &m_new.kernel, &ReportSpec::recovered()).unwrap();
    assert_eq!(old, new);
}

#[test]
fn supervised_false_override_differs_from_supervised_config() {
    // Sanity that the toggle actually reaches the supervisor: forcing
    // it off beats a config that asked for one.
    let (built, plan) = small_workload();
    let mut machine = Machine::new(MachineConfig {
        seed: SEED,
        ..MachineConfig::default()
    });
    let vp = Viprof::builder()
        .config(OpConfig::time_at(60_000).with_supervisor(SupervisorConfig::default()))
        .supervised(false)
        .start(&mut machine);
    execute_plan(&mut machine, &built, &plan, Box::new(vp.make_agent()));
    vp.stop(&mut machine);
    assert!(vp.supervisor_stats().is_none());
}

#[test]
fn make_report_equals_engine_resolve() {
    // `Viprof::make_report` and a hand-held resolver + engine are the
    // same pass: lines, quality and incarnation rows all agree, for
    // every thread count.
    let (built, plan) = small_workload();
    let (db, _, machine) = run_session(&built, &plan, |m| {
        Viprof::builder().config(OpConfig::time_at(60_000)).start(m)
    });
    let kernel = &machine.kernel;
    let options = ReportOptions {
        min_primary_percent: 0.05,
        ..ReportOptions::default()
    };
    let spec = ReportSpec::default().with_options(options.clone());
    let unified = Viprof::make_report(&db, kernel, &spec).unwrap();

    let (resolver, rec) = ViprofResolver::load_with(kernel, ResolveOptions::default()).unwrap();
    assert_eq!(rec, Default::default(), "plain load reports no recovery");
    assert_eq!(
        viprof_report(&db, kernel, &resolver, &options),
        unified.lines,
        "legacy walk agrees with the unified pass"
    );
    for threads in [1usize, 4] {
        let mut engine = ResolutionEngine::build(&resolver);
        let session = engine.resolve(&db, kernel, &spec.clone().threads(threads));
        assert_eq!(session.lines, unified.lines);
        assert_eq!(session.lines.render_text(), unified.lines.render_text());
        assert_eq!(session.lines.render_csv(), unified.lines.render_csv());
        assert_eq!(session.quality, unified.quality);
        assert_eq!(session.incarnations, unified.incarnations);
        assert_eq!(session.recovery, None, "replay is a load-time concern");
    }
}

#[test]
fn recovered_spec_equals_recovered_load() {
    // `ReportSpec::recovered()` through `make_report` and
    // `ResolveOptions::recovered()` through `load_with` run the same
    // salvage pass.
    let (built, plan) = small_workload();
    let fp = FaultPlan::new(11).with_torn_maps(1.0);
    let (db, _, machine) = run_session(&built, &plan, |m| {
        Viprof::builder()
            .config(OpConfig::time_at(60_000))
            .journal(true)
            .faults(&fp)
            .start(m)
    });
    let kernel = &machine.kernel;
    let options = ReportOptions::default();
    let unified = Viprof::make_report(
        &db,
        kernel,
        &ReportSpec::recovered().with_options(options.clone()),
    )
    .unwrap();
    assert!(unified.recovery.is_some(), "recover: true fills recovery");

    let (resolver, recovery) =
        ViprofResolver::load_with(kernel, ResolveOptions::recovered()).unwrap();
    // `make_report` fills `samples_salvaged` by running the degraded
    // baseline alongside; the load-time half of the report must match
    // field for field.
    let unified_rec = unified.recovery.expect("recovery filled");
    let mut aligned = recovery;
    aligned.samples_salvaged = unified_rec.samples_salvaged;
    assert_eq!(aligned, unified_rec);
    assert_eq!(viprof_report(&db, kernel, &resolver, &options), unified.lines);
    assert_eq!(resolver.quality(&db), unified.quality);
    // And the engine built from the recovered resolver agrees.
    assert_eq!(
        ResolutionEngine::build(&resolver).quality(&db, 4),
        unified.quality
    );
}

#[test]
fn spec_builders_reach_every_field() {
    // The `#[non_exhaustive]` specs are built exclusively through
    // `with_*` methods; each one must actually land.
    let spec = ReportSpec::default()
        .with_options(ReportOptions {
            min_primary_percent: 1.5,
            ..ReportOptions::default()
        })
        .with_recover(true)
        .threads(8);
    assert!((spec.options.min_primary_percent - 1.5).abs() < f64::EPSILON);
    assert!(spec.recover);
    assert_eq!(spec.threads, 8);
    assert!(spec.poison.is_none());
    assert!(ReportSpec::recovered().recover);

    assert!(ResolveOptions::recovered().recover);
    assert!(!ResolveOptions::default().with_recover(false).recover);

    assert!(LiveSpec::new().drop_frozen, "reclaim is the default");
    assert!(!LiveSpec::new().with_drop_frozen(false).drop_frozen);
}

#[test]
fn live_builder_snapshot_equals_make_report() {
    // The streaming spelling of the same session: a `live(LiveSpec)`
    // builder session's sealed snapshot is the batch report.
    let (built, plan) = small_workload();
    let mut machine = Machine::new(MachineConfig {
        seed: SEED,
        ..MachineConfig::default()
    });
    let vp = Viprof::builder()
        .config(OpConfig::time_at(60_000))
        .journal(true)
        .live(LiveSpec::new())
        .start(&mut machine);
    execute_plan(&mut machine, &built, &plan, Box::new(vp.make_agent()));
    let db = vp.stop(&mut machine);

    let spec = ReportSpec::default();
    let offline = Viprof::make_report(&db, &machine.kernel, &spec).unwrap();
    let live = vp
        .live_snapshot(&machine.kernel, &spec)
        .expect("live session exposes its engine");
    assert_eq!(live.lines, offline.lines);
    assert_eq!(live.quality, offline.quality);
    assert_eq!(live.incarnations, offline.incarnations);

    // A session built without `live(..)` has no engine to expose.
    let (_, _, _) = run_session(&built, &plan, |m| {
        let vp = Viprof::builder().config(OpConfig::time_at(60_000)).start(m);
        assert!(vp.live_engine().is_none());
        vp
    });
}
