//! Property + unit tests for the temporal observability layer
//! (ISSUE 10): the timeline ring and the health rules over it.
//!
//! * **Telescoping** — any schedule of cumulative counter samples, at
//!   any ring capacity, yields per-window deltas that sum exactly to
//!   the final cumulative value of every series (coalescing loses
//!   resolution, never mass);
//! * **Monotonicity** — window stamps are strictly increasing in sim
//!   time;
//! * **Fixed point** — `Timeline::from_json(t.to_json())` re-exports
//!   byte-identically, and replaying the same schedule reproduces the
//!   same bytes;
//! * **Whole-stack determinism** — a fixed-seed session exports a
//!   byte-identical `timeline.json` run after run, the export
//!   telescopes against the cumulative telemetry snapshot written at
//!   the same stop, and neither the timeline nor the health report
//!   depends on the resolve thread count;
//! * **Health rules** — sustained-window hysteresis, severity
//!   escalation and ordering, and zero false positives on a clean
//!   fixed-seed session.

use proptest::prelude::*;
use viprof_repro::oprofile::session::{SAMPLES_PATH, TELEMETRY_PATH, TIMELINE_PATH};
use viprof_repro::oprofile::{OpConfig, SampleDb};
use viprof_repro::telemetry::{
    names, HealthReport, HealthRule, Severity, TelemetrySnapshot, Timeline,
};
use viprof_repro::viprof::{ReportSpec, Viprof};
use viprof_repro::workloads::{
    calibrate, find_benchmark, programs, run_benchmark, BuiltWorkload, ProfilerKind, WorkPlan,
};

// ---------------------------------------------------------------- //
// Timeline properties (direct drive)                               //
// ---------------------------------------------------------------- //

/// The tracked series the random schedules exercise.
const SERIES: &[&str] = &[
    names::BUFFER_PUSHED,
    names::BUFFER_DROPPED,
    names::DAEMON_DRAINS,
];

/// Replay a schedule of `(clock advance, per-series increments,
/// gauge)` steps against a fresh timeline. Returns the timeline plus
/// the final cumulative value per series.
fn drive(steps: &[(u64, [u64; 3], u64)], capacity: usize) -> (Timeline, [u64; 3]) {
    let mut t = Timeline::with_capacity(capacity);
    let mut now = 0u64;
    let mut cum = [0u64; 3];
    for (dt, inc, gauge) in steps {
        now += dt; // dt >= 1: the sim clock only moves forward
        for (c, i) in cum.iter_mut().zip(inc) {
            *c += i;
        }
        let counters: Vec<(&'static str, u64)> =
            SERIES.iter().zip(cum).map(|(n, v)| (*n, v)).collect();
        t.record(now, &counters, &[(names::GOVERNOR_PERIOD, *gauge)]);
    }
    (t, cum)
}

fn step_strategy() -> impl Strategy<Value = Vec<(u64, [u64; 3], u64)>> {
    prop::collection::vec(
        (1u64..5_000, [0u64..50, 0u64..50, 0u64..50], 0u64..100_000),
        1..80,
    )
}

proptest! {
    #[test]
    fn deltas_telescope_to_the_cumulative_totals(
        steps in step_strategy(),
        capacity in 2usize..12,
    ) {
        let (t, cum) = drive(&steps, capacity);
        for (name, expected) in SERIES.iter().zip(cum) {
            let telescoped: u64 = t.windows().iter().map(|w| w.delta(name)).sum();
            prop_assert_eq!(telescoped, expected, "{} telescopes", name);
            prop_assert_eq!(t.total(name), expected, "{} cumulative total", name);
        }
        prop_assert!(t.len() <= capacity, "ring stays bounded");
        prop_assert_eq!(t.samples(), steps.len() as u64, "every record counted");
    }

    #[test]
    fn window_stamps_are_strictly_monotone(
        steps in step_strategy(),
        capacity in 2usize..12,
    ) {
        let (t, _) = drive(&steps, capacity);
        for pair in t.windows().windows(2) {
            prop_assert!(
                pair[0].cycles < pair[1].cycles,
                "stamps must strictly increase: {} then {}",
                pair[0].cycles,
                pair[1].cycles
            );
        }
    }

    #[test]
    fn json_export_import_is_a_fixed_point(
        steps in step_strategy(),
        capacity in 2usize..12,
    ) {
        let (t, _) = drive(&steps, capacity);
        let text = t.to_json();
        let parsed = Timeline::from_json(&text);
        prop_assert!(parsed.is_ok(), "canonical export parses: {:?}", parsed.err());
        prop_assert_eq!(parsed.unwrap().to_json(), text, "re-export is byte-identical");

        // Replaying the same schedule is also a fixed point.
        let (again, _) = drive(&steps, capacity);
        prop_assert_eq!(again.to_json(), text, "same schedule, same bytes");
    }
}

// ---------------------------------------------------------------- //
// Whole-stack determinism                                          //
// ---------------------------------------------------------------- //

fn small_workload() -> (BuiltWorkload, WorkPlan) {
    let mut params = find_benchmark("fop").expect("benchmark exists");
    params.support_methods = params.support_methods.min(120);
    params.heap_mb = 2;
    let built = programs::build(&params);
    let plan = calibrate(&built, 0.02);
    (built, plan)
}

/// A configuration that cannot overflow on the small workload: the
/// clean fixed-seed session the zero-false-positive gate runs on.
fn roomy_config() -> OpConfig {
    OpConfig {
        buffer_capacity: 4096,
        ..OpConfig::time_at(50_000)
    }
}

#[test]
fn same_seed_exports_byte_identical_timeline() {
    let (built, plan) = small_workload();
    let run = || run_benchmark(&built, &plan, ProfilerKind::Viprof(roomy_config()), 42, true);
    let a = run();
    let b = run();
    let raw_a = a
        .machine
        .kernel
        .vfs
        .read(TIMELINE_PATH)
        .expect("stop persists the timeline");
    let raw_b = b.machine.kernel.vfs.read(TIMELINE_PATH).unwrap();
    assert_eq!(raw_a, raw_b, "same seed must export the same timeline bytes");

    // The export telescopes against the cumulative telemetry snapshot
    // written at the same stop, for every tracked pipeline counter.
    let timeline = Timeline::from_json(std::str::from_utf8(raw_a).unwrap()).unwrap();
    let snap = TelemetrySnapshot::from_json(
        std::str::from_utf8(a.machine.kernel.vfs.read(TELEMETRY_PATH).unwrap()).unwrap(),
    )
    .unwrap();
    assert!(!timeline.is_empty(), "the daemon sampled every drain");
    for name in [
        names::CPU_SAMPLES_DELIVERED,
        names::BUFFER_PUSHED,
        names::BUFFER_DROPPED,
        names::DAEMON_DRAINS,
        names::JOURNAL_APPENDS,
    ] {
        let telescoped: u64 = timeline.windows().iter().map(|w| w.delta(name)).sum();
        assert_eq!(telescoped, snap.counter(name), "{name} telescopes");
    }
}

#[test]
fn timeline_and_health_are_invariant_to_resolve_thread_count() {
    let (built, plan) = small_workload();
    let out = run_benchmark(&built, &plan, ProfilerKind::Viprof(roomy_config()), 7, true);
    let before = out.machine.kernel.vfs.read(TIMELINE_PATH).unwrap().to_vec();

    let raw = out.machine.kernel.vfs.read(SAMPLES_PATH).unwrap();
    let db = SampleDb::from_bytes(raw).unwrap();
    let report_at = |threads: usize| {
        Viprof::make_report(
            &db,
            &out.machine.kernel,
            &ReportSpec::default().threads(threads),
        )
        .expect("resolve succeeds")
    };
    let r1 = report_at(1);
    let r4 = report_at(4);
    assert_eq!(r1.health, r4.health, "health is shard-invariant");
    assert_eq!(
        out.machine.kernel.vfs.read(TIMELINE_PATH).unwrap(),
        &before[..],
        "resolving never rewrites the timeline export"
    );

    // Health is a pure function of the exported timeline: evaluating
    // the artifact by hand reproduces the in-report findings.
    let timeline = Timeline::from_json(std::str::from_utf8(&before).unwrap()).unwrap();
    assert_eq!(r1.health, HealthReport::evaluate(&timeline));
}

// ---------------------------------------------------------------- //
// Health rules                                                     //
// ---------------------------------------------------------------- //

/// Build a timeline where one series moves by `deltas[i]` in window
/// `i` (stamps 10 000 apart).
fn timeline_of(series: &'static str, deltas: &[u64]) -> Timeline {
    let mut t = Timeline::with_capacity(64);
    let mut now = 0u64;
    let mut cum = 0u64;
    for d in deltas {
        now += 10_000;
        cum += d;
        t.record(now, &[(series, cum)], &[]);
    }
    t
}

#[test]
fn sustain_gives_hysteresis_against_blips() {
    let rule = HealthRule {
        id: names::HEALTH_BUFFER_OVERFLOW,
        series: names::BUFFER_DROPPED,
        threshold: 1,
        sustain: 3,
        severity: Severity::Warning,
        escalate_sustain: 0,
    };
    // Two two-window bursts with a gap: longest run 2 < sustain 3.
    let blips = timeline_of(names::BUFFER_DROPPED, &[1, 1, 0, 1, 1]);
    assert!(
        HealthReport::evaluate_with(&[rule], &blips).is_healthy(),
        "interrupted runs must not fire a sustain-3 rule"
    );
    // Three consecutive windows: fires, with exact evidence.
    let sustained = timeline_of(names::BUFFER_DROPPED, &[0, 2, 1, 4, 0]);
    let report = HealthReport::evaluate_with(&[rule], &sustained);
    let f = report.finding(names::HEALTH_BUFFER_OVERFLOW).expect("fires");
    assert_eq!((f.total, f.windows, f.peak, f.longest_run), (7, 3, 4, 3));
    assert_eq!((f.first_cycles, f.last_cycles), (20_000, 40_000));
}

#[test]
fn sustained_overflow_escalates_one_severity_level() {
    // The default buffer-overflow rule is Warning with escalate at a
    // 3-window run: a single-window drop stays Warning, a sustained
    // run becomes Critical.
    let blip = HealthReport::evaluate(&timeline_of(names::BUFFER_DROPPED, &[0, 5, 0]));
    assert_eq!(
        blip.finding(names::HEALTH_BUFFER_OVERFLOW).unwrap().severity,
        Severity::Warning
    );
    let sustained = HealthReport::evaluate(&timeline_of(names::BUFFER_DROPPED, &[2, 2, 2]));
    assert_eq!(
        sustained.finding(names::HEALTH_BUFFER_OVERFLOW).unwrap().severity,
        Severity::Critical
    );
    // Escalation saturates at the top.
    assert_eq!(Severity::Info.escalated(), Severity::Warning);
    assert_eq!(Severity::Warning.escalated(), Severity::Critical);
    assert_eq!(Severity::Critical.escalated(), Severity::Critical);
}

#[test]
fn findings_sort_by_severity_then_rule_id() {
    // Move four series so one Critical, two Warning and one Info rule
    // fire in the same report (cumulative values, one window apiece).
    let mut t = Timeline::with_capacity(16);
    t.record(10_000, &[(names::GOVERNOR_BACKOFFS, 1)], &[]);
    t.record(
        20_000,
        &[
            (names::GOVERNOR_BACKOFFS, 1),
            (names::BUFFER_DROPPED, 4),
            (names::DB_EVICTED_SAMPLES, 2),
        ],
        &[],
    );
    t.record(
        30_000,
        &[
            (names::GOVERNOR_BACKOFFS, 1),
            (names::BUFFER_DROPPED, 4),
            (names::DB_EVICTED_SAMPLES, 2),
            (names::GOVERNOR_ESCALATIONS, 1),
        ],
        &[],
    );
    let report = HealthReport::evaluate(&t);
    let order: Vec<(&str, Severity)> = report
        .findings
        .iter()
        .map(|f| (f.rule.as_str(), f.severity))
        .collect();
    assert_eq!(
        order,
        vec![
            (names::HEALTH_GOVERNOR_ESCALATION, Severity::Critical),
            (names::HEALTH_BUFFER_OVERFLOW, Severity::Warning),
            (names::HEALTH_DB_EVICTION, Severity::Warning),
            (names::HEALTH_GOVERNOR_BACKOFF, Severity::Info),
        ],
        "severity descending, ties broken by rule id"
    );
    assert_eq!(report.worst(), Some(Severity::Critical));
    assert_eq!(
        HealthReport::from_json(&report.to_json()),
        Ok(report),
        "report JSON round-trips"
    );
}

#[test]
fn clean_fixed_seed_session_raises_no_findings() {
    let (built, plan) = small_workload();
    let out = run_benchmark(&built, &plan, ProfilerKind::Viprof(roomy_config()), 42, true);
    let timeline = Timeline::from_json(
        std::str::from_utf8(out.machine.kernel.vfs.read(TIMELINE_PATH).unwrap()).unwrap(),
    )
    .unwrap();
    let report = HealthReport::evaluate(&timeline);
    assert!(
        report.is_healthy(),
        "clean session must raise nothing, got:\n{}",
        report.render_text()
    );
}
