//! Property tests of the garbage collector: data integrity across
//! collections, address-space discipline, and copying/non-moving
//! equivalence.

use proptest::prelude::*;
use viprof_repro::sim_jvm::{ClassId, GcMode, Heap, MatureConfig, ObjRef, Value};

/// Build a random object forest: each object may point at up to two
/// earlier objects and carries a distinctive integer payload.
#[derive(Debug, Clone)]
struct Spec {
    payload: i64,
    link_a: Option<usize>,
    link_b: Option<usize>,
    rooted: bool,
}

fn arb_specs() -> impl Strategy<Value = Vec<Spec>> {
    prop::collection::vec(
        (any::<i64>(), any::<bool>(), 0usize..64, 0usize..64, any::<bool>(), any::<bool>()),
        1..64,
    )
    .prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (payload, rooted, a, b, la, lb))| Spec {
                payload,
                link_a: (la && i > 0).then(|| a % i),
                link_b: (lb && i > 0).then(|| b % i),
                rooted,
            })
            .collect()
    })
}

fn build_heap(specs: &[Spec], mode: GcMode) -> (Heap, Vec<ObjRef>, Vec<ObjRef>) {
    let region = (0x6000_0000u64, 0x6000_0000 + 512 * 1024);
    let mut heap = match mode {
        GcMode::Copying => Heap::with_mature(
            region,
            MatureConfig {
                promote_after: 2,
                fraction: 0.25,
            },
        ),
        GcMode::NonMoving => Heap::non_moving(region),
    };
    let mut objs = Vec::with_capacity(specs.len());
    let mut roots = Vec::new();
    for s in specs {
        let r = heap.alloc_data(ClassId(0), 3).expect("fits");
        heap.get_mut(r).slots[0] = Value::I64(s.payload);
        if let Some(a) = s.link_a {
            let target: ObjRef = objs[a];
            heap.get_mut(r).slots[1] = Value::Ref(Some(target));
        }
        if let Some(b) = s.link_b {
            let target: ObjRef = objs[b];
            heap.get_mut(r).slots[2] = Value::Ref(Some(target));
        }
        if s.rooted {
            roots.push(r);
        }
        objs.push(r);
    }
    (heap, objs, roots)
}

/// Oracle reachability over the spec graph.
fn reachable(specs: &[Spec]) -> Vec<bool> {
    let mut live = vec![false; specs.len()];
    let mut work: Vec<usize> = specs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.rooted)
        .map(|(i, _)| i)
        .collect();
    while let Some(i) = work.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        for l in [specs[i].link_a, specs[i].link_b].into_iter().flatten() {
            work.push(l);
        }
    }
    live
}

fn check_after_gcs(specs: &[Spec], mode: GcMode, gcs: usize) {
    let (mut heap, objs, roots) = build_heap(specs, mode);
    for _ in 0..gcs {
        heap.collect(&roots, &[], |_| {});
    }
    let live = reachable(specs);
    for (i, s) in specs.iter().enumerate() {
        assert_eq!(
            heap.is_live(objs[i]),
            live[i],
            "object {i} liveness (mode {mode:?})"
        );
        if live[i] {
            let obj = heap.get(objs[i]);
            assert_eq!(obj.slots[0], Value::I64(s.payload), "payload of {i}");
            // Links still point at the intended (live) targets.
            if let Some(a) = s.link_a {
                assert_eq!(obj.slots[1], Value::Ref(Some(objs[a])));
            }
            if let Some(b) = s.link_b {
                assert_eq!(obj.slots[2], Value::Ref(Some(objs[b])));
            }
        }
    }
    // Live objects never overlap in the address space.
    let mut extents: Vec<(u64, u64)> = (0..specs.len())
        .filter(|i| live[*i])
        .map(|i| heap.range_of(objs[i]))
        .collect();
    extents.sort_unstable();
    for w in extents.windows(2) {
        assert!(w[0].1 <= w[1].0, "live objects overlap: {w:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn copying_gc_preserves_graphs_and_never_overlaps(specs in arb_specs(), gcs in 1usize..6) {
        check_after_gcs(&specs, GcMode::Copying, gcs);
    }

    #[test]
    fn non_moving_gc_preserves_graphs_and_never_overlaps(specs in arb_specs(), gcs in 1usize..6) {
        check_after_gcs(&specs, GcMode::NonMoving, gcs);
    }

    #[test]
    fn non_moving_addresses_are_stable(specs in arb_specs()) {
        let (mut heap, objs, roots) = build_heap(&specs, GcMode::NonMoving);
        let before: Vec<Option<u64>> = objs
            .iter()
            .map(|r| heap.is_live(*r).then(|| heap.addr_of(*r)))
            .collect();
        heap.collect(&roots, &[], |_| {});
        heap.collect(&roots, &[], |_| {});
        for (i, r) in objs.iter().enumerate() {
            if heap.is_live(*r) {
                prop_assert_eq!(Some(heap.addr_of(*r)), before[i]);
            }
        }
    }

    #[test]
    fn both_collectors_agree_on_liveness(specs in arb_specs(), gcs in 1usize..4) {
        let (mut copy_heap, copy_objs, copy_roots) = build_heap(&specs, GcMode::Copying);
        let (mut ms_heap, ms_objs, ms_roots) = build_heap(&specs, GcMode::NonMoving);
        for _ in 0..gcs {
            copy_heap.collect(&copy_roots, &[], |_| {});
            ms_heap.collect(&ms_roots, &[], |_| {});
        }
        for i in 0..specs.len() {
            prop_assert_eq!(
                copy_heap.is_live(copy_objs[i]),
                ms_heap.is_live(ms_objs[i]),
                "object {} liveness diverges between collectors", i
            );
        }
    }
}
