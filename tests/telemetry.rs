//! Telemetry-layer integration tests: the self-observation contract
//! across the whole stack.
//!
//! * **Determinism** — the sim clock drives every timestamp, so a
//!   fixed seed exports byte-identical telemetry JSON, run after run,
//!   and the resolve-side snapshot is byte-stable per thread count
//!   with all substance (counters, stages) shard-invariant;
//! * **Partition** — the log2 histogram buckets tile the whole `u64`
//!   range with no gaps, overlaps, or misfiled boundaries;
//! * **Schema** — the metric catalog matches the reviewed golden list
//!   in `scripts/telemetry-schema.txt`, so instrumentation drift fails
//!   review here and in `scripts/verify.sh`.

use viprof_repro::oprofile::session::TELEMETRY_PATH;
use viprof_repro::oprofile::OpConfig;
use viprof_repro::telemetry::{
    bucket_hi, bucket_lo, bucket_of, names, Telemetry, TelemetrySnapshot, BUCKETS,
};
use viprof_repro::viprof::{ReportSpec, Viprof};
use viprof_repro::workloads::{
    calibrate, find_benchmark, programs, run_benchmark, BuiltWorkload, ProfilerKind, WorkPlan,
};

fn small_workload() -> (BuiltWorkload, WorkPlan) {
    let mut params = find_benchmark("fop").expect("benchmark exists");
    params.support_methods = params.support_methods.min(120);
    params.heap_mb = 2;
    let built = programs::build(&params);
    let plan = calibrate(&built, 0.02);
    (built, plan)
}

#[test]
fn same_seed_exports_byte_identical_telemetry_json() {
    let (built, plan) = small_workload();
    let run = || run_benchmark(&built, &plan, ProfilerKind::viprof_at(50_000), 42, true);
    let a = run();
    let b = run();
    let raw_a = a
        .machine
        .kernel
        .vfs
        .read(TELEMETRY_PATH)
        .expect("stop persists the telemetry snapshot");
    let raw_b = b.machine.kernel.vfs.read(TELEMETRY_PATH).unwrap();
    assert_eq!(raw_a, raw_b, "same seed must export the same bytes");

    // The snapshot the harness hands back is the same state stop
    // persisted, and the JSON round-trips losslessly and canonically.
    let text = std::str::from_utf8(raw_a).unwrap();
    let snap = TelemetrySnapshot::from_json(text).expect("persisted JSON parses");
    assert_eq!(Some(&snap), a.telemetry.as_ref());
    assert_eq!(snap.to_json(), text, "export is canonical");
    assert!(snap.counter(names::CPU_SAMPLES_DELIVERED) > 0);
    assert_eq!(snap.counter(names::SESSION_STOPS), 1);
}

#[test]
fn resolve_telemetry_is_deterministic_per_thread_count() {
    let (built, plan) = small_workload();
    let out = run_benchmark(&built, &plan, ProfilerKind::viprof_at(60_000), 7, false);
    let db = out.db.as_ref().expect("profiled run");
    let kernel = &out.machine.kernel;
    let resolve = |threads: usize| {
        Viprof::make_report(db, kernel, &ReportSpec::default().threads(threads))
            .expect("report succeeds")
            .telemetry
    };

    // Byte-identical JSON per thread count, run after run.
    let t1 = resolve(1);
    assert_eq!(t1.to_json(), resolve(1).to_json(), "1 thread");
    let t4 = resolve(4);
    assert_eq!(t4.to_json(), resolve(4).to_json(), "4 threads");

    // Substance is shard-invariant: every counter and stage agrees
    // across thread counts; only the shard-shaped gauge and histogram
    // describe the partitioning itself.
    assert_eq!(t1.counters, t4.counters, "counters must not depend on sharding");
    assert_eq!(t1.stages, t4.stages, "stage work units must not depend on sharding");
    assert_eq!(t1.gauge(names::RESOLVE_SHARDS), 1);
    assert_eq!(t4.gauge(names::RESOLVE_SHARDS), 4);
    let h = t4.histogram(names::RESOLVE_SHARD_SAMPLES).expect("shard sizes recorded");
    assert_eq!(h.count, 4, "one record per shard");
    assert_eq!(h.sum, db.total_samples(), "shards partition the samples");
    assert!(t1.counter(names::REPORT_ROWS) > 0);
}

#[test]
fn drain_allocation_is_bounded_by_ring_capacity_not_drain_count() {
    // The daemon recycles its drain vector back into the ring, so the
    // fresh allocation `drain` performs over a whole session is bounded
    // by the ring capacity (plus allocator slack) — *not* by
    // drains × batch size, which is what a drain that allocated a new
    // vector every wakeup would cost.
    let (built, plan) = small_workload();
    let config = OpConfig {
        buffer_capacity: 64,
        daemon_period_cycles: 300_000,
        ..OpConfig::time_at(15_000)
    };
    let out = run_benchmark(&built, &plan, ProfilerKind::Viprof(config), 9, false);
    let snap = out.telemetry.as_ref().expect("profiled run records telemetry");
    let drains = snap.counter(names::DAEMON_DRAINS);
    let pushed = snap.counter(names::BUFFER_PUSHED);
    let allocated = snap.counter(names::BUFFER_DRAIN_ALLOCATED_SLOTS);
    assert!(drains >= 4, "fast daemon timer must produce many drains: {drains}");
    assert!(pushed > 2 * 64, "the session must push well past one ring's worth");
    assert!(allocated > 0, "the first drain has no spare to recycle");
    assert!(
        allocated <= 2 * 64,
        "drain allocation must stay capacity-bounded: {allocated} slots over {drains} drains"
    );
}

#[test]
fn histogram_buckets_partition_the_u64_range() {
    assert_eq!(bucket_of(0), 0);
    assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    for k in 0..BUCKETS {
        let lo = bucket_lo(k);
        let hi = bucket_hi(k);
        assert!(lo <= hi, "bucket {k} bounds inverted");
        assert_eq!(bucket_of(lo), k, "lo of bucket {k} misfiled");
        assert_eq!(bucket_of(hi), k, "hi of bucket {k} misfiled");
        assert_eq!(bucket_of(lo + (hi - lo) / 2), k, "midpoint of bucket {k}");
        if k > 0 {
            assert_eq!(bucket_of(lo - 1), k - 1, "overlap below bucket {k}");
        }
        if k + 1 < BUCKETS {
            assert_eq!(bucket_lo(k + 1), hi + 1, "gap above bucket {k}");
        }
    }

    // A live histogram files every probe where the boundary math says,
    // with exact count and (wrapping) sum.
    let t = Telemetry::new();
    let h = t.histogram(names::DAEMON_BATCH_SAMPLES);
    let probes = [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX];
    for &v in &probes {
        h.record(v);
    }
    assert_eq!(h.count(), probes.len() as u64);
    assert_eq!(h.sum(), probes.iter().copied().fold(0u64, u64::wrapping_add));
    for &v in &probes {
        assert!(h.bucket_count(bucket_of(v)) >= 1, "probe {v} not in its bucket");
    }
}

#[test]
fn metric_catalog_matches_the_reviewed_golden_schema() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scripts/telemetry-schema.txt");
    let golden = std::fs::read_to_string(path).expect("golden schema exists");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        names::schema_lines(),
        golden_lines,
        "metric catalog drifted from scripts/telemetry-schema.txt — \
         update the golden file in the same change"
    );
}
