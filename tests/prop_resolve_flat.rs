//! Property tests for the flattened epoch interval index and the
//! sharded resolution engine: on *random map chains* — overlapping
//! entries, duplicate start addresses, zero-sized bodies, duplicate
//! epochs, sparse chains — the flattened index must reproduce the
//! legacy backward walk and forward salvage **exactly**, including the
//! stale-epoch classification; and the engine must produce the same
//! labels, quality and report as the reference resolver for every
//! shard count.

use proptest::prelude::*;
use viprof_repro::oprofile::{SampleBucket, SampleDb, SampleOrigin};
use viprof_repro::sim_cpu::HwEvent;
use viprof_repro::sim_os::Kernel;
use viprof_repro::viprof::codemap::{map_path, render_map, CodeMapEntry, CodeMapSet, EpochMap};
use viprof_repro::viprof::resolve::ResolveOptions;
use viprof_repro::viprof::{
    viprof_report, FlatIndex, ReportSpec, ResolutionEngine, ViprofResolver,
};

const SIGS: [&str; 5] = [
    "app.A.run",
    "app.B.step",
    "app.C.scan",
    "app.D.gc",
    "app.E.init",
];

fn entry_strategy() -> impl Strategy<Value = CodeMapEntry> {
    (0u64..0x2000, 0u64..0x200, 0usize..SIGS.len()).prop_map(|(addr, size, sig)| CodeMapEntry {
        addr,
        size,
        level: "O1".to_string(),
        signature: SIGS[sig].to_string(),
    })
}

/// Random epoch-map chains; epochs may repeat (possible through the
/// public `CodeMapSet::new`, and the hardest case for flattening —
/// the walk breaks ties by position, not epoch value).
fn chain_strategy() -> impl Strategy<Value = Vec<(u64, Vec<CodeMapEntry>)>> {
    prop::collection::vec(
        (0u64..12, prop::collection::vec(entry_strategy(), 0..8)),
        0..6,
    )
}

fn queries_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..0x2400, 0u64..14), 1..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn flattened_index_matches_the_epoch_walk(
        chain in chain_strategy(),
        queries in queries_strategy(),
    ) {
        let set = CodeMapSet::new(
            chain
                .into_iter()
                .map(|(epoch, entries)| EpochMap::new(epoch, entries))
                .collect(),
        );
        let flat = FlatIndex::build(&set);
        for (pc, epoch) in queries {
            // Backward walk only.
            let walk = set.resolve(pc, epoch).map(|e| e.signature.as_str());
            let fast = flat.resolve(pc, epoch).map(|s| s.as_ref());
            prop_assert_eq!(walk, fast, "resolve(pc={:#x}, epoch={})", pc, epoch);
            // Walk + forward salvage, with the stale flag.
            let walk = set
                .resolve_salvage(pc, epoch)
                .map(|(e, stale)| (e.signature.as_str(), stale));
            let fast = flat
                .resolve_salvage(pc, epoch)
                .map(|(s, stale)| (s.as_ref(), stale));
            prop_assert_eq!(walk, fast, "resolve_salvage(pc={:#x}, epoch={})", pc, epoch);
        }
    }

    #[test]
    fn engine_matches_the_reference_resolver_on_random_sessions(
        // On-disk chains: one file per epoch (duplicates are covered by
        // the direct index property above).
        maps in prop::collection::btree_map(
            0u64..10,
            prop::collection::vec(entry_strategy(), 0..6),
            0..5,
        ),
        buckets in prop::collection::vec(
            (0u64..0x2400, 0u64..12, 0usize..HwEvent::ALL.len(), any::<bool>(), 1u64..50),
            0..48,
        ),
        dropped in 0u64..20,
    ) {
        let mut k = Kernel::new();
        let pid = k.spawn("jikesrvm");
        for (epoch, entries) in &maps {
            k.vfs.write(
                map_path(pid, *epoch),
                render_map(entries).into_bytes(),
            );
        }
        let mut db = SampleDb::new();
        for (addr, epoch, ev, jit, count) in buckets {
            let origin = if jit {
                SampleOrigin::JitApp { pid, gen: 0 }
            } else {
                SampleOrigin::Unknown
            };
            db.add(
                SampleBucket { origin, event: HwEvent::ALL[ev], addr, epoch },
                count,
            );
        }
        db.dropped = dropped;

        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        let mut engine = ResolutionEngine::build(&resolver);
        // Per-bucket label parity.
        for (bucket, _) in db.iter() {
            let (img, sym) = engine.label(bucket, &k);
            prop_assert_eq!(
                (img.to_string(), sym.to_string()),
                resolver.label(bucket, &k),
                "label diverged on {:?}",
                bucket
            );
        }
        // Whole-session parity, across shard counts.
        let options = Default::default();
        let walk_report = viprof_report(&db, &k, &resolver, &options);
        let walk_q = resolver.quality(&db);
        prop_assert_eq!(walk_q.accounted(), db.total_samples());
        for threads in [1usize, 3, 7] {
            let spec = ReportSpec::default().threads(threads);
            let session = engine.resolve(&db, &k, &spec);
            prop_assert_eq!(&session.lines, &walk_report, "report diverged at threads={}", threads);
            prop_assert_eq!(session.quality, walk_q, "quality diverged at threads={}", threads);
            prop_assert_eq!(engine.quality(&db, threads), walk_q);
        }
    }

    /// The live engine's maintenance invariant, isolated: growing an
    /// index epoch by epoch with `FlatIndex::extend` is `==` to
    /// `FlatIndex::build` over the whole chain — across random entry
    /// overlaps, duplicate start addresses, zero-sized bodies,
    /// duplicate epochs and empty maps — whenever the appends arrive
    /// in chain order (the fast path's contract). Any refusal must
    /// leave the index untouched.
    #[test]
    fn extend_by_epoch_equals_rebuild_from_scratch(
        chain in chain_strategy(),
        queries in queries_strategy(),
    ) {
        // Chain order = ascending (epoch, position): exactly how
        // `CodeMapSet::new` sorts and numbers the maps.
        let mut maps: Vec<EpochMap> = chain
            .into_iter()
            .map(|(epoch, entries)| EpochMap::new(epoch, entries))
            .collect();
        maps.sort_by_key(|m| m.epoch);

        let mut grown = FlatIndex::build(&CodeMapSet::default());
        for (ordinal, map) in maps.iter().enumerate() {
            let before = grown.clone();
            let ok = grown.extend(map, ordinal as u32);
            prop_assert!(ok, "in-order append refused at ordinal {}", ordinal);
            // Each prefix matches its own full rebuild, not just the
            // final state — a mid-chain divergence that later appends
            // happen to repair would still break live snapshots.
            let rebuilt = FlatIndex::build(&CodeMapSet::new(maps[..=ordinal].to_vec()));
            prop_assert_eq!(
                &grown, &rebuilt,
                "extend diverged from rebuild after {} maps (was {:?})",
                ordinal + 1, before
            );
        }

        // An out-of-order append (epoch strictly below an existing
        // layer) must refuse and leave the index bit-identical.
        if let Some(top) = maps.iter().map(|m| m.epoch).max() {
            if top > 0 {
                let mut probe = grown.clone();
                let stale = EpochMap::new(
                    top - 1,
                    vec![CodeMapEntry {
                        addr: 0x100,
                        size: 0x40,
                        level: "O1".to_string(),
                        signature: SIGS[0].to_string(),
                    }],
                );
                if !probe.extend(&stale, maps.len() as u32) {
                    prop_assert_eq!(&probe, &grown, "refused extend mutated the index");
                }
            }
        }

        // And the grown index still answers like the walk.
        let set = CodeMapSet::new(maps);
        for (pc, epoch) in queries {
            let walk = set.resolve(pc, epoch).map(|e| e.signature.as_str());
            let fast = grown.resolve(pc, epoch).map(|s| s.as_ref());
            prop_assert_eq!(walk, fast, "grown resolve(pc={:#x}, epoch={})", pc, epoch);
        }
    }
}
