//! Property tests of the crash-consistency layer: the map journal's
//! commit protocol and the recovery replay built on it.
//!
//! Random epoch-map histories are journaled, the journal is cut at an
//! *arbitrary byte* (the crash), and the replay must rebuild exactly
//! the committed prefix — the same `CodeMapSet` an uninterrupted run
//! would hold, truncated at the same commit point. A second property
//! checks that reopening the cut journal truncates the torn tail and
//! resumes the sequence, whatever byte the crash landed on.

use proptest::prelude::*;
use viprof_repro::sim_cpu::Pid;
use viprof_repro::sim_os::journal::{scan_bytes, KIND_CODE_MAP};
use viprof_repro::sim_os::{JournalWriter, Vfs};
use viprof_repro::viprof::codemap::{journal_path, parse_map, render_map, CodeMapEntry};
use viprof_repro::viprof::recover_codemaps;

const PID: Pid = Pid(77);

/// Up to 7 epochs, each a handful of (addr, size) code bodies.
fn arb_epochs() -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    prop::collection::vec(
        prop::collection::vec((0u64..1 << 40, 1u64..0x1000), 0..8),
        1..8,
    )
}

fn entries_of(bodies: &[(u64, u64)]) -> Vec<CodeMapEntry> {
    bodies
        .iter()
        .enumerate()
        .map(|(i, (addr, size))| CodeMapEntry {
            addr: *addr,
            size: *size,
            level: "opt0".to_string(),
            signature: format!("test.M{i}.run"),
        })
        .collect()
}

/// Journal one pristine map per epoch; return the raw journal bytes and
/// the per-epoch entry lists as the parser will see them.
fn build_journal(epochs: &[Vec<(u64, u64)>]) -> (Vec<u8>, Vec<Vec<CodeMapEntry>>) {
    let mut vfs = Vfs::new();
    let path = journal_path(PID);
    let mut w = JournalWriter::create(&mut vfs, path.clone());
    let mut expected = Vec::new();
    for (epoch, bodies) in epochs.iter().enumerate() {
        let rendered = render_map(&entries_of(bodies));
        let mut payload = (epoch as u64).to_le_bytes().to_vec();
        payload.extend_from_slice(rendered.as_bytes());
        w.append(&mut vfs, KIND_CODE_MAP, &payload);
        expected.push(parse_map(&rendered).entries);
    }
    (vfs.read(&path).unwrap().to_vec(), expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn crash_at_any_byte_recovers_exactly_the_committed_prefix(
        epochs in arb_epochs(),
        cut_frac in 0.0f64..=1.0,
    ) {
        let (full, expected) = build_journal(&epochs);
        let cut = ((cut_frac * full.len() as f64) as usize).min(full.len());
        let s = scan_bytes(&full[..cut]);
        let k = s.records.len();

        let mut vfs = Vfs::new();
        vfs.write(journal_path(PID), full[..cut].to_vec());
        let (set, rec) = recover_codemaps(&vfs, PID).expect("journal file exists");
        prop_assert_eq!(rec.records_replayed, k as u64);
        prop_assert_eq!(rec.epochs_recovered, k as u64, "no disk maps: every replay improves");
        prop_assert_eq!(rec.truncated_bytes as usize, cut - s.valid_len);
        prop_assert_eq!(set.maps().len(), k);
        for (i, m) in set.maps().iter().enumerate() {
            prop_assert_eq!(m.epoch, i as u64);
            let mut want = expected[i].clone();
            want.sort_by_key(|e| e.addr);
            prop_assert_eq!(m.entries(), &want[..], "epoch {i} diverged");
        }

        // Prefix-consistency against the uninterrupted run: the cut
        // recovery is the full recovery truncated at the same commit.
        let mut vfs_full = Vfs::new();
        vfs_full.write(journal_path(PID), full.clone());
        let (full_set, full_rec) = recover_codemaps(&vfs_full, PID).unwrap();
        prop_assert_eq!(full_rec.truncated_bytes, 0);
        prop_assert_eq!(full_set.maps().len(), epochs.len());
        for (a, b) in set.maps().iter().zip(full_set.maps()) {
            prop_assert_eq!(a.epoch, b.epoch);
            prop_assert_eq!(a.entries(), b.entries());
        }
    }

    #[test]
    fn reopen_after_crash_truncates_and_resumes_the_sequence(
        epochs in arb_epochs(),
        cut_frac in 0.0f64..=1.0,
    ) {
        let (full, _) = build_journal(&epochs);
        let cut = ((cut_frac * full.len() as f64) as usize).min(full.len());
        let k = scan_bytes(&full[..cut]).records.len();

        let mut vfs = Vfs::new();
        let path = journal_path(PID);
        vfs.write(path.clone(), full[..cut].to_vec());
        let mut w = JournalWriter::open(&mut vfs, path.clone());
        let mut payload = 99u64.to_le_bytes().to_vec();
        payload.extend_from_slice(render_map(&entries_of(&[(0x9000, 0x40)])).as_bytes());
        let seq = w.append(&mut vfs, KIND_CODE_MAP, &payload);
        prop_assert_eq!(seq, k as u64, "sequence resumes after the last commit");

        let after = scan_bytes(vfs.read(&path).unwrap());
        prop_assert_eq!(after.records.len(), k + 1);
        prop_assert_eq!(after.damaged_bytes, 0, "reopen left no torn tail");
        let (set, rec) = recover_codemaps(&vfs, PID).unwrap();
        prop_assert_eq!(rec.records_replayed, (k + 1) as u64);
        prop_assert!(set.maps().iter().any(|m| m.epoch == 99), "resumed epoch replayed");
    }
}
