//! Property tests for the causal span tracer (ISSUE 9):
//!
//! 1. Span-tree well-formedness: any interleaved begin/end schedule —
//!    at any store capacity, with parents picked freely among open
//!    spans (including ones the full store refused to record) —
//!    yields a snapshot whose ids are unique and nonzero, whose
//!    parents always resolve to an earlier recorded span, whose
//!    children inherit the root's trace id, whose `begin <= end`, and
//!    whose drop accounting is exact. Replaying the schedule on a
//!    fresh store reproduces the snapshot byte-for-byte.
//!
//! 2. Chrome-trace export round-trip: `from_chrome_json(to_chrome_json(s))`
//!    recovers the exact snapshot (names with quotes, backslashes,
//!    newlines, control characters and multi-byte UTF-8 included) and
//!    re-serialization is byte-identical — the determinism contract
//!    `viprof-trace --selftest` relies on.

use proptest::prelude::*;
use viprof_repro::telemetry::trace::{SpanStore, TraceCtx, TraceSnapshot, TRACE_LAYERS};

/// Span names chosen to stress the JSON escaper: quotes, backslashes,
/// newlines, a raw control character and multi-byte UTF-8.
const NAMES: &[&str] = &[
    "span.nmi_window",
    "span.daemon_drain",
    "journal \"batch\"",
    "live\\extend",
    "gc\npause",
    "r\u{e9}solve \u{1} bell\u{7}",
];

const FIELD_KEYS: &[&str] = &["samples", "dropped", "weird \"key\"", "\u{3b1}\u{3b2}"];

/// One step of a random tracing schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Open a span: layer pick, name pick, parent pick (`None` = a new
    /// root, `Some(i)` = the `i % open`-th currently open span), and a
    /// clock advance.
    Begin {
        layer: usize,
        name: usize,
        parent: Option<usize>,
        dt: u64,
    },
    /// Close the `pick % open`-th open span with `fields` fields.
    End { pick: usize, fields: usize, dt: u64 },
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    let begin = (0usize..16, 0usize..NAMES.len(), prop::option::of(0usize..8), 0u64..1_000)
        .prop_map(|(layer, name, parent, dt)| Op::Begin { layer, name, parent, dt });
    let end = (0usize..8, 0usize..=FIELD_KEYS.len(), 0u64..1_000)
        .prop_map(|(pick, fields, dt)| Op::End { pick, fields, dt });
    prop::collection::vec(prop_oneof![3 => begin, 2 => end], 1..120)
}

/// Replay a schedule against a fresh store. Returns the snapshot plus
/// the number of `begin` calls issued (for drop accounting).
fn drive(ops: &[Op], capacity: usize) -> (TraceSnapshot, usize) {
    let mut store = SpanStore::new(capacity);
    let mut now = 0u64;
    let mut open: Vec<(TraceCtx, bool)> = Vec::new();
    let mut begins = 0usize;
    for op in ops {
        match op {
            Op::Begin { layer, name, parent, dt } => {
                now += dt;
                let parent_ctx = parent.and_then(|i| {
                    (!open.is_empty()).then(|| open[i % open.len()].0)
                });
                let layer = TRACE_LAYERS[layer % TRACE_LAYERS.len()];
                let (ctx, recorded) =
                    store.begin(layer, NAMES[name % NAMES.len()], parent_ctx, now);
                begins += 1;
                open.push((ctx, recorded));
            }
            Op::End { pick, fields, dt } => {
                if open.is_empty() {
                    continue;
                }
                now += dt;
                let (ctx, recorded) = open.remove(pick % open.len());
                let kv: Vec<(&str, u64)> = FIELD_KEYS
                    .iter()
                    .take(*fields)
                    .enumerate()
                    .map(|(i, k)| (*k, now.wrapping_mul(i as u64 + 1)))
                    .collect();
                let dur = store.end(ctx, now, &kv);
                // A recorded span always closes; an evicted one never does.
                assert_eq!(dur.is_some(), recorded);
            }
        }
    }
    (store.snapshot(), begins)
}

proptest! {
    #[test]
    fn span_trees_are_well_formed(ops in op_strategy(), cap in 1usize..48) {
        let (snap, begins) = drive(&ops, cap);

        // Capacity and drop accounting are exact.
        prop_assert!(snap.spans.len() <= cap);
        prop_assert_eq!(snap.dropped as usize, begins - snap.spans.len());

        let mut seen: std::collections::HashSet<u64> = Default::default();
        for (i, s) in snap.spans.iter().enumerate() {
            prop_assert_ne!(s.id, 0, "span ids are never 0 (0 means 'no parent')");
            prop_assert!(seen.insert(s.id), "span ids are unique");
            prop_assert!(s.begin <= s.end, "spans never end before they begin");
            prop_assert_ne!(s.trace, 0, "trace ids are never 0");
            if i > 0 {
                prop_assert!(
                    snap.spans[i - 1].begin <= s.begin,
                    "snapshot is in begin order under a monotonic clock"
                );
            }
            if s.parent != 0 {
                // Parents always resolve: an evicted parent implies a
                // full store, and a full store never records children.
                let parent = snap.span(s.parent);
                prop_assert!(parent.is_some(), "recorded spans never orphaned");
                let parent = parent.unwrap();
                prop_assert_eq!(
                    parent.trace, s.trace,
                    "children inherit the trace id of their root"
                );
            }
        }

        // Every span is reachable from exactly one root by walking
        // children(); i.e. roots() + children() cover the snapshot.
        let mut reached = 0usize;
        let mut stack: Vec<u64> = snap.roots().iter().map(|r| r.id).collect();
        while let Some(id) = stack.pop() {
            reached += 1;
            stack.extend(snap.children(id).iter().map(|c| c.id));
        }
        prop_assert_eq!(reached, snap.spans.len());

        // Duration histogram covers every span exactly once.
        let total: u64 = snap.duration_buckets(None).iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total, snap.spans.len() as u64);

        // Replaying the schedule is deterministic down to the bytes.
        let (again, _) = drive(&ops, cap);
        prop_assert_eq!(&again, &snap);
        prop_assert_eq!(again.to_chrome_json(), snap.to_chrome_json());
    }

    #[test]
    fn chrome_json_round_trips(ops in op_strategy(), cap in 1usize..48) {
        let (snap, _) = drive(&ops, cap);
        let text = snap.to_chrome_json();
        let parsed = TraceSnapshot::from_chrome_json(&text);
        prop_assert!(parsed.is_ok(), "export parses: {:?}", parsed.err());
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed, &snap, "round-trip recovers the snapshot");
        prop_assert_eq!(parsed.to_chrome_json(), text, "canonical form is a fixed point");
    }
}
