//! Fault-injection matrix: the whole pipeline driven end to end under
//! a seeded fault schedule at every layer, checking the degradation
//! contract the per-crate unit tests can't see:
//!
//! * a faulted run **never panics** — it completes and still reports;
//! * the [`ResolutionQuality`] buckets account for **100 %** of the
//!   samples the driver emitted, and drops are never silent;
//! * the same seed replays the same faults **bit for bit** — identical
//!   sample databases, fault counters and quality reports.
//!
//! The supervised variants re-run the same scenarios with the crash-
//! consistency layer on (map + sample journaling, daemon watchdog) and
//! check the *recovery* contract: journal replay never resolves fewer
//! samples than the degraded baseline, and strictly more where the
//! journal holds what the disk lost.

use viprof_repro::oprofile::session::TIMELINE_PATH;
use viprof_repro::oprofile::{GovernorConfig, OpConfig, ReportOptions, SampleOrigin};
use viprof_repro::telemetry::{names, HealthReport, Timeline};
use viprof_repro::viprof::codemap::JIT_MAP_DIR;
use viprof_repro::viprof::resolve::ResolveOptions;
use viprof_repro::viprof::{
    recover_sample_db, viprof_report, FaultPlan, RecoveryReport, ReportSpec, ResolutionEngine,
    ResolutionQuality, ShardPoison, Viprof, ViprofResolver,
};
use viprof_repro::workloads::{
    calibrate, find_benchmark, programs, run_benchmark, BuiltWorkload, ProfilerKind, RunOutcome,
    WorkPlan,
};

const PERIOD: u64 = 60_000;
/// Shard count used for the multi-threaded leg of every scenario.
const SHARDS: usize = 4;

fn small_workload() -> (BuiltWorkload, WorkPlan) {
    let mut params = find_benchmark("fop").expect("benchmark exists");
    params.support_methods = params.support_methods.min(120);
    params.heap_mb = 2;
    let built = programs::build(&params);
    let plan = calibrate(&built, 0.02);
    (built, plan)
}

/// Post-process a finished run three ways — reference epoch walk,
/// flattened engine single-threaded, flattened engine sharded — and
/// enforce two contracts on every fault scenario in the matrix:
///
/// * accounting: quality buckets sum to exactly the emitted sample
///   count, and the drop counter matches the database's;
/// * bit-identity: all three paths produce the same report rows and
///   the same `ResolutionQuality`.
fn quality_of(out: &RunOutcome) -> ResolutionQuality {
    let db = out.db.as_ref().expect("profiled run");
    let kernel = &out.machine.kernel;
    let options = ReportOptions::default();
    // Reference: the legacy per-bucket epoch walk.
    let (resolver, _) = ViprofResolver::load_with(kernel, ResolveOptions::default())
        .expect("degraded sessions still report");
    let walk_report = viprof_report(db, kernel, &resolver, &options);
    let walk_q = resolver.quality(db);
    // Production: flattened index, single-threaded and sharded.
    let single = Viprof::make_report(db, kernel, &ReportSpec::default())
        .expect("degraded sessions still report");
    let sharded = Viprof::make_report(db, kernel, &ReportSpec::default().threads(SHARDS))
        .expect("degraded sessions still report");
    assert_eq!(single.lines, walk_report, "flattened vs walk report");
    assert_eq!(single.quality, walk_q, "flattened vs walk quality");
    assert_eq!(sharded.lines, walk_report, "sharded vs walk report");
    assert_eq!(sharded.quality, walk_q, "sharded vs walk quality");
    // Lineage: every loss bucket decomposes to causal spans whose
    // totals reconcile *exactly* with the quality counts (and thus,
    // transitively, with the flight-recorder overflow accounting,
    // which the per-scenario tests pin to `db.dropped`), and the whole
    // trace is byte-identical at every shard count.
    for (label, report) in [("single", &single), ("sharded", &sharded)] {
        for (bucket, want) in [
            ("dropped", report.quality.dropped),
            ("evicted", report.quality.evicted),
            ("quarantined", report.quality.quarantined),
            ("blocked", report.quality.cross_incarnation_blocked),
        ] {
            assert_eq!(
                report.lineage.total(bucket),
                want,
                "{label}: lineage {bucket} diverged from quality"
            );
        }
    }
    assert_eq!(single.lineage, sharded.lineage, "lineage depends on shard count");
    assert_eq!(
        single.trace.to_chrome_json(),
        sharded.trace.to_chrome_json(),
        "trace export depends on shard count"
    );
    let q = single.quality;
    assert_eq!(q.accounted(), db.total_samples(), "unaccounted samples: {q:?}");
    assert_eq!(q.dropped, db.dropped, "silent drops: {q:?}");
    // Rendering must not panic either, however damaged the session.
    let _ = single.lines.render_text();
    let _ = single.lineage.render_text();
    q
}

/// Post-process with the journal-replay recovery pass, enforcing the
/// same accounting and three-way bit-identity contracts on the
/// recovered state.
fn recovery_of(out: &RunOutcome) -> (ResolutionQuality, RecoveryReport) {
    let db = out.db.as_ref().expect("profiled run");
    let kernel = &out.machine.kernel;
    let options = ReportOptions::default();
    let (resolver, _) = ViprofResolver::load_with(kernel, ResolveOptions::recovered())
        .expect("recovery still reports");
    let walk_report = viprof_report(db, kernel, &resolver, &options);
    let walk_q = resolver.quality(db);
    let single =
        Viprof::make_report(db, kernel, &ReportSpec::recovered()).expect("recovery still reports");
    let sharded = Viprof::make_report(db, kernel, &ReportSpec::recovered().threads(SHARDS))
        .expect("recovery still reports");
    assert_eq!(single.lines, walk_report, "recovered flattened vs walk report");
    assert_eq!(single.quality, walk_q, "recovered flattened vs walk quality");
    assert_eq!(sharded.lines, walk_report, "recovered sharded vs walk report");
    assert_eq!(sharded.quality, walk_q, "recovered sharded vs walk quality");
    // The engine built directly from the recovered resolver agrees too.
    let engine = ResolutionEngine::build(&resolver);
    assert_eq!(engine.quality(db, SHARDS), walk_q, "direct engine quality");
    let q = single.quality;
    let rec = single.recovery.expect("recover spec returns a recovery report");
    assert_eq!(
        rec,
        sharded.recovery.expect("sharded recovery report"),
        "recovery report must not depend on shard count"
    );
    assert_eq!(q.accounted(), db.total_samples(), "unaccounted after recovery: {q:?}");
    assert_eq!(q.dropped, db.dropped, "silent drops after recovery: {q:?}");
    // Recovered passes carry the same lineage contract.
    for (bucket, want) in [
        ("dropped", q.dropped),
        ("evicted", q.evicted),
        ("quarantined", q.quarantined),
        ("blocked", q.cross_incarnation_blocked),
    ] {
        assert_eq!(
            single.lineage.total(bucket),
            want,
            "recovered lineage {bucket} diverged from quality"
        );
    }
    assert_eq!(
        single.lineage, sharded.lineage,
        "recovered lineage depends on shard count"
    );
    let _ = single.lines.render_text();
    (q, rec)
}

fn jit_samples(out: &RunOutcome) -> u64 {
    out.db
        .as_ref()
        .unwrap()
        .iter()
        .filter(|(b, _)| matches!(b.origin, SampleOrigin::JitApp { .. }))
        .map(|(_, c)| c)
        .sum()
}

#[test]
fn empty_fault_plan_changes_nothing() {
    let (built, plan) = small_workload();
    let base = run_benchmark(&built, &plan, ProfilerKind::viprof_at(PERIOD), 42, false);
    let faulty = run_benchmark(
        &built,
        &plan,
        ProfilerKind::viprof_faulty_at(PERIOD, FaultPlan::new(42)),
        42,
        false,
    );
    assert_eq!(faulty.cycles, base.cycles, "no-op plan must cost nothing");
    assert_eq!(faulty.db, base.db);
    let q = quality_of(&faulty);
    assert_eq!(q.quarantined_lines, 0);
    assert_eq!(q.failed_pids, 0);
}

#[test]
fn total_overflow_drops_every_sample_visibly() {
    let (built, plan) = small_workload();
    let plan_all_drop = FaultPlan::new(7).with_overflow_bursts(1.0, 4);
    let out = run_benchmark(
        &built,
        &plan,
        ProfilerKind::viprof_faulty_at(PERIOD, plan_all_drop),
        1,
        false,
    );
    let db = out.db.as_ref().unwrap();
    let fr = out.faults.unwrap();
    assert_eq!(db.total_samples(), 0, "burst rate 1.0 drops every sample");
    assert!(fr.driver.forced_drops > 0);
    assert_eq!(db.dropped, fr.driver.forced_drops, "every drop is counted");
    let q = quality_of(&out);
    assert_eq!(q.accounted(), 0);
    assert_eq!(q.dropped, db.dropped);
}

#[test]
fn daemon_crash_overflows_the_buffer_visibly() {
    let (built, plan) = small_workload();
    // A tiny ring buffer so the crash's missed drain windows must
    // overflow it — the organic failure mode, not an injected drop —
    // and a fast daemon timer so the crash schedule actually plays out
    // within a small workload.
    let config = OpConfig {
        buffer_capacity: 8,
        daemon_period_cycles: 300_000,
        ..OpConfig::time_at(PERIOD)
    };
    let chaos = FaultPlan::new(5).with_daemon_crash(2, 8);
    let out = run_benchmark(
        &built,
        &plan,
        ProfilerKind::ViprofFaulty(config, chaos),
        1,
        false,
    );
    let fr = out.faults.unwrap();
    assert_eq!(fr.daemon.crashes, 1);
    assert_eq!(fr.daemon.missed_drains, 9, "crash wakeup + 8 down windows");
    assert_eq!(fr.driver.forced_drops, 0, "no injected drops in this plan");
    let db = out.db.as_ref().unwrap();
    assert!(db.dropped > 0, "8-slot buffer must overflow while down");
    assert!(db.total_samples() > 0, "the restarted daemon drains again");
    // The flight recorder explains the outage without the fault report:
    // overflow events carry per-drain drop counts that reconcile with
    // the database exactly.
    let snap = out.telemetry.as_ref().expect("profiled run records telemetry");
    let overflows = snap.events_of(names::EVENT_BUFFER_OVERFLOW);
    assert!(!overflows.is_empty(), "the overflow left no trace");
    let dropped_in_events: u64 = overflows
        .iter()
        .filter_map(|e| e.fields.iter().find(|(k, _)| k == "dropped"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(dropped_in_events, db.dropped, "every drop traces to an overflow event");
    assert_eq!(snap.counter(names::BUFFER_DROPPED), db.dropped);
    quality_of(&out);
}

#[test]
fn lost_maps_leave_jit_samples_unresolved_not_lost() {
    let (built, plan) = small_workload();
    let chaos = FaultPlan::new(3).with_lost_maps(1.0);
    let out = run_benchmark(
        &built,
        &plan,
        ProfilerKind::viprof_faulty_at(PERIOD, chaos),
        1,
        false,
    );
    let fr = out.faults.unwrap();
    assert!(fr.maps.lost_maps > 0, "every map write was swallowed");
    let jit = jit_samples(&out);
    assert!(jit > 0, "the driver still classifies JIT samples");
    let q = quality_of(&out);
    assert!(
        q.unresolved >= jit,
        "with no maps on disk every JIT sample is unresolved: {q:?}"
    );
    assert_eq!(q.resolved + q.stale_epoch + q.unresolved, q.accounted());
}

#[test]
fn torn_maps_degrade_resolution_not_timing() {
    let (built, plan) = small_workload();
    let base = run_benchmark(&built, &plan, ProfilerKind::viprof_at(PERIOD), 2, false);
    let chaos = FaultPlan::new(9).with_torn_maps(1.0);
    let torn = run_benchmark(
        &built,
        &plan,
        ProfilerKind::viprof_faulty_at(PERIOD, chaos),
        2,
        false,
    );
    // Map damage is post-mortem damage: sampling is untouched.
    assert_eq!(torn.cycles, base.cycles);
    assert_eq!(torn.db, base.db);
    assert!(torn.faults.unwrap().maps.torn_maps > 0);
    let bq = quality_of(&base);
    let tq = quality_of(&torn);
    // Each torn file keeps a parseable prefix, so resolution degrades
    // at worst — it never improves.
    assert!(tq.resolved <= bq.resolved, "torn {tq:?} vs base {bq:?}");
}

#[test]
fn garbled_maps_quarantine_lines_and_still_report() {
    let (built, plan) = small_workload();
    let chaos = FaultPlan::new(13).with_garbled_lines(1.0);
    let out = run_benchmark(
        &built,
        &plan,
        ProfilerKind::viprof_faulty_at(PERIOD, chaos),
        1,
        false,
    );
    let fr = out.faults.unwrap();
    assert!(fr.maps.garbled_lines > 0);
    let jit = jit_samples(&out);
    assert!(jit > 0);
    let q = quality_of(&out);
    assert!(q.quarantined_lines > 0, "damage is counted, not hidden");
    assert!(
        q.unresolved >= jit,
        "every map line was garbled, so no JIT sample resolves: {q:?}"
    );
}

#[test]
fn epoch_skew_falls_back_to_forward_salvage() {
    let (built, plan) = small_workload();
    let chaos = FaultPlan::new(21).with_epoch_skew(3);
    let out = run_benchmark(
        &built,
        &plan,
        ProfilerKind::viprof_faulty_at(PERIOD, chaos),
        1,
        false,
    );
    let fr = out.faults.unwrap();
    assert!(fr.driver.skewed > 0, "every JIT sample's epoch was rewound");
    let q = quality_of(&out);
    // Code compiled in later epochs is absent from the (rewound) epoch's
    // backward chain; the forward-salvage pass recovers it as stale.
    assert!(q.stale_epoch > 0, "salvage never fired: {q:?}");
    assert!(
        q.resolved + q.stale_epoch > 0,
        "skew must not zero out resolution: {q:?}"
    );
}

#[test]
fn chaos_plan_replays_bit_for_bit() {
    let (built, plan) = small_workload();
    let chaos = || {
        FaultPlan::new(42)
            .with_overflow_bursts(0.1, 3)
            .with_sample_corruption(0.05)
            .with_epoch_skew(1)
            .with_daemon_stalls(0.2)
            .with_daemon_crash(3, 2)
            .with_lost_maps(0.2)
            .with_torn_maps(0.2)
            .with_garbled_lines(0.1)
    };
    let run = |fault_seed: u64| {
        let mut p = chaos();
        p.seed = fault_seed;
        // Fast daemon timer so the stall/crash schedule gets exercised.
        let config = OpConfig {
            daemon_period_cycles: 300_000,
            ..OpConfig::time_at(PERIOD)
        };
        run_benchmark(&built, &plan, ProfilerKind::ViprofFaulty(config, p), 11, false)
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.db, b.db);
    assert_eq!(a.faults, b.faults);
    assert_eq!(quality_of(&a), quality_of(&b));
    // A different fault seed draws a different schedule.
    let c = run(43);
    assert_ne!(a.db, c.db, "fault schedule must depend on the seed");
}

// ---- supervised variants: the crash-consistency layer under the same
// ---- fault schedules ------------------------------------------------

#[test]
fn supervised_daemon_crash_salvages_dropped_samples() {
    // The daemon-crash scenario above, bare vs supervised. The watchdog
    // restarts the daemon mid-outage and catch-up-drains the backlog,
    // so the supervised run keeps strictly more samples and drops
    // strictly fewer — the first strict improvement over PR 1.
    let (built, plan) = small_workload();
    let config = || OpConfig {
        buffer_capacity: 8,
        daemon_period_cycles: 300_000,
        ..OpConfig::time_at(PERIOD)
    };
    let chaos = || FaultPlan::new(5).with_daemon_crash(2, 8);
    let bare = run_benchmark(
        &built,
        &plan,
        ProfilerKind::ViprofFaulty(config(), chaos()),
        1,
        false,
    );
    let sup = run_benchmark(
        &built,
        &plan,
        ProfilerKind::ViprofSupervised(config(), chaos()),
        1,
        false,
    );

    let stats = sup.supervisor.expect("supervised run carries stats");
    assert!(stats.restarts >= 1, "the watchdog must fire: {stats:?}");
    assert!(stats.missed_observed >= 2, "{stats:?}");
    assert!(stats.redrained_samples > 0, "catch-up drain recovered the backlog");
    // The revive is reconstructible from the flight recorder alone:
    // one event per missed window and per restart, with the restart
    // events carrying the exact catch-up salvage.
    let snap = sup.telemetry.as_ref().expect("supervised run records telemetry");
    let restarts = snap.events_of(names::EVENT_SUPERVISOR_RESTART);
    assert_eq!(restarts.len() as u64, stats.restarts, "each restart is an event");
    assert_eq!(
        snap.events_of(names::EVENT_SUPERVISOR_MISSED).len() as u64,
        stats.missed_observed,
        "each missed window is an event"
    );
    let redrained_in_events: u64 = restarts
        .iter()
        .filter_map(|e| e.fields.iter().find(|(k, _)| k == "redrained"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(redrained_in_events, stats.redrained_samples);

    let bare_db = bare.db.as_ref().unwrap();
    let sup_db = sup.db.as_ref().unwrap();
    assert!(
        sup_db.dropped < bare_db.dropped,
        "restart must cut the outage short: supervised dropped {} vs bare {}",
        sup_db.dropped,
        bare_db.dropped
    );
    assert!(
        sup_db.total_samples() > bare_db.total_samples(),
        "supervised kept {} vs bare {}",
        sup_db.total_samples(),
        bare_db.total_samples()
    );

    let bare_q = quality_of(&bare);
    let (sup_q, _) = recovery_of(&sup);
    assert!(
        sup_q.resolved >= bare_q.resolved,
        "recovery resolves no fewer: {sup_q:?} vs {bare_q:?}"
    );
}

#[test]
fn supervised_torn_maps_replay_to_the_clean_run() {
    // The torn-maps scenario, journaled. Map damage stays post-mortem
    // (sampling identical to the clean run), and replaying the journal
    // restores the clean run's resolution exactly. Then the disk is
    // wiped outright: the degraded baseline collapses while the replay
    // still restores everything — the second strict improvement.
    let (built, plan) = small_workload();
    let base = run_benchmark(&built, &plan, ProfilerKind::viprof_at(PERIOD), 2, false);
    let chaos = FaultPlan::new(9).with_torn_maps(1.0);
    let mut torn = run_benchmark(
        &built,
        &plan,
        ProfilerKind::viprof_supervised_at(PERIOD, chaos),
        2,
        false,
    );
    assert_eq!(torn.cycles, base.cycles, "journaling is off the sampling path");
    assert_eq!(torn.db, base.db);
    assert!(torn.faults.as_ref().unwrap().maps.torn_maps > 0);

    let bq = quality_of(&base);
    let (rq, rec) = recovery_of(&torn);
    assert!(rec.journals_scanned >= 1, "{rec:?}");
    assert!(rec.records_replayed > 0, "{rec:?}");
    assert_eq!(rq, bq, "journal replay restores clean-run resolution");

    // Escalate: every map file emptied post-run (disk wiped after the
    // crash). Resolution without the journal collapses; with it,
    // nothing changes.
    let jit = jit_samples(&torn);
    assert!(jit > 0, "workload must produce JIT samples");
    let map_files: Vec<String> = torn
        .machine
        .kernel
        .vfs
        .list(&format!("{JIT_MAP_DIR}/"))
        .into_iter()
        .filter(|p| p.contains("/map."))
        .map(str::to_string)
        .collect();
    assert!(!map_files.is_empty());
    for p in map_files {
        torn.machine.kernel.vfs.write(p, Vec::new());
    }
    let dq = quality_of(&torn);
    assert!(
        dq.unresolved >= jit,
        "wiped maps leave every JIT sample unresolved: {dq:?}"
    );
    let (rq2, rec2) = recovery_of(&torn);
    assert_eq!(rq2, bq, "replay does not depend on the map files at all");
    assert!(
        rq2.resolved > dq.resolved,
        "strict improvement: recovered {rq2:?} vs degraded {dq:?}"
    );
    assert!(rec2.samples_salvaged > 0);
    assert_eq!(rec2.samples_salvaged, rq2.resolved - dq.resolved);
}

#[test]
fn supervised_lost_maps_have_no_journal_to_replay() {
    // A lost write never reaches the journal either (the fault models
    // the writing process dying before any I/O): recovery must
    // degenerate to the degraded baseline, not invent data.
    let (built, plan) = small_workload();
    let chaos = FaultPlan::new(3).with_lost_maps(1.0);
    let out = run_benchmark(
        &built,
        &plan,
        ProfilerKind::viprof_supervised_at(PERIOD, chaos),
        1,
        false,
    );
    assert!(out.faults.as_ref().unwrap().maps.lost_maps > 0);
    let dq = quality_of(&out);
    let (rq, rec) = recovery_of(&out);
    assert_eq!(rq, dq, "nothing journaled, nothing recovered");
    assert_eq!(rec.journals_scanned, 0, "no surviving write ever created a journal");
    assert_eq!(rec.records_replayed, 0);
    assert_eq!(rec.samples_salvaged, 0);
}

#[test]
fn supervised_garbled_maps_truncate_the_journal_and_fall_back() {
    // Garbling models post-commit media rot: the writer verified the
    // pristine bytes, the rot landed afterwards. The scan's CRC catches
    // it, the journal truncates at the first rotted record, and
    // recovery falls back to the (equally garbled) disk state — never
    // worse than the degraded baseline, damage counted.
    let (built, plan) = small_workload();
    let chaos = FaultPlan::new(13).with_garbled_lines(1.0);
    let out = run_benchmark(
        &built,
        &plan,
        ProfilerKind::viprof_supervised_at(PERIOD, chaos),
        1,
        false,
    );
    assert!(out.faults.as_ref().unwrap().maps.garbled_lines > 0);
    let dq = quality_of(&out);
    let (rq, rec) = recovery_of(&out);
    assert_eq!(rq, dq, "rotted journal cannot improve on the disk state");
    assert_eq!(rec.epochs_recovered, 0);
    assert_eq!(rec.samples_salvaged, 0);
    assert!(rec.truncated_bytes > 0, "the rot is detected and cut: {rec:?}");
    assert!(rec.truncated_journals >= 1);
}

#[test]
fn supervised_chaos_recovery_is_deterministic_and_monotone() {
    // The full chaos plan, supervised: two runs replay bit for bit —
    // including the supervisor's restart schedule and the entire
    // recovery report — and recovery never resolves fewer samples than
    // the degraded baseline.
    let (built, plan) = small_workload();
    let chaos = || {
        FaultPlan::new(42)
            .with_overflow_bursts(0.1, 3)
            .with_sample_corruption(0.05)
            .with_epoch_skew(1)
            .with_daemon_stalls(0.2)
            .with_daemon_crash(3, 2)
            .with_lost_maps(0.2)
            .with_torn_maps(0.2)
            .with_garbled_lines(0.1)
    };
    let run = || {
        let config = OpConfig {
            daemon_period_cycles: 300_000,
            ..OpConfig::time_at(PERIOD)
        };
        run_benchmark(
            &built,
            &plan,
            ProfilerKind::ViprofSupervised(config, chaos()),
            11,
            false,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.db, b.db);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.supervisor, b.supervisor, "restart schedule replays per seed");
    let (qa, ra) = recovery_of(&a);
    let (qb, rb) = recovery_of(&b);
    assert_eq!(qa, qb, "recovered quality is deterministic");
    assert_eq!(ra, rb, "recovery report is deterministic");

    let dq = quality_of(&a);
    assert!(qa.resolved >= dq.resolved, "recovery is monotone: {qa:?} vs {dq:?}");
    assert_eq!(ra.samples_salvaged, qa.resolved - dq.resolved);

    // The daemon's batch journal replays to exactly the persisted
    // database — drops included — even across crashes and restarts.
    let replayed = recover_sample_db(&a.machine.kernel.vfs).expect("journaling on");
    assert_eq!(&replayed.db, a.db.as_ref().unwrap());
}

// ---- overload governor: backpressure closes the loop ----------------

#[test]
fn governed_burst_sheds_strictly_fewer_samples() {
    // A ring small enough that fixed-rate sampling must overflow it
    // (20 samples arrive per drain window, 8 fit). Same seed, same
    // workload: closing the loop strictly reduces the drop count, and
    // the controller's whole trajectory replays bit for bit.
    let (built, plan) = small_workload();
    let config = |governed: bool| {
        let base = OpConfig {
            buffer_capacity: 8,
            daemon_period_cycles: 300_000,
            ..OpConfig::time_at(15_000)
        };
        if governed {
            base.with_governor(GovernorConfig {
                high_watermark_pct: 50,
                low_watermark_pct: 20,
                dwell_windows: 1,
                backoff_factor: 4,
                recovery_step: 0,
                max_scale: 64,
                deadline_cycles: 0,
                deadline_miss_threshold: 3,
            })
        } else {
            base
        }
    };
    let fixed = run_benchmark(&built, &plan, ProfilerKind::Viprof(config(false)), 3, false);
    let governed = run_benchmark(&built, &plan, ProfilerKind::Viprof(config(true)), 3, false);

    let fixed_db = fixed.db.as_ref().unwrap();
    let gov_db = governed.db.as_ref().unwrap();
    assert!(fixed_db.dropped > 0, "the 8-slot ring must overflow at a fixed rate");
    assert!(
        gov_db.dropped < fixed_db.dropped,
        "the governor must shed load at the source: governed dropped {} vs fixed {}",
        gov_db.dropped,
        fixed_db.dropped
    );

    let snap = governed.telemetry.as_ref().expect("profiled run records telemetry");
    assert!(snap.counter(names::GOVERNOR_BACKOFFS) >= 1, "pressure must trigger a backoff");
    assert!(snap.gauge(names::GOVERNOR_PERIOD) > 15_000, "the period backed off from base");
    assert!(!snap.events_of(names::EVENT_GOVERNOR_RATE_CHANGE).is_empty());
    let fsnap = fixed.telemetry.as_ref().unwrap();
    assert_eq!(fsnap.counter(names::GOVERNOR_BACKOFFS), 0, "no governor, no governor metrics");

    // The governed run still honours the 100%-accounting contract.
    quality_of(&governed);

    // Same seed ⇒ identical cycles, database and telemetry JSON — the
    // closed loop is as deterministic as the open one.
    let replay = run_benchmark(&built, &plan, ProfilerKind::Viprof(config(true)), 3, false);
    assert_eq!(replay.cycles, governed.cycles);
    assert_eq!(replay.db, governed.db);
    assert_eq!(
        replay.telemetry.as_ref().unwrap().to_json(),
        snap.to_json(),
        "governor trajectory replays bit for bit"
    );

    // Streaming under backpressure: the live engine rides the governed
    // run's drain sink, sees the rate-scaled windows, and its sealed
    // snapshot is still the batch report.
    let live = run_benchmark(
        &built,
        &plan,
        ProfilerKind::ViprofLive(config(true), None),
        3,
        false,
    );
    let lsnap = live.telemetry.as_ref().unwrap();
    assert!(
        lsnap.counter(names::GOVERNOR_BACKOFFS) >= 1,
        "the governor must still engage with the sink attached"
    );
    assert!(lsnap.counter(names::LIVE_BATCHES) >= 1, "the sink saw drained windows");
    let live_snap = live.live.as_ref().expect("live run seals a snapshot");
    for threads in [1usize, SHARDS] {
        let offline = Viprof::make_report(
            live.db.as_ref().unwrap(),
            &live.machine.kernel,
            &ReportSpec::default().threads(threads),
        )
        .unwrap();
        assert_eq!(live_snap.lines, offline.lines, "live vs batch rows ({threads} threads)");
        assert_eq!(live_snap.quality, offline.quality, "live vs batch quality ({threads} threads)");
        assert_eq!(live_snap.incarnations, offline.incarnations);
        assert_eq!(
            live_snap.lineage, offline.lineage,
            "live vs batch lineage ({threads} threads)"
        );
        assert_eq!(
            live_snap.trace.to_chrome_json(),
            offline.trace.to_chrome_json(),
            "live vs batch trace export ({threads} threads)"
        );
    }
}

#[test]
fn governed_burst_timeline_shows_the_ramp_and_health_flags_it() {
    // The temporal view of the same overload story (ISSUE 10): give
    // the governor a recovery step and a live drain deadline, and the
    // exported timeline must show the whole control trajectory — the
    // period gauge ramping up under pressure and stepping back down
    // once the ring calms — while the health rules flag exactly the
    // injected conditions and nothing else.
    const BASE_PERIOD: u64 = 15_000;
    let (built, plan) = small_workload();
    let config = OpConfig {
        buffer_capacity: 8,
        daemon_period_cycles: 300_000,
        ..OpConfig::time_at(BASE_PERIOD)
    }
    .with_governor(GovernorConfig {
        high_watermark_pct: 50,
        low_watermark_pct: 20,
        dwell_windows: 1,
        backoff_factor: 4,
        recovery_step: 1,
        max_scale: 64,
        // Every drain is over this budget, so the miss streak crosses
        // the threshold and the governor escalates — deliberately.
        deadline_cycles: 1,
        deadline_miss_threshold: 2,
    });
    let out = run_benchmark(&built, &plan, ProfilerKind::Viprof(config), 3, false);
    let snap = out.telemetry.as_ref().unwrap();
    assert!(snap.counter(names::GOVERNOR_BACKOFFS) >= 1, "scenario injects backoff");
    assert!(snap.counter(names::GOVERNOR_ESCALATIONS) >= 1, "scenario injects escalation");
    assert!(snap.counter(names::BUFFER_DROPPED) >= 1, "scenario injects overflow");

    let timeline = Timeline::from_json(
        std::str::from_utf8(out.machine.kernel.vfs.read(TIMELINE_PATH).unwrap()).unwrap(),
    )
    .unwrap();

    // The backoff ramp: the per-window period gauge starts at the base
    // rate, rises above it under pressure, and recovers (some later
    // window runs at a lower period than the peak).
    let series = timeline.gauge_series(names::GOVERNOR_PERIOD);
    assert!(series.len() >= 3, "enough windows to see a trajectory");
    let (peak_at, peak) = series
        .iter()
        .enumerate()
        .max_by_key(|(_, (_, v))| *v)
        .map(|(i, (_, v))| (i, *v))
        .unwrap();
    assert!(peak > BASE_PERIOD, "the period ramped up under pressure");
    assert!(
        series[peak_at + 1..].iter().any(|(_, v)| *v < peak),
        "the period stepped back down after the peak: {series:?}"
    );

    // Health flags exactly the injected conditions. The deadline
    // misses ride along with the escalation they cause; nothing else
    // may fire.
    let report = HealthReport::evaluate(&timeline);
    let fired: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    for expected in [
        names::HEALTH_BUFFER_OVERFLOW,
        names::HEALTH_GOVERNOR_BACKOFF,
        names::HEALTH_GOVERNOR_ESCALATION,
        names::HEALTH_DEADLINE_MISS,
    ] {
        assert!(fired.contains(&expected), "{expected} must fire, got {fired:?}");
    }
    for finding in &report.findings {
        assert!(
            [
                names::HEALTH_BUFFER_OVERFLOW,
                names::HEALTH_GOVERNOR_BACKOFF,
                names::HEALTH_GOVERNOR_ESCALATION,
                names::HEALTH_DEADLINE_MISS,
            ]
            .contains(&finding.rule.as_str()),
            "uninjected condition flagged: {}",
            finding.render_line()
        );
    }

    // And the clean control run — same workload, room to breathe, no
    // governor — raises no findings at all.
    let clean_config = OpConfig {
        buffer_capacity: 4096,
        ..OpConfig::time_at(50_000)
    };
    let clean = run_benchmark(&built, &plan, ProfilerKind::Viprof(clean_config), 3, false);
    let clean_timeline = Timeline::from_json(
        std::str::from_utf8(clean.machine.kernel.vfs.read(TIMELINE_PATH).unwrap()).unwrap(),
    )
    .unwrap();
    let clean_report = HealthReport::evaluate(&clean_timeline);
    assert!(
        clean_report.is_healthy(),
        "clean run must raise nothing, got:\n{}",
        clean_report.render_text()
    );
}

// ---- process churn: restarts, pid reuse, generation isolation -------

#[test]
fn killed_vm_in_flight_samples_drop_not_unresolved() {
    // Regression (the latent drain-after-exit bug): a VM dies with
    // samples still in the ring. The stop-time drain must reap the dead
    // registration first and account those samples as *dropped* — they
    // must never surface as unresolved rows, and never resolve against
    // a successor's maps.
    use viprof_repro::sim_jvm::{Vm, VmConfig};
    use viprof_repro::sim_os::{Machine, MachineConfig};

    let mut params = find_benchmark("fop").expect("benchmark exists");
    params.support_methods = 40;
    params.heap_mb = 2;
    let built = programs::build(&params);

    let mut machine = Machine::new(MachineConfig::default());
    // Daemon period far beyond the run: nothing drains until stop().
    let config = OpConfig {
        daemon_period_cycles: u64::MAX / 4,
        ..OpConfig::time_at(PERIOD)
    };
    let viprof = Viprof::builder().config(config).start(&mut machine);
    let mut vm = Vm::boot(
        &mut machine,
        built.program.clone(),
        built.natives.clone(),
        VmConfig {
            heap_bytes: 2 * 1024 * 1024,
            ..VmConfig::default()
        },
        Box::new(viprof.make_agent()),
    );
    vm.call(&mut machine, built.startup, &[]);
    vm.run_batched(&mut machine, built.workers[0], &[], 40);
    // Crash: no final map flush, no unregistration, pid freed.
    vm.kill(&mut machine);
    let db = viprof.stop(&mut machine);

    assert!(db.dropped > 0, "in-flight samples of the dead VM must drop");
    let jit_left: u64 = db
        .iter()
        .filter(|(b, _)| matches!(b.origin, SampleOrigin::JitApp { .. }))
        .map(|(_, c)| c)
        .sum();
    assert_eq!(
        jit_left, 0,
        "every JIT sample was in flight at death — none may reach the db"
    );
    let snap = viprof.telemetry().snapshot();
    assert!(snap.counter(names::REGISTRY_REAPS) >= 1, "the dead VM was reaped");
    assert_eq!(
        snap.counter(names::DAEMON_DEAD_GEN_DROPPED),
        db.dropped,
        "no ring overflow here: every drop is a dead-generation drop"
    );
    assert!(!snap.events_of(names::EVENT_REGISTRY_REAP).is_empty());
    assert!(!snap.events_of(names::EVENT_DAEMON_DEAD_GEN_DROP).is_empty());

    // Post-processing stays fully accounted: the drops are visible in
    // the quality report, not smeared into unresolved.
    let rep = Viprof::make_report(&db, &machine.kernel, &ReportSpec::default()).unwrap();
    assert_eq!(rep.quality.accounted(), db.total_samples());
    assert_eq!(rep.quality.dropped, db.dropped);
}

#[test]
fn churn_chaos_soak_replays_and_stays_accounted() {
    // The kitchen sink: VM restarts + forced pid reuse + a ring small
    // enough to overflow + a daemon crash mid-run, journaled and
    // supervised. Three contracts at once: bit-identical replay, the
    // legacy/1-thread/4-shard three-way identity (inside quality_of),
    // and 100% accounting with the isolation invariant visible in the
    // per-incarnation breakdown.
    let (built, plan) = small_workload();
    let chaos = || {
        FaultPlan::new(77)
            .with_vm_restarts(2)
            .with_pid_reuse_collision()
            .with_overflow_bursts(0.05, 2)
            .with_daemon_crash(2, 4)
    };
    let config = || OpConfig {
        buffer_capacity: 16,
        daemon_period_cycles: 300_000,
        ..OpConfig::time_at(PERIOD)
    };
    let run = || {
        run_benchmark(
            &built,
            &plan,
            ProfilerKind::ViprofSupervised(config(), chaos()),
            11,
            false,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles, "churn schedule replays bit for bit");
    assert_eq!(a.db, b.db);
    assert_eq!(a.faults, b.faults);

    // Three-way identity + accounting (legacy walk, 1 thread, 4 shards).
    let q = quality_of(&a);
    let db = a.db.as_ref().unwrap();
    assert_eq!(q.accounted(), db.total_samples());
    assert_eq!(q.dropped, db.dropped);

    // The restarts are visible: multiple incarnations in the report,
    // and distinct generations of the same pid in the database never
    // share attribution.
    let rep = Viprof::make_report(db, &a.machine.kernel, &ReportSpec::default()).unwrap();
    assert!(rep.incarnations.len() >= 2, "{:?}", rep.incarnations);
    let sample_sum: u64 = rep.incarnations.iter().map(|i| i.samples).sum();
    let jit_total: u64 = db
        .iter()
        .filter(|(b, _)| matches!(b.origin, SampleOrigin::JitApp { .. }))
        .map(|(_, c)| c)
        .sum();
    assert_eq!(sample_sum, jit_total, "incarnation rows partition the JIT samples");

    // Recovery leg: the same three-way identity holds through journal
    // replay, and the batch journal reproduces the db drops included —
    // dead-generation drops are journaled like any other.
    let (rq, _) = recovery_of(&a);
    assert!(rq.resolved >= q.resolved, "recovery is monotone");
    let replayed = recover_sample_db(&a.machine.kernel.vfs).expect("journaling on");
    assert_eq!(&replayed.db, db, "journal replay reproduces churn drops exactly");

    // Live leg: the same chaos with the streaming engine riding the
    // drain sink (supervision pre-chained on the config — equivalent
    // to the `supervised(true)` toggle). Attaching the sink is
    // invisible to the simulation, and the sealed snapshot is the
    // batch report — under pid-reuse churn, overflow, a daemon crash
    // with supervisor restarts, and the replayed journal batches the
    // restarts produce (sequence dedup under fire).
    let live_run = run_benchmark(
        &built,
        &plan,
        ProfilerKind::ViprofLive(
            config()
                .with_journal()
                .with_supervisor(chaos().supervisor_config()),
            Some(chaos()),
        ),
        11,
        false,
    );
    assert_eq!(live_run.cycles, a.cycles, "live sink perturbed the run");
    assert_eq!(live_run.db, a.db, "live sink perturbed the profile");
    assert_eq!(live_run.faults, a.faults);
    let live_snap = live_run.live.as_ref().expect("live run seals a snapshot");
    for threads in [1usize, SHARDS] {
        let offline = Viprof::make_report(
            live_run.db.as_ref().unwrap(),
            &live_run.machine.kernel,
            &ReportSpec::default().threads(threads),
        )
        .unwrap();
        assert_eq!(live_snap.lines, offline.lines, "live vs batch rows ({threads} threads)");
        assert_eq!(live_snap.quality, offline.quality, "live vs batch quality ({threads} threads)");
        assert_eq!(
            live_snap.incarnations, offline.incarnations,
            "live vs batch incarnations ({threads} threads)"
        );
        assert_eq!(
            live_snap.lineage, offline.lineage,
            "live vs batch lineage ({threads} threads)"
        );
        assert_eq!(
            live_snap.trace.to_chrome_json(),
            offline.trace.to_chrome_json(),
            "live vs batch trace export ({threads} threads)"
        );
    }

    // A different seed draws a different churn schedule.
    let other = FaultPlan::new(78).with_vm_restarts(2).churn_schedule(plan.slices as u64);
    let ours = chaos().churn_schedule(plan.slices as u64);
    assert!(ours.is_some() && other.is_some());
}

#[test]
fn poisoned_shard_never_loses_the_session_report() {
    // A resolution shard that panics mid-resolve must never take the
    // session report down with it: non-fatal panics heal bit-identically
    // through the single-threaded fallback, fatal ones quarantine the
    // shard's samples — counted, never silently lost.
    let (built, plan) = small_workload();
    let out = run_benchmark(&built, &plan, ProfilerKind::viprof_at(PERIOD), 4, false);
    let db = out.db.as_ref().unwrap();
    let kernel = &out.machine.kernel;
    let pid = db
        .iter()
        .find_map(|(b, _)| match b.origin {
            SampleOrigin::JitApp { pid, .. } => Some(pid),
            _ => None,
        })
        .expect("workload produced JIT samples");

    let clean = Viprof::make_report(db, kernel, &ReportSpec::default().threads(SHARDS)).unwrap();

    // Non-fatal: the parallel worker dies, the fallback re-resolve
    // succeeds — the report comes out identical to the clean run.
    let healed = Viprof::make_report(
        db,
        kernel,
        &ReportSpec::default()
            .threads(SHARDS)
            .poison(ShardPoison { pid, fatal: false }),
    )
    .expect("a panicking shard must not fail the report");
    assert_eq!(healed.lines, clean.lines, "fallback re-resolve is bit-identical");
    assert_eq!(healed.quality, clean.quality);
    assert!(healed.telemetry.counter(names::RESOLVE_SHARD_PANICS) >= 1);

    // Fatal: the fallback dies too; the shard's samples are quarantined
    // but the accounting still covers 100% of the emitted samples.
    let fatal_spec = |threads: usize| {
        ReportSpec::default()
            .threads(threads)
            .poison(ShardPoison { pid, fatal: true })
    };
    let maimed = Viprof::make_report(db, kernel, &fatal_spec(SHARDS))
        .expect("a twice-panicking shard must not fail the report");
    assert!(maimed.quality.quarantined > 0, "{:?}", maimed.quality);
    assert_eq!(maimed.quality.accounted(), db.total_samples());
    assert_eq!(maimed.quality.dropped, db.dropped);
    assert!(maimed.lines.rows.len() <= clean.lines.rows.len());
    assert!(
        !maimed
            .telemetry
            .events_of(names::EVENT_RESOLVE_SHARD_QUARANTINE)
            .is_empty(),
        "the quarantine leaves a flight-recorder trace"
    );
    // Shard assignment is content-hashed, not worker-count-dependent:
    // the damage is identical at every thread count.
    let single = Viprof::make_report(db, kernel, &fatal_spec(1)).unwrap();
    assert_eq!(single.quality, maimed.quality);
    assert_eq!(single.lines, maimed.lines);
    // Even with quarantine skewing the per-incarnation classification,
    // the lineage decomposition must still reconcile every loss bucket
    // (via the aggregate fallback rows) at every thread count.
    for report in [&maimed, &single] {
        for (bucket, want) in [
            ("dropped", report.quality.dropped),
            ("evicted", report.quality.evicted),
            ("quarantined", report.quality.quarantined),
            ("blocked", report.quality.cross_incarnation_blocked),
        ] {
            assert_eq!(
                report.lineage.total(bucket),
                want,
                "quarantined lineage {bucket} diverged from quality"
            );
        }
    }
    assert_eq!(single.lineage, maimed.lineage);
    assert_eq!(single.trace.to_chrome_json(), maimed.trace.to_chrome_json());
}
