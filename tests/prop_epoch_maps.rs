//! Property test of the paper's central mechanism: epoch code maps +
//! backward resolution, driven through the *real* heap and the *real*
//! VM agent against a ground-truth oracle.
//!
//! Random histories of {compile, recompile, GC} are executed; after
//! every event, every live code body's (epoch, address range, method)
//! is recorded as ground truth. At the end the agent's maps are loaded
//! from the VFS and each recorded point is resolved:
//!
//! * the **precise-move** agent must resolve every point to the right
//!   method;
//! * the **flag-only** agent (the paper's protocol) must resolve every
//!   point *except* the documented moved-then-recompiled race (E4), and
//!   must never resolve to the *wrong* method.

use proptest::prelude::*;
use viprof_repro::sim_cpu::{CostModel, Pid};
use viprof_repro::sim_jvm::{Heap, MatureConfig, MethodId, ObjKind, OptLevel};
use viprof_repro::sim_jvm::{CompiledBodyInfo, VmProfilerHooks};
use viprof_repro::sim_os::Vfs;
use viprof_repro::viprof::codemap::{parse_map, render_map, CodeMapEntry, CodeMapSet};
use viprof_repro::viprof::registry::JitRegistry;
use viprof_repro::viprof::VmAgent;

#[derive(Debug, Clone)]
enum Event {
    /// Compile method `m % N_METHODS` with a body of `64 + size` bytes.
    Compile { m: u8, size: u16 },
    Gc,
}

const N_METHODS: u8 = 6;

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u8..N_METHODS, 0u16..400).prop_map(|(m, size)| Event::Compile { m, size }),
            1 => Just(Event::Gc),
        ],
        1..60,
    )
}

struct Truth {
    epoch: u64,
    addr: u64,
    method: MethodId,
    /// The body at this point was produced by a compile *in this
    /// epoch* (recorded in the epoch's pending buffer — immune to the
    /// flag-only race). Bodies placed by a GC move are not.
    from_compile: bool,
}

fn drive(events: &[Event], precise: bool) -> (Vec<Truth>, CodeMapSet) {
    let pid = Pid(77);
    let registry = JitRegistry::shared();
    let mut agent = VmAgent::new(registry, CostModel::free()).with_precise_moves(precise);
    let mut vfs = Vfs::new();
    let mut heap = Heap::with_mature(
        (0x6000_0000, 0x6000_0000 + 256 * 1024),
        MatureConfig {
            promote_after: 2,
            fraction: 0.25,
        },
    );
    agent.on_vm_start(pid, heap.region());

    let mut bodies: Vec<Option<viprof_repro::sim_jvm::ObjRef>> =
        vec![None; N_METHODS as usize];
    // Epoch in which each method's current body was compiled.
    let mut body_epoch: Vec<u64> = vec![0; N_METHODS as usize];
    let mut truth: Vec<Truth> = Vec::new();

    let record = |heap: &Heap,
                  bodies: &[Option<viprof_repro::sim_jvm::ObjRef>],
                  body_epoch: &[u64],
                  truth: &mut Vec<Truth>| {
        for (i, b) in bodies.iter().enumerate() {
            if let Some(r) = b {
                let (start, end) = heap.range_of(*r);
                truth.push(Truth {
                    epoch: heap.collections,
                    addr: start + (end - start) / 2,
                    method: MethodId(i as u32),
                    from_compile: body_epoch[i] == heap.collections,
                });
            }
        }
    };

    let do_gc = |heap: &mut Heap,
                     agent: &mut VmAgent,
                     vfs: &mut Vfs,
                     bodies: &[Option<viprof_repro::sim_jvm::ObjRef>]| {
        agent.on_gc_begin(heap.collections, vfs);
        let live: Vec<_> = bodies.iter().flatten().copied().collect();
        heap.collect(&[], &live, |ev| {
            if let ObjKind::Code(m) = ev.kind {
                agent.on_code_moved(m, ev.old_addr, ev.new_addr, ev.byte_size);
            }
        });
        agent.on_gc_end(heap.collections);
    };

    for ev in events {
        match ev {
            Event::Compile { m, size } => {
                let method = MethodId(*m as u32);
                let body = loop {
                    match heap.alloc_code(method, 64 + *size as u64) {
                        Ok(r) => break r,
                        Err(_) => do_gc(&mut heap, &mut agent, &mut vfs, &bodies),
                    }
                };
                bodies[*m as usize] = Some(body);
                body_epoch[*m as usize] = heap.collections;
                let (addr, _) = heap.range_of(body);
                agent.on_compile(&CompiledBodyInfo {
                    method,
                    signature: format!("test.M{m}.run"),
                    addr,
                    size: heap.get(body).byte_size,
                    opt_level: OptLevel::Baseline,
                    is_recompile: false,
                    epoch: heap.collections,
                });
            }
            Event::Gc => do_gc(&mut heap, &mut agent, &mut vfs, &bodies),
        }
        record(&heap, &bodies, &body_epoch, &mut truth);
    }
    agent.on_vm_exit(heap.collections, &mut vfs);
    let maps = CodeMapSet::load(&vfs, pid).unwrap();
    (truth, maps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn precise_agent_resolves_every_point_correctly(events in arb_events()) {
        let (truth, maps) = drive(&events, true);
        for t in &truth {
            let hit = maps.resolve(t.addr, t.epoch);
            prop_assert!(hit.is_some(), "addr {:#x} epoch {} unresolved", t.addr, t.epoch);
            prop_assert_eq!(
                &hit.unwrap().signature,
                &format!("test.M{}.run", t.method.0),
                "addr {:#x} epoch {}", t.addr, t.epoch
            );
        }
    }

    #[test]
    fn flag_only_agent_is_mostly_right_and_precise_fixes_the_rest(events in arb_events()) {
        // The paper's flag-only protocol has a documented race (the
        // method's current address is read at map-write time): a body
        // moved by one GC whose method recompiles before the next write
        // loses its moved location. The consequence is *misses*, and —
        // when a later collection recycles such an address for a
        // different method's body — occasional *misattribution* to the
        // stale occupant of an earlier map. Both rates must stay small,
        // and the precise-move agent must eliminate both on the exact
        // same history.
        let (truth, maps) = drive(&events, false);
        for t in &truth {
            let hit = maps.resolve(t.addr, t.epoch);
            if t.from_compile {
                // Compile records are buffered per event: immune.
                prop_assert!(hit.is_some(), "compiled point must resolve");
                prop_assert_eq!(
                    &hit.unwrap().signature,
                    &format!("test.M{}.run", t.method.0),
                    "addr {:#x} epoch {}", t.addr, t.epoch
                );
            }
            // Moved points may miss or hit a stale occupant — the
            // documented race; no assertion beyond "no panic".
        }

        let (truth_p, maps_p) = drive(&events, true);
        for t in &truth_p {
            let hit = maps_p.resolve(t.addr, t.epoch);
            prop_assert!(hit.is_some());
            prop_assert_eq!(&hit.unwrap().signature, &format!("test.M{}.run", t.method.0));
        }
    }
}

// ---------- lossy parse: corruption quarantines, never destroys ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parse_map_keeps_clean_lines_and_counts_corrupt_ones(
        bodies in prop::collection::vec((0u64..1u64 << 40, 1u64..0x1000), 0..40),
        corrupt in prop::collection::vec((0usize..40, 0usize..4), 0..12)
    ) {
        // Round trip with injected damage: render a map, overwrite a
        // random subset of lines with definitively-invalid records, and
        // check the lossy parser keeps exactly the clean entries (in
        // order) while counting exactly the damaged lines.
        let entries: Vec<CodeMapEntry> = bodies
            .iter()
            .enumerate()
            .map(|(i, (addr, size))| CodeMapEntry {
                addr: *addr,
                size: *size,
                level: "opt0".to_string(),
                signature: format!("test.C.m{i}"),
            })
            .collect();
        let rendered = render_map(&entries);
        let mut lines: Vec<String> = rendered.lines().map(str::to_string).collect();
        const GARBAGE: [&str; 4] = [
            "zz 10 opt0 test.C.bad", // unparseable hex address
            "10 zz opt0 test.C.bad", // unparseable hex size
            "10 20 opt0",            // missing field
            "!!",                    // not a record at all
        ];
        let mut damaged_lines = std::collections::BTreeSet::new();
        for (line, g) in corrupt {
            if line < lines.len() {
                lines[line] = GARBAGE[g].to_string();
                damaged_lines.insert(line);
            }
        }
        let parsed = parse_map(&lines.join("\n"));
        prop_assert_eq!(parsed.quarantined, damaged_lines.len() as u64);
        let survivors: Vec<&CodeMapEntry> = entries
            .iter()
            .enumerate()
            .filter(|(i, _)| !damaged_lines.contains(i))
            .map(|(_, e)| e)
            .collect();
        prop_assert_eq!(parsed.entries.len(), survivors.len());
        for (got, want) in parsed.entries.iter().zip(survivors) {
            prop_assert_eq!(got, want);
        }
    }
}
