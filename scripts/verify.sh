#!/usr/bin/env bash
# Tier-1 verification: what every PR must keep green.
#
#   scripts/verify.sh            # build + tests + clippy + docs + deprecation gate + bench smoke
#   scripts/verify.sh --fast     # build + tests only
#
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

# Run a command whose failure is tolerable when the box is airgapped
# (registry/toolchain fetches), but fatal for real findings.
run_offline_tolerant() {
    local label="$1"
    shift
    echo "==> $*"
    local log
    log="$(mktemp)"
    if ! "$@" 2>&1 | tee "$log"; then
        if grep -qiE 'could not resolve host|network|registry|download|failed to fetch|connection|offline' "$log"; then
            echo "==> WARNING: $label skipped — toolchain/registry unreachable (offline?)"
        else
            echo "==> $label FAILED"
            rm -f "$log"
            exit 1
        fi
    fi
    rm -f "$log"
}

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" != "--fast" ]]; then
    run_offline_tolerant "clippy" \
        cargo clippy --workspace --all-targets -- -D warnings

    # Rustdoc must stay warning-free (broken intra-doc links, etc.).
    run_offline_tolerant "rustdoc" \
        env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

    # No internal caller may use a deprecated entrypoint: everything in
    # the workspace must compile with deprecation warnings promoted to
    # errors. The shim-equivalence tests opt back in with an explicit
    # #[allow(deprecated)], which overrides the command-line -D.
    run_offline_tolerant "deprecation gate" \
        env RUSTFLAGS="${RUSTFLAGS:-} -D deprecated" cargo check --workspace --all-targets --quiet

    # Resolution-engine bench, smoke-sized: asserts the flattened
    # sharded path is bit-identical to the legacy walk, gates the
    # telemetry overhead under 3%, and writes results/BENCH_resolve.json.
    echo "==> bench_resolve --smoke"
    cargo run --release -p viprof-bench --bin bench_resolve -- --smoke

    # Overload-governor gate, smoke-sized: a ring small enough to force
    # overflow; the governed run must drop strictly fewer samples than
    # fixed-rate sampling and keep its drop fraction under 5%. Writes
    # results/BENCH_overload.json.
    echo "==> bench_overload --smoke"
    cargo run --release -p viprof-bench --bin bench_overload -- --smoke

    # Live-resolution gate, smoke-sized: incremental epoch extension
    # must match (==) and not lose to per-drain re-flattening, and the
    # streaming engine's sealed snapshot must equal the batch report.
    # Writes results/BENCH_live.json.
    echo "==> bench_live --smoke"
    cargo run --release -p viprof-bench --bin bench_live -- --smoke

    # Telemetry self-check: a mini end-to-end session whose persisted
    # snapshot must parse, round-trip canonically, and reconcile.
    echo "==> viprof-stat --selftest"
    cargo run --release -p viprof --bin viprof-stat -- --selftest

    # Trace-determinism self-check: two fixed-seed sessions must export
    # byte-identical Chrome trace JSON, the resolve-pass trace must be
    # bit-identical across thread counts {1,4}, and every lineage
    # bucket must reconcile exactly with the resolution quality.
    echo "==> viprof-trace --selftest"
    cargo run --release -p viprof --bin viprof-trace -- --selftest

    # Trace/lineage smoke: the engine tests that assert lineage totals
    # reconcile with quality, attribute losses to journaled batches,
    # and stay thread-invariant — plus the span-tree/round-trip
    # proptests. Named so tracing regressions fail loudly even when
    # someone filters the main test run.
    run_offline_tolerant "trace lineage smoke" \
        cargo test -q -p viprof lineage
    run_offline_tolerant "trace proptests" \
        cargo test -q --test prop_trace

    # Process-churn smoke: VM restarts, LIFO pid reuse and dead-
    # generation drops under injected faults must stay fully accounted
    # and replay bit-identically, and the 256-case isolation proptest
    # must hold (no sample ever resolves across an incarnation
    # boundary). Named here so churn regressions fail loudly even when
    # someone filters the main test run.
    run_offline_tolerant "churn smoke" \
        cargo test -q --test fault_matrix churn
    run_offline_tolerant "churn isolation proptests" \
        cargo test -q --test prop_churn

    # Differ self-check: the deterministic synthetic session must diff
    # to zero against itself, a perturbed seed must not, kind mixing
    # must be rejected, and the emitted baselines must match in-memory.
    echo "==> viprof-diff --selftest"
    cargo run --release -p viprof --bin viprof-diff -- --selftest

    # Baseline gate: regenerating the committed fixed-seed baselines
    # must produce artifacts that diff to zero against results/ — any
    # timeline/telemetry determinism drift, schema drift, or synthetic-
    # session change fails here until the baselines are regenerated in
    # the same change (viprof-diff --emit-baseline results/).
    echo "==> baseline drift check"
    BASELINE_TMP="$(mktemp -d)"
    cargo run --release -p viprof --bin viprof-diff -- --emit-baseline "$BASELINE_TMP"
    for b in baseline_telemetry.json baseline_timeline.json; do
        cargo run --release -p viprof --bin viprof-diff -- "results/$b" "$BASELINE_TMP/$b" \
            || { echo "==> $b drifted from results/ (regenerate with viprof-diff --emit-baseline results/)"; exit 1; }
    done
    rm -rf "$BASELINE_TMP"

    # Timeline/health smoke: the telescoping/monotonicity/fixed-point
    # proptests plus the health-rule unit suite, and the governed-burst
    # timeline scenario in the fault matrix. Named so temporal-layer
    # regressions fail loudly even when someone filters the main run.
    run_offline_tolerant "timeline proptests" \
        cargo test -q --test prop_timeline
    run_offline_tolerant "governed-burst timeline smoke" \
        cargo test -q --test fault_matrix timeline

    # Telemetry-schema drift gate: the metric catalog must match the
    # reviewed golden list, so additions/removals fail until the golden
    # file is updated in the same change.
    echo "==> telemetry schema drift check"
    cargo run --release -p viprof --bin viprof-stat -- --schema \
        | diff -u scripts/telemetry-schema.txt - \
        || { echo "==> telemetry schema drifted from scripts/telemetry-schema.txt"; exit 1; }

    # Public-API drift gate: the inventory of exported fn/struct names
    # must match the reviewed golden list — intentional surface changes
    # update scripts/api-surface.txt in the same change, accidental
    # ones fail here. (Names only, grep-derived: a cheap tripwire, not
    # a semver checker.)
    echo "==> public API surface drift check"
    grep -rhoE '^[[:space:]]*pub (fn|struct) [A-Za-z_][A-Za-z0-9_]*' \
            crates/*/src src --include='*.rs' \
        | sed -E 's/^[[:space:]]+//' | LC_ALL=C sort | uniq -c \
        | sed -E 's/^[[:space:]]+//' \
        | diff -u scripts/api-surface.txt - \
        || { echo "==> public API surface drifted from scripts/api-surface.txt"; exit 1; }
fi

echo "==> verify OK"
