#!/usr/bin/env bash
# Tier-1 verification: what every PR must keep green.
#
#   scripts/verify.sh            # build + tests + clippy
#   scripts/verify.sh --fast     # skip clippy
#
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" != "--fast" ]]; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> verify OK"
