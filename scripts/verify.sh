#!/usr/bin/env bash
# Tier-1 verification: what every PR must keep green.
#
#   scripts/verify.sh            # build + tests + clippy
#   scripts/verify.sh --fast     # skip clippy
#
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" != "--fast" ]]; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    # clippy may need to fetch its own toolchain component or registry
    # metadata; an airgapped box should not fail tier-1 for that. Lint
    # findings still fail hard.
    clippy_log="$(mktemp)"
    trap 'rm -f "$clippy_log"' EXIT
    if ! cargo clippy --workspace --all-targets -- -D warnings 2>&1 | tee "$clippy_log"; then
        if grep -qiE 'could not resolve host|network|registry|download|failed to fetch|connection|offline' "$clippy_log"; then
            echo "==> WARNING: clippy skipped — toolchain/registry unreachable (offline?)"
        else
            echo "==> clippy FAILED"
            exit 1
        fi
    fi
fi

echo "==> verify OK"
