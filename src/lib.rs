//! # viprof-repro — umbrella crate
//!
//! Re-exports the whole VIProf reproduction stack so examples and
//! integration tests can reach every layer through one dependency:
//!
//! * [`sim_cpu`] — simulated CPU, performance counters, NMIs, caches;
//! * [`sim_os`] — kernel, processes, address spaces, images, VFS;
//! * [`sim_jvm`] — the Jikes-RVM-shaped virtual machine;
//! * [`oprofile`] — the baseline system-wide profiler;
//! * [`viprof`] — the paper's contribution (start here);
//! * [`workloads`] — the synthetic SPEC JVM98 / DaCapo / pseudoJBB
//!   suite and the run harness;
//! * [`telemetry`] — the self-observation layer every component above
//!   reports into (metrics, stage timers, flight recorder).
//!
//! See `examples/quickstart.rs` for the five-minute tour.

pub use oprofile;
pub use sim_cpu;
pub use sim_jvm;
pub use sim_os;
pub use viprof;
pub use viprof_telemetry as telemetry;
pub use viprof_workloads as workloads;
