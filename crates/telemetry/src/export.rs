//! Snapshot exporters: deterministic JSON and a human-text rendering.
//!
//! The JSON writer is hand-rolled (the crate is std-only) and emits a
//! fully ordered document — object keys come from sorted registry
//! iteration and every value is an integer — so two runs with the same
//! seed produce byte-identical bytes. A matching minimal parser reads
//! snapshots back (`viprof-stat` consumes exported sessions offline);
//! it only accepts the subset the writer emits: objects, arrays,
//! strings, and unsigned integers.

use crate::recorder::Event;

/// Materialized view of one registry: plain ordered data, so it can be
/// compared, cloned, and embedded in report structs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// `(name, value)` sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Sorted by name.
    pub stages: Vec<StageSnapshot>,
    /// Flight-recorder contents, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring to make room.
    pub events_dropped: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    /// Non-empty log2 buckets as `(bucket index, count)`, ascending.
    pub buckets: Vec<(usize, u64)>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    pub name: String,
    pub entries: u64,
    pub cycles: u64,
}

impl TelemetrySnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        lookup(&self.counters, name)
    }

    pub fn gauge(&self, name: &str) -> u64 {
        lookup(&self.gauges, name)
    }

    pub fn stage(&self, name: &str) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.name == name)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Events of one kind, oldest first.
    pub fn events_of(&self, kind: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// Deterministic JSON: same snapshot → same bytes.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj_open();
        w.key("counters");
        w.obj_open();
        for (name, v) in &self.counters {
            w.key(name);
            w.num(*v);
        }
        w.obj_close();
        w.key("gauges");
        w.obj_open();
        for (name, v) in &self.gauges {
            w.key(name);
            w.num(*v);
        }
        w.obj_close();
        w.key("histograms");
        w.obj_open();
        for h in &self.histograms {
            w.key(&h.name);
            w.obj_open();
            w.key("count");
            w.num(h.count);
            w.key("sum");
            w.num(h.sum);
            w.key("buckets");
            w.obj_open();
            for (k, n) in &h.buckets {
                w.key(&k.to_string());
                w.num(*n);
            }
            w.obj_close();
            w.obj_close();
        }
        w.obj_close();
        w.key("stages");
        w.obj_open();
        for s in &self.stages {
            w.key(&s.name);
            w.obj_open();
            w.key("entries");
            w.num(s.entries);
            w.key("cycles");
            w.num(s.cycles);
            w.obj_close();
        }
        w.obj_close();
        w.key("events");
        w.arr_open();
        for e in &self.events {
            w.obj_open();
            w.key("seq");
            w.num(e.seq);
            w.key("cycles");
            w.num(e.cycles);
            w.key("kind");
            w.str(&e.kind);
            w.key("detail");
            w.str(&e.detail);
            w.key("fields");
            w.obj_open();
            for (k, v) in &e.fields {
                w.key(k);
                w.num(*v);
            }
            w.obj_close();
            w.obj_close();
        }
        w.arr_close();
        w.key("events_dropped");
        w.num(self.events_dropped);
        w.obj_close();
        w.finish()
    }

    /// Parse a snapshot previously written by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<TelemetrySnapshot, String> {
        let root = parse_json(text)?;
        let top = root.as_obj("top level")?;
        let mut snap = TelemetrySnapshot::default();
        for (name, v) in get(top, "counters")?.as_obj("counters")? {
            snap.counters.push((name.clone(), v.as_num(name)?));
        }
        for (name, v) in get(top, "gauges")?.as_obj("gauges")? {
            snap.gauges.push((name.clone(), v.as_num(name)?));
        }
        for (name, v) in get(top, "histograms")?.as_obj("histograms")? {
            let h = v.as_obj(name)?;
            let mut buckets = Vec::new();
            for (k, n) in get(h, "buckets")?.as_obj("buckets")? {
                let idx: usize = k
                    .parse()
                    .map_err(|_| format!("bad bucket index {k:?}"))?;
                buckets.push((idx, n.as_num(k)?));
            }
            snap.histograms.push(HistogramSnapshot {
                name: name.clone(),
                count: get(h, "count")?.as_num("count")?,
                sum: get(h, "sum")?.as_num("sum")?,
                buckets,
            });
        }
        for (name, v) in get(top, "stages")?.as_obj("stages")? {
            let s = v.as_obj(name)?;
            snap.stages.push(StageSnapshot {
                name: name.clone(),
                entries: get(s, "entries")?.as_num("entries")?,
                cycles: get(s, "cycles")?.as_num("cycles")?,
            });
        }
        for v in get(top, "events")?.as_arr("events")? {
            let e = v.as_obj("event")?;
            let mut fields = Vec::new();
            for (k, fv) in get(e, "fields")?.as_obj("fields")? {
                fields.push((k.clone(), fv.as_num(k)?));
            }
            snap.events.push(Event {
                seq: get(e, "seq")?.as_num("seq")?,
                cycles: get(e, "cycles")?.as_num("cycles")?,
                kind: get(e, "kind")?.as_str("kind")?.to_string(),
                detail: get(e, "detail")?.as_str("detail")?.to_string(),
                fields,
            });
        }
        snap.events_dropped = get(top, "events_dropped")?.as_num("events_dropped")?;
        Ok(snap)
    }

    /// Aligned human rendering (the `viprof-stat` default view).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<34} {v:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<34} {v:>14}\n"));
            }
        }
        if !self.stages.is_empty() {
            out.push_str("stages (virtual cycles):\n");
            for s in &self.stages {
                out.push_str(&format!(
                    "  {:<34} {:>14} cycles over {} entries\n",
                    s.name, s.cycles, s.entries
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                let mean = if h.count > 0 { h.sum / h.count } else { 0 };
                out.push_str(&format!(
                    "  {:<34} n={} sum={} mean={}\n",
                    h.name, h.count, h.sum, mean
                ));
                for row in log2_rows(&h.buckets) {
                    out.push_str("    ");
                    out.push_str(&row);
                    out.push('\n');
                }
            }
        }
        out.push_str(&format!(
            "flight recorder: {} event(s), {} evicted\n",
            self.events.len(),
            self.events_dropped
        ));
        for e in &self.events {
            let fields: Vec<String> =
                e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!(
                "  #{:<5} @{:<14} {:<24} {} {}\n",
                e.seq,
                e.cycles,
                e.kind,
                fields.join(" "),
                e.detail
            ));
        }
        out
    }
}

fn lookup(list: &[(String, u64)], name: &str) -> u64 {
    list.iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Render non-empty log2 buckets (`(bucket index, count)` pairs, the
/// shape [`crate::metrics::Histogram::nonzero_buckets`] and
/// [`crate::trace::TraceSnapshot::duration_buckets`] produce) as
/// aligned `[lo..hi] count` rows — the one formatter shared by
/// `viprof-stat --histograms` and `viprof-trace --top`.
pub fn log2_rows(buckets: &[(usize, u64)]) -> Vec<String> {
    buckets
        .iter()
        .map(|(k, n)| {
            format!(
                "[{:>20}..{:>20}] {n}",
                crate::metrics::bucket_lo(*k),
                crate::metrics::bucket_hi(*k)
            )
        })
        .collect()
}

// ---------------- JSON writer ----------------

pub(crate) struct JsonWriter {
    out: String,
    /// Whether the current container already has an element (per
    /// nesting level).
    stack: Vec<bool>,
}

impl JsonWriter {
    pub(crate) fn new() -> JsonWriter {
        JsonWriter { out: String::new(), stack: Vec::new() }
    }

    fn comma(&mut self) {
        if let Some(has) = self.stack.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    pub(crate) fn obj_open(&mut self) {
        self.comma();
        self.out.push('{');
        self.stack.push(false);
    }

    pub(crate) fn obj_close(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    pub(crate) fn arr_open(&mut self) {
        self.comma();
        self.out.push('[');
        self.stack.push(false);
    }

    pub(crate) fn arr_close(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    pub(crate) fn key(&mut self, k: &str) {
        self.comma();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        // The value that follows must not emit its own comma.
        if let Some(has) = self.stack.last_mut() {
            *has = false;
        }
    }

    pub(crate) fn num(&mut self, v: u64) {
        self.comma();
        self.out.push_str(&v.to_string());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.comma();
        write_escaped(&mut self.out, s);
    }

    pub(crate) fn finish(self) -> String {
        self.out
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------- JSON parser (writer's subset) ----------------

#[derive(Debug)]
pub(crate) enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(u64),
}

impl Json {
    pub(crate) fn as_obj(&self, what: &str) -> Result<&Vec<(String, Json)>, String> {
        match self {
            Json::Obj(m) => Ok(m),
            _ => Err(format!("{what}: expected object")),
        }
    }

    pub(crate) fn as_arr(&self, what: &str) -> Result<&Vec<Json>, String> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(format!("{what}: expected array")),
        }
    }

    pub(crate) fn as_num(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(format!("{what}: expected integer")),
        }
    }

    pub(crate) fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected string")),
        }
    }
}

pub(crate) fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub(crate) fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b'0'..=b'9' => self.number(),
            b => Err(format!("unexpected byte {:?} at offset {}", b as char, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                b => return Err(format!("expected ',' or '}}', got {:?}", b as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                b => return Err(format!("expected ',' or ']', got {:?}", b as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or("surrogate \\u escape unsupported")?,
                            );
                        }
                        b => {
                            return Err(format!("unknown escape \\{}", b as char))
                        }
                    }
                }
                b => {
                    // Re-assemble multi-byte UTF-8 sequences: find the
                    // full char starting at pos-1.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b)?;
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .ok_or("truncated UTF-8 sequence")?;
                        let s = std::str::from_utf8(chunk)
                            .map_err(|_| "invalid UTF-8 in string")?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| format!("bad integer {s:?}"))
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err("invalid UTF-8 lead byte".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: vec![("a.count".into(), 3), ("b.count".into(), 0)],
            gauges: vec![("g.occ".into(), 17)],
            histograms: vec![HistogramSnapshot {
                name: "h.sizes".into(),
                count: 4,
                sum: 1030,
                buckets: vec![(1, 3), (11, 1)],
            }],
            stages: vec![StageSnapshot {
                name: "stage.x".into(),
                entries: 2,
                cycles: 9000,
            }],
            events: vec![Event {
                seq: 0,
                cycles: 1234,
                kind: "k.e".into(),
                detail: "path/with \"quotes\"\nand newline".into(),
                fields: vec![("n".into(), 8)],
            }],
            events_dropped: 1,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample();
        let json = snap.to_json();
        let back = TelemetrySnapshot::from_json(&json).expect("parse back");
        assert_eq!(back, snap);
        // And the re-export is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn json_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn empty_snapshot_exports_and_parses() {
        let snap = TelemetrySnapshot::default();
        let json = snap.to_json();
        assert_eq!(
            TelemetrySnapshot::from_json(&json).expect("parse"),
            snap
        );
        assert!(json.contains("\"events_dropped\":0"));
    }

    #[test]
    fn accessors_find_entries() {
        let snap = sample();
        assert_eq!(snap.counter("a.count"), 3);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.gauge("g.occ"), 17);
        assert_eq!(snap.stage("stage.x").unwrap().cycles, 9000);
        assert_eq!(snap.histogram("h.sizes").unwrap().count, 4);
        assert_eq!(snap.events_of("k.e").len(), 1);
        assert!(snap.render_text().contains("flight recorder: 1 event(s), 1 evicted"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(TelemetrySnapshot::from_json("").is_err());
        assert!(TelemetrySnapshot::from_json("{\"counters\":12}").is_err());
        assert!(TelemetrySnapshot::from_json("{}").is_err());
        assert!(parse_json("{\"a\":1}garbage").is_err());
    }
}
