//! Declarative health rules over the telemetry timeline.
//!
//! A raw counter dump makes the *operator* do the diagnosis; the rules
//! engine turns the [`Timeline`](crate::timeline::Timeline) into typed
//! findings — "sustained ring overflow", "governor escalated", "the
//! journal needed repairs" — each with a severity, the evidence window
//! range, and the burst shape (peak window, longest sustained run).
//! `SessionReport.health`, the `viprof-report` HEALTH footer and
//! `viprof-stat --health` all surface the same [`HealthReport`].
//!
//! Rule semantics, chosen so a clean run can never false-positive:
//! a [`HealthRule`] watches one timeline counter series and fires only
//! when (a) the cumulative delta reaches `threshold` **and** (b) some
//! `sustain` consecutive windows each moved the series. Rules with
//! `sustain > 1` therefore have hysteresis: an isolated one-window
//! blip stays quiet. `escalate_sustain` bumps the severity one level
//! when the longest consecutive run reaches it (a drop *storm* is
//! worse than a drop).
//!
//! Evaluation is a pure function of the timeline, so batch reports,
//! sealed live snapshots and offline `viprof-stat --health` over the
//! same exported `timeline.json` agree exactly.

use crate::export::{get, parse_json, JsonWriter};
use crate::names;
use crate::timeline::Timeline;
use std::fmt;

/// Finding severity, ordered: `Info < Warning < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Expected under the configuration (e.g. the governor doing its
    /// job), worth a line but not an alarm.
    Info,
    /// Data was lost or repaired; the profile is still accounted.
    Warning,
    /// The pipeline was overwhelmed or gave up headroom; results need
    /// scrutiny.
    Critical,
}

impl Severity {
    /// One level worse (saturating at [`Severity::Critical`]).
    pub fn escalated(self) -> Severity {
        match self {
            Severity::Info => Severity::Warning,
            _ => Severity::Critical,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    pub fn parse(s: &str) -> Result<Severity, String> {
        match s {
            "info" => Ok(Severity::Info),
            "warning" => Ok(Severity::Warning),
            "critical" => Ok(Severity::Critical),
            _ => Err(format!("unknown severity {s:?}")),
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One declarative rule: watch a timeline counter series, fire on a
/// sustained threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthRule {
    /// Catalog id (`names::HEALTH_*`), the finding's stable name.
    pub id: &'static str,
    /// The timeline counter series this rule watches.
    pub series: &'static str,
    /// Minimum cumulative delta over the timeline to fire.
    pub threshold: u64,
    /// Consecutive nonzero-delta windows required to fire (>= 1; more
    /// than 1 gives the rule hysteresis against one-window blips).
    pub sustain: u64,
    /// Severity when fired.
    pub severity: Severity,
    /// If nonzero and the longest consecutive nonzero run reaches this
    /// many windows, the severity escalates one level.
    pub escalate_sustain: u64,
}

/// The reviewed default rule set, sorted by id — one rule per loss or
/// pressure signal the pipeline can emit.
pub const DEFAULT_HEALTH_RULES: &[HealthRule] = &[
    HealthRule {
        id: names::HEALTH_BUFFER_OVERFLOW,
        series: names::BUFFER_DROPPED,
        threshold: 1,
        sustain: 1,
        severity: Severity::Warning,
        escalate_sustain: 3,
    },
    HealthRule {
        id: names::HEALTH_DB_EVICTION,
        series: names::DB_EVICTED_SAMPLES,
        threshold: 1,
        sustain: 1,
        severity: Severity::Warning,
        escalate_sustain: 3,
    },
    HealthRule {
        id: names::HEALTH_DEAD_GENERATION,
        series: names::DAEMON_DEAD_GEN_DROPPED,
        threshold: 1,
        sustain: 1,
        severity: Severity::Info,
        escalate_sustain: 0,
    },
    HealthRule {
        id: names::HEALTH_DEADLINE_MISS,
        series: names::DAEMON_DEADLINE_MISSES,
        threshold: 1,
        sustain: 1,
        severity: Severity::Warning,
        escalate_sustain: 0,
    },
    HealthRule {
        id: names::HEALTH_GOVERNOR_BACKOFF,
        series: names::GOVERNOR_BACKOFFS,
        threshold: 1,
        sustain: 1,
        severity: Severity::Info,
        escalate_sustain: 0,
    },
    HealthRule {
        id: names::HEALTH_GOVERNOR_ESCALATION,
        series: names::GOVERNOR_ESCALATIONS,
        threshold: 1,
        sustain: 1,
        severity: Severity::Critical,
        escalate_sustain: 0,
    },
    HealthRule {
        id: names::HEALTH_JOURNAL_REPAIR,
        series: names::JOURNAL_REPAIRS,
        threshold: 1,
        sustain: 1,
        severity: Severity::Warning,
        escalate_sustain: 0,
    },
    HealthRule {
        id: names::HEALTH_SPANS_DROPPED,
        series: names::TRACE_SPANS_DROPPED,
        threshold: 1,
        sustain: 1,
        severity: Severity::Info,
        escalate_sustain: 0,
    },
    HealthRule {
        id: names::HEALTH_SUPERVISOR_RESTART,
        series: names::SUPERVISOR_RESTARTS,
        threshold: 1,
        sustain: 1,
        severity: Severity::Warning,
        escalate_sustain: 0,
    },
];

/// One fired rule with its evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthFinding {
    /// The rule id (`health.*`).
    pub rule: String,
    /// The counter series the evidence came from.
    pub series: String,
    pub severity: Severity,
    /// Cumulative delta over the timeline.
    pub total: u64,
    /// Windows in which the series moved.
    pub windows: u64,
    /// Largest single-window delta.
    pub peak: u64,
    /// Longest run of consecutive windows with movement.
    pub longest_run: u64,
    /// Sim-clock stamp of the first window with movement.
    pub first_cycles: u64,
    /// Sim-clock stamp of the last window with movement.
    pub last_cycles: u64,
}

impl HealthFinding {
    /// One human line, the `viprof-report` HEALTH footer format.
    pub fn render_line(&self) -> String {
        format!(
            "[{}] {}: {} over {} window(s) (peak {}, run {}, cycles {}..{})",
            self.severity,
            self.rule,
            self.total,
            self.windows,
            self.peak,
            self.longest_run,
            self.first_cycles,
            self.last_cycles
        )
    }
}

/// Every fired rule, worst first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Sorted by severity descending, then rule id.
    pub findings: Vec<HealthFinding>,
}

impl HealthReport {
    /// Evaluate the reviewed default rules over `timeline`.
    pub fn evaluate(timeline: &Timeline) -> HealthReport {
        HealthReport::evaluate_with(DEFAULT_HEALTH_RULES, timeline)
    }

    /// Evaluate an explicit rule set over `timeline`. Pure: the same
    /// timeline and rules always produce the same report.
    pub fn evaluate_with(rules: &[HealthRule], timeline: &Timeline) -> HealthReport {
        let mut findings = Vec::new();
        for rule in rules {
            let mut total = 0u64;
            let mut windows = 0u64;
            let mut peak = 0u64;
            let mut run = 0u64;
            let mut longest_run = 0u64;
            let mut first_cycles = 0u64;
            let mut last_cycles = 0u64;
            for w in timeline.windows() {
                let d = w.delta(rule.series);
                if d == 0 {
                    run = 0;
                    continue;
                }
                if total == 0 {
                    first_cycles = w.cycles;
                }
                last_cycles = w.cycles;
                total += d;
                windows += 1;
                peak = peak.max(d);
                run += 1;
                longest_run = longest_run.max(run);
            }
            if total < rule.threshold || longest_run < rule.sustain {
                continue;
            }
            let severity = if rule.escalate_sustain > 0 && longest_run >= rule.escalate_sustain
            {
                rule.severity.escalated()
            } else {
                rule.severity
            };
            findings.push(HealthFinding {
                rule: rule.id.to_string(),
                series: rule.series.to_string(),
                severity,
                total,
                windows,
                peak,
                longest_run,
                first_cycles,
                last_cycles,
            });
        }
        findings.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.rule.cmp(&b.rule)));
        HealthReport { findings }
    }

    /// No rule fired.
    pub fn is_healthy(&self) -> bool {
        self.findings.is_empty()
    }

    /// The worst fired severity, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// The finding for `rule`, if it fired.
    pub fn finding(&self, rule: &str) -> Option<&HealthFinding> {
        self.findings.iter().find(|f| f.rule == rule)
    }

    /// Deterministic JSON: same report → same bytes.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj_open();
        w.key("findings");
        w.arr_open();
        for f in &self.findings {
            w.obj_open();
            w.key("rule");
            w.str(&f.rule);
            w.key("series");
            w.str(&f.series);
            w.key("severity");
            w.str(f.severity.as_str());
            w.key("total");
            w.num(f.total);
            w.key("windows");
            w.num(f.windows);
            w.key("peak");
            w.num(f.peak);
            w.key("longest_run");
            w.num(f.longest_run);
            w.key("first_cycles");
            w.num(f.first_cycles);
            w.key("last_cycles");
            w.num(f.last_cycles);
            w.obj_close();
        }
        w.arr_close();
        w.obj_close();
        w.finish()
    }

    /// Parse a report previously written by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<HealthReport, String> {
        let root = parse_json(text)?;
        let top = root.as_obj("top level")?;
        let mut report = HealthReport::default();
        for v in get(top, "findings")?.as_arr("findings")? {
            let f = v.as_obj("finding")?;
            report.findings.push(HealthFinding {
                rule: get(f, "rule")?.as_str("rule")?.to_string(),
                series: get(f, "series")?.as_str("series")?.to_string(),
                severity: Severity::parse(get(f, "severity")?.as_str("severity")?)?,
                total: get(f, "total")?.as_num("total")?,
                windows: get(f, "windows")?.as_num("windows")?,
                peak: get(f, "peak")?.as_num("peak")?,
                longest_run: get(f, "longest_run")?.as_num("longest_run")?,
                first_cycles: get(f, "first_cycles")?.as_num("first_cycles")?,
                last_cycles: get(f, "last_cycles")?.as_num("last_cycles")?,
            });
        }
        Ok(report)
    }

    /// Human rendering: one line per finding, or a clean bill.
    pub fn render_text(&self) -> String {
        if self.findings.is_empty() {
            return "health: ok (no rule fired)\n".to_string();
        }
        let mut out = format!("health: {} finding(s)\n", self.findings.len());
        for f in &self.findings {
            out.push_str("  ");
            out.push_str(&f.render_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A timeline with `buffer.dropped` deltas per window as given.
    fn drops_timeline(deltas: &[u64]) -> Timeline {
        let mut t = Timeline::with_capacity(64);
        let mut total = 0u64;
        for (i, d) in deltas.iter().enumerate() {
            total += d;
            t.record(
                (i as u64 + 1) * 100,
                &[(names::BUFFER_DROPPED, total)],
                &[],
            );
        }
        t
    }

    #[test]
    fn clean_timeline_fires_nothing() {
        let t = drops_timeline(&[0, 0, 0, 0]);
        let report = HealthReport::evaluate(&t);
        assert!(report.is_healthy(), "{report:?}");
        assert_eq!(report.worst(), None);
        assert!(HealthReport::evaluate(&Timeline::default()).is_healthy());
    }

    #[test]
    fn single_blip_fires_at_base_severity() {
        let t = drops_timeline(&[0, 4, 0, 0]);
        let report = HealthReport::evaluate(&t);
        let f = report.finding(names::HEALTH_BUFFER_OVERFLOW).expect("fired");
        assert_eq!(f.severity, Severity::Warning);
        assert_eq!((f.total, f.windows, f.peak, f.longest_run), (4, 1, 4, 1));
        assert_eq!((f.first_cycles, f.last_cycles), (200, 200));
    }

    #[test]
    fn sustained_storm_escalates() {
        let t = drops_timeline(&[1, 2, 3, 0, 1]);
        let report = HealthReport::evaluate(&t);
        let f = report.finding(names::HEALTH_BUFFER_OVERFLOW).expect("fired");
        assert_eq!(f.severity, Severity::Critical, "3-window run escalates");
        assert_eq!(f.longest_run, 3);
        assert_eq!(f.windows, 4);
        assert_eq!(f.total, 7);
    }

    #[test]
    fn sustain_requirement_has_hysteresis() {
        let rule = HealthRule {
            id: names::HEALTH_BUFFER_OVERFLOW,
            series: names::BUFFER_DROPPED,
            threshold: 1,
            sustain: 2,
            severity: Severity::Warning,
            escalate_sustain: 0,
        };
        // Isolated blips: total clears the threshold, but no two
        // consecutive windows moved — the rule stays quiet.
        let blips = drops_timeline(&[3, 0, 3, 0, 3]);
        assert!(HealthReport::evaluate_with(&[rule], &blips).is_healthy());
        // Two adjacent windows: fires.
        let sustained = drops_timeline(&[0, 3, 3, 0]);
        let report = HealthReport::evaluate_with(&[rule], &sustained);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].longest_run, 2);
    }

    #[test]
    fn findings_sort_worst_first_and_severities_order() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Critical);
        assert_eq!(Severity::Info.escalated(), Severity::Warning);
        assert_eq!(Severity::Critical.escalated(), Severity::Critical);

        let mut t = Timeline::with_capacity(16);
        t.record(
            100,
            &[(names::GOVERNOR_BACKOFFS, 1), (names::JOURNAL_REPAIRS, 2)],
            &[],
        );
        let report = HealthReport::evaluate(&t);
        let severities: Vec<Severity> = report.findings.iter().map(|f| f.severity).collect();
        let mut sorted = severities.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(severities, sorted, "worst first");
        assert_eq!(report.worst(), Some(Severity::Warning));
        assert_eq!(
            report.findings[0].rule,
            names::HEALTH_JOURNAL_REPAIR,
            "warning before info"
        );
    }

    #[test]
    fn json_round_trips_exactly() {
        let t = drops_timeline(&[1, 2, 3]);
        let report = HealthReport::evaluate(&t);
        assert!(!report.is_healthy());
        let json = report.to_json();
        let back = HealthReport::from_json(&json).expect("parse back");
        assert_eq!(back, report);
        assert_eq!(back.to_json(), json);
        let empty = HealthReport::default();
        assert_eq!(
            HealthReport::from_json(&empty.to_json()).unwrap(),
            empty
        );
    }

    #[test]
    fn default_rules_are_sorted_and_watch_cataloged_series() {
        let counters: Vec<&str> = names::ALL_METRICS
            .iter()
            .filter(|(k, _)| *k == "counter")
            .map(|(_, n)| *n)
            .collect();
        let healths: Vec<&str> = names::ALL_METRICS
            .iter()
            .filter(|(k, _)| *k == "health")
            .map(|(_, n)| *n)
            .collect();
        let ids: Vec<&str> = DEFAULT_HEALTH_RULES.iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "rules out of order");
        assert_eq!(ids, healths, "catalog and rule set must agree");
        for rule in DEFAULT_HEALTH_RULES {
            assert!(
                counters.contains(&rule.series),
                "{} watches uncataloged series {}",
                rule.id,
                rule.series
            );
            assert!(
                names::TIMELINE_COUNTERS.contains(&rule.series),
                "{} watches a series the timeline does not track",
                rule.id
            );
            assert!(rule.sustain >= 1);
        }
    }
}
