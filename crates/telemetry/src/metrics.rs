//! Atomic metric primitives: counters, gauges, log2-bucketed
//! histograms.
//!
//! Every primitive is an `Arc` around plain atomics, so handles are
//! cheap to clone and safe to hold across threads. All updates use
//! relaxed ordering: the pipeline only ever reads totals after the
//! writers are done (scoped-thread joins give the necessary
//! happens-before), and sums/bucket increments commute, so totals are
//! deterministic regardless of interleaving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-written value (occupancy, backoff, shard count, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (high-water marks).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket
/// `k >= 1` holds `[2^(k-1), 2^k - 1]`, and bucket 64 tops out at
/// `u64::MAX` — every `u64` lands in exactly one bucket.
pub const BUCKETS: usize = 65;

/// Bucket index for a value (see [`BUCKETS`]).
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Smallest value a bucket admits.
pub fn bucket_lo(k: usize) -> u64 {
    if k == 0 {
        0
    } else {
        1u64 << (k - 1)
    }
}

/// Largest value a bucket admits.
pub fn bucket_hi(k: usize) -> u64 {
    if k == 0 {
        0
    } else if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Log2-bucketed histogram with exact count and sum.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of the same value.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.0.buckets[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        self.0.count.fetch_add(n, Ordering::Relaxed);
        self.0.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    pub fn bucket_count(&self, k: usize) -> u64 {
        self.0.buckets[k].load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        (0..BUCKETS)
            .filter_map(|k| {
                let n = self.bucket_count(k);
                (n > 0).then_some((k, n))
            })
            .collect()
    }
}

/// A named pipeline stage: how many times it ran and how many virtual
/// cycles (or, for clock-less offline stages, work units) it consumed.
#[derive(Debug, Clone, Default)]
pub struct Stage {
    entries: Counter,
    cycles: Counter,
}

impl Stage {
    pub fn new() -> Stage {
        Stage::default()
    }

    /// One pass through the stage costing `cycles`.
    pub fn record(&self, cycles: u64) {
        self.entries.inc();
        self.cycles.add(cycles);
    }

    pub fn entries(&self) -> u64 {
        self.entries.get()
    }

    pub fn cycles(&self) -> u64 {
        self.cycles.get()
    }
}

/// An open stage span: constructed at a virtual-time reading, closed at
/// a later one; the delta lands in the stage.
#[derive(Debug)]
pub struct Span {
    stage: Stage,
    start: u64,
}

impl Span {
    pub fn open(stage: Stage, start_cycles: u64) -> Span {
        Span { stage, start: start_cycles }
    }

    pub fn finish(self, now_cycles: u64) {
        self.stage.record(now_cycles.saturating_sub(self.start));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let shared = c.clone();
        shared.inc();
        assert_eq!(c.get(), 43, "clones share the cell");

        let g = Gauge::new();
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    /// Exhaustive boundary check: for every bucket, its lowest and
    /// highest admissible values map back to it and its neighbours'
    /// edges do not leak in.
    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(bucket_of(0), 0);
        for k in 1..BUCKETS {
            let lo = bucket_lo(k);
            let hi = bucket_hi(k);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), k, "low edge of bucket {k}");
            assert_eq!(bucket_of(hi), k, "high edge of bucket {k}");
            assert_eq!(bucket_of(lo - 1), k - 1, "below bucket {k}");
            if hi != u64::MAX {
                assert_eq!(bucket_of(hi + 1), k + 1, "above bucket {k}");
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record_n(1024, 5);
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 6 + 5 * 1024);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 2);
        assert_eq!(h.bucket_count(11), 5);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (2, 2), (11, 5)]
        );
    }

    #[test]
    fn span_records_virtual_delta() {
        let s = Stage::new();
        let span = Span::open(s.clone(), 100);
        span.finish(160);
        assert_eq!(s.entries(), 1);
        assert_eq!(s.cycles(), 60);
        // A span closed "before" it opened records zero, not a wrap.
        Span::open(s.clone(), 50).finish(10);
        assert_eq!(s.cycles(), 60);
        assert_eq!(s.entries(), 2);
    }
}
