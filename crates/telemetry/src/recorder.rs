//! The pipeline flight recorder: a bounded ring of structured events.
//!
//! Events are timestamped in **virtual cycles** (the sim clock), so a
//! seeded run replays to byte-identical recordings. When the ring is
//! full the oldest event is evicted and counted — the recorder never
//! grows without bound and never lies about having dropped history.
//!
//! Events must only be emitted from deterministic contexts: the
//! single-threaded simulation loop, or post-join code iterating shards
//! in index order. Parallel workers record into counters/histograms
//! (whose merges commute) and leave the recorder alone.

use std::collections::VecDeque;

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Emission order, dense from 0 including evicted events.
    pub seq: u64,
    /// Virtual timestamp (sim-clock cycles; 0 in clock-less layers).
    pub cycles: u64,
    /// Event kind, from the [`crate::names`] catalog.
    pub kind: String,
    /// Free-form human detail (paths, labels); deterministic inputs
    /// keep it deterministic.
    pub detail: String,
    /// Small structured payload, in emission order.
    pub fields: Vec<(String, u64)>,
}

/// Bounded drop-oldest event ring.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    ring: VecDeque<Event>,
}

/// Default ring capacity; enough for every fault-matrix scenario to be
/// replayed in full.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
            ring: VecDeque::new(),
        }
    }

    pub fn record(&mut self, cycles: u64, kind: &str, detail: &str, fields: &[(&str, u64)]) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Event {
            seq: self.next_seq,
            cycles,
            kind: kind.to_string(),
            detail: detail.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
        self.next_seq += 1;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring.iter().cloned().collect()
    }

    /// Events evicted to make room (not the same as never recorded).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(i * 10, "t.event", "", &[("i", i)]);
        }
        assert_eq!(fr.dropped(), 2);
        let evs = fr.events();
        assert_eq!(evs.len(), 3);
        // Oldest two (seq 0, 1) evicted; sequence numbers stay dense.
        assert_eq!(evs[0].seq, 2);
        assert_eq!(evs[2].seq, 4);
        assert_eq!(evs[2].cycles, 40);
        assert_eq!(evs[2].fields, vec![("i".to_string(), 4)]);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut fr = FlightRecorder::new(0);
        fr.record(0, "a", "", &[]);
        fr.record(1, "b", "", &[]);
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.events()[0].kind, "b");
    }
}
