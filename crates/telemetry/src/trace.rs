//! Deterministic span tracer: the causal layer between the flight
//! recorder and the report.
//!
//! Counters say *how much* each pipeline stage lost; spans say *where
//! in the causal chain* it happened. Every batch boundary — an NMI
//! sampling window, a ring-buffer drain, a journal append, a
//! supervisor redrain, a live extend/rebuild/freeze, a resolve pass —
//! opens a span that links to its parent, so a sample's whole vertical
//! path (paper §1's "vertically integrated" claim, applied to the
//! profiler itself) is reconstructible after the fact.
//!
//! Determinism contract, same as the rest of the crate:
//!
//! * **No wall clock.** Timestamps come from the published sim clock
//!   ([`crate::Telemetry::now`]) or from caller-supplied work units;
//!   two same-seed runs emit bit-identical traces.
//! * **Derived IDs.** A span id is a [`mix64`]-finalized bijection of
//!   `(layer code << 48) | per-layer sequence`; a root's trace id
//!   additionally folds in its begin cycle (the seeded sim clock), so
//!   ids replay without any global randomness.
//! * **Bounded, drop-newest.** The store holds at most `capacity`
//!   spans. Once full it stays full and every later begin is counted
//!   in `dropped` — never recorded — so a recorded span can never
//!   reference an evicted parent and every exported tree is
//!   well-formed (the property `tests/prop_trace.rs` pins).
//!
//! The Chrome trace-event export ([`TraceSnapshot::to_chrome_json`])
//! is canonical hand-rolled JSON like [`crate::export`]: integers and
//! sorted-at-source ordering only, byte-identical per seed, loadable
//! in `chrome://tracing` / Perfetto, and parseable back via
//! [`TraceSnapshot::from_chrome_json`].

use crate::export::{get, parse_json, JsonWriter};
use crate::metrics::{bucket_of, Stage, BUCKETS};
use std::collections::HashMap;

/// One causal position: the trace a span belongs to and the span
/// itself. Threaded by value through every batch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    pub trace: u64,
    pub span: u64,
}

/// Pipeline layer a span belongs to. The numeric code is part of the
/// export format (Chrome `tid`) and of span-id derivation — append
/// only, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLayer {
    /// Session install → stop (the root).
    Session,
    /// One NMI sampling window (between two drains).
    Nmi,
    /// One daemon ring-buffer drain.
    Drain,
    /// One journal batch append.
    Journal,
    /// A supervisor catch-up redrain after a restart.
    Redrain,
    /// Live-engine index work (extend / rebuild / freeze).
    Live,
    /// Agent map writes.
    Agent,
    /// VM activity observed by the session (GC pauses).
    Vm,
    /// Offline/live resolution pass.
    Resolve,
}

/// Every layer, in code order (`code = index + 1`).
pub const TRACE_LAYERS: [TraceLayer; 9] = [
    TraceLayer::Session,
    TraceLayer::Nmi,
    TraceLayer::Drain,
    TraceLayer::Journal,
    TraceLayer::Redrain,
    TraceLayer::Live,
    TraceLayer::Agent,
    TraceLayer::Vm,
    TraceLayer::Resolve,
];

impl TraceLayer {
    /// Stable numeric code (1-based; 0 is reserved for "no span").
    pub fn code(self) -> u64 {
        match self {
            TraceLayer::Session => 1,
            TraceLayer::Nmi => 2,
            TraceLayer::Drain => 3,
            TraceLayer::Journal => 4,
            TraceLayer::Redrain => 5,
            TraceLayer::Live => 6,
            TraceLayer::Agent => 7,
            TraceLayer::Vm => 8,
            TraceLayer::Resolve => 9,
        }
    }

    /// Stable lowercase name (the Chrome `cat` field).
    pub fn label(self) -> &'static str {
        match self {
            TraceLayer::Session => "session",
            TraceLayer::Nmi => "nmi",
            TraceLayer::Drain => "drain",
            TraceLayer::Journal => "journal",
            TraceLayer::Redrain => "redrain",
            TraceLayer::Live => "live",
            TraceLayer::Agent => "agent",
            TraceLayer::Vm => "vm",
            TraceLayer::Resolve => "resolve",
        }
    }

    /// Inverse of [`Self::code`].
    pub fn from_code(code: u64) -> Option<TraceLayer> {
        TRACE_LAYERS.get(code.checked_sub(1)? as usize).copied()
    }
}

/// One recorded span. `parent == 0` marks a trace root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: u64,
    pub trace: u64,
    pub layer: TraceLayer,
    pub name: String,
    /// Virtual cycles (or work units) at begin/end; `begin <= end`.
    pub begin: u64,
    pub end: u64,
    pub fields: Vec<(String, u64)>,
}

impl SpanRecord {
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.begin)
    }

    pub fn field(&self, key: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// SplitMix64 finalizer: a bijective avalanche mix, so structured
/// inputs (layer code + sequence) become well-spread ids while staying
/// collision-free.
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Default bound on recorded spans per store.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// Bounded deterministic span store. Owned by a registry (behind its
/// mutex) for the runtime pipeline, or used standalone for the resolve
/// pass's local trace.
#[derive(Debug)]
pub struct SpanStore {
    spans: Vec<SpanRecord>,
    /// id → index into `spans`, for `end` updates.
    index: HashMap<u64, usize>,
    /// Per-layer sequence counters (index = code - 1), starting at 1
    /// so the mixed id is never 0.
    seq: [u64; TRACE_LAYERS.len()],
    capacity: usize,
    dropped: u64,
    /// First root opened (the session root, discoverable by layers
    /// that only hold a registry handle).
    root: Option<TraceCtx>,
}

impl Default for SpanStore {
    fn default() -> Self {
        SpanStore::new(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanStore {
    pub fn new(capacity: usize) -> SpanStore {
        SpanStore {
            spans: Vec::new(),
            index: HashMap::new(),
            seq: [0; TRACE_LAYERS.len()],
            capacity: capacity.max(1),
            dropped: 0,
            root: None,
        }
    }

    /// Open a span at `now`. Returns the new context and whether it
    /// was recorded (`false` once the store is full — the id is still
    /// allocated, so the sequence stream replays identically either
    /// way, but nothing downstream can reference an evicted parent
    /// because a full store never records again).
    pub fn begin(
        &mut self,
        layer: TraceLayer,
        name: &str,
        parent: Option<TraceCtx>,
        now: u64,
    ) -> (TraceCtx, bool) {
        let slot = (layer.code() - 1) as usize;
        self.seq[slot] += 1;
        let id = mix64((layer.code() << 48) | self.seq[slot]);
        let trace = match parent {
            Some(p) => p.trace,
            None => {
                let t = mix64(id ^ mix64(now ^ 0x9E37_79B9_7F4A_7C15));
                if t == 0 {
                    1
                } else {
                    t
                }
            }
        };
        let ctx = TraceCtx { trace, span: id };
        if parent.is_none() && self.root.is_none() {
            self.root = Some(ctx);
        }
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            return (ctx, false);
        }
        self.index.insert(id, self.spans.len());
        self.spans.push(SpanRecord {
            id,
            parent: parent.map_or(0, |p| p.span),
            trace,
            layer,
            name: name.to_string(),
            begin: now,
            end: now,
            fields: Vec::new(),
        });
        (ctx, true)
    }

    /// Close a span at `now`, attaching `fields`. Returns the span's
    /// duration, or `None` when the span was never recorded (dropped
    /// at begin, or a foreign id).
    pub fn end(&mut self, ctx: TraceCtx, now: u64, fields: &[(&str, u64)]) -> Option<u64> {
        let i = *self.index.get(&ctx.span)?;
        let span = &mut self.spans[i];
        span.end = span.begin.max(now);
        span.fields
            .extend(fields.iter().map(|(k, v)| (k.to_string(), *v)));
        Some(span.duration())
    }

    /// The first root opened in this store (the session root).
    pub fn root(&self) -> Option<TraceCtx> {
        self.root
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans that arrived after the store filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Materialize into ordered plain data (begin order).
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            spans: self.spans.clone(),
            dropped: self.dropped,
        }
    }
}

/// An open span coupled to a [`Stage`] timer: ending it lands the
/// span's virtual-cycle duration on the stage, so the span tree and
/// the stage totals can never disagree — the begin/end guard over the
/// existing stage timers.
#[derive(Debug)]
pub struct StagedSpan {
    pub ctx: TraceCtx,
    stage: Stage,
}

impl StagedSpan {
    pub fn new(ctx: TraceCtx, stage: Stage) -> StagedSpan {
        StagedSpan { ctx, stage }
    }

    /// Close via `store`, charging the duration to the stage.
    pub fn finish(self, store: &mut SpanStore, now: u64, fields: &[(&str, u64)]) {
        if let Some(dur) = store.end(self.ctx, now, fields) {
            self.stage.record(dur);
        }
    }
}

/// Materialized trace: plain ordered data, embeddable in reports.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSnapshot {
    /// Recorded spans in begin order.
    pub spans: Vec<SpanRecord>,
    /// Spans dropped because the store was full.
    pub dropped: u64,
}

impl TraceSnapshot {
    pub fn span(&self, id: u64) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Trace roots (spans with no parent), in begin order.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == 0).collect()
    }

    /// Direct children of `id`, in begin order.
    pub fn children(&self, id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == id).collect()
    }

    /// Chrome trace-event JSON (complete-event `ph:"X"` records; `ts`
    /// and `dur` are virtual cycles, `tid` is the layer code).
    /// Canonical: same snapshot → same bytes.
    pub fn to_chrome_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj_open();
        w.key("traceEvents");
        w.arr_open();
        for s in &self.spans {
            w.obj_open();
            w.key("name");
            w.str(&s.name);
            w.key("cat");
            w.str(s.layer.label());
            w.key("ph");
            w.str("X");
            w.key("ts");
            w.num(s.begin);
            w.key("dur");
            w.num(s.duration());
            w.key("pid");
            w.num(1);
            w.key("tid");
            w.num(s.layer.code());
            w.key("args");
            w.obj_open();
            w.key("id");
            w.num(s.id);
            w.key("parent");
            w.num(s.parent);
            w.key("trace");
            w.num(s.trace);
            for (k, v) in &s.fields {
                w.key(&format!("f.{k}"));
                w.num(*v);
            }
            w.obj_close();
            w.obj_close();
        }
        w.arr_close();
        w.key("otherData");
        w.obj_open();
        w.key("spans_dropped");
        w.num(self.dropped);
        w.obj_close();
        w.obj_close();
        w.finish()
    }

    /// Parse a trace previously written by [`Self::to_chrome_json`].
    /// Round-trips exactly: `from(to(x)) == x`.
    pub fn from_chrome_json(text: &str) -> Result<TraceSnapshot, String> {
        let root = parse_json(text)?;
        let top = root.as_obj("top level")?;
        let mut snap = TraceSnapshot::default();
        for v in get(top, "traceEvents")?.as_arr("traceEvents")? {
            let e = v.as_obj("event")?;
            let tid = get(e, "tid")?.as_num("tid")?;
            let layer = TraceLayer::from_code(tid)
                .ok_or_else(|| format!("unknown layer code {tid}"))?;
            let args = get(e, "args")?.as_obj("args")?;
            let mut fields = Vec::new();
            for (k, fv) in args {
                if let Some(name) = k.strip_prefix("f.") {
                    fields.push((name.to_string(), fv.as_num(k)?));
                }
            }
            let begin = get(e, "ts")?.as_num("ts")?;
            snap.spans.push(SpanRecord {
                id: get(args, "id")?.as_num("id")?,
                parent: get(args, "parent")?.as_num("parent")?,
                trace: get(args, "trace")?.as_num("trace")?,
                layer,
                name: get(e, "name")?.as_str("name")?.to_string(),
                begin,
                end: begin + get(e, "dur")?.as_num("dur")?,
                fields,
            });
        }
        let other = get(top, "otherData")?.as_obj("otherData")?;
        snap.dropped = get(other, "spans_dropped")?.as_num("spans_dropped")?;
        Ok(snap)
    }

    /// Log2 histogram of span durations for spans named `name` (all
    /// spans when `None`), as `(bucket, count)` pairs — the shape
    /// [`crate::export::log2_rows`] renders.
    pub fn duration_buckets(&self, name: Option<&str>) -> Vec<(usize, u64)> {
        let mut counts = [0u64; BUCKETS];
        for s in &self.spans {
            if name.is_none_or(|n| s.name == n) {
                counts[bucket_of(s.duration())] += 1;
            }
        }
        (0..BUCKETS)
            .filter_map(|k| (counts[k] > 0).then_some((k, counts[k])))
            .collect()
    }
}

// ---------------- lineage ----------------

/// Loss-bucket names, matching `ResolutionQuality`'s loss fields.
pub const LINEAGE_DROPPED: &str = "dropped";
pub const LINEAGE_EVICTED: &str = "evicted";
pub const LINEAGE_QUARANTINED: &str = "quarantined";
pub const LINEAGE_BLOCKED: &str = "blocked";

/// All loss buckets, in accounting order.
pub const LINEAGE_BUCKETS: [&str; 4] = [
    LINEAGE_DROPPED,
    LINEAGE_EVICTED,
    LINEAGE_QUARANTINED,
    LINEAGE_BLOCKED,
];

/// One attribution row: `samples` of loss bucket `bucket` occurred at
/// span `span` of trace `trace` (0 = unattributed: the loss predates
/// tracing, e.g. untagged v1 journal records).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageEntry {
    pub bucket: &'static str,
    pub layer: TraceLayer,
    pub trace: u64,
    pub span: u64,
    /// Human label for the causal site ("journal batch seq 7",
    /// "pid 3 gen 1", ...).
    pub label: String,
    pub samples: u64,
}

/// The report's lineage table: every `ResolutionQuality` loss bucket
/// decomposed by causal span. Totals reconcile *exactly* — per bucket,
/// the entry sum equals the quality count (the fault-matrix invariant).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LineageTable {
    pub entries: Vec<LineageEntry>,
}

impl LineageTable {
    pub fn push(
        &mut self,
        bucket: &'static str,
        layer: TraceLayer,
        ctx: Option<TraceCtx>,
        label: impl Into<String>,
        samples: u64,
    ) {
        if samples == 0 {
            return;
        }
        self.entries.push(LineageEntry {
            bucket,
            layer,
            trace: ctx.map_or(0, |c| c.trace),
            span: ctx.map_or(0, |c| c.span),
            label: label.into(),
            samples,
        });
    }

    /// Sum of one bucket's entries.
    pub fn total(&self, bucket: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.bucket == bucket)
            .map(|e| e.samples)
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Aligned human rendering (the `viprof-report --lineage` footer
    /// and `viprof-trace --lineage` body).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for bucket in LINEAGE_BUCKETS {
            let rows: Vec<&LineageEntry> =
                self.entries.iter().filter(|e| e.bucket == bucket).collect();
            if rows.is_empty() {
                continue;
            }
            let total: u64 = rows.iter().map(|e| e.samples).sum();
            out.push_str(&format!("{bucket}: {total} sample(s)\n"));
            for e in rows {
                let site = if e.span == 0 {
                    "(untraced)".to_string()
                } else {
                    format!("span {:016x}", e.span)
                };
                out.push_str(&format!(
                    "  {:<10} {:<28} {} {}\n",
                    e.layer.label(),
                    e.label,
                    e.samples,
                    site
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_layer_scoped() {
        let run = || {
            let mut s = SpanStore::new(16);
            let (root, _) = s.begin(TraceLayer::Session, "session", None, 100);
            let (a, _) = s.begin(TraceLayer::Drain, "drain", Some(root), 200);
            let (b, _) = s.begin(TraceLayer::Drain, "drain", Some(root), 300);
            (root, a, b)
        };
        let (r1, a1, b1) = run();
        let (r2, a2, b2) = run();
        assert_eq!((r1, a1, b1), (r2, a2, b2), "same inputs, same ids");
        assert_ne!(a1.span, b1.span, "sequence numbers separate siblings");
        assert_eq!(a1.trace, r1.trace, "children inherit the trace id");
        assert_ne!(r1.span, 0);
        assert_ne!(r1.trace, 0);
    }

    #[test]
    fn root_trace_id_folds_in_the_clock() {
        let mut a = SpanStore::new(4);
        let mut b = SpanStore::new(4);
        let (ra, _) = a.begin(TraceLayer::Session, "session", None, 100);
        let (rb, _) = b.begin(TraceLayer::Session, "session", None, 900);
        assert_eq!(ra.span, rb.span, "same layer+seq, same span id");
        assert_ne!(ra.trace, rb.trace, "begin cycle differentiates traces");
    }

    #[test]
    fn full_store_drops_newest_and_never_records_again() {
        let mut s = SpanStore::new(2);
        let (root, rec) = s.begin(TraceLayer::Session, "session", None, 0);
        assert!(rec);
        let (_, rec) = s.begin(TraceLayer::Drain, "d1", Some(root), 1);
        assert!(rec);
        let (late, rec) = s.begin(TraceLayer::Drain, "d2", Some(root), 2);
        assert!(!rec, "store is full");
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.end(late, 9, &[]), None, "dropped spans cannot close");
        // Recorded spans still close normally.
        assert_eq!(s.end(root, 10, &[("k", 3)]), Some(10));
        let snap = s.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.dropped, 1);
        // Every recorded span's parent is 0 or recorded (drop-newest
        // keeps trees closed under parenthood).
        for span in &snap.spans {
            assert!(span.parent == 0 || snap.span(span.parent).is_some());
        }
    }

    #[test]
    fn end_clamps_and_attaches_fields() {
        let mut s = SpanStore::new(4);
        let (ctx, _) = s.begin(TraceLayer::Nmi, "window", None, 500);
        assert_eq!(s.end(ctx, 400, &[]), Some(0), "never negative durations");
        let snap = s.snapshot();
        assert_eq!(snap.spans[0].end, 500);
        let (ctx2, _) = s.begin(TraceLayer::Nmi, "window", None, 600);
        s.end(ctx2, 700, &[("samples", 12)]);
        assert_eq!(s.snapshot().spans[1].field("samples"), Some(12));
    }

    #[test]
    fn staged_span_charges_the_stage() {
        let mut s = SpanStore::new(4);
        let stage = Stage::new();
        let (ctx, _) = s.begin(TraceLayer::Agent, "map_write", None, 100);
        StagedSpan::new(ctx, stage.clone()).finish(&mut s, 160, &[("entries", 4)]);
        assert_eq!((stage.entries(), stage.cycles()), (1, 60));
        assert_eq!(s.snapshot().spans[0].field("entries"), Some(4));
    }

    #[test]
    fn chrome_json_round_trips_exactly() {
        let mut s = SpanStore::new(8);
        let (root, _) = s.begin(TraceLayer::Session, "session", None, 10);
        let (d, _) = s.begin(TraceLayer::Drain, "daemon.drain", Some(root), 20);
        s.end(d, 45, &[("samples", 7), ("dropped", 1)]);
        s.end(root, 90, &[]);
        let snap = s.snapshot();
        let json = snap.to_chrome_json();
        let back = TraceSnapshot::from_chrome_json(&json).expect("parse back");
        assert_eq!(back, snap);
        assert_eq!(back.to_chrome_json(), json, "re-export is byte-identical");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"spans_dropped\":0"));
    }

    #[test]
    fn chrome_json_is_deterministic() {
        let build = || {
            let mut s = SpanStore::new(8);
            let (root, _) = s.begin(TraceLayer::Session, "session", None, 5);
            let (j, _) = s.begin(TraceLayer::Journal, "journal.batch", Some(root), 6);
            s.end(j, 8, &[("seq", 0)]);
            s.snapshot().to_chrome_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn snapshot_tree_accessors() {
        let mut s = SpanStore::new(8);
        let (root, _) = s.begin(TraceLayer::Session, "session", None, 0);
        let (w, _) = s.begin(TraceLayer::Nmi, "window", Some(root), 1);
        let (_d, _) = s.begin(TraceLayer::Drain, "drain", Some(w), 2);
        let snap = s.snapshot();
        assert_eq!(snap.roots().len(), 1);
        assert_eq!(snap.children(root.span).len(), 1);
        assert_eq!(snap.children(w.span)[0].layer, TraceLayer::Drain);
        assert_eq!(snap.duration_buckets(None).len(), 1, "all zero-length");
    }

    #[test]
    fn layer_codes_round_trip() {
        for layer in TRACE_LAYERS {
            assert_eq!(TraceLayer::from_code(layer.code()), Some(layer));
        }
        assert_eq!(TraceLayer::from_code(0), None);
        assert_eq!(TraceLayer::from_code(99), None);
    }

    #[test]
    fn lineage_totals_and_rendering() {
        let mut t = LineageTable::default();
        let ctx = TraceCtx { trace: 9, span: 7 };
        t.push(LINEAGE_DROPPED, TraceLayer::Drain, Some(ctx), "batch seq 0", 5);
        t.push(LINEAGE_DROPPED, TraceLayer::Drain, None, "untraced", 2);
        t.push(LINEAGE_BLOCKED, TraceLayer::Resolve, None, "pid 3 gen 1", 4);
        t.push(LINEAGE_EVICTED, TraceLayer::Drain, Some(ctx), "ignored", 0);
        assert_eq!(t.total(LINEAGE_DROPPED), 7);
        assert_eq!(t.total(LINEAGE_BLOCKED), 4);
        assert_eq!(t.total(LINEAGE_EVICTED), 0, "zero rows are elided");
        assert_eq!(t.entries.len(), 3);
        let text = t.render_text();
        assert!(text.contains("dropped: 7 sample(s)"));
        assert!(text.contains("(untraced)"));
        assert!(text.contains("pid 3 gen 1"));
    }
}
