//! # viprof-telemetry — the pipeline's self-observability layer
//!
//! VIProf's thesis is that a profiler must see every layer of the
//! stack; this crate applies that thesis to the profiler itself. One
//! [`Telemetry`] registry rides along a session and collects, from
//! every pipeline stage (NMI handler → ring buffer → daemon → journal
//! → resolver → report):
//!
//! * **counters / gauges / histograms** ([`metrics`]) — always-on
//!   atomics, JXPerf-style: cheap enough to never turn off;
//! * **stage timers** ([`metrics::Stage`] / [`metrics::Span`]) —
//!   spans measured in **virtual cycles** (the sim clock), never wall
//!   time, so a seeded run reproduces its own overhead breakdown
//!   bit-for-bit;
//! * a **flight recorder** ([`recorder`]) — a bounded ring of
//!   structured events that makes fault-matrix runs explainable after
//!   the fact.
//!
//! Registration (name → handle) is the cold path, behind a mutex;
//! instrumentation sites resolve their handles once at attach time and
//! then touch only atomics. Telemetry never charges simulated cycles:
//! the observed run's virtual timing is identical with the layer on or
//! off, which `journal_costs_no_cycles`-style tests rely on.
//!
//! Exports ([`export::TelemetrySnapshot`]) are fully ordered and
//! integer-valued, so the JSON form is byte-identical across same-seed
//! runs — the determinism contract `tests/telemetry.rs` pins.

pub mod export;
pub mod health;
pub mod metrics;
pub mod names;
pub mod recorder;
pub mod synthetic;
pub mod timeline;
pub mod trace;

pub use export::{log2_rows, HistogramSnapshot, StageSnapshot, TelemetrySnapshot};
pub use health::{
    HealthFinding, HealthReport, HealthRule, Severity, DEFAULT_HEALTH_RULES,
};
pub use metrics::{bucket_hi, bucket_lo, bucket_of, Counter, Gauge, Histogram, Span, Stage, BUCKETS};
pub use recorder::{Event, FlightRecorder, DEFAULT_EVENT_CAPACITY};
pub use timeline::{Timeline, TimelineWindow, DEFAULT_TIMELINE_CAPACITY};
pub use trace::{
    LineageEntry, LineageTable, SpanRecord, SpanStore, StagedSpan, TraceCtx, TraceLayer,
    TraceSnapshot, DEFAULT_SPAN_CAPACITY,
};

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    gauges: Mutex<BTreeMap<&'static str, Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    stages: Mutex<BTreeMap<&'static str, Stage>>,
    recorder: Mutex<FlightRecorder>,
    tracer: Mutex<SpanStore>,
    timeline: Mutex<Timeline>,
    /// Virtual "now": clocked layers publish the sim clock here so
    /// clock-less layers (journal, agent, bench harness) can stamp
    /// flight-recorder events with a deterministic timestamp.
    now: AtomicU64,
}

/// A clonable handle to one telemetry registry. Cloning shares the
/// registry (sessions pass the same handle down every layer).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Arc<Registry>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("now", &self.now())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Registry whose flight recorder keeps at most `capacity` events.
    pub fn with_recorder_capacity(capacity: usize) -> Telemetry {
        let t = Telemetry::default();
        *t.inner.recorder.lock().unwrap() = FlightRecorder::new(capacity);
        t
    }

    /// Get-or-create; call once per site and keep the handle (the
    /// lookup locks a map, the handle does not).
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner
            .counters
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .clone()
    }

    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .clone()
    }

    pub fn stage(&self, name: &'static str) -> Stage {
        self.inner
            .stages
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .clone()
    }

    /// Open a virtual-time span over `name` starting at the current
    /// virtual clock.
    pub fn span(&self, name: &'static str) -> Span {
        Span::open(self.stage(name), self.now())
    }

    /// Publish the sim clock (cheap atomic store; clocked layers call
    /// this as time advances).
    pub fn set_now(&self, cycles: u64) {
        self.inner.now.store(cycles, Ordering::Relaxed);
    }

    /// Last published virtual time.
    pub fn now(&self) -> u64 {
        self.inner.now.load(Ordering::Relaxed)
    }

    /// Record a flight-recorder event stamped with the current virtual
    /// time. Only call from deterministic (single-threaded or
    /// post-join) contexts.
    pub fn event(&self, kind: &str, detail: &str, fields: &[(&str, u64)]) {
        self.event_at(self.now(), kind, detail, fields);
    }

    /// [`Self::event`] with an explicit virtual timestamp.
    pub fn event_at(&self, cycles: u64, kind: &str, detail: &str, fields: &[(&str, u64)]) {
        self.inner
            .recorder
            .lock()
            .unwrap()
            .record(cycles, kind, detail, fields);
    }

    /// Open a trace span at the current virtual time. `parent: None`
    /// starts a new trace; the first root becomes the session root,
    /// discoverable by lower layers via [`Self::trace_root`]. Like
    /// flight-recorder events, only call from deterministic
    /// (single-threaded or post-join) contexts.
    pub fn trace_begin(
        &self,
        layer: TraceLayer,
        name: &str,
        parent: Option<TraceCtx>,
    ) -> TraceCtx {
        self.trace_begin_at(self.now(), layer, name, parent)
    }

    /// [`Self::trace_begin`] with an explicit virtual timestamp.
    pub fn trace_begin_at(
        &self,
        cycles: u64,
        layer: TraceLayer,
        name: &str,
        parent: Option<TraceCtx>,
    ) -> TraceCtx {
        let (ctx, recorded) = self
            .inner
            .tracer
            .lock()
            .unwrap()
            .begin(layer, name, parent, cycles);
        if recorded {
            self.counter(names::TRACE_SPANS_RECORDED).inc();
        } else {
            self.counter(names::TRACE_SPANS_DROPPED).inc();
        }
        ctx
    }

    /// Close a trace span at the current virtual time, attaching
    /// `fields`. Closing a span the bounded store dropped is a no-op.
    pub fn trace_end(&self, ctx: TraceCtx, fields: &[(&str, u64)]) {
        self.trace_end_at(self.now(), ctx, fields);
    }

    /// [`Self::trace_end`] with an explicit virtual timestamp.
    pub fn trace_end_at(&self, cycles: u64, ctx: TraceCtx, fields: &[(&str, u64)]) {
        self.inner.tracer.lock().unwrap().end(ctx, cycles, fields);
    }

    /// Close a trace span and charge its virtual-cycle duration to
    /// stage `stage_name` — the begin/end guard coupling spans to the
    /// existing stage timers, so the span tree and the stage totals
    /// cannot disagree.
    pub fn trace_end_staged(
        &self,
        ctx: TraceCtx,
        stage_name: &'static str,
        fields: &[(&str, u64)],
    ) {
        let now = self.now();
        let dur = self.inner.tracer.lock().unwrap().end(ctx, now, fields);
        if let Some(dur) = dur {
            self.stage(stage_name).record(dur);
        }
    }

    /// The first root span opened in this registry (the session root).
    pub fn trace_root(&self) -> Option<TraceCtx> {
        self.inner.tracer.lock().unwrap().root()
    }

    /// Materialize the span store into ordered plain data.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.inner.tracer.lock().unwrap().snapshot()
    }

    /// Sample the timeline at the current virtual time: read the
    /// tracked series ([`names::TIMELINE_COUNTERS`] /
    /// [`names::TIMELINE_GAUGES`]) and append one window of deltas.
    /// The daemon calls this after every drain window; `stop()` takes
    /// a final sample before exporting. Like flight-recorder events,
    /// only call from deterministic contexts.
    pub fn sample_timeline(&self) {
        self.sample_timeline_at(self.now());
    }

    /// [`Self::sample_timeline`] with an explicit virtual timestamp.
    /// Reads the registry without registering anything, so sampling
    /// never changes which metrics a snapshot contains.
    pub fn sample_timeline_at(&self, cycles: u64) {
        let counters: Vec<(&'static str, u64)> = {
            let map = self.inner.counters.lock().unwrap();
            names::TIMELINE_COUNTERS
                .iter()
                .map(|name| (*name, map.get(*name).map(|c| c.get()).unwrap_or(0)))
                .collect()
        };
        let gauges: Vec<(&'static str, u64)> = {
            let map = self.inner.gauges.lock().unwrap();
            names::TIMELINE_GAUGES
                .iter()
                .map(|name| (*name, map.get(*name).map(|g| g.get()).unwrap_or(0)))
                .collect()
        };
        let coalesced = {
            let mut timeline = self.inner.timeline.lock().unwrap();
            let before = timeline.coalesced();
            timeline.record(cycles, &counters, &gauges);
            timeline.coalesced() - before
        };
        // Self-accounting (after the record, so the timeline never
        // tracks its own counters).
        self.counter(names::TIMELINE_SAMPLES).inc();
        if coalesced > 0 {
            self.counter(names::TIMELINE_WINDOWS_COALESCED).add(coalesced);
        }
    }

    /// Materialize the timeline ring into ordered plain data.
    pub fn timeline_snapshot(&self) -> Timeline {
        self.inner.timeline.lock().unwrap().clone()
    }

    /// Materialize everything into ordered plain data.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| (name.to_string(), c.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, g)| (name.to_string(), g.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.to_string(),
                count: h.count(),
                sum: h.sum(),
                buckets: h.nonzero_buckets(),
            })
            .collect();
        let stages = self
            .inner
            .stages
            .lock()
            .unwrap()
            .iter()
            .map(|(name, s)| StageSnapshot {
                name: name.to_string(),
                entries: s.entries(),
                cycles: s.cycles(),
            })
            .collect();
        let recorder = self.inner.recorder.lock().unwrap();
        TelemetrySnapshot {
            counters,
            gauges,
            histograms,
            stages,
            events: recorder.events(),
            events_dropped: recorder.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_registry() {
        let t = Telemetry::new();
        let a = t.counter(names::DAEMON_DRAINS);
        let b = t.clone().counter(names::DAEMON_DRAINS);
        a.add(2);
        b.inc();
        assert_eq!(t.counter(names::DAEMON_DRAINS).get(), 3);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let build = || {
            let t = Telemetry::new();
            // Registered out of order; the snapshot sorts by name.
            t.counter(names::SESSION_STOPS).inc();
            t.counter(names::DAEMON_WAKEUPS).add(5);
            t.gauge(names::BUFFER_OCCUPANCY).set(3);
            t.histogram(names::DAEMON_BATCH_SAMPLES).record(12);
            t.set_now(500);
            t.event(names::EVENT_DAEMON_STALL, "", &[("missed", 1)]);
            t.stage(names::STAGE_DAEMON_DRAIN).record(90);
            t.snapshot()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        let names: Vec<&str> = a.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec![names::DAEMON_WAKEUPS, names::SESSION_STOPS]);
        assert_eq!(a.events[0].cycles, 500);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let t = Telemetry::new();
        t.counter(names::BUFFER_DROPPED).add(7);
        t.stage(names::STAGE_NMI_HANDLER).record(123);
        t.event_at(9, names::EVENT_SESSION_STOP, "s", &[]);
        let snap = t.snapshot();
        let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn trace_spans_ride_the_registry() {
        let t = Telemetry::new();
        t.set_now(1_000);
        let root = t.trace_begin(TraceLayer::Session, "session", None);
        assert_eq!(t.trace_root(), Some(root));
        t.set_now(1_200);
        let drain = t.trace_begin(TraceLayer::Drain, "daemon.drain", Some(root));
        t.set_now(1_260);
        t.trace_end_staged(drain, names::STAGE_DAEMON_DRAIN, &[("samples", 4)]);
        t.set_now(2_000);
        t.trace_end(root, &[]);

        let trace = t.trace_snapshot();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].name, "session");
        assert_eq!(trace.spans[1].parent, root.span);
        assert_eq!(trace.spans[1].duration(), 60);
        assert_eq!(trace.spans[1].field("samples"), Some(4));

        let snap = t.snapshot();
        assert_eq!(snap.counter(names::TRACE_SPANS_RECORDED), 2);
        assert_eq!(snap.counter(names::TRACE_SPANS_DROPPED), 0);
        let st = snap.stage(names::STAGE_DAEMON_DRAIN).unwrap();
        assert_eq!(
            (st.entries, st.cycles),
            (1, 60),
            "staged guard lands the span duration on the stage"
        );
    }

    #[test]
    fn timeline_sampling_tracks_allowlisted_series_without_registering() {
        let t = Telemetry::new();
        t.counter(names::BUFFER_DROPPED).add(2);
        t.set_now(1_000);
        t.sample_timeline();
        t.counter(names::BUFFER_DROPPED).add(3);
        t.counter(names::REPORT_ROWS).add(9); // untracked by the timeline
        t.set_now(2_000);
        t.sample_timeline();

        let tl = t.timeline_snapshot();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.series(names::BUFFER_DROPPED), vec![(1_000, 2), (2_000, 3)]);
        assert_eq!(tl.total(names::BUFFER_DROPPED), 5);
        assert_eq!(tl.total(names::REPORT_ROWS), 0, "untracked series ignored");

        let snap = t.snapshot();
        assert_eq!(snap.counter(names::TIMELINE_SAMPLES), 2);
        // Reading the allowlist registers nothing: tracked-but-silent
        // series stay out of the snapshot entirely.
        assert!(
            snap.counters.iter().all(|(n, _)| n != names::GOVERNOR_BACKOFFS),
            "sampling must not register silent series"
        );
    }

    #[test]
    fn spans_use_published_virtual_time() {
        let t = Telemetry::new();
        t.set_now(1_000);
        let span = t.span(names::STAGE_SESSION_FLUSH);
        t.set_now(1_450);
        span.finish(t.now());
        let s = t.snapshot();
        let st = s.stage(names::STAGE_SESSION_FLUSH).unwrap();
        assert_eq!((st.entries, st.cycles), (1, 450));
    }
}
