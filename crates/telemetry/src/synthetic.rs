//! Deterministic synthetic session: a miniature drain schedule driven
//! through a real registry, so fixed-seed telemetry/timeline artifacts
//! exist without running the full simulator.
//!
//! `viprof-diff --selftest` and `--emit-baseline` build their
//! artifacts here, and the committed `results/baseline_telemetry.json`
//! / `results/baseline_timeline.json` are this generator's output at
//! [`BASELINE_SEED`] — so `scripts/verify.sh` can regenerate a fresh
//! export and gate it against the reviewed baseline byte for byte. A
//! different seed perturbs every series, which is what the selftest's
//! "nonzero deltas exit nonzero" leg relies on.

use crate::{names, Telemetry, TelemetrySnapshot, Timeline};

/// The seed the committed `results/` baselines are generated with
/// (the bench harness default).
pub const BASELINE_SEED: u64 = 2007;

/// Windows the synthetic schedule drives (enough to exercise bursts,
/// quiet stretches and a governor ramp).
pub const SYNTHETIC_WINDOWS: u64 = 24;

/// One generated fixed-seed session: the final cumulative snapshot
/// and the timeline sampled after each synthetic drain window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticSession {
    pub telemetry: TelemetrySnapshot,
    pub timeline: Timeline,
}

/// SplitMix64, the crate-local convention for seeded generators.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Drive a fresh registry through [`SYNTHETIC_WINDOWS`] drain windows
/// seeded by `seed`. Pure: the same seed always produces the same
/// snapshot and timeline bytes.
pub fn synthetic_session(seed: u64) -> SyntheticSession {
    let mut rng = SplitMix64(seed ^ 0x51ED_BA5E);
    let t = Telemetry::new();
    let delivered = t.counter(names::CPU_SAMPLES_DELIVERED);
    let pushed = t.counter(names::BUFFER_PUSHED);
    let dropped = t.counter(names::BUFFER_DROPPED);
    let drains = t.counter(names::DAEMON_DRAINS);
    let wakeups = t.counter(names::DAEMON_WAKEUPS);
    let backoffs = t.counter(names::GOVERNOR_BACKOFFS);
    let recoveries = t.counter(names::GOVERNOR_RECOVERIES);
    let occupancy = t.gauge(names::BUFFER_OCCUPANCY);
    let capacity = t.gauge(names::BUFFER_CAPACITY);
    let period = t.gauge(names::GOVERNOR_PERIOD);
    let batch = t.histogram(names::DAEMON_BATCH_SAMPLES);
    let drain_stage = t.stage(names::STAGE_DAEMON_DRAIN);

    capacity.set(64);
    let base_period = 15_000 + rng.below(5_000);
    period.set(base_period);
    t.set_now(0);
    t.event(names::EVENT_SESSION_INSTALL, "synthetic", &[("seed", seed)]);

    let mut now = 0u64;
    for window in 0..SYNTHETIC_WINDOWS {
        now += 50_000 + rng.below(25_000);
        t.set_now(now);
        let arrivals = 40 + rng.below(80);
        delivered.add(arrivals);
        // A mid-session burst overflows the ring for a few windows and
        // the synthetic governor backs the period off, then recovers.
        let bursting = (8..12).contains(&window);
        if bursting {
            let shed = 5 + rng.below(10);
            dropped.add(shed);
            pushed.add(arrivals - shed);
            occupancy.set(60 + rng.below(4));
            if window == 8 {
                backoffs.inc();
                period.set(base_period * 4);
            }
        } else {
            pushed.add(arrivals);
            occupancy.set(rng.below(16));
            if window == 12 {
                recoveries.inc();
                period.set(base_period);
            }
        }
        wakeups.inc();
        drains.inc();
        batch.record(arrivals);
        drain_stage.record(200 + rng.below(300));
        t.sample_timeline();
    }
    t.event(names::EVENT_SESSION_STOP, "synthetic", &[("windows", SYNTHETIC_WINDOWS)]);
    SyntheticSession {
        telemetry: t.snapshot(),
        timeline: t.timeline_snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HealthReport;

    #[test]
    fn same_seed_is_byte_identical_different_seed_is_not() {
        let a = synthetic_session(BASELINE_SEED);
        let b = synthetic_session(BASELINE_SEED);
        assert_eq!(a.telemetry.to_json(), b.telemetry.to_json());
        assert_eq!(a.timeline.to_json(), b.timeline.to_json());
        let c = synthetic_session(BASELINE_SEED + 1);
        assert_ne!(a.telemetry.to_json(), c.telemetry.to_json());
        assert_ne!(a.timeline.to_json(), c.timeline.to_json());
    }

    #[test]
    fn synthetic_timeline_telescopes_and_flags_the_burst() {
        let s = synthetic_session(BASELINE_SEED);
        assert_eq!(s.timeline.samples(), SYNTHETIC_WINDOWS);
        for name in [names::BUFFER_DROPPED, names::CPU_SAMPLES_DELIVERED] {
            let telescoped: u64 = s.timeline.windows().iter().map(|w| w.delta(name)).sum();
            assert_eq!(telescoped, s.telemetry.counter(name), "{name}");
        }
        let health = HealthReport::evaluate(&s.timeline);
        let overflow = health
            .finding(names::HEALTH_BUFFER_OVERFLOW)
            .expect("burst windows must fire the overflow rule");
        assert!(overflow.longest_run >= 3, "{overflow:?}");
        assert!(health.finding(names::HEALTH_GOVERNOR_BACKOFF).is_some());
        assert!(health.finding(names::HEALTH_JOURNAL_REPAIR).is_none());
    }
}
