//! Temporal telemetry: a bounded ring of per-drain-window snapshot
//! deltas, the time-series face of the registry.
//!
//! [`crate::export::TelemetrySnapshot`] is point-in-time: it tells an
//! operator *how much* was dropped, evicted, or repaired by the end of
//! a session, but not *when* — a governor backoff ramp, an overflow
//! burst and a journal-repair storm all collapse into the same final
//! totals. The [`Timeline`] keeps the shape: the daemon samples a
//! fixed allowlist of series ([`names::TIMELINE_COUNTERS`] /
//! [`names::TIMELINE_GAUGES`]) after every drain window (and on
//! supervisor-forced redrains), and each sample appends one
//! [`TimelineWindow`] holding the per-window **counter deltas** and
//! the absolute **gauge values** at the window's end, stamped with the
//! sim clock.
//!
//! Determinism and bounds:
//!
//! * timestamps come only from the virtual clock, so a seeded run
//!   reproduces its timeline byte for byte;
//! * windows with an equal timestamp merge into their predecessor, so
//!   window timestamps are *strictly* monotone;
//! * when the ring exceeds its capacity the two **oldest** windows
//!   coalesce (deltas summed, the later gauges kept) — old history
//!   loses resolution, but no delta is ever discarded, so the windows
//!   always telescope exactly: for every tracked counter, the sum of
//!   window deltas equals the final cumulative value;
//! * the JSON export is canonical (`from_json(to_json(t))` is exact
//!   and re-serialization is a byte-level fixed point), the contract
//!   `viprof-diff` and the committed `results/` baselines rely on.

use crate::export::{get, parse_json, JsonWriter};

/// Default ring bound: enough windows for minutes of fast drains
/// before early history starts coalescing.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 256;

/// One sampled drain window: counter deltas since the previous window
/// and gauge values at the window's end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineWindow {
    /// Sim-clock timestamp of the window's end (strictly monotone
    /// across the ring).
    pub cycles: u64,
    /// Raw samples merged into this window (same-timestamp merges and
    /// capacity coalescing make this > 1).
    pub samples: u64,
    /// Nonzero per-window counter deltas, `(name, delta)` sorted by
    /// name. Series whose value did not move are omitted.
    pub counters: Vec<(String, u64)>,
    /// Absolute values of every tracked gauge at the window's end,
    /// `(name, value)` sorted by name.
    pub gauges: Vec<(String, u64)>,
}

impl TimelineWindow {
    /// This window's delta for `name` (0 when the series didn't move).
    pub fn delta(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Gauge value at the window's end (0 when untracked).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// The bounded, deterministic ring of [`TimelineWindow`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    capacity: usize,
    /// Sim-clock origin (the session's epoch for rate math).
    origin: u64,
    /// Raw samples recorded (merges and coalescing never lose any).
    samples: u64,
    /// Oldest-pair merges performed to stay within capacity.
    coalesced: u64,
    /// Cumulative totals per tracked counter at the last sample — the
    /// baseline the next sample's deltas are computed against. Always
    /// equal to the telescoped sum of the window deltas.
    totals: Vec<(String, u64)>,
    windows: Vec<TimelineWindow>,
}

impl Default for Timeline {
    fn default() -> Timeline {
        Timeline::with_capacity(DEFAULT_TIMELINE_CAPACITY)
    }
}

impl Timeline {
    /// An empty timeline bounded to `capacity` windows (min 2, so the
    /// oldest-pair coalescing rule always applies).
    pub fn with_capacity(capacity: usize) -> Timeline {
        Timeline {
            capacity: capacity.max(2),
            origin: 0,
            samples: 0,
            coalesced: 0,
            totals: Vec::new(),
            windows: Vec::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn windows(&self) -> &[TimelineWindow] {
        &self.windows
    }

    pub fn len(&self) -> usize {
        self.windows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Raw samples recorded over the session.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Oldest-pair merges performed to stay within capacity.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Cumulative total for `name`: the telescoped sum of every
    /// window's delta.
    pub fn total(&self, name: &str) -> u64 {
        self.totals
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Record one sample: `counters` are cumulative values of the
    /// tracked series, `gauges` are current values. A sample at the
    /// same timestamp as the last window merges into it; otherwise a
    /// new window is appended (coalescing the two oldest when full).
    pub fn record(
        &mut self,
        cycles: u64,
        counters: &[(&'static str, u64)],
        gauges: &[(&'static str, u64)],
    ) {
        self.samples += 1;
        let mut deltas: Vec<(String, u64)> = Vec::new();
        for (name, value) in counters {
            let prev = self.total(name);
            // Registry counters are monotone; a decrease can only mean
            // a caller mixed registries, which the delta ignores.
            if *value > prev {
                deltas.push((name.to_string(), value - prev));
                set_total(&mut self.totals, name, *value);
            }
        }
        let gauges: Vec<(String, u64)> = gauges
            .iter()
            .map(|(name, v)| (name.to_string(), *v))
            .collect();
        if let Some(last) = self.windows.last_mut() {
            if last.cycles == cycles {
                for (name, d) in deltas {
                    merge_delta(&mut last.counters, &name, d);
                }
                last.gauges = gauges;
                last.samples += 1;
                return;
            }
            debug_assert!(last.cycles < cycles, "sim clock went backwards");
        }
        self.windows.push(TimelineWindow {
            cycles,
            samples: 1,
            counters: deltas,
            gauges,
        });
        if self.windows.len() > self.capacity {
            self.coalesce_oldest();
        }
    }

    /// Merge the two oldest windows into one (deltas summed, samples
    /// summed, the later timestamp and gauges kept) — the bound loses
    /// early-history resolution, never data.
    fn coalesce_oldest(&mut self) {
        if self.windows.len() < 2 {
            return;
        }
        let oldest = self.windows.remove(0);
        let into = &mut self.windows[0];
        for (name, d) in oldest.counters {
            merge_delta(&mut into.counters, &name, d);
        }
        into.samples += oldest.samples;
        self.coalesced += 1;
    }

    /// Per-window series for `name`: `(end cycles, delta)` per window,
    /// oldest first (zero-delta windows included).
    pub fn series(&self, name: &str) -> Vec<(u64, u64)> {
        self.windows
            .iter()
            .map(|w| (w.cycles, w.delta(name)))
            .collect()
    }

    /// Per-window gauge track for `name`: `(end cycles, value)`.
    pub fn gauge_series(&self, name: &str) -> Vec<(u64, u64)> {
        self.windows
            .iter()
            .map(|w| (w.cycles, w.gauge(name)))
            .collect()
    }

    /// Per-window rate for `name` in events per million cycles:
    /// `(end cycles, delta * 1e6 / window length)`. The first window's
    /// length is measured from the timeline origin.
    pub fn rate_per_mcycle(&self, name: &str) -> Vec<(u64, u64)> {
        let mut prev = self.origin;
        self.windows
            .iter()
            .map(|w| {
                let dt = w.cycles.saturating_sub(prev).max(1);
                prev = w.cycles;
                (w.cycles, w.delta(name).saturating_mul(1_000_000) / dt)
            })
            .collect()
    }

    /// The `k` series with the largest cumulative movement, `(name,
    /// total delta)` sorted by total descending then name — "what
    /// changed most over this session".
    pub fn top_movers(&self, k: usize) -> Vec<(String, u64)> {
        let mut movers: Vec<(String, u64)> = self
            .totals
            .iter()
            .filter(|(_, v)| *v > 0)
            .cloned()
            .collect();
        movers.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        movers.truncate(k);
        movers
    }

    /// Deterministic JSON: same timeline → same bytes.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj_open();
        w.key("capacity");
        w.num(self.capacity as u64);
        w.key("origin");
        w.num(self.origin);
        w.key("samples");
        w.num(self.samples);
        w.key("coalesced");
        w.num(self.coalesced);
        w.key("windows");
        w.arr_open();
        for win in &self.windows {
            w.obj_open();
            w.key("cycles");
            w.num(win.cycles);
            w.key("samples");
            w.num(win.samples);
            w.key("counters");
            w.obj_open();
            for (name, v) in &win.counters {
                w.key(name);
                w.num(*v);
            }
            w.obj_close();
            w.key("gauges");
            w.obj_open();
            for (name, v) in &win.gauges {
                w.key(name);
                w.num(*v);
            }
            w.obj_close();
            w.obj_close();
        }
        w.arr_close();
        w.obj_close();
        w.finish()
    }

    /// Parse a timeline previously written by [`Self::to_json`]. The
    /// cumulative totals are rebuilt by telescoping the windows, so
    /// the round-trip is exact.
    pub fn from_json(text: &str) -> Result<Timeline, String> {
        let root = parse_json(text)?;
        let top = root.as_obj("top level")?;
        let mut t = Timeline::with_capacity(
            get(top, "capacity")?.as_num("capacity")? as usize,
        );
        t.origin = get(top, "origin")?.as_num("origin")?;
        t.samples = get(top, "samples")?.as_num("samples")?;
        t.coalesced = get(top, "coalesced")?.as_num("coalesced")?;
        for v in get(top, "windows")?.as_arr("windows")? {
            let w = v.as_obj("window")?;
            let mut counters = Vec::new();
            for (name, d) in get(w, "counters")?.as_obj("counters")? {
                let d = d.as_num(name)?;
                counters.push((name.clone(), d));
                let prev = t.total(name);
                set_total(&mut t.totals, name, prev + d);
            }
            let mut gauges = Vec::new();
            for (name, g) in get(w, "gauges")?.as_obj("gauges")? {
                gauges.push((name.clone(), g.as_num(name)?));
            }
            let win = TimelineWindow {
                cycles: get(w, "cycles")?.as_num("cycles")?,
                samples: get(w, "samples")?.as_num("samples")?,
                counters,
                gauges,
            };
            if let Some(last) = t.windows.last() {
                if last.cycles >= win.cycles {
                    return Err(format!(
                        "window timestamps not strictly monotone at {}",
                        win.cycles
                    ));
                }
            }
            t.windows.push(win);
        }
        Ok(t)
    }

    /// Aligned human rendering (the `viprof-stat --health` context
    /// view): one line per window, top movers as a footer.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "timeline: {} window(s) from {} sample(s), {} coalesced\n",
            self.windows.len(),
            self.samples,
            self.coalesced
        );
        for w in &self.windows {
            let moved: Vec<String> = w
                .counters
                .iter()
                .map(|(n, d)| format!("{n}+{d}"))
                .collect();
            out.push_str(&format!(
                "  @{:<14} x{:<3} {}\n",
                w.cycles,
                w.samples,
                if moved.is_empty() {
                    "(quiet)".to_string()
                } else {
                    moved.join(" ")
                }
            ));
        }
        let movers = self.top_movers(5);
        if !movers.is_empty() {
            out.push_str("top movers:\n");
            for (name, total) in movers {
                out.push_str(&format!("  {name:<40} {total:>14}\n"));
            }
        }
        out
    }
}

fn set_total(totals: &mut Vec<(String, u64)>, name: &str, value: u64) {
    match totals.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => *v = value,
        None => {
            totals.push((name.to_string(), value));
            totals.sort_by(|a, b| a.0.cmp(&b.0));
        }
    }
}

fn merge_delta(counters: &mut Vec<(String, u64)>, name: &str, delta: u64) {
    match counters.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => *v += delta,
        None => {
            counters.push((name.to_string(), delta));
            counters.sort_by(|a, b| a.0.cmp(&b.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_at(t: &mut Timeline, cycles: u64, dropped: u64, period: u64) {
        t.record(
            cycles,
            &[("buffer.dropped", dropped), ("daemon.drains", cycles / 100)],
            &[("governor.period", period)],
        );
    }

    #[test]
    fn deltas_telescope_to_cumulative_totals() {
        let mut t = Timeline::with_capacity(8);
        sample_at(&mut t, 100, 0, 15_000);
        sample_at(&mut t, 200, 3, 15_000);
        sample_at(&mut t, 300, 3, 60_000);
        sample_at(&mut t, 400, 10, 60_000);
        let telescoped: u64 = t.windows().iter().map(|w| w.delta("buffer.dropped")).sum();
        assert_eq!(telescoped, 10);
        assert_eq!(t.total("buffer.dropped"), 10);
        assert_eq!(t.total("daemon.drains"), 4);
        assert_eq!(t.samples(), 4);
        // Gauge tracks are absolute, not deltas.
        assert_eq!(
            t.gauge_series("governor.period"),
            vec![(100, 15_000), (200, 15_000), (300, 60_000), (400, 60_000)]
        );
    }

    #[test]
    fn same_timestamp_samples_merge_and_stay_strictly_monotone() {
        let mut t = Timeline::with_capacity(8);
        sample_at(&mut t, 100, 1, 0);
        sample_at(&mut t, 100, 2, 0);
        sample_at(&mut t, 250, 2, 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.windows()[0].samples, 2);
        assert_eq!(t.windows()[0].delta("buffer.dropped"), 2);
        assert!(t.windows()[0].cycles < t.windows()[1].cycles);
        assert_eq!(t.samples(), 3);
    }

    #[test]
    fn capacity_coalesces_oldest_without_losing_deltas() {
        let mut t = Timeline::with_capacity(4);
        for i in 1..=10u64 {
            sample_at(&mut t, i * 100, i, 0);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.coalesced(), 6);
        assert_eq!(t.samples(), 10);
        let telescoped: u64 = t.windows().iter().map(|w| w.delta("buffer.dropped")).sum();
        assert_eq!(telescoped, 10, "coalescing must preserve the telescoping sum");
        let merged: u64 = t.windows().iter().map(|w| w.samples).sum();
        assert_eq!(merged, 10);
        // Still strictly monotone after merging.
        for pair in t.windows().windows(2) {
            assert!(pair[0].cycles < pair[1].cycles);
        }
    }

    #[test]
    fn json_round_trip_is_exact_and_canonical() {
        let mut t = Timeline::with_capacity(4);
        for i in 1..=6u64 {
            sample_at(&mut t, i * 97, i * i, 15_000 * i);
        }
        let json = t.to_json();
        let back = Timeline::from_json(&json).expect("parse back");
        assert_eq!(back, t);
        assert_eq!(back.to_json(), json, "canonical form is a fixed point");
    }

    #[test]
    fn parser_rejects_non_monotone_windows() {
        let mut t = Timeline::with_capacity(4);
        sample_at(&mut t, 100, 1, 0);
        sample_at(&mut t, 200, 2, 0);
        let bad = t.to_json().replace("\"cycles\":200", "\"cycles\":100");
        assert!(Timeline::from_json(&bad).is_err());
    }

    #[test]
    fn rates_and_top_movers() {
        let mut t = Timeline::with_capacity(8);
        t.record(1_000, &[("buffer.dropped", 5), ("db.evicted_samples", 1)], &[]);
        t.record(2_000, &[("buffer.dropped", 5), ("db.evicted_samples", 9)], &[]);
        let rates = t.rate_per_mcycle("buffer.dropped");
        assert_eq!(rates, vec![(1_000, 5_000), (2_000, 0)]);
        assert_eq!(
            t.top_movers(5),
            vec![("db.evicted_samples".to_string(), 9), ("buffer.dropped".to_string(), 5)]
        );
    }
}
