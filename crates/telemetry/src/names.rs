//! The metric catalog: every name the pipeline records, in one place.
//!
//! Instrumentation sites must take names from here — the catalog is
//! the telemetry schema, and `scripts/verify.sh` diffs it (via
//! `viprof-stat --schema`) against the reviewed golden list in
//! `scripts/telemetry-schema.txt`, so additions and removals fail CI
//! until the golden file is updated alongside them.

// ---- counters ----
pub const CPU_SAMPLES_DELIVERED: &str = "cpu.samples_delivered";
pub const CPU_SAMPLES_SUPPRESSED: &str = "cpu.samples_suppressed";
pub const BUFFER_PUSHED: &str = "buffer.pushed";
pub const BUFFER_DROPPED: &str = "buffer.dropped";
pub const BUFFER_DRAIN_ALLOCATED_SLOTS: &str = "buffer.drain_allocated_slots";
pub const DAEMON_WAKEUPS: &str = "daemon.wakeups";
pub const DAEMON_DRAINS: &str = "daemon.drains";
pub const DAEMON_STALLS: &str = "daemon.stalls";
pub const DAEMON_BATCHES_JOURNALED: &str = "daemon.batches_journaled";
pub const DAEMON_DEAD_GEN_DROPPED: &str = "daemon.dead_gen_dropped";
pub const DAEMON_DEADLINE_MISSES: &str = "daemon.deadline_misses";
pub const DB_EVICTED_SAMPLES: &str = "db.evicted_samples";
pub const GOVERNOR_BACKOFFS: &str = "governor.backoffs";
pub const GOVERNOR_ESCALATIONS: &str = "governor.escalations";
pub const GOVERNOR_RECOVERIES: &str = "governor.recoveries";
pub const SUPERVISOR_RESTARTS: &str = "supervisor.restarts";
pub const SUPERVISOR_MISSED: &str = "supervisor.missed";
pub const SUPERVISOR_REDRAINED_SAMPLES: &str = "supervisor.redrained_samples";
pub const JOURNAL_APPENDS: &str = "journal.appends";
pub const JOURNAL_COMMITS: &str = "journal.commits";
pub const JOURNAL_REPAIRS: &str = "journal.repairs";
pub const JOURNAL_APPENDED_BYTES: &str = "journal.appended_bytes";
pub const JOURNAL_DAMAGED_BYTES: &str = "journal.damaged_bytes";
pub const LIVE_BATCHES: &str = "live.batches";
pub const LIVE_FULL_REBUILDS: &str = "live.full_rebuilds";
pub const LIVE_INCREMENTAL_EXTENDS: &str = "live.incremental_extends";
pub const AGENT_MAPS_WRITTEN: &str = "agent.maps_written";
pub const AGENT_MAP_ENTRIES: &str = "agent.map_entries";
pub const AGENT_GC_EPOCHS: &str = "agent.gc_epochs";
pub const VM_GC_COLLECTIONS: &str = "vm.gc_collections";
pub const REGISTRY_GENERATION_BUMPS: &str = "registry.generation_bumps";
pub const REGISTRY_REAPS: &str = "registry.reaps";
pub const REGISTRY_REGISTRATIONS: &str = "registry.registrations";
pub const RESOLVE_SAMPLES_RESOLVED: &str = "resolve.samples_resolved";
pub const RESOLVE_SAMPLES_CROSS_INCARNATION_BLOCKED: &str =
    "resolve.samples_cross_incarnation_blocked";
pub const RESOLVE_SAMPLES_STALE_EPOCH: &str = "resolve.samples_stale_epoch";
pub const RESOLVE_SAMPLES_UNRESOLVED: &str = "resolve.samples_unresolved";
pub const RESOLVE_SAMPLES_DROPPED: &str = "resolve.samples_dropped";
pub const RESOLVE_SAMPLES_EVICTED: &str = "resolve.samples_evicted";
pub const RESOLVE_SAMPLES_QUARANTINED: &str = "resolve.samples_quarantined";
pub const RESOLVE_SHARD_PANICS: &str = "resolve.shard_panics";
pub const RESOLVE_QUARANTINED_LINES: &str = "resolve.quarantined_lines";
pub const RESOLVE_SKIPPED_MAP_FILES: &str = "resolve.skipped_map_files";
pub const RESOLVE_FAILED_PIDS: &str = "resolve.failed_pids";
pub const RESOLVE_MISSING_EPOCHS: &str = "resolve.missing_epochs";
pub const REPORT_ROWS: &str = "report.rows";
pub const SESSION_INSTALLS: &str = "session.installs";
pub const SESSION_STOPS: &str = "session.stops";
pub const TIMELINE_SAMPLES: &str = "timeline.samples";
pub const TIMELINE_WINDOWS_COALESCED: &str = "timeline.windows_coalesced";
pub const TRACE_SPANS_DROPPED: &str = "trace.spans_dropped";
pub const TRACE_SPANS_RECORDED: &str = "trace.spans_recorded";
pub const BENCH_ARTIFACTS_WRITTEN: &str = "bench.artifacts_written";

/// Saturation counters: the one naming convention for "a bounded
/// resource was full (or a governor shed load) and records were
/// discarded". Such counters end in `dropped` or `suppressed`, or name
/// the eviction (`evicted`); nothing else may use those suffixes, and
/// every counter using them must appear here — the catalog test
/// enforces both directions, so a new saturation point cannot ship
/// under an ad-hoc name. The flight recorder's and span store's ring
/// evictions surface as `events_dropped` (a snapshot field, by design
/// outside the registry) and [`TRACE_SPANS_DROPPED`] respectively.
pub const SATURATION_COUNTERS: &[&str] = &[
    BUFFER_DROPPED,
    CPU_SAMPLES_SUPPRESSED,
    DAEMON_DEAD_GEN_DROPPED,
    DB_EVICTED_SAMPLES,
    RESOLVE_SAMPLES_DROPPED,
    RESOLVE_SAMPLES_EVICTED,
    TRACE_SPANS_DROPPED,
];

/// Counter series the [`crate::timeline::Timeline`] tracks per drain
/// window, sorted. Deliberately a session-side allowlist: `resolve.*`,
/// `live.*`, `report.*` and `bench.*` series are excluded so the
/// exported timeline is a pure function of the *session* — invariant
/// to how (threads) and when (batch vs sealed live) the profile is
/// later resolved.
pub const TIMELINE_COUNTERS: &[&str] = &[
    AGENT_MAPS_WRITTEN,
    BUFFER_DROPPED,
    BUFFER_PUSHED,
    CPU_SAMPLES_DELIVERED,
    CPU_SAMPLES_SUPPRESSED,
    DAEMON_BATCHES_JOURNALED,
    DAEMON_DEAD_GEN_DROPPED,
    DAEMON_DEADLINE_MISSES,
    DAEMON_DRAINS,
    DAEMON_STALLS,
    DAEMON_WAKEUPS,
    DB_EVICTED_SAMPLES,
    GOVERNOR_BACKOFFS,
    GOVERNOR_ESCALATIONS,
    GOVERNOR_RECOVERIES,
    JOURNAL_APPENDS,
    JOURNAL_COMMITS,
    JOURNAL_REPAIRS,
    SUPERVISOR_MISSED,
    SUPERVISOR_REDRAINED_SAMPLES,
    SUPERVISOR_RESTARTS,
    TRACE_SPANS_DROPPED,
    VM_GC_COLLECTIONS,
];

// ---- gauges ----
pub const BUFFER_OCCUPANCY: &str = "buffer.occupancy";
pub const BUFFER_CAPACITY: &str = "buffer.capacity";
pub const GOVERNOR_PERIOD: &str = "governor.period";
pub const SUPERVISOR_LAST_BACKOFF: &str = "supervisor.last_backoff";
pub const RESOLVE_SHARDS: &str = "resolve.shards";

/// Gauge tracks the timeline records per window (absolute values, not
/// deltas), sorted. Same session-side rule as [`TIMELINE_COUNTERS`].
pub const TIMELINE_GAUGES: &[&str] = &[
    BUFFER_CAPACITY,
    BUFFER_OCCUPANCY,
    GOVERNOR_PERIOD,
    SUPERVISOR_LAST_BACKOFF,
];

// ---- histograms ----
pub const DAEMON_BATCH_SAMPLES: &str = "daemon.batch_samples";
pub const DAEMON_DRAIN_CYCLES: &str = "daemon.drain_cycles";
pub const BUFFER_OCCUPANCY_AT_DRAIN: &str = "buffer.occupancy_at_drain";
pub const RESOLVE_SHARD_SAMPLES: &str = "resolve.shard_samples";
pub const VM_GC_PAUSE_CYCLES: &str = "vm.gc_pause_cycles";

// ---- stages (virtual-cycle spans; offline stages count work units) ----
pub const STAGE_NMI_HANDLER: &str = "stage.nmi_handler";
pub const STAGE_DAEMON_DRAIN: &str = "stage.daemon_drain";
pub const STAGE_LIVE_SNAPSHOT: &str = "stage.live_snapshot";
pub const STAGE_AGENT_MAP_WRITE: &str = "stage.agent_map_write";
pub const STAGE_SESSION_FLUSH: &str = "stage.session_flush";
pub const STAGE_RESOLVE_LOAD: &str = "stage.resolve_load";
pub const STAGE_RESOLVE_REPORT: &str = "stage.resolve_report";
pub const STAGE_REPORT_FINISH: &str = "stage.report_finish";

// ---- trace spans (the causal tree `viprof-trace` renders) ----
pub const SPAN_AGENT_MAP_WRITE: &str = "span.agent_map_write";
pub const SPAN_DAEMON_DRAIN: &str = "span.daemon_drain";
pub const SPAN_JOURNAL_BATCH: &str = "span.journal_batch";
pub const SPAN_LIVE_EXTEND: &str = "span.live_extend";
pub const SPAN_LIVE_FREEZE: &str = "span.live_freeze";
pub const SPAN_LIVE_REBUILD: &str = "span.live_rebuild";
pub const SPAN_NMI_WINDOW: &str = "span.nmi_window";
pub const SPAN_RESOLVE: &str = "span.resolve";
pub const SPAN_RESOLVE_INCARNATION: &str = "span.resolve_incarnation";
pub const SPAN_RESOLVE_INGEST: &str = "span.resolve_ingest";
pub const SPAN_RESOLVE_SHARDS: &str = "span.resolve_shards";
pub const SPAN_SESSION: &str = "span.session";
pub const SPAN_SUPERVISOR_REDRAIN: &str = "span.supervisor_redrain";
pub const SPAN_VM_GC: &str = "span.vm_gc";

// ---- lineage loss buckets (`SessionReport.lineage` rows) ----
pub const LINEAGE_BLOCKED: &str = "lineage.blocked";
pub const LINEAGE_DROPPED: &str = "lineage.dropped";
pub const LINEAGE_EVICTED: &str = "lineage.evicted";
pub const LINEAGE_QUARANTINED: &str = "lineage.quarantined";

// ---- health rule ids (`SessionReport.health` findings) ----
pub const HEALTH_BUFFER_OVERFLOW: &str = "health.buffer_overflow";
pub const HEALTH_DB_EVICTION: &str = "health.db_eviction";
pub const HEALTH_DEAD_GENERATION: &str = "health.dead_generation";
pub const HEALTH_DEADLINE_MISS: &str = "health.deadline_miss";
pub const HEALTH_GOVERNOR_BACKOFF: &str = "health.governor_backoff";
pub const HEALTH_GOVERNOR_ESCALATION: &str = "health.governor_escalation";
pub const HEALTH_JOURNAL_REPAIR: &str = "health.journal_repair";
pub const HEALTH_SPANS_DROPPED: &str = "health.spans_dropped";
pub const HEALTH_SUPERVISOR_RESTART: &str = "health.supervisor_restart";

// ---- flight-recorder event kinds ----
pub const EVENT_BUFFER_OVERFLOW: &str = "buffer.overflow";
pub const EVENT_DAEMON_DEAD_GEN_DROP: &str = "daemon.dead_gen_drop";
pub const EVENT_DAEMON_STALL: &str = "daemon.stall";
pub const EVENT_DB_EVICTION: &str = "db.eviction";
pub const EVENT_GOVERNOR_DEADLINE_MISS: &str = "governor.deadline_miss";
pub const EVENT_GOVERNOR_ESCALATION: &str = "governor.escalation";
pub const EVENT_GOVERNOR_RATE_CHANGE: &str = "governor.rate_change";
pub const EVENT_RESOLVE_SHARD_QUARANTINE: &str = "resolve.shard_quarantine";
pub const EVENT_SUPERVISOR_MISSED: &str = "supervisor.missed_window";
pub const EVENT_SUPERVISOR_RESTART: &str = "supervisor.restart";
pub const EVENT_AGENT_MAP_WRITE: &str = "agent.map_write";
pub const EVENT_AGENT_GC_EPOCH: &str = "agent.gc_epoch";
pub const EVENT_JOURNAL_REPAIR: &str = "journal.repair";
pub const EVENT_LIVE_BATCH: &str = "live.batch";
pub const EVENT_LIVE_FREEZE: &str = "live.freeze";
pub const EVENT_LIVE_SNAPSHOT: &str = "live.snapshot";
pub const EVENT_REGISTRY_REAP: &str = "registry.reap";
pub const EVENT_REGISTRY_REGISTER: &str = "registry.register";
pub const EVENT_SESSION_INSTALL: &str = "session.install";
pub const EVENT_SESSION_STOP: &str = "session.stop";
pub const EVENT_BENCH_ARTIFACT: &str = "bench.artifact";

/// The full schema: `(kind, name)` pairs, grouped by kind in
/// declaration order (names sorted within each kind).
pub const ALL_METRICS: &[(&str, &str)] = &[
    ("counter", AGENT_GC_EPOCHS),
    ("counter", AGENT_MAP_ENTRIES),
    ("counter", AGENT_MAPS_WRITTEN),
    ("counter", BENCH_ARTIFACTS_WRITTEN),
    ("counter", BUFFER_DRAIN_ALLOCATED_SLOTS),
    ("counter", BUFFER_DROPPED),
    ("counter", BUFFER_PUSHED),
    ("counter", CPU_SAMPLES_DELIVERED),
    ("counter", CPU_SAMPLES_SUPPRESSED),
    ("counter", DAEMON_BATCHES_JOURNALED),
    ("counter", DAEMON_DEAD_GEN_DROPPED),
    ("counter", DAEMON_DEADLINE_MISSES),
    ("counter", DAEMON_DRAINS),
    ("counter", DAEMON_STALLS),
    ("counter", DAEMON_WAKEUPS),
    ("counter", DB_EVICTED_SAMPLES),
    ("counter", GOVERNOR_BACKOFFS),
    ("counter", GOVERNOR_ESCALATIONS),
    ("counter", GOVERNOR_RECOVERIES),
    ("counter", JOURNAL_APPENDED_BYTES),
    ("counter", JOURNAL_APPENDS),
    ("counter", JOURNAL_COMMITS),
    ("counter", JOURNAL_DAMAGED_BYTES),
    ("counter", JOURNAL_REPAIRS),
    ("counter", LIVE_BATCHES),
    ("counter", LIVE_FULL_REBUILDS),
    ("counter", LIVE_INCREMENTAL_EXTENDS),
    ("counter", REGISTRY_GENERATION_BUMPS),
    ("counter", REGISTRY_REAPS),
    ("counter", REGISTRY_REGISTRATIONS),
    ("counter", REPORT_ROWS),
    ("counter", RESOLVE_FAILED_PIDS),
    ("counter", RESOLVE_MISSING_EPOCHS),
    ("counter", RESOLVE_QUARANTINED_LINES),
    ("counter", RESOLVE_SAMPLES_CROSS_INCARNATION_BLOCKED),
    ("counter", RESOLVE_SAMPLES_DROPPED),
    ("counter", RESOLVE_SAMPLES_EVICTED),
    ("counter", RESOLVE_SAMPLES_QUARANTINED),
    ("counter", RESOLVE_SAMPLES_RESOLVED),
    ("counter", RESOLVE_SAMPLES_STALE_EPOCH),
    ("counter", RESOLVE_SAMPLES_UNRESOLVED),
    ("counter", RESOLVE_SHARD_PANICS),
    ("counter", RESOLVE_SKIPPED_MAP_FILES),
    ("counter", SESSION_INSTALLS),
    ("counter", SESSION_STOPS),
    ("counter", SUPERVISOR_MISSED),
    ("counter", SUPERVISOR_REDRAINED_SAMPLES),
    ("counter", SUPERVISOR_RESTARTS),
    ("counter", TIMELINE_SAMPLES),
    ("counter", TIMELINE_WINDOWS_COALESCED),
    ("counter", TRACE_SPANS_DROPPED),
    ("counter", TRACE_SPANS_RECORDED),
    ("counter", VM_GC_COLLECTIONS),
    ("gauge", BUFFER_CAPACITY),
    ("gauge", BUFFER_OCCUPANCY),
    ("gauge", GOVERNOR_PERIOD),
    ("gauge", RESOLVE_SHARDS),
    ("gauge", SUPERVISOR_LAST_BACKOFF),
    ("histogram", BUFFER_OCCUPANCY_AT_DRAIN),
    ("histogram", DAEMON_BATCH_SAMPLES),
    ("histogram", DAEMON_DRAIN_CYCLES),
    ("histogram", RESOLVE_SHARD_SAMPLES),
    ("histogram", VM_GC_PAUSE_CYCLES),
    ("stage", STAGE_AGENT_MAP_WRITE),
    ("stage", STAGE_DAEMON_DRAIN),
    ("stage", STAGE_LIVE_SNAPSHOT),
    ("stage", STAGE_NMI_HANDLER),
    ("stage", STAGE_REPORT_FINISH),
    ("stage", STAGE_RESOLVE_LOAD),
    ("stage", STAGE_RESOLVE_REPORT),
    ("stage", STAGE_SESSION_FLUSH),
    ("span", SPAN_AGENT_MAP_WRITE),
    ("span", SPAN_DAEMON_DRAIN),
    ("span", SPAN_JOURNAL_BATCH),
    ("span", SPAN_LIVE_EXTEND),
    ("span", SPAN_LIVE_FREEZE),
    ("span", SPAN_LIVE_REBUILD),
    ("span", SPAN_NMI_WINDOW),
    ("span", SPAN_RESOLVE),
    ("span", SPAN_RESOLVE_INCARNATION),
    ("span", SPAN_RESOLVE_INGEST),
    ("span", SPAN_RESOLVE_SHARDS),
    ("span", SPAN_SESSION),
    ("span", SPAN_SUPERVISOR_REDRAIN),
    ("span", SPAN_VM_GC),
    ("lineage", LINEAGE_BLOCKED),
    ("lineage", LINEAGE_DROPPED),
    ("lineage", LINEAGE_EVICTED),
    ("lineage", LINEAGE_QUARANTINED),
    ("health", HEALTH_BUFFER_OVERFLOW),
    ("health", HEALTH_DB_EVICTION),
    ("health", HEALTH_DEAD_GENERATION),
    ("health", HEALTH_DEADLINE_MISS),
    ("health", HEALTH_GOVERNOR_BACKOFF),
    ("health", HEALTH_GOVERNOR_ESCALATION),
    ("health", HEALTH_JOURNAL_REPAIR),
    ("health", HEALTH_SPANS_DROPPED),
    ("health", HEALTH_SUPERVISOR_RESTART),
    ("event", EVENT_AGENT_GC_EPOCH),
    ("event", EVENT_AGENT_MAP_WRITE),
    ("event", EVENT_BENCH_ARTIFACT),
    ("event", EVENT_BUFFER_OVERFLOW),
    ("event", EVENT_DAEMON_DEAD_GEN_DROP),
    ("event", EVENT_DAEMON_STALL),
    ("event", EVENT_DB_EVICTION),
    ("event", EVENT_GOVERNOR_DEADLINE_MISS),
    ("event", EVENT_GOVERNOR_ESCALATION),
    ("event", EVENT_GOVERNOR_RATE_CHANGE),
    ("event", EVENT_JOURNAL_REPAIR),
    ("event", EVENT_LIVE_BATCH),
    ("event", EVENT_LIVE_FREEZE),
    ("event", EVENT_LIVE_SNAPSHOT),
    ("event", EVENT_REGISTRY_REAP),
    ("event", EVENT_REGISTRY_REGISTER),
    ("event", EVENT_RESOLVE_SHARD_QUARANTINE),
    ("event", EVENT_SESSION_INSTALL),
    ("event", EVENT_SESSION_STOP),
    ("event", EVENT_SUPERVISOR_MISSED),
    ("event", EVENT_SUPERVISOR_RESTART),
];

/// Schema as printable lines (`<kind> <name>`), the exact format the
/// golden file stores.
pub fn schema_lines() -> Vec<String> {
    ALL_METRICS
        .iter()
        .map(|(kind, name)| format!("{kind} {name}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [&str; 8] = [
        "counter",
        "gauge",
        "histogram",
        "stage",
        "span",
        "lineage",
        "health",
        "event",
    ];

    #[test]
    fn catalog_has_no_duplicates_and_is_sorted_within_kinds() {
        let mut seen = std::collections::BTreeSet::new();
        for (kind, name) in ALL_METRICS {
            assert!(seen.insert(*name), "duplicate metric name {name}");
            assert!(KINDS.contains(kind), "unknown metric kind {kind}");
        }
        for kind in KINDS {
            let names: Vec<&str> = ALL_METRICS
                .iter()
                .filter(|(k, _)| *k == kind)
                .map(|(_, n)| *n)
                .collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            assert_eq!(names, sorted, "{kind} names out of order");
        }
    }

    /// The saturation-counter convention, both directions: every
    /// counter whose name signals discarded records is listed in
    /// [`SATURATION_COUNTERS`], and everything listed is a cataloged
    /// counter with a conforming name.
    #[test]
    fn saturation_counters_follow_the_convention() {
        let is_saturation_name = |name: &str| {
            name.ends_with("dropped")
                || name.ends_with("suppressed")
                || name.contains("evicted")
        };
        let counters: Vec<&str> = ALL_METRICS
            .iter()
            .filter(|(k, _)| *k == "counter")
            .map(|(_, n)| *n)
            .collect();
        for name in SATURATION_COUNTERS {
            assert!(
                counters.contains(name),
                "{name} is listed as a saturation counter but not cataloged"
            );
            assert!(
                is_saturation_name(name),
                "{name} does not follow the saturation naming convention"
            );
        }
        for name in &counters {
            assert_eq!(
                is_saturation_name(name),
                SATURATION_COUNTERS.contains(name),
                "saturation audit out of sync for {name}"
            );
        }
        let mut sorted = SATURATION_COUNTERS.to_vec();
        sorted.sort_unstable();
        assert_eq!(SATURATION_COUNTERS, sorted, "audit list out of order");
    }

    /// The timeline allowlists: sorted, cataloged under the right
    /// kind, and free of resolve-time series (which would break the
    /// timeline's invariance to how the profile is later resolved).
    #[test]
    fn timeline_allowlists_are_sorted_cataloged_session_side_series() {
        let of_kind = |kind: &str| -> Vec<&str> {
            ALL_METRICS
                .iter()
                .filter(|(k, _)| *k == kind)
                .map(|(_, n)| *n)
                .collect()
        };
        let counters = of_kind("counter");
        let gauges = of_kind("gauge");
        for (list, catalog) in [
            (TIMELINE_COUNTERS, &counters),
            (TIMELINE_GAUGES, &gauges),
        ] {
            let mut sorted = list.to_vec();
            sorted.sort_unstable();
            assert_eq!(list, sorted, "allowlist out of order");
            for name in list {
                assert!(catalog.contains(name), "{name} not cataloged");
                for banned in ["resolve.", "live.", "report.", "bench.", "timeline."] {
                    assert!(
                        !name.starts_with(banned),
                        "{name} is resolve-time or self-referential"
                    );
                }
            }
        }
        // Every cataloged saturation counter the session side can tick
        // is visible to the timeline (resolve-side ones excluded).
        for name in SATURATION_COUNTERS {
            if name.starts_with("resolve.") {
                continue;
            }
            assert!(
                TIMELINE_COUNTERS.contains(name),
                "saturation counter {name} invisible to the timeline"
            );
        }
    }
}
