//! Semispace copying heap with code bodies interleaved among data.
//!
//! This reproduces the Jikes RVM property the paper singles out (§3.1):
//! "the code and data regions are both interwound into a single heap …
//! the body of a method can exist at several different memory locations
//! during a single execution." Every collection copies live objects —
//! including JIT code bodies — to the other semispace, so code *moves*,
//! and each collection boundary is a VIProf *execution epoch*.
//!
//! Objects are referenced through stable handles ([`ObjRef`]); their
//! simulated addresses change on collection. Liveness of data is real
//! (traced from roots through fields); liveness of code is decided by
//! the VM (a method's superseded bodies die at the next GC).

use crate::bytecode::{ClassId, MethodId};
use serde::{Deserialize, Serialize};
use sim_cpu::Addr;

/// Stable handle to a heap object (survives moves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjRef(pub u32);

/// A slot value: integer or reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Value {
    I64(i64),
    Ref(Option<ObjRef>),
}

impl Default for Value {
    fn default() -> Self {
        Value::I64(0)
    }
}

impl Value {
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            Value::Ref(Some(r)) => r.0 as i64,
            Value::Ref(None) => 0,
        }
    }

    pub fn as_ref(self) -> Option<ObjRef> {
        match self {
            Value::Ref(r) => r,
            Value::I64(_) => None,
        }
    }
}

/// What an object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjKind {
    Data(ClassId),
    Array,
    /// A JIT-compiled method body: `size` bytes of machine code.
    Code(MethodId),
}

/// Object header + payload.
#[derive(Debug, Clone)]
pub struct HeapObject {
    pub addr: Addr,
    pub kind: ObjKind,
    /// Data/array payload (empty for code bodies).
    pub slots: Vec<Value>,
    pub byte_size: u64,
    /// Collections survived (drives mature-space promotion).
    pub survivals: u32,
    /// Promoted to the non-moving mature space (Jikes RVM's "mature
    /// space" — the paper §4.3 notes that once the GC moves hot code
    /// there, "there is less need for any runtime work" by the agent).
    pub mature: bool,
}

/// One object relocation performed by a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveEvent {
    pub obj: ObjRef,
    pub kind: ObjKind,
    pub old_addr: Addr,
    pub new_addr: Addr,
    pub byte_size: u64,
}

/// Collection outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    pub live_bytes: u64,
    /// Bytes actually copied (mature objects are traced but not moved).
    pub copied_bytes: u64,
    pub live_objects: u64,
    pub freed_objects: u64,
    pub moved_code_bodies: u64,
}

/// Allocation failure: the current semispace cannot fit the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfSpace {
    pub requested: u64,
    pub available: u64,
}

impl std::fmt::Display for OutOfSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "semispace exhausted: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfSpace {}

const HEADER_BYTES: u64 = 16;
const SLOT_BYTES: u64 = 8;
const ALIGN: u64 = 16;

fn align_up(x: u64) -> u64 {
    x.div_ceil(ALIGN) * ALIGN
}

/// Collection strategy.
///
/// The paper's whole problem statement — code bodies that "exist at
/// several different memory locations during a single execution" —
/// presupposes a *moving* collector (Jikes RVM's copying heap). The
/// non-moving mark-sweep mode is the ablation: with it, code never
/// moves, the agent's maps contain compile records only, and the GC
/// move hook never fires (experiment E8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcMode {
    #[default]
    Copying,
    NonMoving,
}

/// Mature-space configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatureConfig {
    /// Objects surviving this many collections are promoted into the
    /// non-moving mature space.
    pub promote_after: u32,
    /// Fraction of the heap region reserved for the mature space.
    pub fraction: f64,
}

impl Default for MatureConfig {
    fn default() -> Self {
        MatureConfig {
            promote_after: 3,
            fraction: 0.25,
        }
    }
}

/// The heap.
#[derive(Debug, Clone)]
pub struct Heap {
    /// The full anon region registered with the profiler.
    region: (Addr, Addr),
    /// Which half of the nursery area is the active from-space (0/1).
    active: usize,
    /// Bump pointer within the active semispace.
    alloc_ptr: Addr,
    /// Bump pointer within the mature space (equal to `region.1` when
    /// no mature space is configured).
    mature_ptr: Addr,
    /// Start of the mature space (== `region.1` when disabled).
    mature_start: Addr,
    mature: Option<MatureConfig>,
    mode: GcMode,
    /// Non-moving mode: reclaimed `[addr, addr+len)` holes, sorted and
    /// coalesced; allocation is first-fit from here before bumping.
    holes: Vec<(Addr, u64)>,
    /// Non-moving mode: bump-consumed ephemeral segments, reclaimed
    /// wholesale at the next collection.
    ephemeral_segments: Vec<(Addr, u64)>,
    objects: Vec<Option<HeapObject>>,
    free: Vec<u32>,
    /// Completed collections (== the VIProf epoch counter's source).
    pub collections: u64,
    /// Total bytes ever allocated.
    pub bytes_allocated: u64,
    /// Total bytes copied by collections.
    pub bytes_copied: u64,
    /// Objects promoted to the mature space so far.
    pub promotions: u64,
}

impl Heap {
    /// Build over `region`; the region is split into two semispaces
    /// (no mature space).
    pub fn new(region: (Addr, Addr)) -> Self {
        Self::with_mature_opt(region, None)
    }

    /// Build with a mature space carved off the end of the region.
    pub fn with_mature(region: (Addr, Addr), config: MatureConfig) -> Self {
        Self::with_mature_opt(region, Some(config))
    }

    /// Build a non-moving mark-sweep heap over the whole region (no
    /// semispaces, no mature space — nothing ever moves).
    pub fn non_moving(region: (Addr, Addr)) -> Self {
        let mut h = Self::with_mature_opt(region, None);
        h.mode = GcMode::NonMoving;
        h
    }

    pub fn mode(&self) -> GcMode {
        self.mode
    }

    fn with_mature_opt(region: (Addr, Addr), mature: Option<MatureConfig>) -> Self {
        assert!(region.1 > region.0, "empty heap region");
        assert!((region.1 - region.0) >= 4 * ALIGN, "heap too small");
        let mature_start = match mature {
            Some(c) => {
                assert!((0.0..0.9).contains(&c.fraction), "bad mature fraction");
                let bytes = ((region.1 - region.0) as f64 * c.fraction) as u64;
                let start = region.1 - bytes / ALIGN * ALIGN;
                debug_assert!(start > region.0);
                start
            }
            None => region.1,
        };
        let mut h = Heap {
            region,
            active: 0,
            alloc_ptr: 0,
            mature_ptr: mature_start,
            mature_start,
            mature,
            mode: GcMode::Copying,
            holes: Vec::new(),
            ephemeral_segments: Vec::new(),
            objects: Vec::new(),
            free: Vec::new(),
            collections: 0,
            bytes_allocated: 0,
            bytes_copied: 0,
            promotions: 0,
        };
        h.alloc_ptr = h.space_bounds(0).0;
        h
    }

    pub fn region(&self) -> (Addr, Addr) {
        self.region
    }

    /// Bounds of semispace `i` (0 or 1) within the nursery area.
    /// Non-moving mode has a single space spanning the whole region.
    fn space_bounds(&self, i: usize) -> (Addr, Addr) {
        if self.mode == GcMode::NonMoving {
            return self.region;
        }
        let half = (self.mature_start - self.region.0) / 2;
        let start = self.region.0 + i as u64 * half;
        (start, start + half)
    }

    /// Free bytes left in the mature space.
    pub fn mature_available(&self) -> u64 {
        self.region.1 - self.mature_ptr
    }

    /// Bytes still available for allocation (bump headroom plus, in
    /// non-moving mode, reclaimed holes).
    pub fn available(&self) -> u64 {
        let bump = self.space_bounds(self.active).1 - self.alloc_ptr;
        let holes: u64 = self.holes.iter().map(|(_, len)| len).sum();
        bump + holes
    }

    /// Total capacity of one semispace.
    pub fn semispace_bytes(&self) -> u64 {
        (self.mature_start - self.region.0) / 2
    }

    fn object_bytes(kind: ObjKind, slots: usize, code_bytes: u64) -> u64 {
        match kind {
            ObjKind::Code(_) => align_up(HEADER_BYTES + code_bytes),
            _ => align_up(HEADER_BYTES + slots as u64 * SLOT_BYTES),
        }
    }

    fn store(&mut self, obj: HeapObject) -> ObjRef {
        if let Some(idx) = self.free.pop() {
            self.objects[idx as usize] = Some(obj);
            ObjRef(idx)
        } else {
            self.objects.push(Some(obj));
            ObjRef(self.objects.len() as u32 - 1)
        }
    }

    /// Allocate a data object with `slots` fields.
    pub fn alloc_data(&mut self, class: ClassId, slots: usize) -> Result<ObjRef, OutOfSpace> {
        self.alloc(ObjKind::Data(class), slots, 0)
    }

    /// Allocate an array of `len` slots.
    pub fn alloc_array(&mut self, len: usize) -> Result<ObjRef, OutOfSpace> {
        self.alloc(ObjKind::Array, len, 0)
    }

    /// Allocate a code body of `code_bytes` machine-code bytes.
    pub fn alloc_code(&mut self, method: MethodId, code_bytes: u64) -> Result<ObjRef, OutOfSpace> {
        self.alloc(ObjKind::Code(method), 0, code_bytes)
    }

    fn alloc(&mut self, kind: ObjKind, slots: usize, code_bytes: u64) -> Result<ObjRef, OutOfSpace> {
        let bytes = Self::object_bytes(kind, slots, code_bytes);
        let addr = match self.carve(bytes) {
            Some(a) => a,
            None => {
                return Err(OutOfSpace {
                    requested: bytes,
                    available: self.available(),
                })
            }
        };
        self.bytes_allocated += bytes;
        Ok(self.store(HeapObject {
            addr,
            kind,
            slots: vec![Value::default(); slots],
            byte_size: bytes,
            survivals: 0,
            mature: false,
        }))
    }

    /// Find space for `bytes`: first-fit from the non-moving free list,
    /// then the bump pointer.
    fn carve(&mut self, bytes: u64) -> Option<Addr> {
        if self.mode == GcMode::NonMoving {
            if let Some(i) = self.holes.iter().position(|(_, len)| *len >= bytes) {
                let (start, len) = self.holes[i];
                if len == bytes {
                    self.holes.remove(i);
                } else {
                    self.holes[i] = (start + bytes, len - bytes);
                }
                return Some(start);
            }
        }
        let (_, end) = self.space_bounds(self.active);
        if self.alloc_ptr + bytes > end {
            return None;
        }
        let addr = self.alloc_ptr;
        self.alloc_ptr += bytes;
        Some(addr)
    }

    /// Return `[addr, addr+len)` to the non-moving free list, keeping
    /// it sorted and coalesced.
    fn free_hole(&mut self, addr: Addr, len: u64) {
        debug_assert_eq!(self.mode, GcMode::NonMoving);
        let pos = self.holes.partition_point(|(a, _)| *a < addr);
        self.holes.insert(pos, (addr, len));
        // Coalesce with neighbours.
        if pos + 1 < self.holes.len() && self.holes[pos].0 + self.holes[pos].1 == self.holes[pos + 1].0 {
            self.holes[pos].1 += self.holes[pos + 1].1;
            self.holes.remove(pos + 1);
        }
        if pos > 0 && self.holes[pos - 1].0 + self.holes[pos - 1].1 == self.holes[pos].0 {
            self.holes[pos - 1].1 += self.holes[pos].1;
            self.holes.remove(pos);
        }
    }

    /// Consume up to `bytes` of the active semispace as *ephemeral*
    /// garbage: short-lived allocations that will all be dead by the
    /// next collection, so no handles are created. Returns how many
    /// bytes were actually consumed (less than `bytes` when the space
    /// fills — the caller should collect and retry with the remainder).
    /// This backs the batched execution mode: allocation *pressure* is
    /// preserved exactly even when individual objects are not.
    pub fn alloc_ephemeral(&mut self, bytes: u64) -> u64 {
        // Bump region first; in non-moving mode, spill into free-list
        // holes, remembering every consumed segment so the next
        // collection can reclaim it.
        let (_, end) = self.space_bounds(self.active);
        let bump_room = end - self.alloc_ptr;
        let mut consumed = bytes.min(bump_room);
        if consumed > 0 && self.mode == GcMode::NonMoving {
            match self.ephemeral_segments.last_mut() {
                Some((a, len)) if *a + *len == self.alloc_ptr => *len += consumed,
                _ => self.ephemeral_segments.push((self.alloc_ptr, consumed)),
            }
        }
        self.alloc_ptr += consumed;
        if self.mode == GcMode::NonMoving {
            while consumed < bytes && !self.holes.is_empty() {
                let (start, len) = self.holes[0];
                let take = len.min(bytes - consumed);
                if take == len {
                    self.holes.remove(0);
                } else {
                    self.holes[0] = (start + take, len - take);
                }
                self.ephemeral_segments.push((start, take));
                consumed += take;
            }
        }
        self.bytes_allocated += consumed;
        consumed
    }

    pub fn get(&self, r: ObjRef) -> &HeapObject {
        self.objects[r.0 as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("dangling object handle {r:?}"))
    }

    pub fn get_mut(&mut self, r: ObjRef) -> &mut HeapObject {
        self.objects[r.0 as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("dangling object handle {r:?}"))
    }

    /// Whether the handle currently refers to a live object.
    pub fn is_live(&self, r: ObjRef) -> bool {
        (r.0 as usize) < self.objects.len() && self.objects[r.0 as usize].is_some()
    }

    pub fn addr_of(&self, r: ObjRef) -> Addr {
        self.get(r).addr
    }

    /// Address range `[addr, addr+size)` of an object — for code bodies
    /// this is the PC range execution is attributed to.
    pub fn range_of(&self, r: ObjRef) -> (Addr, Addr) {
        let o = self.get(r);
        (o.addr, o.addr + o.byte_size)
    }

    pub fn live_object_count(&self) -> u64 {
        self.objects.iter().filter(|o| o.is_some()).count() as u64
    }

    /// Collect: trace from `roots` (plus `live_code`, which the VM
    /// declares live regardless of data reachability), copy live
    /// objects to the other semispace, free the rest, and report every
    /// relocation through `on_move`.
    pub fn collect(
        &mut self,
        roots: &[ObjRef],
        live_code: &[ObjRef],
        mut on_move: impl FnMut(&MoveEvent),
    ) -> GcStats {
        if self.mode == GcMode::NonMoving {
            return self.collect_non_moving(roots, live_code);
        }
        let to = 1 - self.active;
        let (to_start, to_end) = self.space_bounds(to);

        // Mark phase: BFS from roots ∪ live_code.
        let mut marked = vec![false; self.objects.len()];
        let mut worklist: Vec<ObjRef> = Vec::new();
        for &r in roots.iter().chain(live_code) {
            if self.is_live(r) && !marked[r.0 as usize] {
                marked[r.0 as usize] = true;
                worklist.push(r);
            }
        }
        let mut order: Vec<ObjRef> = Vec::new();
        while let Some(r) = worklist.pop() {
            order.push(r);
            let obj = self.get(r);
            for slot in &obj.slots {
                if let Some(child) = slot.as_ref() {
                    if self.is_live(child) && !marked[child.0 as usize] {
                        marked[child.0 as usize] = true;
                        worklist.push(child);
                    }
                }
            }
        }
        // Copy in handle order for deterministic layout.
        order.sort_unstable();

        let mut stats = GcStats::default();
        let mut bump = to_start;
        let promote_after = self.mature.map(|c| c.promote_after);
        let mut promoted = 0u64;
        let mut mature_ptr = self.mature_ptr;
        for r in order {
            let mature_room = self.region.1 - mature_ptr;
            let obj = self.objects[r.0 as usize]
                .as_mut()
                .expect("marked object must be live");
            let bytes = obj.byte_size;
            stats.live_bytes += bytes;
            stats.live_objects += 1;
            // Mature objects never move (and are not re-reported).
            if obj.mature {
                continue;
            }
            obj.survivals += 1;
            // Promote long-lived survivors into the mature space.
            let new_addr = match promote_after {
                Some(n) if obj.survivals >= n && bytes <= mature_room => {
                    obj.mature = true;
                    promoted += 1;
                    let a = mature_ptr;
                    mature_ptr += bytes;
                    a
                }
                _ => {
                    assert!(
                        bump + bytes <= to_end,
                        "to-space overflow during copy (live set exceeds a semispace)"
                    );
                    let a = bump;
                    bump += bytes;
                    a
                }
            };
            let ev = MoveEvent {
                obj: r,
                kind: obj.kind,
                old_addr: obj.addr,
                new_addr,
                byte_size: bytes,
            };
            obj.addr = new_addr;
            stats.copied_bytes += bytes;
            if matches!(ev.kind, ObjKind::Code(_)) {
                stats.moved_code_bodies += 1;
            }
            on_move(&ev);
        }
        self.mature_ptr = mature_ptr;
        self.promotions += promoted;
        self.bytes_copied += stats.copied_bytes;

        // Sweep: free unmarked handles.
        for (i, slot) in self.objects.iter_mut().enumerate() {
            if slot.is_some() && !marked[i] {
                *slot = None;
                self.free.push(i as u32);
                stats.freed_objects += 1;
            }
        }

        self.active = to;
        self.alloc_ptr = bump;
        self.collections += 1;
        stats
    }

    /// Mark-sweep collection: nothing moves; dead objects' extents (and
    /// ephemeral segments) return to the free list.
    fn collect_non_moving(&mut self, roots: &[ObjRef], live_code: &[ObjRef]) -> GcStats {
        // Mark phase (identical reachability to the copying collector).
        let mut marked = vec![false; self.objects.len()];
        let mut worklist: Vec<ObjRef> = Vec::new();
        for &r in roots.iter().chain(live_code) {
            if self.is_live(r) && !marked[r.0 as usize] {
                marked[r.0 as usize] = true;
                worklist.push(r);
            }
        }
        let mut stats = GcStats::default();
        while let Some(r) = worklist.pop() {
            let obj = self.get(r);
            stats.live_objects += 1;
            stats.live_bytes += obj.byte_size;
            for slot in &obj.slots {
                if let Some(child) = slot.as_ref() {
                    if self.is_live(child) && !marked[child.0 as usize] {
                        marked[child.0 as usize] = true;
                        worklist.push(child);
                    }
                }
            }
        }
        // Survival counting still happens (age statistics), but nothing
        // is promoted or moved.
        for (i, m) in marked.iter().enumerate() {
            if *m {
                if let Some(obj) = self.objects[i].as_mut() {
                    obj.survivals += 1;
                }
            }
        }
        // Sweep: dead extents become holes.
        let mut dead: Vec<(Addr, u64, u32)> = Vec::new();
        for (i, slot) in self.objects.iter().enumerate() {
            if let Some(obj) = slot {
                if !marked[i] {
                    dead.push((obj.addr, obj.byte_size, i as u32));
                }
            }
        }
        for (addr, len, idx) in dead {
            self.objects[idx as usize] = None;
            self.free.push(idx);
            self.free_hole(addr, len);
            stats.freed_objects += 1;
        }
        let segments = std::mem::take(&mut self.ephemeral_segments);
        for (addr, len) in segments {
            self.free_hole(addr, len);
        }
        self.collections += 1;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new((0x6000_0000, 0x6000_4000)) // two 8 KiB semispaces
    }

    #[test]
    fn alloc_bumps_within_active_space() {
        let mut h = heap();
        let a = h.alloc_data(ClassId(0), 2).unwrap();
        let b = h.alloc_data(ClassId(0), 2).unwrap();
        assert!(h.addr_of(b) > h.addr_of(a));
        assert!(h.addr_of(a) >= 0x6000_0000);
        assert!(h.addr_of(b) < 0x6000_2000, "stays in first semispace");
    }

    #[test]
    fn out_of_space_reported() {
        let mut h = heap();
        // Fill the 8 KiB semispace with 512-slot arrays (16+4096 → 4112→4128).
        assert!(h.alloc_array(512).is_ok());
        let e = h.alloc_array(512).unwrap_err();
        assert!(e.requested > e.available);
    }

    #[test]
    fn collect_frees_garbage_and_keeps_roots() {
        let mut h = heap();
        let keep = h.alloc_data(ClassId(0), 1).unwrap();
        let lose = h.alloc_data(ClassId(0), 1).unwrap();
        let stats = h.collect(&[keep], &[], |_| {});
        assert_eq!(stats.live_objects, 1);
        assert_eq!(stats.freed_objects, 1);
        assert!(h.is_live(keep));
        assert!(!h.is_live(lose));
    }

    #[test]
    fn collect_traces_through_fields() {
        let mut h = heap();
        let child = h.alloc_data(ClassId(0), 0).unwrap();
        let parent = h.alloc_data(ClassId(0), 1).unwrap();
        h.get_mut(parent).slots[0] = Value::Ref(Some(child));
        let stats = h.collect(&[parent], &[], |_| {});
        assert_eq!(stats.live_objects, 2);
        assert!(h.is_live(child));
    }

    #[test]
    fn collect_moves_objects_to_other_semispace() {
        let mut h = heap();
        let a = h.alloc_data(ClassId(0), 1).unwrap();
        let before = h.addr_of(a);
        let mut moves = Vec::new();
        h.collect(&[a], &[], |m| moves.push(*m));
        let after = h.addr_of(a);
        assert_ne!(before, after);
        assert!(after >= 0x6000_2000, "copied into second semispace");
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].old_addr, before);
        assert_eq!(moves[0].new_addr, after);
    }

    #[test]
    fn code_bodies_survive_via_live_code_and_report_moves() {
        let mut h = heap();
        let code = h.alloc_code(MethodId(3), 100).unwrap();
        let stale = h.alloc_code(MethodId(3), 80).unwrap();
        let mut code_moves = 0;
        let stats = h.collect(&[], &[code], |m| {
            if matches!(m.kind, ObjKind::Code(_)) {
                code_moves += 1;
            }
        });
        assert_eq!(stats.moved_code_bodies, 1);
        assert_eq!(code_moves, 1);
        assert!(h.is_live(code));
        assert!(!h.is_live(stale), "superseded body collected");
    }

    #[test]
    fn allocation_resumes_after_collection() {
        let mut h = heap();
        for _ in 0..3 {
            h.alloc_array(100).unwrap();
        }
        h.collect(&[], &[], |_| {});
        // Everything died: the new space is empty again.
        let r = h.alloc_array(100).unwrap();
        assert!(h.is_live(r));
        assert_eq!(h.collections, 1);
    }

    #[test]
    fn two_collections_round_trip_addresses() {
        let mut h = heap();
        let a = h.alloc_data(ClassId(0), 1).unwrap();
        let addr0 = h.addr_of(a);
        h.collect(&[a], &[], |_| {});
        h.collect(&[a], &[], |_| {});
        // Back in the first semispace at its start.
        assert_eq!(h.addr_of(a), addr0);
    }

    #[test]
    fn handles_are_reused_after_free() {
        let mut h = heap();
        let a = h.alloc_data(ClassId(0), 1).unwrap();
        h.collect(&[], &[], |_| {});
        assert!(!h.is_live(a));
        let b = h.alloc_data(ClassId(0), 1).unwrap();
        assert_eq!(a, b, "freed handle is recycled");
    }

    #[test]
    fn cyclic_graphs_do_not_hang_collection() {
        let mut h = heap();
        let a = h.alloc_data(ClassId(0), 1).unwrap();
        let b = h.alloc_data(ClassId(0), 1).unwrap();
        h.get_mut(a).slots[0] = Value::Ref(Some(b));
        h.get_mut(b).slots[0] = Value::Ref(Some(a));
        let stats = h.collect(&[a], &[], |_| {});
        assert_eq!(stats.live_objects, 2);
    }

    #[test]
    fn ephemeral_allocation_fills_and_reports_partial() {
        let mut h = heap(); // 8 KiB semispaces
        let real = h.alloc_data(ClassId(0), 1).unwrap();
        let avail = h.available();
        assert_eq!(h.alloc_ephemeral(100), 100);
        // Ask for more than fits: get only what's left.
        let got = h.alloc_ephemeral(avail);
        assert_eq!(got, avail - 100);
        assert_eq!(h.available(), 0);
        // Collection reclaims every ephemeral byte; the real object lives.
        h.collect(&[real], &[], |_| {});
        assert!(h.is_live(real));
        assert!(h.available() > avail / 2);
    }

    #[test]
    fn mature_objects_stop_moving_after_promotion() {
        let mut h = Heap::with_mature(
            (0x6000_0000, 0x6001_0000),
            MatureConfig {
                promote_after: 2,
                fraction: 0.25,
            },
        );
        let code = h.alloc_code(MethodId(1), 100).unwrap();
        let mut moves = Vec::new();
        // GC 1: survives (survivals=1), moves. GC 2: promoted to mature.
        h.collect(&[], &[code], |m| moves.push(*m));
        h.collect(&[], &[code], |m| moves.push(*m));
        assert_eq!(moves.len(), 2);
        assert!(h.get(code).mature);
        assert_eq!(h.promotions, 1);
        let mature_addr = h.addr_of(code);
        // GC 3+: no more moves, address stable.
        h.collect(&[], &[code], |m| moves.push(*m));
        h.collect(&[], &[code], |m| moves.push(*m));
        assert_eq!(moves.len(), 2, "mature body must not move again");
        assert_eq!(h.addr_of(code), mature_addr);
        // The mature copy lives in the reserved top quarter.
        assert!(mature_addr >= 0x6000_0000 + 0xC000);
    }

    #[test]
    fn mature_space_shrinks_semispaces() {
        let plain = Heap::new((0, 0x10000));
        let seg = Heap::with_mature(
            (0, 0x10000),
            MatureConfig {
                promote_after: 1,
                fraction: 0.5,
            },
        );
        assert_eq!(plain.semispace_bytes(), 0x8000);
        assert_eq!(seg.semispace_bytes(), 0x4000);
        assert_eq!(seg.mature_available(), 0x8000);
    }

    #[test]
    fn full_mature_space_keeps_objects_in_nursery() {
        let mut h = Heap::with_mature(
            (0, 0x1000),
            MatureConfig {
                promote_after: 1,
                fraction: 0.1, // 256 bytes of mature space
            },
        );
        // A ~500-byte array cannot fit the 256-byte mature space: it
        // keeps getting copied between semispaces instead.
        let big = h.alloc_array(60).unwrap(); // 16+480 ≈ 496 bytes
        let a0 = h.addr_of(big);
        h.collect(&[big], &[], |_| {});
        assert!(!h.get(big).mature);
        assert_ne!(h.addr_of(big), a0, "still moving");
    }

    #[test]
    fn non_moving_collect_keeps_addresses_and_frees_holes() {
        let mut h = Heap::non_moving((0x7000_0000, 0x7000_4000));
        let keep = h.alloc_data(ClassId(0), 4).unwrap();
        let lose = h.alloc_array(16).unwrap();
        let keep2 = h.alloc_code(MethodId(1), 100).unwrap();
        let a_keep = h.addr_of(keep);
        let a_lose = h.addr_of(lose);
        let a_keep2 = h.addr_of(keep2);
        let mut moves = 0;
        let stats = h.collect(&[keep], &[keep2], |_| moves += 1);
        assert_eq!(moves, 0, "non-moving collector must not move");
        assert_eq!(h.addr_of(keep), a_keep);
        assert_eq!(h.addr_of(keep2), a_keep2);
        assert!(!h.is_live(lose));
        assert_eq!(stats.copied_bytes, 0);
        assert_eq!(stats.freed_objects, 1);
        // The hole is reused by a same-sized allocation.
        let again = h.alloc_array(16).unwrap();
        assert_eq!(h.addr_of(again), a_lose, "first-fit reuses the hole");
    }

    #[test]
    fn non_moving_holes_coalesce() {
        let mut h = Heap::non_moving((0x7000_0000, 0x7000_4000));
        let a = h.alloc_array(16).unwrap();
        let b = h.alloc_array(16).unwrap();
        let c = h.alloc_array(16).unwrap();
        let start = h.addr_of(a);
        let size = h.get(a).byte_size;
        // Free a and c first (non-adjacent), then b merges all three.
        h.collect(&[b], &[], |_| {});
        h.collect(&[], &[], |_| {});
        let _ = c;
        // One coalesced hole of 3 objects: a big array fits exactly there.
        let big = h.alloc_array((3 * size as usize - 16) / 8).unwrap();
        assert_eq!(h.addr_of(big), start);
    }

    #[test]
    fn non_moving_ephemeral_bytes_are_reclaimed() {
        let mut h = Heap::non_moving((0x7000_0000, 0x7000_1000)); // 4 KiB
        let keep = h.alloc_data(ClassId(0), 2).unwrap();
        let avail = h.available();
        assert_eq!(h.alloc_ephemeral(avail), avail);
        assert_eq!(h.available(), 0);
        h.collect(&[keep], &[], |_| {});
        assert_eq!(h.available(), avail, "every ephemeral byte reclaimed");
        assert!(h.is_live(keep));
        // And allocation keeps working from the holes.
        for _ in 0..10 {
            h.alloc_data(ClassId(0), 2).unwrap();
        }
    }

    #[test]
    fn non_moving_survives_many_cycles_without_leaking() {
        let mut h = Heap::non_moving((0x7000_0000, 0x7000_2000)); // 8 KiB
        let keep = h.alloc_data(ClassId(0), 4).unwrap();
        for _ in 0..50 {
            while h.alloc_array(8).is_ok() {}
            h.collect(&[keep], &[], |_| {});
        }
        assert!(h.is_live(keep));
        assert!(h.available() > 0x1000, "space must be reclaimed each cycle");
    }

    #[test]
    fn range_of_covers_byte_size() {
        let mut h = heap();
        let c = h.alloc_code(MethodId(0), 100).unwrap();
        let (s, e) = h.range_of(c);
        assert_eq!(e - s, align_up(HEADER_BYTES + 100));
    }
}
