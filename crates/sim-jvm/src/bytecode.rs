//! The mini bytecode ISA.
//!
//! Architecture-independent, stack-based — the property the paper
//! highlights as the reason dynamically generated code defeats
//! system-wide profilers: the executable form only comes into existence
//! (and gets an address) when the JIT runs.

use serde::{Deserialize, Serialize};

/// Index into [`crate::classes::ProgramDef`]'s method table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MethodId(pub u32);

/// Index into the class table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClassId(pub u32);

/// Index into the native-function registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NativeFnId(pub u32);

/// One bytecode operation. Branch offsets are relative to the *next*
/// instruction (so `Jump(-1)` is a self-loop on the jump itself being
/// re-decoded — i.e. `target = pc + 1 + offset`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    // -- stack / locals --
    /// Push a constant.
    Const(i64),
    /// Push local `n`.
    Load(u16),
    /// Pop into local `n`.
    Store(u16),
    Dup,
    Pop,
    // -- arithmetic (pop 2 push 1, except Neg) --
    Add,
    Sub,
    Mul,
    /// Division by zero pushes 0 (the mini-ISA has no exceptions).
    Div,
    Rem,
    Neg,
    // -- comparisons: pop 2, push 1 or 0 --
    Eq,
    Lt,
    Gt,
    // -- control flow --
    Jump(i32),
    /// Pop; branch if zero.
    JumpIfZero(i32),
    /// Pop; branch if non-zero.
    JumpIfNonZero(i32),
    // -- calls --
    /// Call a method: pops `arity` args (see the callee's declaration),
    /// pushes its return value.
    Call(MethodId),
    /// Return top-of-stack (or 0 from an empty stack).
    Ret,
    // -- heap --
    /// Allocate an instance of `class`; pushes a reference.
    New(ClassId),
    /// Pop ref, push field `n`.
    GetField(u16),
    /// Pop value, pop ref, store into field `n`.
    PutField(u16),
    /// Pop length, allocate an array, push ref.
    NewArray,
    /// Pop index, pop ref, push element.
    ALoad,
    /// Pop value, pop index, pop ref, store element.
    AStore,
    /// Pop ref, push length.
    ArrayLen,
    // -- native --
    /// Invoke a registered native function (libc/syscall model); pops
    /// the native's declared arity, pushes one result.
    NativeCall(NativeFnId),
    Nop,
}

impl Op {
    /// Relative weight of this op for code-size modelling: roughly how
    /// many machine-code bytes a baseline compiler would emit for it.
    pub fn size_weight(self) -> u32 {
        match self {
            Op::Nop => 1,
            Op::Const(_) | Op::Load(_) | Op::Store(_) | Op::Dup | Op::Pop => 4,
            Op::Add | Op::Sub | Op::Mul | Op::Neg | Op::Eq | Op::Lt | Op::Gt => 6,
            Op::Div | Op::Rem => 12,
            Op::Jump(_) | Op::JumpIfZero(_) | Op::JumpIfNonZero(_) => 8,
            Op::Call(_) | Op::NativeCall(_) | Op::Ret => 16,
            Op::New(_) | Op::NewArray => 24,
            Op::GetField(_) | Op::PutField(_) | Op::ALoad | Op::AStore | Op::ArrayLen => 10,
        }
    }

    /// Whether this op is a backward branch *given its offset* — the
    /// events the adaptive optimization system counts.
    pub fn is_backedge(self) -> bool {
        matches!(
            self,
            Op::Jump(o) | Op::JumpIfZero(o) | Op::JumpIfNonZero(o) if o < 0
        )
    }

    /// Whether this op reads or writes the heap (drives the memory
    /// activity model).
    pub fn touches_heap(self) -> bool {
        matches!(
            self,
            Op::GetField(_)
                | Op::PutField(_)
                | Op::ALoad
                | Op::AStore
                | Op::ArrayLen
                | Op::New(_)
                | Op::NewArray
        )
    }
}

/// Static verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Branch at `pc` targets an out-of-range instruction.
    BranchOutOfRange { pc: usize, target: i64 },
    /// Code does not end every path with `Ret` (approximated: last op
    /// must be `Ret` or an unconditional backward `Jump`).
    MissingReturn,
    /// Empty method body.
    Empty,
    /// Operand-stack underflow provable at `pc`: the op needs `need`
    /// values but at most `have` can be on the stack there.
    StackUnderflow { pc: usize, need: usize, have: usize },
    /// Two paths reach `pc` with different stack depths.
    InconsistentStack { pc: usize, a: usize, b: usize },
    /// Execution can fall off the end of the method.
    FallsOffEnd,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BranchOutOfRange { pc, target } => {
                write!(f, "branch at pc {pc} targets out-of-range {target}")
            }
            VerifyError::MissingReturn => write!(f, "method does not end in Ret"),
            VerifyError::Empty => write!(f, "empty method body"),
            VerifyError::StackUnderflow { pc, need, have } => {
                write!(f, "stack underflow at pc {pc}: need {need}, have {have}")
            }
            VerifyError::InconsistentStack { pc, a, b } => {
                write!(f, "inconsistent stack depth at pc {pc}: {a} vs {b}")
            }
            VerifyError::FallsOffEnd => write!(f, "control flow falls off the end"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Stack effect (pops, pushes) of an op. `Call`/`NativeCall` pops are
/// resolved by the caller-provided arity lookup (the op itself doesn't
/// know the callee's arity).
fn stack_effect(op: Op, callee_arity: impl Fn(Op) -> usize) -> (usize, usize) {
    match op {
        Op::Nop | Op::Jump(_) => (0, 0),
        Op::Const(_) | Op::Load(_) => (0, 1),
        Op::Store(_) | Op::Pop | Op::JumpIfZero(_) | Op::JumpIfNonZero(_) => (1, 0),
        Op::Dup => (1, 2),
        Op::Neg | Op::ArrayLen | Op::NewArray => (1, 1),
        Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Rem | Op::Eq | Op::Lt | Op::Gt => (2, 1),
        Op::New(_) => (0, 1),
        Op::GetField(_) => (1, 1),
        Op::PutField(_) => (2, 0),
        Op::ALoad => (2, 1),
        Op::AStore => (3, 0),
        Op::Ret => (0, 0), // Ret accepts an empty stack (returns 0)
        Op::Call(_) | Op::NativeCall(_) => (callee_arity(op), 1),
    }
}

/// Verify a method body's structural invariants: branch targets in
/// range, no fall-through past the end, and — via a dataflow pass over
/// the control-flow graph — a consistent, non-underflowing operand
/// stack on every path. `callee_arity` supplies arities for `Call` /
/// `NativeCall` ops (use `verify` when the body has none).
pub fn verify_with_arities(
    code: &[Op],
    callee_arity: impl Fn(Op) -> usize + Copy,
) -> Result<(), VerifyError> {
    if code.is_empty() {
        return Err(VerifyError::Empty);
    }
    // Pass 1: branch targets.
    for (pc, op) in code.iter().enumerate() {
        let off = match op {
            Op::Jump(o) | Op::JumpIfZero(o) | Op::JumpIfNonZero(o) => *o as i64,
            _ => continue,
        };
        let target = pc as i64 + 1 + off;
        if target < 0 || target >= code.len() as i64 {
            return Err(VerifyError::BranchOutOfRange { pc, target });
        }
    }
    if !code.iter().any(|o| matches!(o, Op::Ret)) {
        return Err(VerifyError::MissingReturn);
    }

    // Pass 2: abstract interpretation of stack depth over the CFG.
    let mut depth_at: Vec<Option<usize>> = vec![None; code.len()];
    let mut worklist = vec![(0usize, 0usize)];
    let mut saw_ret = false;
    while let Some((pc, depth)) = worklist.pop() {
        match depth_at[pc] {
            Some(d) if d == depth => continue,
            Some(d) => {
                return Err(VerifyError::InconsistentStack { pc, a: d, b: depth });
            }
            None => depth_at[pc] = Some(depth),
        }
        let op = code[pc];
        // Ret tolerates an empty stack; everything else must not
        // underflow.
        let (pops, pushes) = stack_effect(op, callee_arity);
        if !matches!(op, Op::Ret) && depth < pops {
            return Err(VerifyError::StackUnderflow {
                pc,
                need: pops,
                have: depth,
            });
        }
        let after = if matches!(op, Op::Ret) {
            saw_ret = true;
            continue;
        } else {
            depth - pops + pushes
        };
        let next = pc + 1;
        match op {
            Op::Jump(o) => {
                worklist.push(((pc as i64 + 1 + o as i64) as usize, after));
            }
            Op::JumpIfZero(o) | Op::JumpIfNonZero(o) => {
                worklist.push(((pc as i64 + 1 + o as i64) as usize, after));
                if next >= code.len() {
                    return Err(VerifyError::FallsOffEnd);
                }
                worklist.push((next, after));
            }
            _ => {
                if next >= code.len() {
                    return Err(VerifyError::FallsOffEnd);
                }
                worklist.push((next, after));
            }
        }
    }
    if !saw_ret {
        return Err(VerifyError::MissingReturn);
    }
    Ok(())
}

/// [`verify_with_arities`] for bodies whose `Call`s/`NativeCall`s all
/// take 0 arguments (callers with real call graphs use
/// [`crate::classes::ProgramBuilder::build`], which passes the true
/// arities).
pub fn verify(code: &[Op]) -> Result<(), VerifyError> {
    verify_with_arities(code, |_| 0)
}

/// Structural checks only: branch targets in range and a `Ret` (or
/// trailing unconditional back-jump) present. Used by the assembler,
/// which cannot know callee arities; the full dataflow pass runs at
/// [`crate::classes::ProgramBuilder::build`] time.
pub fn verify_structure(code: &[Op]) -> Result<(), VerifyError> {
    if code.is_empty() {
        return Err(VerifyError::Empty);
    }
    for (pc, op) in code.iter().enumerate() {
        let off = match op {
            Op::Jump(o) | Op::JumpIfZero(o) | Op::JumpIfNonZero(o) => *o as i64,
            _ => continue,
        };
        let target = pc as i64 + 1 + off;
        if target < 0 || target >= code.len() as i64 {
            return Err(VerifyError::BranchOutOfRange { pc, target });
        }
    }
    match code.last() {
        Some(Op::Ret) => Ok(()),
        Some(Op::Jump(o)) if *o < 0 => Ok(()),
        _ => Err(VerifyError::MissingReturn),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backedge_detection() {
        assert!(Op::Jump(-3).is_backedge());
        assert!(Op::JumpIfNonZero(-1).is_backedge());
        assert!(!Op::Jump(2).is_backedge());
        assert!(!Op::Add.is_backedge());
    }

    #[test]
    fn heap_ops_flagged() {
        assert!(Op::GetField(0).touches_heap());
        assert!(Op::NewArray.touches_heap());
        assert!(!Op::Add.touches_heap());
        assert!(!Op::Call(MethodId(0)).touches_heap());
    }

    #[test]
    fn verify_accepts_straightline_ret() {
        assert!(verify(&[Op::Const(1), Op::Ret]).is_ok());
    }

    #[test]
    fn verify_accepts_counted_loop() {
        // i = 5; while (i != 0) i -= 1; return 0
        let code = [
            Op::Const(5),
            Op::Store(0),
            Op::Load(0),          // 2: loop head
            Op::JumpIfZero(5),    // -> 8
            Op::Load(0),
            Op::Const(1),
            Op::Sub,
            Op::Store(0),
            // pc 8 would be next; use jump back to 2: offset = 2 - (8+1) = -7
        ];
        let mut v = code.to_vec();
        v.push(Op::Jump(-7));
        v.push(Op::Const(0));
        v.push(Op::Ret);
        assert!(verify(&v).is_ok());
    }

    #[test]
    fn verify_rejects_bad_branch() {
        let e = verify(&[Op::Jump(10), Op::Ret]).unwrap_err();
        assert!(matches!(e, VerifyError::BranchOutOfRange { pc: 0, .. }));
        let e = verify(&[Op::Jump(-5), Op::Ret]).unwrap_err();
        assert!(matches!(e, VerifyError::BranchOutOfRange { .. }));
    }

    #[test]
    fn verify_rejects_missing_ret_and_empty() {
        assert_eq!(verify(&[Op::Const(1)]), Err(VerifyError::MissingReturn));
        assert_eq!(verify(&[]), Err(VerifyError::Empty));
    }

    #[test]
    fn verify_rejects_provable_underflow() {
        // Add with only one value on the stack.
        let e = verify(&[Op::Const(1), Op::Add, Op::Ret]).unwrap_err();
        assert!(matches!(e, VerifyError::StackUnderflow { pc: 1, need: 2, have: 1 }));
        // Pop on an empty stack.
        let e = verify(&[Op::Pop, Op::Ret]).unwrap_err();
        assert!(matches!(e, VerifyError::StackUnderflow { pc: 0, .. }));
    }

    #[test]
    fn verify_rejects_inconsistent_merge_depths() {
        // One path pushes before the join, the other doesn't:
        //   0: Const 1            depth 1
        //   1: JumpIfZero +1 → 3  depth 0 on both exits
        //   2: Const 9            depth 1 at pc 3 via fallthrough
        //   3: Ret                but depth 0 when jumping 1 → 3
        let code = [Op::Const(1), Op::JumpIfZero(1), Op::Const(9), Op::Ret];
        let e = verify(&code).unwrap_err();
        assert!(matches!(e, VerifyError::InconsistentStack { pc: 3, .. }), "{e:?}");
    }

    #[test]
    fn verify_rejects_fall_off_end() {
        let e = verify(&[Op::Const(1), Op::JumpIfZero(-2), Op::Nop]).unwrap_err();
        // `Nop` at the end falls off (the Ret check fires first if
        // there's no Ret at all).
        assert!(matches!(e, VerifyError::MissingReturn | VerifyError::FallsOffEnd));
        // A *reachable* trailing op with no successor falls off.
        let code = [Op::Const(1), Op::JumpIfZero(1), Op::Ret, Op::Nop];
        let e = verify(&code).unwrap_err();
        assert!(matches!(e, VerifyError::FallsOffEnd), "{e:?}");
    }

    #[test]
    fn verify_accepts_balanced_branches() {
        // Both sides of a diamond leave one value.
        let code = [
            Op::Const(1),
            Op::JumpIfZero(3),  // → 5
            Op::Const(10),      // then-branch
            Op::Nop,
            Op::Jump(1),        // → 6
            Op::Const(20),      // else-branch
            Op::Ret,            // 6: one value either way
        ];
        assert!(verify(&code).is_ok());
    }

    #[test]
    fn verify_with_arities_checks_call_pops() {
        // Call of a 2-arg method with only one value available.
        let code = [Op::Const(1), Op::Call(MethodId(0)), Op::Ret];
        let arity2 = |_: Op| 2usize;
        let e = verify_with_arities(&code, arity2).unwrap_err();
        assert!(matches!(e, VerifyError::StackUnderflow { pc: 1, need: 2, have: 1 }));
        let code = [Op::Const(1), Op::Const(2), Op::Call(MethodId(0)), Op::Ret];
        assert!(verify_with_arities(&code, arity2).is_ok());
    }

    #[test]
    fn verify_allows_dead_code_after_unconditional_flow() {
        // pc 2 (Const) is unreachable; the verifier only checks
        // reachable code.
        let code = [Op::Const(0), Op::Ret, Op::Add, Op::Ret];
        assert!(verify(&code).is_ok());
    }

    #[test]
    fn size_weights_reasonable() {
        // Calls cost more than ALU which cost more than nops.
        assert!(Op::Call(MethodId(0)).size_weight() > Op::Add.size_weight());
        assert!(Op::Add.size_weight() > Op::Nop.size_weight());
    }
}
