//! # sim-jvm — simulated Java virtual machine substrate
//!
//! A Jikes-RVM-shaped virtual machine: programs are classes of methods
//! in a mini bytecode, compiled on first use by a baseline JIT and
//! recompiled at higher optimization levels by an adaptive optimization
//! system; code bodies live *inside the garbage-collected heap* and are
//! moved by the semispace copying collector — the exact property that
//! makes profiling JIT code hard and motivates VIProf's epoch-chained
//! code maps (paper §3.1).
//!
//! The VM's own internals (class loader, compilers, GC) execute out of a
//! *boot image* that the OS sees as a symbol-less `RVM.code.image`
//! mapping, with a separate `RVM.map` method map written to the VFS —
//! mirroring how Jikes RVM (written in Java) is invisible to stock
//! OProfile but resolvable by VIProf's post-processor.
//!
//! Profilers attach through the [`hooks::VmProfilerHooks`] seam: compile
//! and recompile events, GC-induced code moves, and epoch boundaries —
//! the paper's VM Agent is an implementation of this trait.

pub mod aos;
pub mod asm;
pub mod bootimage;
pub mod bytecode;
pub mod classes;
pub mod heap;
pub mod hooks;
pub mod interp;
pub mod natives;
pub mod vm;

pub use aos::{AosPolicy, OptLevel};
pub use asm::MethodAsm;
pub use bootimage::{BootImage, BootMethod, RVM_MAP_PATH};
pub use bytecode::{ClassId, MethodId, NativeFnId, Op, VerifyError};
pub use classes::{ClassDecl, MethodDecl, ProgramBuilder, ProgramDef};
pub use heap::{GcMode, GcStats, Heap, MatureConfig, ObjKind, ObjRef, Value};
pub use hooks::{CompiledBodyInfo, NullHooks, VmProfilerHooks};
pub use natives::{NativeFn, NativeRegistry};
pub use vm::{ExecCosts, Tiering, Vm, VmConfig, VmStats};
