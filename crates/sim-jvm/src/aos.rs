//! Adaptive optimization system (AOS).
//!
//! Jikes RVM compiles every method with the baseline compiler on first
//! invocation and *recompiles* hot methods at higher optimization
//! levels, guided by invocation and back-edge counters. Recompilation
//! is what makes a method's body exist "at several different memory
//! locations during a single execution" even before GC moves are
//! considered — one of the two events VIProf's code maps must track.

use serde::{Deserialize, Serialize};

/// Compilation tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    Baseline,
    Opt1,
    Opt2,
}

impl Default for OptLevel {
    fn default() -> Self {
        OptLevel::Baseline
    }
}

impl OptLevel {
    pub fn next(self) -> Option<OptLevel> {
        match self {
            OptLevel::Baseline => Some(OptLevel::Opt1),
            OptLevel::Opt1 => Some(OptLevel::Opt2),
            OptLevel::Opt2 => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            OptLevel::Baseline => "base",
            OptLevel::Opt1 => "O1",
            OptLevel::Opt2 => "O2",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-method hotness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotnessCounters {
    pub invocations: u64,
    pub backedges: u64,
}

impl HotnessCounters {
    /// Jikes-style combined hotness: invocations weigh more than loop
    /// iterations (a back-edge is 1/8 of an invocation).
    pub fn score(&self) -> u64 {
        self.invocations + self.backedges / 8
    }
}

/// Recompilation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AosPolicy {
    /// Hotness score at which a baseline method is promoted to Opt1.
    pub opt1_threshold: u64,
    /// Hotness score at which an Opt1 method is promoted to Opt2.
    pub opt2_threshold: u64,
}

impl Default for AosPolicy {
    fn default() -> Self {
        AosPolicy {
            opt1_threshold: 1_000,
            opt2_threshold: 50_000,
        }
    }
}

impl AosPolicy {
    /// Promotion decision for a method at `current` level with the given
    /// counters. Returns the level to recompile at, if any.
    pub fn decide(&self, current: OptLevel, counters: &HotnessCounters) -> Option<OptLevel> {
        let score = counters.score();
        match current {
            OptLevel::Baseline if score >= self.opt1_threshold => Some(OptLevel::Opt1),
            OptLevel::Opt1 if score >= self.opt2_threshold => Some(OptLevel::Opt2),
            _ => None,
        }
    }

    /// Policy that never recompiles (baseline-only ablation).
    pub fn baseline_only() -> Self {
        AosPolicy {
            opt1_threshold: u64::MAX,
            opt2_threshold: u64::MAX,
        }
    }

    /// Aggressive policy for tests that need recompilation quickly.
    pub fn eager() -> Self {
        AosPolicy {
            opt1_threshold: 2,
            opt2_threshold: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ladder() {
        assert_eq!(OptLevel::Baseline.next(), Some(OptLevel::Opt1));
        assert_eq!(OptLevel::Opt1.next(), Some(OptLevel::Opt2));
        assert_eq!(OptLevel::Opt2.next(), None);
        assert!(OptLevel::Baseline < OptLevel::Opt2);
    }

    #[test]
    fn score_weights_backedges_down() {
        let c = HotnessCounters {
            invocations: 10,
            backedges: 80,
        };
        assert_eq!(c.score(), 20);
    }

    #[test]
    fn decide_promotes_at_thresholds() {
        let p = AosPolicy {
            opt1_threshold: 10,
            opt2_threshold: 100,
        };
        let cold = HotnessCounters {
            invocations: 5,
            backedges: 0,
        };
        let warm = HotnessCounters {
            invocations: 10,
            backedges: 0,
        };
        let hot = HotnessCounters {
            invocations: 100,
            backedges: 0,
        };
        assert_eq!(p.decide(OptLevel::Baseline, &cold), None);
        assert_eq!(p.decide(OptLevel::Baseline, &warm), Some(OptLevel::Opt1));
        // Warm isn't enough for the Opt2 jump.
        assert_eq!(p.decide(OptLevel::Opt1, &warm), None);
        assert_eq!(p.decide(OptLevel::Opt1, &hot), Some(OptLevel::Opt2));
        // Top tier never promotes.
        assert_eq!(p.decide(OptLevel::Opt2, &hot), None);
    }

    #[test]
    fn baseline_only_never_promotes() {
        let p = AosPolicy::baseline_only();
        let very_hot = HotnessCounters {
            invocations: u64::MAX / 2,
            backedges: 0,
        };
        assert_eq!(p.decide(OptLevel::Baseline, &very_hot), None);
    }
}
