//! Label-based assembler for the mini bytecode.
//!
//! The workload programs (synthetic JVM98/DaCapo/pseudoJBB) are written
//! against this builder; it resolves symbolic labels to relative branch
//! offsets and verifies the result.

use crate::bytecode::{verify_structure, Op, VerifyError};
use std::collections::HashMap;

/// One assembler item: either a concrete op or a pending branch.
#[derive(Debug, Clone)]
enum Item {
    Op(Op),
    Jump(String),
    JumpIfZero(String),
    JumpIfNonZero(String),
}

/// Assembly error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    UnknownLabel(String),
    DuplicateLabel(String),
    Verify(VerifyError),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnknownLabel(l) => write!(f, "unknown label {l:?}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            AsmError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Builder for one method body.
#[derive(Debug, Clone, Default)]
pub struct MethodAsm {
    items: Vec<Item>,
    labels: HashMap<String, usize>,
}

impl MethodAsm {
    pub fn new() -> Self {
        MethodAsm::default()
    }

    /// Append a raw op.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.items.push(Item::Op(op));
        self
    }

    /// Append several raw ops.
    pub fn ops(&mut self, ops: impl IntoIterator<Item = Op>) -> &mut Self {
        for o in ops {
            self.op(o);
        }
        self
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let prev = self.labels.insert(name.to_string(), self.items.len());
        assert!(prev.is_none(), "duplicate label {name:?}");
        self
    }

    pub fn jump(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::Jump(label.to_string()));
        self
    }

    pub fn jump_if_zero(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::JumpIfZero(label.to_string()));
        self
    }

    pub fn jump_if_nonzero(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::JumpIfNonZero(label.to_string()));
        self
    }

    /// Emit a counted loop: `local[counter] = n; do { body } while (--local[counter] != 0);`
    /// The body is appended via the closure. `n` must be ≥ 1.
    pub fn counted_loop(
        &mut self,
        counter: u16,
        n: i64,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        assert!(n >= 1, "counted_loop needs n ≥ 1");
        // Unique label per loop, derived from current position.
        let head = format!("__loop_head_{}", self.items.len());
        self.op(Op::Const(n)).op(Op::Store(counter));
        self.label(&head);
        body(self);
        self.op(Op::Load(counter))
            .op(Op::Const(1))
            .op(Op::Sub)
            .op(Op::Dup)
            .op(Op::Store(counter));
        self.jump_if_nonzero(&head);
        self
    }

    /// Resolve labels and run the structural checks (branch targets,
    /// return present). The full stack-discipline verification — which
    /// needs callee arities — runs when the program is built.
    pub fn assemble(&self) -> Result<Vec<Op>, AsmError> {
        let resolve = |pc: usize, label: &str| -> Result<i32, AsmError> {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UnknownLabel(label.to_string()))?;
            Ok(target as i32 - (pc as i32 + 1))
        };
        let mut code = Vec::with_capacity(self.items.len());
        for (pc, item) in self.items.iter().enumerate() {
            let op = match item {
                Item::Op(o) => *o,
                Item::Jump(l) => Op::Jump(resolve(pc, l)?),
                Item::JumpIfZero(l) => Op::JumpIfZero(resolve(pc, l)?),
                Item::JumpIfNonZero(l) => Op::JumpIfNonZero(resolve(pc, l)?),
            };
            code.push(op);
        }
        verify_structure(&code).map_err(AsmError::Verify)?;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = MethodAsm::new();
        a.label("start")
            .op(Op::Const(0))
            .jump_if_zero("end")
            .jump("start")
            .label("end")
            .op(Op::Const(7))
            .op(Op::Ret);
        let code = a.assemble().unwrap();
        // pc1 JumpIfZero → "end" at index 3: offset = 3 - 2 = 1
        assert_eq!(code[1], Op::JumpIfZero(1));
        // pc2 Jump → "start" at 0: offset = 0 - 3 = -3
        assert_eq!(code[2], Op::Jump(-3));
    }

    #[test]
    fn unknown_label_is_error() {
        let mut a = MethodAsm::new();
        a.jump("nowhere").op(Op::Ret);
        assert_eq!(
            a.assemble(),
            Err(AsmError::UnknownLabel("nowhere".to_string()))
        );
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = MethodAsm::new();
        a.label("x").label("x");
    }

    #[test]
    fn counted_loop_emits_backedge() {
        let mut a = MethodAsm::new();
        a.counted_loop(0, 10, |b| {
            b.op(Op::Nop);
        });
        a.op(Op::Const(0)).op(Op::Ret);
        let code = a.assemble().unwrap();
        assert!(
            code.iter().any(|o| o.is_backedge()),
            "loop must produce a backward branch: {code:?}"
        );
    }

    #[test]
    fn assembled_code_passes_verifier() {
        let mut a = MethodAsm::new();
        a.counted_loop(0, 3, |b| {
            b.op(Op::Const(1)).op(Op::Pop);
        });
        a.op(Op::Const(0)).op(Op::Ret);
        assert!(a.assemble().is_ok());
    }

    #[test]
    fn nested_counted_loops() {
        let mut a = MethodAsm::new();
        a.counted_loop(0, 3, |outer| {
            outer.counted_loop(1, 4, |inner| {
                inner.op(Op::Nop);
            });
        });
        a.op(Op::Const(0)).op(Op::Ret);
        let code = a.assemble().unwrap();
        assert_eq!(code.iter().filter(|o| o.is_backedge()).count(), 2);
    }
}
