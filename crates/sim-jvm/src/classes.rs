//! Classes, methods, and whole-program definitions.

use crate::bytecode::{verify_with_arities, ClassId, MethodId, Op, VerifyError};
use crate::natives::NativeRegistry;
use serde::{Deserialize, Serialize};

/// Cache behaviour of a method's heap accesses, used by the
/// fast-forward execution mode (the detailed mode derives misses from
/// real addresses instead). Rates are per heap access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemSpec {
    pub l1_miss_rate: f64,
    pub l2_miss_rate: f64,
}

impl Default for MemSpec {
    fn default() -> Self {
        // Warm, cache-friendly code.
        MemSpec {
            l1_miss_rate: 0.02,
            l2_miss_rate: 0.002,
        }
    }
}

impl MemSpec {
    pub fn new(l1_miss_rate: f64, l2_miss_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&l1_miss_rate));
        assert!((0.0..=1.0).contains(&l2_miss_rate));
        assert!(l2_miss_rate <= l1_miss_rate, "L2 misses are a subset of L1 misses");
        MemSpec {
            l1_miss_rate,
            l2_miss_rate,
        }
    }
}

/// A method declaration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodDecl {
    /// Fully-qualified Java-style name, e.g.
    /// `spec.benchmarks._201_compress.Compressor.compress`.
    pub name: String,
    pub class: ClassId,
    /// Number of arguments popped by `Call`.
    pub arity: u16,
    /// Locals slots (≥ arity; args land in locals `0..arity`).
    pub nlocals: u16,
    pub code: Vec<Op>,
    pub mem: MemSpec,
}

/// A class: name plus instance field count (drives `New` object size).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassDecl {
    pub name: String,
    pub field_count: u16,
}

/// A complete program ready to load into a [`crate::vm::Vm`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramDef {
    pub classes: Vec<ClassDecl>,
    pub methods: Vec<MethodDecl>,
    pub entry: MethodId,
    /// Static slots shared by all methods (index space for tests and
    /// benchmark state).
    pub static_slots: u16,
}

impl ProgramDef {
    pub fn method(&self, id: MethodId) -> &MethodDecl {
        &self.methods[id.0 as usize]
    }

    pub fn class(&self, id: ClassId) -> &ClassDecl {
        &self.classes[id.0 as usize]
    }

    pub fn find_method(&self, name: &str) -> Option<MethodId> {
        self.methods
            .iter()
            .position(|m| m.name == name)
            .map(|i| MethodId(i as u32))
    }
}

/// Builder with validation.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    classes: Vec<ClassDecl>,
    methods: Vec<MethodDecl>,
    entry: Option<MethodId>,
    static_slots: u16,
}

/// Program construction error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    Verify { method: String, error: VerifyError },
    NoEntry,
    BadCallTarget { method: String, target: MethodId },
    BadClass { method: String, class: ClassId },
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::Verify { method, error } => {
                write!(f, "method {method}: {error}")
            }
            ProgramError::NoEntry => write!(f, "no entry method set"),
            ProgramError::BadCallTarget { method, target } => {
                write!(f, "method {method} calls unknown method {target:?}")
            }
            ProgramError::BadClass { method, class } => {
                write!(f, "method {method} references unknown class {class:?}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl ProgramBuilder {
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    pub fn add_class(&mut self, name: impl Into<String>, field_count: u16) -> ClassId {
        self.classes.push(ClassDecl {
            name: name.into(),
            field_count,
        });
        ClassId(self.classes.len() as u32 - 1)
    }

    pub fn add_method(
        &mut self,
        class: ClassId,
        name: impl Into<String>,
        arity: u16,
        nlocals: u16,
        code: Vec<Op>,
    ) -> MethodId {
        assert!(nlocals >= arity, "locals must cover the arguments");
        self.methods.push(MethodDecl {
            name: name.into(),
            class,
            arity,
            nlocals,
            code,
            mem: MemSpec::default(),
        });
        MethodId(self.methods.len() as u32 - 1)
    }

    /// Override the memory profile of a method (benchmarks with known
    /// cache behaviour, e.g. the paper's memset-heavy `ps`).
    pub fn set_mem(&mut self, m: MethodId, mem: MemSpec) {
        self.methods[m.0 as usize].mem = mem;
    }

    pub fn set_entry(&mut self, m: MethodId) {
        self.entry = Some(m);
    }

    pub fn reserve_statics(&mut self, slots: u16) {
        self.static_slots = self.static_slots.max(slots);
    }

    /// Validate and produce the program. Method bodies are verified
    /// with the *real* callee arities (`Call` targets from this
    /// program; `NativeCall` arities default to 0 — use
    /// [`ProgramBuilder::build_with_natives`] when natives take
    /// arguments).
    pub fn build(self) -> Result<ProgramDef, ProgramError> {
        self.build_inner(None)
    }

    /// Like [`ProgramBuilder::build`], with native arities supplied.
    pub fn build_with_natives(
        self,
        natives: &NativeRegistry,
    ) -> Result<ProgramDef, ProgramError> {
        self.build_inner(Some(natives))
    }

    fn build_inner(self, natives: Option<&NativeRegistry>) -> Result<ProgramDef, ProgramError> {
        let entry = self.entry.ok_or(ProgramError::NoEntry)?;
        for m in &self.methods {
            let arity_of = |op: Op| match op {
                Op::Call(target) => self
                    .methods
                    .get(target.0 as usize)
                    .map(|d| d.arity as usize)
                    .unwrap_or(0),
                Op::NativeCall(id) => natives
                    .and_then(|n| {
                        ((id.0 as usize) < n.len()).then(|| n.get(id).arity as usize)
                    })
                    .unwrap_or(0),
                _ => 0,
            };
            verify_with_arities(&m.code, arity_of).map_err(|error| ProgramError::Verify {
                method: m.name.clone(),
                error,
            })?;
            for op in &m.code {
                match *op {
                    Op::Call(target) if target.0 as usize >= self.methods.len() => {
                        return Err(ProgramError::BadCallTarget {
                            method: m.name.clone(),
                            target,
                        });
                    }
                    Op::New(class) if class.0 as usize >= self.classes.len() => {
                        return Err(ProgramError::BadClass {
                            method: m.name.clone(),
                            class,
                        });
                    }
                    _ => {}
                }
            }
        }
        Ok(ProgramDef {
            classes: self.classes,
            methods: self.methods,
            entry,
            static_slots: self.static_slots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ret0() -> Vec<Op> {
        vec![Op::Const(0), Op::Ret]
    }

    #[test]
    fn build_valid_program() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("Main", 2);
        let helper = b.add_method(c, "Main.helper", 0, 0, ret0());
        let main = b.add_method(c, "Main.main", 0, 1, vec![Op::Call(helper), Op::Ret]);
        b.set_entry(main);
        let p = b.build().unwrap();
        assert_eq!(p.methods.len(), 2);
        assert_eq!(p.find_method("Main.helper"), Some(helper));
        assert_eq!(p.class(c).field_count, 2);
    }

    #[test]
    fn missing_entry_rejected() {
        let b = ProgramBuilder::new();
        assert_eq!(b.build().unwrap_err(), ProgramError::NoEntry);
    }

    #[test]
    fn bad_call_target_rejected() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", 0);
        let m = b.add_method(c, "C.m", 0, 0, vec![Op::Call(MethodId(99)), Op::Ret]);
        b.set_entry(m);
        assert!(matches!(
            b.build().unwrap_err(),
            ProgramError::BadCallTarget { .. }
        ));
    }

    #[test]
    fn bad_class_rejected() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", 0);
        let m = b.add_method(c, "C.m", 0, 0, vec![Op::New(ClassId(7)), Op::Ret]);
        b.set_entry(m);
        assert!(matches!(b.build().unwrap_err(), ProgramError::BadClass { .. }));
    }

    #[test]
    fn unverifiable_method_rejected() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", 0);
        let m = b.add_method(c, "C.m", 0, 0, vec![Op::Const(1)]);
        b.set_entry(m);
        assert!(matches!(b.build().unwrap_err(), ProgramError::Verify { .. }));
    }

    #[test]
    #[should_panic(expected = "subset")]
    fn memspec_orders_miss_rates() {
        let _ = MemSpec::new(0.01, 0.5);
    }
}
