//! The VM boot image and its method map (`RVM.map`).
//!
//! Jikes RVM is written in Java: its class loader, compilers and GC are
//! compiled ahead of time into a *boot image* that the OS maps like any
//! other file — but with no ELF symbol table, so stock OProfile can only
//! report `RVM.code.image (no symbols)` (paper Figure 1, lower half).
//! The build also produces an internal method map; VIProf's
//! post-processor reads it to attribute boot-image samples to VM-internal
//! methods (Figure 1, upper half). This module models both artifacts.

use serde::{Deserialize, Serialize};
use sim_cpu::{Addr, Pid};
use sim_os::{Image, ImageId, Kernel, Loader};

/// Where the VM build drops its method map in the simulated VFS.
pub const RVM_MAP_PATH: &str = "/jikes/RVM.map";

/// OS-visible name of the boot image mapping.
pub const BOOT_IMAGE_NAME: &str = "RVM.code.image";

/// Name the *resolved* rows carry in VIProf reports (the paper prints
/// boot-image methods under the image name `RVM.map`).
pub const RVM_MAP_IMAGE_LABEL: &str = "RVM.map";

/// One VM-internal method in the boot image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BootMethod {
    pub name: String,
    pub offset: u64,
    pub size: u64,
}

/// Well-known boot methods the simulated VM charges its internal work
/// to. Names follow Jikes RVM 2.4.4 (several appear verbatim in the
/// paper's Figure 1).
pub mod well_known {
    pub const INTERPRET: &str = "com.ibm.jikesrvm.VM_Runtime.interpretMethod";
    pub const BASELINE_COMPILE: &str =
        "com.ibm.jikesrvm.compilers.baseline.VM_BaselineCompiler.compile";
    pub const OPT_COMPILE: &str = "com.ibm.jikesrvm.opt.VM_OptimizingCompiler.compile";
    pub const GC_COLLECT: &str = "com.ibm.jikesrvm.mm.VM_CopyingCollector.collect";
    pub const ALLOC_SLOWPATH: &str = "com.ibm.jikesrvm.mm.VM_Allocator.allocSlowPath";
    pub const CLASSLOAD: &str = "com.ibm.jikesrvm.classloader.VM_ClassLoader.loadClass";
    pub const AOS_DECIDE: &str = "com.ibm.jikesrvm.adaptive.VM_Controller.recompileDecision";
    pub const MAIN_RUN: &str = "com.ibm.jikesrvm.MainThread.run";
    // Figure-1 decoration: sub-phases of compilation and GC that the
    // paper's sample profile surfaces individually.
    pub const OSR_PROLOGUE: &str =
        "com.ibm.jikesrvm.classloader.VM_NormalMethod.getOsrPrologueLength";
    pub const HAS_ARRAY_READ: &str = "com.ibm.jikesrvm.classloader.VM_NormalMethod.hasArrayRead";
    pub const CODE_PATCH_MAPS: &str =
        "com.ibm.jikesrvm.opt.VM_OptCompiledMethod.createCodePatchMaps";
    pub const MISSED_SPILLS: &str =
        "com.ibm.jikesrvm.opt.VM_OptGenericGCMapIterator.checkForMissedSpills";
    pub const FINALIZE_OSR: &str =
        "com.ibm.jikesrvm.classloader.VM_NormalMethod.finalizeOsrSpecialization";
    pub const MC_OFFSET: &str = "com.ibm.jikesrvm.opt.VM_OptMachineCodeMap.getMethodForMCOffset";
    pub const VECTOR_TRIM: &str = "java.util.Vector.trimToSize";
    /// VIProf's VM Agent library (hooked into the VM, so it lives in VM
    /// space); map writes are charged here + to kernel `sys_write`.
    pub const AGENT_MAPWRITE: &str = "com.ibm.jikesrvm.viprof.VM_Agent.writeCodeMap";
}

/// The boot image: method map + (once installed) its mapping address.
#[derive(Debug, Clone)]
pub struct BootImage {
    methods: Vec<BootMethod>,
    /// Set by [`BootImage::install`].
    image_id: Option<ImageId>,
    base: Option<Addr>,
}

impl BootImage {
    /// Build an image from (name, size) pairs laid out contiguously.
    pub fn from_methods<'a>(methods: impl IntoIterator<Item = (&'a str, u64)>) -> Self {
        let mut offset = 0u64;
        let methods = methods
            .into_iter()
            .map(|(name, size)| {
                let m = BootMethod {
                    name: name.to_string(),
                    offset,
                    size,
                };
                offset += size;
                m
            })
            .collect();
        BootImage {
            methods,
            image_id: None,
            base: None,
        }
    }

    /// The standard Jikes-RVM-shaped boot image used by every benchmark.
    pub fn jikes_standard() -> Self {
        use well_known::*;
        BootImage::from_methods([
            (INTERPRET, 0x4000),
            (BASELINE_COMPILE, 0x6000),
            (OPT_COMPILE, 0xa000),
            (GC_COLLECT, 0x5000),
            (ALLOC_SLOWPATH, 0x1000),
            (CLASSLOAD, 0x3000),
            (AOS_DECIDE, 0x0800),
            (MAIN_RUN, 0x0800),
            (OSR_PROLOGUE, 0x0400),
            (HAS_ARRAY_READ, 0x0400),
            (CODE_PATCH_MAPS, 0x0800),
            (MISSED_SPILLS, 0x0600),
            (FINALIZE_OSR, 0x0400),
            (MC_OFFSET, 0x0600),
            (VECTOR_TRIM, 0x0200),
            (AGENT_MAPWRITE, 0x0400),
        ])
    }

    pub fn methods(&self) -> &[BootMethod] {
        &self.methods
    }

    pub fn total_size(&self) -> u64 {
        self.methods.iter().map(|m| m.size).sum()
    }

    pub fn image_id(&self) -> Option<ImageId> {
        self.image_id
    }

    pub fn base(&self) -> Option<Addr> {
        self.base
    }

    /// Serialize the map in the Jikes-internal text format our
    /// post-processor understands: `hex-offset hex-size name`.
    pub fn render_map(&self) -> String {
        let mut s = String::with_capacity(self.methods.len() * 64);
        for m in &self.methods {
            s.push_str(&format!("{:08x} {:08x} {}\n", m.offset, m.size, m.name));
        }
        s
    }

    /// Map the boot image into `pid`'s address space (as the symbol-less
    /// `RVM.code.image`) and write `RVM.map` to the VFS. Returns the
    /// mapping base.
    pub fn install(&mut self, kernel: &mut Kernel, pid: Pid, hint: Addr) -> Addr {
        let id = match kernel.images.find_by_name(BOOT_IMAGE_NAME) {
            Some(id) => id,
            // Deliberately NO symbols: this is what stock OProfile sees.
            None => kernel
                .images
                .insert(Image::new(BOOT_IMAGE_NAME, self.total_size().max(1))),
        };
        let base = Loader::load_image(kernel, pid, id, hint);
        kernel.vfs.write(RVM_MAP_PATH, self.render_map().into_bytes());
        self.image_id = Some(id);
        self.base = Some(base);
        base
    }

    /// Absolute PC range of a boot method (panics if not installed or
    /// unknown — both are setup bugs).
    pub fn range(&self, name: &str) -> (Addr, Addr) {
        let base = self.base.expect("boot image not installed");
        let m = self
            .methods
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("unknown boot method {name}"));
        (base + m.offset, base + m.offset + m.size)
    }

    /// Resolve an offset within the boot image to a method.
    pub fn resolve_offset(&self, offset: u64) -> Option<&BootMethod> {
        self.methods
            .iter()
            .find(|m| offset >= m.offset && offset < m.offset + m.size)
    }
}

/// Parse a rendered `RVM.map` back into boot methods (used by VIProf's
/// post-processor; lives here so the format has a single owner).
pub fn parse_map(text: &str) -> Result<Vec<BootMethod>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let (Some(off), Some(size), Some(name)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("RVM.map line {}: malformed", lineno + 1));
        };
        let offset = u64::from_str_radix(off, 16)
            .map_err(|e| format!("RVM.map line {}: bad offset: {e}", lineno + 1))?;
        let size = u64::from_str_radix(size, 16)
            .map_err(|e| format!("RVM.map line {}: bad size: {e}", lineno + 1))?;
        out.push(BootMethod {
            name: name.to_string(),
            offset,
            size,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methods_are_laid_out_contiguously() {
        let b = BootImage::jikes_standard();
        let ms = b.methods();
        for w in ms.windows(2) {
            assert_eq!(w[0].offset + w[0].size, w[1].offset);
        }
        assert_eq!(b.total_size(), ms.last().unwrap().offset + ms.last().unwrap().size);
    }

    #[test]
    fn map_render_parse_round_trip() {
        let b = BootImage::jikes_standard();
        let parsed = parse_map(&b.render_map()).unwrap();
        assert_eq!(parsed, b.methods());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_map("zzzz 10 name").is_err());
        assert!(parse_map("10").is_err());
        // Comments and blanks are fine.
        assert_eq!(parse_map("# comment\n\n").unwrap().len(), 0);
    }

    #[test]
    fn install_maps_symbolless_image_and_writes_map() {
        let mut k = Kernel::new();
        let pid = k.spawn("jikesrvm");
        let mut b = BootImage::jikes_standard();
        let base = b.install(&mut k, pid, 0x0900_0000);
        // The OS-visible image has no symbols (OProfile's blind spot).
        let img = k.images.get(b.image_id().unwrap());
        assert_eq!(img.name, BOOT_IMAGE_NAME);
        assert!(!img.has_symbols());
        // The map file exists and parses.
        let raw = k.vfs.read(RVM_MAP_PATH).unwrap();
        let parsed = parse_map(std::str::from_utf8(raw).unwrap()).unwrap();
        assert_eq!(parsed.len(), b.methods().len());
        // Ranges are absolute.
        let (s, e) = b.range(well_known::INTERPRET);
        assert_eq!(s, base);
        assert_eq!(e - s, 0x4000);
    }

    #[test]
    fn resolve_offset_finds_covering_method() {
        let b = BootImage::jikes_standard();
        let m = b.resolve_offset(0x4000 + 1).unwrap();
        assert_eq!(m.name, well_known::BASELINE_COMPILE);
        assert!(b.resolve_offset(b.total_size()).is_none());
    }

    #[test]
    #[should_panic(expected = "unknown boot method")]
    fn unknown_method_range_panics() {
        let mut k = Kernel::new();
        let pid = k.spawn("jvm");
        let mut b = BootImage::jikes_standard();
        b.install(&mut k, pid, 0x0900_0000);
        b.range("not.a.method");
    }
}
