//! The virtual machine: ties the interpreter, JIT tiers, AOS, heap and
//! boot image together and streams everything it does to the simulated
//! machine as attributed execution blocks.
//!
//! Attribution rules (who a sampled PC belongs to):
//!
//! * interpreted bytecode → the boot image's interpreter loop
//!   (`VM_Runtime.interpretMethod`) — OProfile sees `RVM.code.image`;
//! * JIT-compiled bytecode → the method's code body *inside the heap*
//!   — OProfile sees `anon`, VIProf sees `JIT.App` + epoch;
//! * compilation, GC, class loading → the matching boot-image methods
//!   (with the paper's Figure-1 sub-phase breakdown);
//! * native calls → the native library's symbol, plus the kernel symbol
//!   for the syscall part.
//!
//! Two execution fidelities share all of this machinery:
//! [`Vm::call`] interprets every op (detailed mode — used by tests,
//! examples and the Figure-1 case study), while [`Vm::run_batched`]
//! measures one invocation and replays its summary for long runs
//! (Figure 2/3), preserving exactly the events profilers care about:
//! sample placement, compiles, recompiles, GCs and epochs.

use crate::aos::{AosPolicy, HotnessCounters, OptLevel};
use crate::bootimage::{well_known, BootImage};
use crate::bytecode::{MethodId, NativeFnId, Op};
use crate::classes::{MemSpec, ProgramDef};
use crate::heap::{GcMode, Heap, MatureConfig, ObjKind, ObjRef, Value};
use crate::hooks::{CompiledBodyInfo, VmProfilerHooks};
use crate::interp::{Interp, StepError, StepEvent};
use crate::natives::NativeRegistry;
use sim_cpu::{Addr, BlockExec, CpuMode, FracAcc, MemAccess, MemActivity, Pid};
use sim_os::loader::{ANON_HINT, BIN_HINT, LIB_HINT};
use sim_os::{Image, Loader, Machine, Symbol};
use std::collections::HashMap;

/// Cycle/size model of the execution tiers and VM-internal activities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecCosts {
    pub interp_cycles_per_op: f64,
    pub baseline_cycles_per_op: f64,
    pub opt1_cycles_per_op: f64,
    pub opt2_cycles_per_op: f64,
    pub interp_instrs_per_op: f64,
    pub jit_instrs_per_op: f64,
    pub baseline_compile_cycles_per_op: u64,
    pub opt1_compile_cycles_per_op: u64,
    pub opt2_compile_cycles_per_op: u64,
    /// Machine-code bytes per `Op::size_weight` unit at each tier
    /// (optimized code is *larger*: inlining, maps, guards).
    pub code_bytes_factor_baseline: f64,
    pub code_bytes_factor_opt1: f64,
    pub code_bytes_factor_opt2: f64,
    pub gc_base_cycles: u64,
    pub gc_cycles_per_live_byte: f64,
    /// Amortized allocation fast-path cycles per allocation.
    pub alloc_cycles: u64,
    pub classload_cycles_per_method: u64,
    /// Ops per emitted block in detailed mode.
    pub quantum_ops: usize,
}

impl Default for ExecCosts {
    fn default() -> Self {
        ExecCosts {
            interp_cycles_per_op: 12.0,
            baseline_cycles_per_op: 4.5,
            opt1_cycles_per_op: 2.2,
            opt2_cycles_per_op: 1.5,
            interp_instrs_per_op: 14.0,
            jit_instrs_per_op: 5.0,
            baseline_compile_cycles_per_op: 450,
            opt1_compile_cycles_per_op: 5_000,
            opt2_compile_cycles_per_op: 15_000,
            code_bytes_factor_baseline: 1.0,
            code_bytes_factor_opt1: 1.6,
            code_bytes_factor_opt2: 2.2,
            gc_base_cycles: 150_000,
            gc_cycles_per_live_byte: 1.0,
            alloc_cycles: 25,
            classload_cycles_per_method: 40_000,
            quantum_ops: 512,
        }
    }
}

impl ExecCosts {
    fn cycles_per_op(&self, tier: Tier) -> f64 {
        match tier {
            Tier::Interp => self.interp_cycles_per_op,
            Tier::Jit(OptLevel::Baseline) => self.baseline_cycles_per_op,
            Tier::Jit(OptLevel::Opt1) => self.opt1_cycles_per_op,
            Tier::Jit(OptLevel::Opt2) => self.opt2_cycles_per_op,
        }
    }

    fn instrs_per_op(&self, tier: Tier) -> f64 {
        match tier {
            Tier::Interp => self.interp_instrs_per_op,
            Tier::Jit(_) => self.jit_instrs_per_op,
        }
    }

    fn compile_cycles_per_op(&self, level: OptLevel) -> u64 {
        match level {
            OptLevel::Baseline => self.baseline_compile_cycles_per_op,
            OptLevel::Opt1 => self.opt1_compile_cycles_per_op,
            OptLevel::Opt2 => self.opt2_compile_cycles_per_op,
        }
    }

    fn code_bytes_factor(&self, level: OptLevel) -> f64 {
        match level {
            OptLevel::Baseline => self.code_bytes_factor_baseline,
            OptLevel::Opt1 => self.code_bytes_factor_opt1,
            OptLevel::Opt2 => self.code_bytes_factor_opt2,
        }
    }
}

/// How methods reach executable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tiering {
    /// Jikes RVM style: baseline-compile on first invocation (the
    /// configuration the paper evaluates).
    CompileOnFirstUse,
    /// Interpret until hot, then baseline-compile (exercises the
    /// interpreter attribution path).
    InterpretThenCompile { compile_threshold: u64 },
}

/// VM construction parameters.
#[derive(Debug, Clone)]
pub struct VmConfig {
    pub heap_bytes: u64,
    pub aos: AosPolicy,
    pub costs: ExecCosts,
    pub tiering: Tiering,
    /// Mature-space behaviour (None = pure semispace, everything moves
    /// on every GC). The default matches Jikes RVM's segregated heap:
    /// long-lived code stops moving once promoted (paper §4.3).
    /// Ignored when `gc_mode` is `NonMoving`.
    pub mature: Option<MatureConfig>,
    /// Copying (Jikes-like, the paper's setting) or non-moving
    /// mark-sweep (the E8 ablation: code never moves).
    pub gc_mode: GcMode,
    /// Feed real addresses through the cache hierarchy (requires the
    /// machine to have one). Off → statistical misses from `MemSpec`s.
    pub detailed_mem: bool,
    /// Self-telemetry registry: when present, GC collections and their
    /// virtual-cycle pauses are recorded (zero simulated cost).
    pub telemetry: Option<viprof_telemetry::Telemetry>,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            heap_bytes: 64 * 1024 * 1024,
            aos: AosPolicy::default(),
            costs: ExecCosts::default(),
            tiering: Tiering::CompileOnFirstUse,
            mature: Some(MatureConfig::default()),
            gc_mode: GcMode::Copying,
            detailed_mem: false,
            telemetry: None,
        }
    }
}

/// Execution tier of a block of app code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Interp,
    Jit(OptLevel),
}

/// Counters for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    pub compiles: u64,
    pub recompiles: u64,
    pub gcs: u64,
    pub ops_interpreted: u64,
    pub ops_jit: u64,
    pub native_calls: u64,
    pub batched_invocations: u64,
    pub classloads: u64,
}

/// Per-invocation behaviour summary for batched replay.
#[derive(Debug, Clone, Default)]
struct InvocationSummary {
    ops: u64,
    backedges: u64,
    calls: u64,
    heap_accesses: u64,
    allocations: u64,
    alloc_bytes: u64,
    /// Aggregated native calls: id → (count, total user cycles,
    /// total kernel cycles, total accesses).
    natives: HashMap<NativeFnId, (u64, u64, u64, u64)>,
}

#[derive(Debug, Default)]
struct MethodState {
    body: Option<ObjRef>,
    level: OptLevel,
    counters: HotnessCounters,
    compiles: u32,
    summary: Option<InvocationSummary>,
    fa_l1: FracAcc,
    fa_l2: FracAcc,
}

/// Block accumulator for detailed execution.
#[derive(Debug, Default)]
struct BlockAcc {
    ctx: Option<(Tier, MethodId)>,
    ops: u64,
    backedges: u64,
    calls: u64,
    heap_accesses: u64,
    alloc_extra_cycles: u64,
    detailed: Vec<MemAccess>,
}

/// The breakdown of VM-internal activities over boot-image methods —
/// this is what makes the Figure-1 VM rows appear with plausible
/// relative weights.
const BASELINE_COMPILE_PARTS: &[(&str, f64)] = &[
    (well_known::BASELINE_COMPILE, 0.85),
    (well_known::CLASSLOAD, 0.05),
    (well_known::OSR_PROLOGUE, 0.04),
    (well_known::HAS_ARRAY_READ, 0.06),
];

const OPT_COMPILE_PARTS: &[(&str, f64)] = &[
    (well_known::OPT_COMPILE, 0.70),
    (well_known::CODE_PATCH_MAPS, 0.08),
    (well_known::MC_OFFSET, 0.06),
    (well_known::FINALIZE_OSR, 0.06),
    (well_known::OSR_PROLOGUE, 0.04),
    (well_known::HAS_ARRAY_READ, 0.03),
    (well_known::AOS_DECIDE, 0.03),
];

const GC_PARTS: &[(&str, f64)] = &[
    (well_known::GC_COLLECT, 0.82),
    (well_known::MISSED_SPILLS, 0.10),
    (well_known::VECTOR_TRIM, 0.03),
    (well_known::ALLOC_SLOWPATH, 0.05),
];

/// Cache behaviour of the copying collector (streams the live set).
const GC_MEM: MemSpec = MemSpec {
    l1_miss_rate: 0.20,
    l2_miss_rate: 0.08,
};

/// Resolved PC ranges of a native function.
#[derive(Debug, Clone, Copy)]
struct NativeAddrs {
    user: (Addr, Addr),
    kernel: Option<(Addr, Addr)>,
}

/// The virtual machine.
pub struct Vm {
    pub pid: Pid,
    program: ProgramDef,
    natives: NativeRegistry,
    native_addrs: Vec<NativeAddrs>,
    pub boot: BootImage,
    heap: Heap,
    hooks: Box<dyn VmProfilerHooks>,
    interp: Interp,
    methods: Vec<MethodState>,
    config: VmConfig,
    pub stats: VmStats,
    /// Fraction accumulators for GC/native statistical misses.
    fa_gc: (FracAcc, FracAcc),
    fa_native: (FracAcc, FracAcc),
    /// When measuring an invocation for batching.
    measuring: Option<InvocationSummary>,
}

impl Vm {
    /// Boot a VM: spawn the process, map bootstrap binary, boot image,
    /// native libraries and the heap; register with the profiler hooks;
    /// charge class-loading time.
    pub fn boot(
        machine: &mut Machine,
        program: ProgramDef,
        natives: NativeRegistry,
        config: VmConfig,
        mut hooks: Box<dyn VmProfilerHooks>,
    ) -> Vm {
        let kernel = &mut machine.kernel;
        let pid = kernel.spawn("jikesrvm");

        // The small C bootstrap loader (profiled natively, paper §3.2).
        let boot_bin = match kernel.images.find_by_name("jikesrvm") {
            Some(id) => id,
            None => kernel.images.insert(
                Image::new("jikesrvm", 0x2000)
                    .with_symbols([Symbol::new("main", 0, 0x800), Symbol::new("bootRVM", 0x800, 0x1800)]),
            ),
        };
        Loader::load_image(kernel, pid, boot_bin, BIN_HINT);

        // Boot image + RVM.map.
        let mut boot = BootImage::jikes_standard();
        boot.install(kernel, pid, 0x0900_0000);

        // Native libraries: one image per distinct library, symbols laid
        // out 4 KiB apart per native function. Images are global (shared
        // by every process, like real shared libraries) but must be
        // mapped into *this* process; missing symbols are appended when
        // a second VM uses natives the first did not.
        let mut native_addrs = Vec::with_capacity(natives.len());
        for image_name in natives.image_names() {
            let id = match kernel.images.find_by_name(image_name) {
                Some(id) => id,
                None => kernel.images.insert(Image::new(image_name, 0x40000)),
            };
            for (_, f) in natives.iter().filter(|(_, f)| f.image == image_name) {
                let img = kernel.images.get_mut(id);
                if img.symbols().iter().all(|s| s.name != f.symbol) {
                    let off = img
                        .symbols()
                        .last()
                        .map(|s| s.offset + s.size + 0xc00)
                        .unwrap_or(0x1000);
                    img.add_symbol(Symbol::new(f.symbol.clone(), off, 0x400));
                }
            }
            if kernel.process(pid).unwrap().space.image_base(id).is_none() {
                Loader::load_image(kernel, pid, id, LIB_HINT);
            }
        }
        for (_, f) in natives.iter() {
            let img_id = kernel.images.find_by_name(&f.image).expect("native image mapped");
            let base = kernel
                .process(pid)
                .unwrap()
                .space
                .image_base(img_id)
                .expect("native image has a base");
            let sym = kernel
                .images
                .get(img_id)
                .symbols()
                .iter()
                .find(|s| s.name == f.symbol)
                .expect("native symbol registered")
                .clone();
            let kernel_range = f
                .kernel_symbol
                .as_deref()
                .map(|k| kernel.kernel_symbol_range(k));
            native_addrs.push(NativeAddrs {
                user: (base + sym.offset, base + sym.offset + sym.size),
                kernel: kernel_range,
            });
        }

        // The GC-managed heap (code + data interwound).
        let heap_region = Loader::map_anon(kernel, pid, config.heap_bytes, ANON_HINT);
        let heap = match (config.gc_mode, config.mature) {
            (GcMode::NonMoving, _) => Heap::non_moving(heap_region),
            (GcMode::Copying, Some(mc)) => Heap::with_mature(heap_region, mc),
            (GcMode::Copying, None) => Heap::new(heap_region),
        };

        // VM registration with the profiler (paper §3, Runtime Profiler).
        // The kernel generation distinguishes this incarnation from any
        // earlier process that held the same pid.
        let gen = kernel.generation(pid);
        hooks.on_vm_start(pid, gen, heap_region);

        let interp = Interp::new(&program);
        let n_methods = program.methods.len();
        let mut vm = Vm {
            pid,
            program,
            natives,
            native_addrs,
            boot,
            heap,
            hooks,
            interp,
            methods: (0..n_methods).map(|_| MethodState::default()).collect(),
            config,
            stats: VmStats::default(),
            fa_gc: (FracAcc::new(), FracAcc::new()),
            fa_native: (FracAcc::new(), FracAcc::new()),
            measuring: None,
        };

        // Class loading: charged to the boot classloader.
        let load_cycles = vm.config.costs.classload_cycles_per_method
            * (vm.program.methods.len() as u64 + vm.program.classes.len() as u64);
        vm.emit_internal(machine, &[(well_known::CLASSLOAD, 0.9), (well_known::MAIN_RUN, 0.1)], load_cycles, false);
        vm.stats.classloads = vm.program.methods.len() as u64;
        vm
    }

    pub fn program(&self) -> &ProgramDef {
        &self.program
    }

    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Current GC epoch (paper §3.1: one epoch per collection).
    pub fn epoch(&self) -> u64 {
        self.heap.collections
    }

    /// Current compiled-code range of a method, if compiled.
    pub fn code_range(&self, m: MethodId) -> Option<(Addr, Addr)> {
        self.methods[m.0 as usize].body.map(|b| self.heap.range_of(b))
    }

    /// Current optimization level of a method (meaningful once
    /// compiled).
    pub fn opt_level(&self, m: MethodId) -> OptLevel {
        self.methods[m.0 as usize].level
    }

    /// Write statics (benchmark setup).
    pub fn set_static(&mut self, slot: usize, v: Value) {
        self.interp.statics[slot] = v;
    }

    pub fn get_static(&self, slot: usize) -> Value {
        self.interp.statics[slot]
    }

    /// Allocate a long-lived object graph (caches, tables, warehouse
    /// state) rooted in statics: ~4 KiB arrays that survive every
    /// collection, get copied by the first few GCs and then mature.
    /// Charged to the allocation slow path.
    pub fn alloc_retained(&mut self, machine: &mut Machine, bytes: u64) {
        const ARRAY_SLOTS: usize = 512;
        // The retained set must leave the nursery workable: clamp to
        // half a semispace (it lives there until promoted) and to most
        // of the mature space (where it ends up).
        let budget = bytes
            .min(self.heap.semispace_bytes() / 2)
            .min(self.heap.mature_available().max(self.heap.semispace_bytes()) * 4 / 5);
        let mut allocated = 0u64;
        let mut count = 0u64;
        'outer: while allocated < budget {
            let r = {
                let mut gc_done = false;
                loop {
                    match self.heap.alloc_array(ARRAY_SLOTS) {
                        Ok(r) => break r,
                        Err(_) if !gc_done => {
                            self.do_gc(machine);
                            gc_done = true;
                        }
                        // No progress even after collecting: the heap is
                        // genuinely full — stop with what we have.
                        Err(_) => break 'outer,
                    }
                }
            };
            allocated += self.heap.get(r).byte_size;
            self.interp.statics.push(Value::Ref(Some(r)));
            count += 1;
        }
        let cycles = count * self.config.costs.alloc_cycles * 8; // slow path
        self.emit_internal(machine, &[(well_known::ALLOC_SLOWPATH, 1.0)], cycles, false);
    }

    /// VM shutdown: final agent flush (writes the last partial map).
    pub fn shutdown(&mut self, machine: &mut Machine) {
        let epoch = self.heap.collections;
        let cycles = self.hooks.on_vm_exit(epoch, &mut machine.kernel.vfs);
        if cycles > 0 {
            self.emit_internal(machine, &[(well_known::AGENT_MAPWRITE, 1.0)], cycles, false);
        }
    }

    /// Unclean death: the VM process vanishes from the kernel's table
    /// with *no* final map flush and no agent unregistration — exactly
    /// what a crash looks like to the profiler. The pid returns to the
    /// kernel's free list, so a later spawn may reuse it at a bumped
    /// generation. Consumes the VM; a restart is a fresh `Vm::boot`.
    pub fn kill(mut self, machine: &mut Machine) -> VmStats {
        machine.kernel.exit_process(self.pid);
        std::mem::take(&mut self.stats)
    }

    // ---------------- detailed execution ----------------

    /// Run the program's entry method.
    pub fn run(&mut self, machine: &mut Machine) -> Value {
        self.call(machine, self.program.entry, &[])
    }

    /// Call `method(args)`, interpreting/executing every op.
    pub fn call(&mut self, machine: &mut Machine, method: MethodId, args: &[Value]) -> Value {
        self.hooks
            .on_call(None, self.program.methods[method.0 as usize].name.as_str());
        self.prepare_invoke(machine, method);
        self.interp.enter(&self.program, method, args);
        let mut acc = BlockAcc::default();
        let result;
        loop {
            let pre_ctx = self.current_ctx();
            if acc.ctx.is_none() {
                acc.ctx = Some(pre_ctx);
            } else if acc.ctx != Some(pre_ctx) {
                self.flush(machine, &mut acc);
                acc.ctx = Some(pre_ctx);
            }
            match self.interp.step(&self.program, &mut self.heap, &self.natives) {
                Err(StepError::NeedGc { .. }) => {
                    self.flush(machine, &mut acc);
                    self.do_gc(machine);
                }
                Err(StepError::Halted) => unreachable!("loop exits on finished Ret"),
                Ok(info) => {
                    acc.ops += 1;
                    match pre_ctx.0 {
                        Tier::Interp => self.stats.ops_interpreted += 1,
                        Tier::Jit(_) => self.stats.ops_jit += 1,
                    }
                    if let Some(m) = &mut self.measuring {
                        m.ops += 1;
                    }
                    if let Some(addr) = info.heap_addr {
                        acc.heap_accesses += 1;
                        if let Some(m) = &mut self.measuring {
                            m.heap_accesses += 1;
                        }
                        if self.config.detailed_mem {
                            let kind = match info.op {
                                Op::PutField(_) | Op::AStore => MemAccess::write(addr),
                                _ => MemAccess::read(addr),
                            };
                            acc.detailed.push(kind);
                        }
                    }
                    match info.event {
                        StepEvent::Normal => {}
                        StepEvent::Backedge => {
                            acc.backedges += 1;
                            if let Some(m) = &mut self.measuring {
                                m.backedges += 1;
                            }
                            let (tier, mid) = pre_ctx;
                            let st = &mut self.methods[mid.0 as usize];
                            st.counters.backedges += 1;
                            // Periodic promotion check on loop backedges.
                            if st.counters.backedges % 1024 == 0 {
                                if let Tier::Jit(level) = tier {
                                    if let Some(target) =
                                        self.config.aos.decide(level, &st.counters)
                                    {
                                        self.flush(machine, &mut acc);
                                        self.compile(machine, mid, target);
                                    }
                                }
                            }
                        }
                        StepEvent::Call(callee) => {
                            acc.calls += 1;
                            if let Some(m) = &mut self.measuring {
                                m.calls += 1;
                            }
                            acc.alloc_extra_cycles += self.hooks.on_call(
                                Some(self.program.methods[pre_ctx.1 .0 as usize].name.as_str()),
                                self.program.methods[callee.0 as usize].name.as_str(),
                            );
                            self.flush(machine, &mut acc);
                            self.prepare_invoke(machine, callee);
                        }
                        StepEvent::Ret { finished, value } => {
                            self.flush(machine, &mut acc);
                            if finished {
                                result = value;
                                break;
                            }
                        }
                        StepEvent::Native { id, arg0 } => {
                            acc.alloc_extra_cycles += self.hooks.on_call(
                                Some(self.program.methods[pre_ctx.1 .0 as usize].name.as_str()),
                                self.natives.get(id).symbol.as_str(),
                            );
                            self.flush(machine, &mut acc);
                            self.exec_native(machine, id, arg0, 1);
                        }
                        StepEvent::Alloc { bytes } => {
                            acc.alloc_extra_cycles += self.config.costs.alloc_cycles;
                            if let Some(m) = &mut self.measuring {
                                m.allocations += 1;
                                m.alloc_bytes += bytes;
                            }
                        }
                    }
                    if acc.ops as usize >= self.config.costs.quantum_ops {
                        self.flush(machine, &mut acc);
                    }
                }
            }
        }
        result
    }

    /// Context of the currently executing top frame.
    fn current_ctx(&self) -> (Tier, MethodId) {
        let mid = self
            .interp
            .current_method()
            .expect("no active frame");
        let st = &self.methods[mid.0 as usize];
        match st.body {
            Some(_) => (Tier::Jit(st.level), mid),
            None => (Tier::Interp, mid),
        }
    }

    /// Count an invocation and compile/promote per policy.
    fn prepare_invoke(&mut self, machine: &mut Machine, method: MethodId) {
        let st = &mut self.methods[method.0 as usize];
        st.counters.invocations += 1;
        let counters = st.counters;
        let has_body = st.body.is_some();
        let level = st.level;
        match self.config.tiering {
            Tiering::CompileOnFirstUse if !has_body => {
                self.compile(machine, method, OptLevel::Baseline);
            }
            Tiering::InterpretThenCompile { compile_threshold } if !has_body => {
                if counters.score() >= compile_threshold {
                    self.compile(machine, method, OptLevel::Baseline);
                }
            }
            _ => {
                if has_body {
                    if let Some(target) = self.config.aos.decide(level, &counters) {
                        self.compile(machine, method, target);
                    }
                }
            }
        }
    }

    /// Compile or recompile `method` at `level`.
    fn compile(&mut self, machine: &mut Machine, method: MethodId, level: OptLevel) {
        let decl = &self.program.methods[method.0 as usize];
        let weight: u64 = decl.code.iter().map(|o| o.size_weight() as u64).sum();
        let ops = decl.code.len() as u64;
        let size = (weight as f64 * self.config.costs.code_bytes_factor(level)).ceil() as u64;
        assert!(
            size + 32 < self.heap.semispace_bytes(),
            "method {} too large for the heap",
            decl.name
        );
        // Allocate the body, collecting as needed.
        let body = loop {
            match self.heap.alloc_code(method, size) {
                Ok(r) => break r,
                Err(_) => self.do_gc(machine),
            }
        };
        let is_recompile = self.methods[method.0 as usize].body.is_some();
        {
            let st = &mut self.methods[method.0 as usize];
            st.body = Some(body); // old body becomes garbage
            st.level = level;
            st.compiles += 1;
        }
        if is_recompile {
            self.stats.recompiles += 1;
        } else {
            self.stats.compiles += 1;
        }

        // Charge compilation time to the right boot methods.
        let cycles = ops * self.config.costs.compile_cycles_per_op(level);
        let parts = if level == OptLevel::Baseline {
            BASELINE_COMPILE_PARTS
        } else {
            OPT_COMPILE_PARTS
        };
        self.emit_internal(machine, parts, cycles, false);

        // VM Agent hook: log the fresh body (paper §3, VM Agent).
        let (addr, _) = self.heap.range_of(body);
        let info = CompiledBodyInfo {
            method,
            signature: self.program.methods[method.0 as usize].name.clone(),
            addr,
            size: self.heap.get(body).byte_size,
            opt_level: level,
            is_recompile,
            epoch: self.heap.collections,
        };
        let hook_cycles = self.hooks.on_compile(&info);
        if hook_cycles > 0 {
            let lead = if level == OptLevel::Baseline {
                well_known::BASELINE_COMPILE
            } else {
                well_known::OPT_COMPILE
            };
            self.emit_internal(machine, &[(lead, 1.0)], hook_cycles, false);
        }
    }

    /// Run a garbage collection: agent map write, copy, move hooks,
    /// epoch bump — all charged to simulated time.
    pub fn do_gc(&mut self, machine: &mut Machine) {
        let ending_epoch = self.heap.collections;
        let agent_cycles = self
            .hooks
            .on_gc_begin(ending_epoch, &mut machine.kernel.vfs);

        let roots = self.interp.roots();
        let live_code: Vec<ObjRef> = self.methods.iter().filter_map(|m| m.body).collect();
        let mut move_cycles = 0u64;
        let Vm { heap, hooks, .. } = self;
        let stats = heap.collect(&roots, &live_code, |ev| {
            if let ObjKind::Code(mid) = ev.kind {
                move_cycles +=
                    hooks.on_code_moved(mid, ev.old_addr, ev.new_addr, ev.byte_size);
            }
        });
        self.stats.gcs += 1;

        // Copying dominates GC cost; mature (unmoved) objects only pay
        // the tracing fraction — the source of §4.3's amortization.
        let gc_cycles = self.config.costs.gc_base_cycles
            + (stats.copied_bytes as f64 * self.config.costs.gc_cycles_per_live_byte) as u64
            + (stats.live_bytes as f64 * self.config.costs.gc_cycles_per_live_byte * 0.15) as u64;
        // GC streams memory: statistical misses over the copied bytes.
        let accesses = stats.copied_bytes / 8;
        let l1 = self.fa_gc.0.take(GC_MEM.l1_miss_rate, accesses);
        let l2 = self.fa_gc.1.take(GC_MEM.l2_miss_rate, accesses);
        self.emit_internal_with_mem(machine, GC_PARTS, gc_cycles, l1, l2);
        // Move-flagging is inline in the GC; the map write is agent
        // library code (user) plus the actual file write (kernel) — the
        // profiler's own overhead is itself vertically profiled.
        if move_cycles > 0 {
            self.emit_internal(machine, &[(well_known::GC_COLLECT, 1.0)], move_cycles, false);
        }
        if agent_cycles > 0 {
            let user = agent_cycles * 3 / 10;
            let kern = agent_cycles - user;
            self.emit_internal(machine, &[(well_known::AGENT_MAPWRITE, 1.0)], user, false);
            let range = machine.kernel.kernel_symbol_range("sys_write");
            machine.exec(&BlockExec {
                pid: self.pid,
                mode: CpuMode::Kernel,
                pc_range: range,
                cycles: kern,
                instructions: kern,
                branches: kern / 24,
                mem: MemActivity::None,
            });
        }
        self.hooks.on_gc_end(self.heap.collections);
        if let Some(t) = &self.config.telemetry {
            use viprof_telemetry::{names, TraceLayer};
            let pause = gc_cycles + move_cycles;
            t.counter(names::VM_GC_COLLECTIONS).inc();
            t.histogram(names::VM_GC_PAUSE_CYCLES).record(pause);
            // Retroactive pause span on the sim clock: the collection
            // ended at the cycles just charged to the machine.
            let end = machine.cpu.clock.cycles();
            let span = t.trace_begin_at(
                end.saturating_sub(pause),
                TraceLayer::Vm,
                names::SPAN_VM_GC,
                t.trace_root(),
            );
            t.trace_end_at(
                end,
                span,
                &[
                    ("epoch", ending_epoch),
                    ("copied_bytes", stats.copied_bytes),
                    ("pause_cycles", pause),
                ],
            );
        }
    }

    /// Execute `count` calls of a native function with argument `arg0`.
    fn exec_native(&mut self, machine: &mut Machine, id: NativeFnId, arg0: i64, count: u64) {
        let f = self.natives.get(id).clone();
        let addrs = self.native_addrs[id.0 as usize];
        let (user, kernel) = f.cost(arg0);
        let accesses = f.accesses(arg0) * count;
        self.stats.native_calls += count;
        if let Some(m) = &mut self.measuring {
            let e = m.natives.entry(id).or_default();
            e.0 += count;
            e.1 += user * count;
            e.2 += kernel * count;
            e.3 += accesses;
        }

        let mem = if self.config.detailed_mem {
            // Stream over the native's scratch buffer: deterministic
            // sequential addresses, one per access.
            let base = 0x9000_0000u64 + id.0 as u64 * 0x0010_0000;
            let n = accesses.min(1 << 16); // cap per call-batch
            MemActivity::Detailed(
                (0..n)
                    .map(|i| MemAccess::write(base + (i * 64) % 0x0010_0000))
                    .collect(),
            )
        } else {
            let l1 = self.fa_native.0.take(f.mem.l1_miss_rate, accesses);
            let l2 = self.fa_native.1.take(f.mem.l2_miss_rate, accesses);
            MemActivity::Stats {
                l1d_misses: l1,
                l2_misses: l2,
            }
        };

        let user_cycles = user * count;
        if user_cycles > 0 {
            machine.exec(&BlockExec {
                pid: self.pid,
                mode: CpuMode::User,
                pc_range: addrs.user,
                cycles: user_cycles,
                instructions: (user_cycles as f64 * 1.2) as u64,
                branches: count,
                mem,
            });
        }
        if kernel > 0 {
            let range = addrs.kernel.expect("kernel cycles need a kernel symbol");
            machine.exec(&BlockExec {
                pid: self.pid,
                mode: CpuMode::Kernel,
                pc_range: range,
                cycles: kernel * count,
                instructions: (kernel * count) as f64 as u64,
                branches: count,
                mem: MemActivity::None,
            });
        }
    }

    /// Flush the accumulated app-execution block.
    fn flush(&mut self, machine: &mut Machine, acc: &mut BlockAcc) {
        let Some((tier, mid)) = acc.ctx else {
            debug_assert_eq!(acc.ops, 0);
            return;
        };
        if acc.ops == 0 && acc.alloc_extra_cycles == 0 {
            acc.detailed.clear();
            return;
        }
        let costs = &self.config.costs;
        let cycles =
            (acc.ops as f64 * costs.cycles_per_op(tier)).round() as u64 + acc.alloc_extra_cycles;
        let instructions = (acc.ops as f64 * costs.instrs_per_op(tier)).round() as u64;
        let pc_range = match tier {
            Tier::Interp => self.boot.range(well_known::INTERPRET),
            Tier::Jit(_) => {
                let body = self.methods[mid.0 as usize]
                    .body
                    .expect("JIT tier implies a body");
                self.heap.range_of(body)
            }
        };
        let mem = if self.config.detailed_mem {
            MemActivity::Detailed(std::mem::take(&mut acc.detailed))
        } else {
            let spec = self.program.methods[mid.0 as usize].mem;
            let st = &mut self.methods[mid.0 as usize];
            let l1 = st.fa_l1.take(spec.l1_miss_rate, acc.heap_accesses);
            let l2 = st.fa_l2.take(spec.l2_miss_rate, acc.heap_accesses);
            MemActivity::Stats {
                l1d_misses: l1,
                l2_misses: l2,
            }
        };
        machine.exec(&BlockExec {
            pid: self.pid,
            mode: CpuMode::User,
            pc_range,
            cycles,
            instructions,
            branches: acc.backedges + acc.calls,
            mem,
        });
        acc.ops = 0;
        acc.backedges = 0;
        acc.calls = 0;
        acc.heap_accesses = 0;
        acc.alloc_extra_cycles = 0;
        acc.detailed.clear();
        acc.ctx = None;
    }

    /// Emit VM-internal work spread over boot-image methods by weight.
    fn emit_internal(
        &mut self,
        machine: &mut Machine,
        parts: &[(&str, f64)],
        cycles: u64,
        _kernel: bool,
    ) {
        self.emit_internal_with_mem(machine, parts, cycles, 0, 0);
    }

    fn emit_internal_with_mem(
        &mut self,
        machine: &mut Machine,
        parts: &[(&str, f64)],
        cycles: u64,
        l1_misses: u64,
        l2_misses: u64,
    ) {
        if cycles == 0 {
            return;
        }
        let total_weight: f64 = parts.iter().map(|(_, w)| w).sum();
        let mut spent = 0u64;
        for (i, (name, w)) in parts.iter().enumerate() {
            let share = if i + 1 == parts.len() {
                cycles - spent // remainder to the last part: exact total
            } else {
                ((cycles as f64) * w / total_weight).round() as u64
            };
            spent += share;
            if share == 0 {
                continue;
            }
            let frac = share as f64 / cycles as f64;
            machine.exec(&BlockExec {
                pid: self.pid,
                mode: CpuMode::User,
                pc_range: self.boot.range(name),
                cycles: share,
                instructions: share, // VM internals ≈ IPC 1
                branches: share / 16,
                mem: MemActivity::Stats {
                    l1d_misses: (l1_misses as f64 * frac) as u64,
                    l2_misses: (l2_misses as f64 * frac) as u64,
                },
            });
        }
    }

    // ---------------- batched (fast-forward) execution ----------------

    /// Invoke `method(args)` `n` times. The first invocation (when no
    /// summary exists yet) runs through the detailed path and records a
    /// behaviour summary; the rest replay the summary in large blocks —
    /// with allocation pressure, GCs, epochs, recompilations and native
    /// calls all still happening on schedule. Returns the last computed
    /// result (batched invocations are assumed idempotent, which holds
    /// for every workload in this suite).
    pub fn run_batched(
        &mut self,
        machine: &mut Machine,
        method: MethodId,
        args: &[Value],
        n: u64,
    ) -> Value {
        if n == 0 {
            return Value::I64(0);
        }
        let mut remaining = n;
        let mut last = Value::I64(0);
        if self.methods[method.0 as usize].summary.is_none() {
            self.measuring = Some(InvocationSummary::default());
            last = self.call(machine, method, args);
            let s = self.measuring.take().expect("measurement in progress");
            self.methods[method.0 as usize].summary = Some(s);
            remaining -= 1;
        }

        while remaining > 0 {
            let st = &self.methods[method.0 as usize];
            let summary = st.summary.as_ref().expect("summary just ensured").clone();
            let tier = match st.body {
                Some(_) => Tier::Jit(st.level),
                None => Tier::Interp,
            };
            let cycles_per_inv =
                (summary.ops as f64 * self.config.costs.cycles_per_op(tier)).max(1.0);

            // Chunk boundaries: next GC, next promotion, block size cap.
            let until_gc = if summary.alloc_bytes > 0 {
                (self.heap.available() / summary.alloc_bytes).max(1)
            } else {
                u64::MAX
            };
            let until_promote = {
                let c = st.counters;
                let next_threshold = match st.level {
                    OptLevel::Baseline => Some(self.config.aos.opt1_threshold),
                    OptLevel::Opt1 => Some(self.config.aos.opt2_threshold),
                    OptLevel::Opt2 => None,
                };
                match next_threshold {
                    Some(t) if st.body.is_some() => {
                        let score_per_inv = 1 + summary.backedges / 8;
                        let gap = t.saturating_sub(c.score());
                        (gap / score_per_inv.max(1)).max(1)
                    }
                    _ => u64::MAX,
                }
            };
            // Cap the block so PC interpolation stays fine-grained
            // relative to sampling periods (~10M cycles per block).
            let cap = ((10_000_000.0 / cycles_per_inv) as u64).max(1);
            let chunk = remaining.min(until_gc).min(until_promote).min(cap);

            // Account counters.
            {
                let st = &mut self.methods[method.0 as usize];
                st.counters.invocations += chunk;
                st.counters.backedges += summary.backedges * chunk;
            }
            self.stats.batched_invocations += chunk;
            match tier {
                Tier::Interp => self.stats.ops_interpreted += summary.ops * chunk,
                Tier::Jit(_) => self.stats.ops_jit += summary.ops * chunk,
            }

            // Emit the app block.
            let pc_range = match tier {
                Tier::Interp => self.boot.range(well_known::INTERPRET),
                Tier::Jit(_) => {
                    let body = self.methods[method.0 as usize].body.unwrap();
                    self.heap.range_of(body)
                }
            };
            let app_cycles = (cycles_per_inv * chunk as f64).round() as u64
                + summary.allocations * chunk * self.config.costs.alloc_cycles;
            let accesses = summary.heap_accesses * chunk;
            let spec = self.program.methods[method.0 as usize].mem;
            let (l1, l2) = {
                let st = &mut self.methods[method.0 as usize];
                (
                    st.fa_l1.take(spec.l1_miss_rate, accesses),
                    st.fa_l2.take(spec.l2_miss_rate, accesses),
                )
            };
            machine.exec(&BlockExec {
                pid: self.pid,
                mode: CpuMode::User,
                pc_range,
                cycles: app_cycles,
                instructions: ((summary.ops * chunk) as f64
                    * self.config.costs.instrs_per_op(tier))
                .round() as u64,
                branches: (summary.backedges + summary.calls) * chunk,
                mem: MemActivity::Stats {
                    l1d_misses: l1,
                    l2_misses: l2,
                },
            });

            // Natives, aggregated. Call edges are reported in batch so
            // the cross-layer call graph sees replayed invocations too.
            let native_list: Vec<(NativeFnId, (u64, u64, u64, u64))> = {
                let mut v: Vec<_> = summary.natives.iter().map(|(k, v)| (*k, *v)).collect();
                v.sort_by_key(|(id, _)| *id);
                v
            };
            let mut edge_cycles = 0u64;
            for (id, (cnt, user, kern, accesses)) in native_list {
                edge_cycles += self.hooks.on_call_batch(
                    Some(self.program.methods[method.0 as usize].name.as_str()),
                    self.natives.get(id).symbol.as_str(),
                    cnt * chunk,
                );
                self.emit_native_batched(machine, id, cnt * chunk, user * chunk, kern * chunk, accesses * chunk);
            }
            edge_cycles += self.hooks.on_call_batch(
                None,
                self.program.methods[method.0 as usize].name.as_str(),
                chunk,
            );
            if edge_cycles > 0 {
                machine.exec(&BlockExec {
                    pid: self.pid,
                    mode: CpuMode::User,
                    pc_range,
                    cycles: edge_cycles,
                    instructions: edge_cycles,
                    branches: 0,
                    mem: MemActivity::None,
                });
            }

            // Allocation pressure → GC on schedule.
            if summary.alloc_bytes > 0 {
                let mut bytes = summary.alloc_bytes * chunk;
                loop {
                    let consumed = self.heap.alloc_ephemeral(bytes);
                    bytes -= consumed;
                    if bytes == 0 {
                        break;
                    }
                    self.do_gc(machine);
                }
            }

            // Promotion on schedule.
            {
                let st = &self.methods[method.0 as usize];
                if st.body.is_some() {
                    if let Some(target) = self.config.aos.decide(st.level, &st.counters) {
                        self.compile(machine, method, target);
                    }
                }
            }

            remaining -= chunk;
        }
        last
    }

    /// Emit an aggregated native-call block (batched path).
    fn emit_native_batched(
        &mut self,
        machine: &mut Machine,
        id: NativeFnId,
        count: u64,
        user_cycles: u64,
        kernel_cycles: u64,
        accesses: u64,
    ) {
        let f = self.natives.get(id).clone();
        let addrs = self.native_addrs[id.0 as usize];
        self.stats.native_calls += count;
        let l1 = self.fa_native.0.take(f.mem.l1_miss_rate, accesses);
        let l2 = self.fa_native.1.take(f.mem.l2_miss_rate, accesses);
        if user_cycles > 0 {
            machine.exec(&BlockExec {
                pid: self.pid,
                mode: CpuMode::User,
                pc_range: addrs.user,
                cycles: user_cycles,
                instructions: (user_cycles as f64 * 1.2) as u64,
                branches: count,
                mem: MemActivity::Stats {
                    l1d_misses: l1,
                    l2_misses: l2,
                },
            });
        }
        if kernel_cycles > 0 {
            let range = addrs.kernel.expect("kernel cycles need a kernel symbol");
            machine.exec(&BlockExec {
                pid: self.pid,
                mode: CpuMode::Kernel,
                pc_range: range,
                cycles: kernel_cycles,
                instructions: kernel_cycles,
                branches: count,
                mem: MemActivity::None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::MethodAsm;
    use crate::bytecode::ClassId;
    use crate::classes::ProgramBuilder;
    use crate::hooks::{NullHooks, RecordingHooks};
    use crate::natives::NativeFn;
    use parking_lot::Mutex;
    use sim_os::MachineConfig;
    use std::sync::Arc;

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    fn simple_program() -> ProgramDef {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("Bench", 2);
        let mut a = MethodAsm::new();
        a.op(Op::Const(0)).op(Op::Store(0));
        a.counted_loop(1, 100, |l| {
            l.op(Op::Load(0)).op(Op::Const(1)).op(Op::Add).op(Op::Store(0));
        });
        a.op(Op::Load(0)).op(Op::Ret);
        let m = b.add_method(c, "Bench.loop", 0, 2, a.assemble().unwrap());
        b.set_entry(m);
        b.build().unwrap()
    }

    fn boot_simple(machine: &mut Machine, config: VmConfig) -> Vm {
        Vm::boot(
            machine,
            simple_program(),
            NativeRegistry::new(),
            config,
            Box::new(NullHooks),
        )
    }

    #[test]
    fn boot_maps_everything_and_registers() {
        let mut m = machine();
        let p = simple_program();
        // Hooks are boxed into the VM, so observe registration through a
        // shared wrapper.
        struct Shared(Arc<Mutex<RecordingHooks>>);
        impl VmProfilerHooks for Shared {
            fn on_vm_start(&mut self, pid: Pid, gen: u32, r: (Addr, Addr)) -> u64 {
                self.0.lock().on_vm_start(pid, gen, r)
            }
        }
        let rec = Arc::new(Mutex::new(RecordingHooks::default()));
        let vm = Vm::boot(
            &mut m,
            p,
            NativeRegistry::new(),
            VmConfig::default(),
            Box::new(Shared(rec.clone())),
        );
        assert_eq!(rec.lock().starts.len(), 1);
        let (pid, gen, range) = rec.lock().starts[0];
        assert_eq!(pid, vm.pid);
        assert_eq!(gen, 0, "first incarnation of a fresh pid");
        assert_eq!(range, vm.heap().region());
        // Boot image mapped, heap anon-mapped.
        let proc_ = m.kernel.process(vm.pid).unwrap();
        assert!(proc_.space.len() >= 3, "bootstrap + boot image + heap");
        // Class loading consumed simulated time.
        assert!(m.cpu.clock.cycles() > 0);
    }

    #[test]
    fn run_computes_correct_result_and_compiles_entry() {
        let mut m = machine();
        let mut vm = boot_simple(&mut m, VmConfig::default());
        let r = vm.run(&mut m);
        assert_eq!(r, Value::I64(100));
        assert_eq!(vm.stats.compiles, 1, "entry baseline-compiled on first use");
        assert!(vm.code_range(vm.program().entry).is_some());
        assert!(vm.stats.ops_jit > 0);
        assert_eq!(vm.stats.ops_interpreted, 0);
    }

    #[test]
    fn interpret_then_compile_exercises_interp_tier() {
        let mut m = machine();
        let mut vm = boot_simple(
            &mut m,
            VmConfig {
                tiering: Tiering::InterpretThenCompile {
                    compile_threshold: 3,
                },
                ..VmConfig::default()
            },
        );
        let entry = vm.program().entry;
        vm.call(&mut m, entry, &[]);
        assert!(vm.stats.ops_interpreted > 0, "first call interpreted");
        assert_eq!(vm.stats.compiles, 0);
        vm.call(&mut m, entry, &[]);
        vm.call(&mut m, entry, &[]); // third invocation crosses threshold
        assert_eq!(vm.stats.compiles, 1);
        assert!(vm.stats.ops_jit > 0);
    }

    #[test]
    fn hot_method_gets_recompiled() {
        let mut m = machine();
        let mut vm = boot_simple(
            &mut m,
            VmConfig {
                aos: AosPolicy::eager(),
                ..VmConfig::default()
            },
        );
        let entry = vm.program().entry;
        for _ in 0..20 {
            vm.call(&mut m, entry, &[]);
        }
        assert!(vm.stats.recompiles >= 1, "eager AOS must promote");
        assert!(vm.opt_level(entry) > OptLevel::Baseline);
    }

    fn alloc_heavy_program() -> ProgramDef {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("Alloc", 8);
        let mut a = MethodAsm::new();
        a.counted_loop(0, 2_000, |l| {
            l.op(Op::New(ClassId(0))).op(Op::Pop);
        });
        a.op(Op::Const(0)).op(Op::Ret);
        let m = b.add_method(c, "Alloc.churn", 0, 1, a.assemble().unwrap());
        b.set_entry(m);
        b.build().unwrap()
    }

    #[test]
    fn allocation_pressure_drives_gc_and_epochs() {
        let mut m = machine();
        let mut vm = Vm::boot(
            &mut m,
            alloc_heavy_program(),
            NativeRegistry::new(),
            VmConfig {
                heap_bytes: 32 * 1024, // 16 KiB semispaces
                ..VmConfig::default()
            },
            Box::new(NullHooks),
        );
        vm.run(&mut m);
        assert!(vm.stats.gcs > 0, "tiny heap must collect");
        assert_eq!(vm.epoch(), vm.stats.gcs);
    }

    #[test]
    fn gc_moves_code_and_fires_move_hooks() {
        struct MoveCounter(Arc<Mutex<u64>>);
        impl VmProfilerHooks for MoveCounter {
            fn on_code_moved(&mut self, _m: MethodId, _o: Addr, _n: Addr, _s: u64) -> u64 {
                *self.0.lock() += 1;
                10
            }
        }
        let moves = Arc::new(Mutex::new(0u64));
        let mut m = machine();
        let mut vm = Vm::boot(
            &mut m,
            alloc_heavy_program(),
            NativeRegistry::new(),
            VmConfig {
                heap_bytes: 32 * 1024,
                ..VmConfig::default()
            },
            Box::new(MoveCounter(moves.clone())),
        );
        let entry = vm.program().entry;
        let before = vm.code_range(entry);
        vm.run(&mut m);
        assert!(*moves.lock() > 0, "live code body must move during GC");
        assert_ne!(vm.code_range(entry), before, "body address changed");
    }

    #[test]
    fn native_calls_emit_user_and_kernel_blocks() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("N", 0);
        let mut natives = NativeRegistry::new();
        let ms = natives.register(NativeFn::memset());
        let wr = natives.register(NativeFn::sys_write());
        let m = b.add_method(
            c,
            "N.io",
            0,
            0,
            vec![
                Op::Const(4096),
                Op::NativeCall(ms),
                Op::Pop,
                Op::Const(64),
                Op::NativeCall(wr),
                Op::Ret,
            ],
        );
        b.set_entry(m);
        let mut mach = machine();
        let mut vm = Vm::boot(
            &mut mach,
            b.build().unwrap(),
            natives,
            VmConfig::default(),
            Box::new(NullHooks),
        );
        let before = mach.cpu.clock.cycles();
        vm.run(&mut mach);
        assert_eq!(vm.stats.native_calls, 2);
        assert!(mach.cpu.clock.cycles() > before);
    }

    #[test]
    fn batched_run_matches_detailed_cycle_cost_approximately() {
        // Run the same workload detailed vs batched; total simulated
        // time must agree closely (same cost model, different engine).
        let total_invocations = 50;

        let mut m1 = machine();
        let mut vm1 = boot_simple(&mut m1, VmConfig::default());
        let e1 = vm1.program().entry;
        let start1 = m1.cpu.clock.cycles();
        for _ in 0..total_invocations {
            vm1.call(&mut m1, e1, &[]);
        }
        let detailed = m1.cpu.clock.cycles() - start1;

        let mut m2 = machine();
        let mut vm2 = boot_simple(&mut m2, VmConfig::default());
        let e2 = vm2.program().entry;
        let start2 = m2.cpu.clock.cycles();
        vm2.run_batched(&mut m2, e2, &[], total_invocations);
        let batched = m2.cpu.clock.cycles() - start2;

        let ratio = batched as f64 / detailed as f64;
        assert!(
            (0.95..1.05).contains(&ratio),
            "batched {batched} vs detailed {detailed} (ratio {ratio})"
        );
        assert_eq!(vm2.stats.batched_invocations, total_invocations - 1);
    }

    #[test]
    fn batched_run_triggers_gcs_and_promotions() {
        let mut m = machine();
        let mut vm = Vm::boot(
            &mut m,
            alloc_heavy_program(),
            NativeRegistry::new(),
            VmConfig {
                heap_bytes: 256 * 1024,
                aos: AosPolicy {
                    opt1_threshold: 10,
                    opt2_threshold: 100,
                },
                ..VmConfig::default()
            },
            Box::new(NullHooks),
        );
        let entry = vm.program().entry;
        vm.run_batched(&mut m, entry, &[], 500);
        assert!(vm.stats.gcs > 1, "ephemeral pressure must collect repeatedly");
        assert!(vm.stats.recompiles >= 1, "hotness must promote");
        assert_eq!(vm.opt_level(entry), OptLevel::Opt2);
    }

    #[test]
    fn detailed_mem_mode_drives_the_real_cache_hierarchy() {
        // A scratch array far larger than L1D (16 KiB): walking it with
        // real addresses through the cache simulator must produce L1
        // misses; the same program with stats-mode and a zero-miss spec
        // must produce none.
        let build = || {
            let mut b = ProgramBuilder::new();
            let c = b.add_class("Mem", 0);
            let mut a = MethodAsm::new();
            a.op(Op::Const(16_384)).op(Op::NewArray).op(Op::Store(0));
            a.op(Op::Const(0)).op(Op::Store(1));
            a.counted_loop(2, 16_000, |l| {
                // a[i*8 % len] = i  (stride-8 slots = 64-byte lines)
                l.op(Op::Load(0))
                    .op(Op::Load(1))
                    .op(Op::Const(8))
                    .op(Op::Mul)
                    .op(Op::Const(16_384))
                    .op(Op::Rem)
                    .op(Op::Load(1))
                    .op(Op::AStore);
                l.op(Op::Load(1)).op(Op::Const(1)).op(Op::Add).op(Op::Store(1));
            });
            a.op(Op::Const(0)).op(Op::Ret);
            let m = b.add_method(c, "Mem.walk", 0, 3, a.assemble().unwrap());
            b.set_entry(m);
            b.set_mem(m, crate::classes::MemSpec::new(0.0, 0.0));
            b.build().unwrap()
        };

        let run = |detailed: bool| {
            let mut machine = Machine::new(sim_os::MachineConfig::default());
            machine
                .cpu
                .program_counter(sim_cpu::CounterSpec::new(sim_cpu::HwEvent::L1DMiss, 1_000));
            let mut vm = Vm::boot(
                &mut machine,
                build(),
                NativeRegistry::new(),
                VmConfig {
                    heap_bytes: 2 * 1024 * 1024,
                    detailed_mem: detailed,
                    ..VmConfig::default()
                },
                Box::new(NullHooks),
            );
            vm.run(&mut machine);
            machine.cpu.bank.counter(0).total_events()
        };

        let detailed_misses = run(true);
        let stats_misses = run(false);
        assert!(
            detailed_misses > 1_000,
            "a 128 KiB walk must miss a 16 KiB L1D: {detailed_misses}"
        );
        assert_eq!(
            stats_misses, 0,
            "stats mode with a zero-rate MemSpec reports no misses"
        );
    }

    #[test]
    fn retained_data_survives_collections_and_matures() {
        let mut m = machine();
        let mut vm = Vm::boot(
            &mut m,
            alloc_heavy_program(),
            NativeRegistry::new(),
            VmConfig {
                heap_bytes: 1024 * 1024,
                ..VmConfig::default()
            },
            Box::new(NullHooks),
        );
        vm.alloc_retained(&mut m, 128 * 1024);
        let live_before = vm.heap().live_object_count();
        assert!(live_before >= 128 * 1024 / 4128, "retained arrays exist");
        // Churn through several collections.
        for _ in 0..12 {
            vm.run(&mut m);
        }
        assert!(vm.stats.gcs >= 4, "churn must collect: {}", vm.stats.gcs);
        // The retained arrays are still live (statics root them)…
        assert!(vm.heap().live_object_count() >= live_before);
        // …and have been promoted to the mature space by now.
        assert!(vm.heap().promotions > 0);
    }

    #[test]
    fn retained_request_larger_than_heap_is_clamped_not_fatal() {
        let mut m = machine();
        let mut vm = boot_simple(
            &mut m,
            VmConfig {
                heap_bytes: 64 * 1024,
                ..VmConfig::default()
            },
        );
        // Ask for 10 MiB in a 64 KiB heap: must terminate and leave the
        // VM usable.
        vm.alloc_retained(&mut m, 10 * 1024 * 1024);
        let r = vm.run(&mut m);
        assert_eq!(r, Value::I64(100));
    }

    #[test]
    fn statics_survive_across_calls() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("S", 0);
        let m = b.add_method(c, "S.get", 0, 0, vec![Op::Const(5), Op::Ret]);
        b.set_entry(m);
        b.reserve_statics(4);
        let mut mach = machine();
        let mut vm = Vm::boot(
            &mut mach,
            b.build().unwrap(),
            NativeRegistry::new(),
            VmConfig::default(),
            Box::new(NullHooks),
        );
        vm.set_static(2, Value::I64(99));
        vm.run(&mut mach);
        assert_eq!(vm.get_static(2), Value::I64(99));
    }
}
