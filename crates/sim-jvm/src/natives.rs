//! Native functions: libc calls and syscalls the Java code can invoke.
//!
//! The paper's Figure 1 shows `libc-2.3.2.so memset` as a top row of
//! both profilers — native-library time is part of the vertical profile.
//! A [`NativeFn`] models one such function: user-mode cycles attributed
//! to a symbol in a native image, optionally followed by kernel-mode
//! cycles attributed to a kernel symbol (the syscall portion).

use crate::bytecode::NativeFnId;
use crate::classes::MemSpec;
use serde::{Deserialize, Serialize};

/// What the native call returns to the bytecode stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NativeResult {
    Zero,
    /// Echo the first argument (e.g. `memset` returning its pointer).
    Arg0,
}

/// One native function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NativeFn {
    /// Reported name, e.g. `memset`.
    pub symbol: String,
    /// OS image that hosts it, e.g. `libc-2.3.2.so`.
    pub image: String,
    /// Arguments popped from the operand stack.
    pub arity: u16,
    /// Fixed user-mode cycles per call.
    pub cycles_base: u64,
    /// Extra user-mode cycles per unit of the first argument (e.g.
    /// bytes for `memset`). Ignored when arity is 0.
    pub cycles_per_unit: f64,
    /// Memory accesses per unit of the first argument (drives the
    /// statistical miss model; `memset` touches 1/8 access per byte).
    pub accesses_per_unit: f64,
    /// Cache behaviour of those accesses.
    pub mem: MemSpec,
    /// Kernel portion: symbol in `vmlinux` plus fixed cycles (0 = pure
    /// user-mode call).
    pub kernel_symbol: Option<String>,
    pub kernel_cycles: u64,
    pub result: NativeResult,
}

impl NativeFn {
    /// A `memset`-like bulk memory routine: heavy streaming writes,
    /// poor cache behaviour per byte (the paper's top Dmiss row).
    pub fn memset() -> Self {
        NativeFn {
            symbol: "memset".into(),
            image: "libc-2.3.2.so".into(),
            arity: 1,
            cycles_base: 60,
            cycles_per_unit: 0.25,
            accesses_per_unit: 0.125, // one 8-byte store per 8 bytes
            mem: MemSpec::new(0.12, 0.06),
            kernel_symbol: None,
            kernel_cycles: 0,
            result: NativeResult::Arg0,
        }
    }

    /// A `write(2)`-like syscall: small user stub, kernel-side copy.
    pub fn sys_write() -> Self {
        NativeFn {
            symbol: "write".into(),
            image: "libc-2.3.2.so".into(),
            arity: 1,
            cycles_base: 150,
            cycles_per_unit: 0.05,
            accesses_per_unit: 0.02,
            mem: MemSpec::default(),
            kernel_symbol: Some("sys_write".into()),
            kernel_cycles: 2_800,
            result: NativeResult::Zero,
        }
    }

    /// A `gettimeofday`-like cheap syscall.
    pub fn gettimeofday() -> Self {
        NativeFn {
            symbol: "gettimeofday".into(),
            image: "libc-2.3.2.so".into(),
            arity: 0,
            cycles_base: 90,
            cycles_per_unit: 0.0,
            accesses_per_unit: 0.0,
            mem: MemSpec::default(),
            kernel_symbol: Some("do_gettimeofday".into()),
            kernel_cycles: 700,
            result: NativeResult::Zero,
        }
    }

    /// User+kernel cycle cost of one call with first argument `arg0`.
    pub fn cost(&self, arg0: i64) -> (u64, u64) {
        let units = arg0.max(0) as f64;
        let user = self.cycles_base + (self.cycles_per_unit * units) as u64;
        (user, self.kernel_cycles)
    }

    /// Memory accesses of one call with first argument `arg0`.
    pub fn accesses(&self, arg0: i64) -> u64 {
        (self.accesses_per_unit * arg0.max(0) as f64) as u64
    }
}

/// Registry of all natives a program uses.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NativeRegistry {
    fns: Vec<NativeFn>,
}

impl NativeRegistry {
    pub fn new() -> Self {
        NativeRegistry::default()
    }

    pub fn register(&mut self, f: NativeFn) -> NativeFnId {
        self.fns.push(f);
        NativeFnId(self.fns.len() as u32 - 1)
    }

    pub fn get(&self, id: NativeFnId) -> &NativeFn {
        &self.fns[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.fns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (NativeFnId, &NativeFn)> {
        self.fns
            .iter()
            .enumerate()
            .map(|(i, f)| (NativeFnId(i as u32), f))
    }

    /// Distinct native image names used (for the loader).
    pub fn image_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.fns.iter().map(|f| f.image.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memset_cost_scales_with_size() {
        let m = NativeFn::memset();
        let (u0, k0) = m.cost(0);
        let (u1, k1) = m.cost(100_000);
        assert_eq!(u0, 60);
        assert_eq!(u1, 60 + 25_000);
        assert_eq!((k0, k1), (0, 0), "memset has no kernel part");
        assert_eq!(m.accesses(80), 10);
    }

    #[test]
    fn negative_arg_treated_as_zero() {
        let m = NativeFn::memset();
        assert_eq!(m.cost(-5), m.cost(0));
        assert_eq!(m.accesses(-5), 0);
    }

    #[test]
    fn syscall_has_kernel_part() {
        let w = NativeFn::sys_write();
        let (_, k) = w.cost(10);
        assert!(k > 0);
        assert_eq!(w.kernel_symbol.as_deref(), Some("sys_write"));
    }

    #[test]
    fn registry_interning_and_images() {
        let mut r = NativeRegistry::new();
        let a = r.register(NativeFn::memset());
        let b = r.register(NativeFn::sys_write());
        let c = r.register(NativeFn::gettimeofday());
        assert_eq!(r.get(a).symbol, "memset");
        assert_eq!(r.get(b).symbol, "write");
        assert_eq!(r.get(c).arity, 0);
        assert_eq!(r.image_names(), vec!["libc-2.3.2.so"]);
        assert_eq!(r.len(), 3);
    }
}
