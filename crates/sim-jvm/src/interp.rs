//! Bytecode interpreter: the VM's *semantic* engine.
//!
//! Executes ops against the heap one at a time and reports what each
//! step did ([`StepInfo`]) so the surrounding [`crate::vm::Vm`] can
//! charge cycles, drive JIT/AOS decisions, and attribute PCs. The
//! interpreter itself is policy-free: it does not know about tiers,
//! sampling, or costs.
//!
//! Allocation failures surface as [`StepError::NeedGc`] *without
//! advancing the program counter*, so the VM can collect and re-step —
//! the same retry discipline a real allocation slow path has.

use crate::bytecode::{MethodId, NativeFnId, Op};
use crate::classes::ProgramDef;
use crate::heap::{Heap, ObjRef, Value};
use crate::natives::{NativeRegistry, NativeResult};
use sim_cpu::Addr;

/// One activation record.
#[derive(Debug, Clone)]
pub struct Frame {
    pub method: MethodId,
    pub pc: usize,
    pub locals: Vec<Value>,
    pub stack: Vec<Value>,
}

impl Frame {
    fn new(method: MethodId, nlocals: u16, args: &[Value]) -> Self {
        let mut locals = vec![Value::default(); nlocals as usize];
        locals[..args.len()].copy_from_slice(args);
        Frame {
            method,
            pc: 0,
            locals,
            stack: Vec::with_capacity(8),
        }
    }
}

/// What a successfully executed step did (beyond the op itself).
#[derive(Debug, Clone, PartialEq)]
pub enum StepEvent {
    Normal,
    /// A backward branch was taken.
    Backedge,
    /// Entered `method` (new frame pushed). The *caller's* op was the
    /// `Call`; the callee's first op has not run yet.
    Call(MethodId),
    /// Returned from a frame. `finished` means the outermost frame
    /// popped; `value` is the return value.
    Ret { finished: bool, value: Value },
    /// A native function ran (result already pushed). `arg0` is its
    /// first argument, for the cost model.
    Native { id: NativeFnId, arg0: i64 },
    /// An allocation succeeded (`bytes` rough size).
    Alloc { bytes: u64 },
}

/// Report for one executed op.
#[derive(Debug, Clone, PartialEq)]
pub struct StepInfo {
    pub op: Op,
    /// Heap address touched, for the detailed cache model.
    pub heap_addr: Option<Addr>,
    pub event: StepEvent,
}

/// Step failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// Allocation failed; the PC was not advanced. Collect and re-step.
    NeedGc { requested: u64 },
    /// The machine is halted (outermost frame already returned).
    Halted,
}

/// Interpreter state: a frame stack plus program statics.
#[derive(Debug, Clone)]
pub struct Interp {
    pub frames: Vec<Frame>,
    pub statics: Vec<Value>,
    finished: Option<Value>,
}

impl Interp {
    pub fn new(program: &ProgramDef) -> Self {
        Interp {
            frames: Vec::new(),
            statics: vec![Value::default(); program.static_slots as usize],
            finished: None,
        }
    }

    /// Begin executing `method` with `args`. Resets any finished state.
    pub fn enter(&mut self, program: &ProgramDef, method: MethodId, args: &[Value]) {
        let decl = program.method(method);
        assert_eq!(
            args.len(),
            decl.arity as usize,
            "arity mismatch calling {}",
            decl.name
        );
        self.finished = None;
        self.frames.push(Frame::new(method, decl.nlocals, args));
    }

    pub fn is_running(&self) -> bool {
        !self.frames.is_empty()
    }

    /// Result of the outermost frame once finished.
    pub fn result(&self) -> Option<Value> {
        self.finished
    }

    /// The currently executing method (top frame).
    pub fn current_method(&self) -> Option<MethodId> {
        self.frames.last().map(|f| f.method)
    }

    /// GC roots: every reference in every frame's locals/stack plus
    /// statics. Handles are stable so this is only needed for liveness,
    /// not for pointer fixup.
    pub fn roots(&self) -> Vec<ObjRef> {
        let mut out = Vec::new();
        let mut push = |v: &Value| {
            if let Some(r) = v.as_ref() {
                out.push(r);
            }
        };
        for f in &self.frames {
            f.locals.iter().for_each(&mut push);
            f.stack.iter().for_each(&mut push);
        }
        self.statics.iter().for_each(&mut push);
        out
    }

    /// Execute one op of the top frame.
    pub fn step(
        &mut self,
        program: &ProgramDef,
        heap: &mut Heap,
        natives: &NativeRegistry,
    ) -> Result<StepInfo, StepError> {
        let frame = self.frames.last_mut().ok_or(StepError::Halted)?;
        let method = program.method(frame.method);
        let op = method.code[frame.pc];

        // Most ops advance by one; branches/calls/returns override below.
        let mut next_pc = frame.pc + 1;
        let mut heap_addr = None;
        let mut event = StepEvent::Normal;

        macro_rules! pop {
            () => {
                frame.stack.pop().expect("operand stack underflow")
            };
        }
        macro_rules! pop_i64 {
            () => {
                pop!().as_i64()
            };
        }

        match op {
            Op::Nop => {}
            Op::Const(v) => frame.stack.push(Value::I64(v)),
            Op::Load(n) => {
                let v = frame.locals[n as usize];
                frame.stack.push(v);
            }
            Op::Store(n) => {
                let v = pop!();
                frame.locals[n as usize] = v;
            }
            Op::Dup => {
                let v = *frame.stack.last().expect("dup on empty stack");
                frame.stack.push(v);
            }
            Op::Pop => {
                pop!();
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Rem | Op::Eq | Op::Lt | Op::Gt => {
                let b = pop_i64!();
                let a = pop_i64!();
                let r = match op {
                    Op::Add => a.wrapping_add(b),
                    Op::Sub => a.wrapping_sub(b),
                    Op::Mul => a.wrapping_mul(b),
                    // No exceptions in the mini-ISA: x/0 == 0.
                    Op::Div => a.checked_div(b).unwrap_or(0),
                    Op::Rem => a.checked_rem(b).unwrap_or(0),
                    Op::Eq => (a == b) as i64,
                    Op::Lt => (a < b) as i64,
                    Op::Gt => (a > b) as i64,
                    _ => unreachable!(),
                };
                frame.stack.push(Value::I64(r));
            }
            Op::Neg => {
                let a = pop_i64!();
                frame.stack.push(Value::I64(a.wrapping_neg()));
            }
            Op::Jump(off) => {
                next_pc = (frame.pc as i64 + 1 + off as i64) as usize;
                if off < 0 {
                    event = StepEvent::Backedge;
                }
            }
            Op::JumpIfZero(off) => {
                if pop_i64!() == 0 {
                    next_pc = (frame.pc as i64 + 1 + off as i64) as usize;
                    if off < 0 {
                        event = StepEvent::Backedge;
                    }
                }
            }
            Op::JumpIfNonZero(off) => {
                if pop_i64!() != 0 {
                    next_pc = (frame.pc as i64 + 1 + off as i64) as usize;
                    if off < 0 {
                        event = StepEvent::Backedge;
                    }
                }
            }
            Op::Call(callee) => {
                let decl = program.method(callee);
                let arity = decl.arity as usize;
                let at = frame.stack.len() - arity;
                let args: Vec<Value> = frame.stack.split_off(at);
                frame.pc = next_pc; // resume after the call
                let nlocals = decl.nlocals;
                self.frames.push(Frame::new(callee, nlocals, &args));
                return Ok(StepInfo {
                    op,
                    heap_addr: None,
                    event: StepEvent::Call(callee),
                });
            }
            Op::Ret => {
                let value = frame.stack.pop().unwrap_or_default();
                self.frames.pop();
                let finished = self.frames.is_empty();
                if finished {
                    self.finished = Some(value);
                } else {
                    self.frames.last_mut().unwrap().stack.push(value);
                }
                return Ok(StepInfo {
                    op,
                    heap_addr: None,
                    event: StepEvent::Ret { finished, value },
                });
            }
            Op::New(class) => {
                let fields = program.class(class).field_count as usize;
                match heap.alloc_data(class, fields) {
                    Ok(r) => {
                        heap_addr = Some(heap.addr_of(r));
                        frame.stack.push(Value::Ref(Some(r)));
                        event = StepEvent::Alloc {
                            bytes: heap.get(r).byte_size,
                        };
                    }
                    Err(e) => return Err(StepError::NeedGc { requested: e.requested }),
                }
            }
            Op::NewArray => {
                // Peek (not pop) the length so a NeedGc retry sees an
                // unchanged stack.
                let len = frame.stack.last().expect("NewArray needs a length").as_i64();
                let len = len.clamp(0, 1 << 20) as usize;
                match heap.alloc_array(len) {
                    Ok(r) => {
                        frame.stack.pop();
                        heap_addr = Some(heap.addr_of(r));
                        frame.stack.push(Value::Ref(Some(r)));
                        event = StepEvent::Alloc {
                            bytes: heap.get(r).byte_size,
                        };
                    }
                    Err(e) => return Err(StepError::NeedGc { requested: e.requested }),
                }
            }
            Op::GetField(n) => {
                let r = pop!().as_ref().expect("GetField on non-reference");
                let obj = heap.get(r);
                heap_addr = Some(obj.addr + 16 + 8 * n as u64);
                let v = obj.slots[n as usize];
                frame.stack.push(v);
            }
            Op::PutField(n) => {
                let v = pop!();
                let r = pop!().as_ref().expect("PutField on non-reference");
                let obj = heap.get_mut(r);
                heap_addr = Some(obj.addr + 16 + 8 * n as u64);
                obj.slots[n as usize] = v;
            }
            Op::ALoad => {
                let idx = pop_i64!();
                let r = pop!().as_ref().expect("ALoad on non-reference");
                let obj = heap.get(r);
                assert!(
                    idx >= 0 && (idx as usize) < obj.slots.len(),
                    "array index {idx} out of bounds 0..{}",
                    obj.slots.len()
                );
                heap_addr = Some(obj.addr + 16 + 8 * idx as u64);
                let v = obj.slots[idx as usize];
                frame.stack.push(v);
            }
            Op::AStore => {
                let v = pop!();
                let idx = pop_i64!();
                let r = pop!().as_ref().expect("AStore on non-reference");
                let obj = heap.get_mut(r);
                assert!(
                    idx >= 0 && (idx as usize) < obj.slots.len(),
                    "array index {idx} out of bounds 0..{}",
                    obj.slots.len()
                );
                heap_addr = Some(obj.addr + 16 + 8 * idx as u64);
                obj.slots[idx as usize] = v;
            }
            Op::ArrayLen => {
                let r = pop!().as_ref().expect("ArrayLen on non-reference");
                let obj = heap.get(r);
                heap_addr = Some(obj.addr);
                frame.stack.push(Value::I64(obj.slots.len() as i64));
            }
            Op::NativeCall(id) => {
                let f = natives.get(id);
                let arity = f.arity as usize;
                let at = frame.stack.len() - arity;
                let args: Vec<Value> = frame.stack.split_off(at);
                let arg0 = args.first().map(|v| v.as_i64()).unwrap_or(0);
                let result = match f.result {
                    NativeResult::Zero => Value::I64(0),
                    NativeResult::Arg0 => Value::I64(arg0),
                };
                frame.stack.push(result);
                event = StepEvent::Native { id, arg0 };
            }
        }

        frame.pc = next_pc;
        Ok(StepInfo {
            op,
            heap_addr,
            event,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::ClassId;
    use crate::classes::ProgramBuilder;
    use crate::natives::NativeFn;

    fn run_to_completion(
        program: &ProgramDef,
        heap: &mut Heap,
        natives: &NativeRegistry,
        args: &[Value],
    ) -> i64 {
        let mut interp = Interp::new(program);
        interp.enter(program, program.entry, args);
        for _ in 0..1_000_000 {
            match interp.step(program, heap, natives) {
                Ok(info) => {
                    if let StepEvent::Ret { finished: true, value } = info.event {
                        return value.as_i64();
                    }
                }
                Err(StepError::NeedGc { .. }) => {
                    let roots = interp.roots();
                    heap.collect(&roots, &[], |_| {});
                }
                Err(StepError::Halted) => panic!("halted unexpectedly"),
            }
        }
        panic!("interpreter did not terminate");
    }

    fn small_heap() -> Heap {
        Heap::new((0x6000_0000, 0x6001_0000))
    }

    fn build_single(code: Vec<Op>, arity: u16, nlocals: u16) -> ProgramDef {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", 4);
        let m = b.add_method(c, "T.main", arity, nlocals, code);
        b.set_entry(m);
        b.build().unwrap()
    }

    #[test]
    fn arithmetic_works() {
        // (7 + 3) * 2 - 5 = 15
        let p = build_single(
            vec![
                Op::Const(7),
                Op::Const(3),
                Op::Add,
                Op::Const(2),
                Op::Mul,
                Op::Const(5),
                Op::Sub,
                Op::Ret,
            ],
            0,
            0,
        );
        let r = run_to_completion(&p, &mut small_heap(), &NativeRegistry::new(), &[]);
        assert_eq!(r, 15);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let p = build_single(
            vec![Op::Const(42), Op::Const(0), Op::Div, Op::Ret],
            0,
            0,
        );
        assert_eq!(
            run_to_completion(&p, &mut small_heap(), &NativeRegistry::new(), &[]),
            0
        );
    }

    #[test]
    fn loop_computes_sum() {
        // sum 1..=10 via a counted loop.
        let mut a = crate::asm::MethodAsm::new();
        // local0 = acc, local1 = i
        a.op(Op::Const(0)).op(Op::Store(0));
        a.counted_loop(1, 10, |b| {
            b.op(Op::Load(0)).op(Op::Load(1)).op(Op::Add).op(Op::Store(0));
        });
        a.op(Op::Load(0)).op(Op::Ret);
        let p = build_single(a.assemble().unwrap(), 0, 2);
        // counter counts 10,9,...,1 → sum 55
        assert_eq!(
            run_to_completion(&p, &mut small_heap(), &NativeRegistry::new(), &[]),
            55
        );
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", 0);
        // add(a, b) = a + b
        let add = b.add_method(
            c,
            "T.add",
            2,
            2,
            vec![Op::Load(0), Op::Load(1), Op::Add, Op::Ret],
        );
        let main = b.add_method(
            c,
            "T.main",
            0,
            0,
            vec![Op::Const(4), Op::Const(38), Op::Call(add), Op::Ret],
        );
        b.set_entry(main);
        let p = b.build().unwrap();
        assert_eq!(
            run_to_completion(&p, &mut small_heap(), &NativeRegistry::new(), &[]),
            42
        );
    }

    #[test]
    fn recursion_works() {
        // fib(n): n < 2 ? n : fib(n-1) + fib(n-2)
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", 0);
        let fib = MethodId(0); // self-id (first method added)
        let code = vec![
            Op::Load(0),
            Op::Const(2),
            Op::Lt,
            Op::JumpIfZero(2), // not < 2 → recurse
            Op::Load(0),
            Op::Ret,
            Op::Load(0),
            Op::Const(1),
            Op::Sub,
            Op::Call(fib),
            Op::Load(0),
            Op::Const(2),
            Op::Sub,
            Op::Call(fib),
            Op::Add,
            Op::Ret,
        ];
        let m = b.add_method(c, "T.fib", 1, 1, code);
        assert_eq!(m, fib);
        b.set_entry(m);
        let p = b.build().unwrap();
        assert_eq!(
            run_to_completion(&p, &mut small_heap(), &NativeRegistry::new(), &[Value::I64(10)]),
            55
        );
    }

    #[test]
    fn objects_fields_roundtrip() {
        let p = build_single(
            vec![
                Op::New(ClassId(0)),
                Op::Store(0),
                Op::Load(0),
                Op::Const(99),
                Op::PutField(2),
                Op::Load(0),
                Op::GetField(2),
                Op::Ret,
            ],
            0,
            1,
        );
        assert_eq!(
            run_to_completion(&p, &mut small_heap(), &NativeRegistry::new(), &[]),
            99
        );
    }

    #[test]
    fn arrays_store_load_len() {
        let p = build_single(
            vec![
                Op::Const(5),
                Op::NewArray,
                Op::Store(0),
                // a[3] = 7
                Op::Load(0),
                Op::Const(3),
                Op::Const(7),
                Op::AStore,
                // return a[3] * len(a)
                Op::Load(0),
                Op::Const(3),
                Op::ALoad,
                Op::Load(0),
                Op::ArrayLen,
                Op::Mul,
                Op::Ret,
            ],
            0,
            1,
        );
        assert_eq!(
            run_to_completion(&p, &mut small_heap(), &NativeRegistry::new(), &[]),
            35
        );
    }

    #[test]
    fn allocation_pressure_triggers_needgc_and_survives() {
        // Allocate 1000 ephemeral arrays in a tiny heap: must complete
        // thanks to NeedGc retry, and data must stay correct.
        let mut a = crate::asm::MethodAsm::new();
        a.counted_loop(0, 1000, |b| {
            b.op(Op::Const(50)).op(Op::NewArray).op(Op::Pop);
        });
        a.op(Op::Const(1)).op(Op::Ret);
        let p = build_single(a.assemble().unwrap(), 0, 1);
        let mut heap = Heap::new((0x6000_0000, 0x6000_4000)); // 8 KiB semispaces
        assert_eq!(run_to_completion(&p, &mut heap, &NativeRegistry::new(), &[]), 1);
        assert!(heap.collections > 0, "GC must have run");
    }

    #[test]
    fn native_call_pushes_result_and_reports_arg0() {
        let mut natives = NativeRegistry::new();
        let memset = natives.register(NativeFn::memset());
        let p = build_single(
            vec![Op::Const(4096), Op::NativeCall(memset), Op::Ret],
            0,
            0,
        );
        let mut interp = Interp::new(&p);
        interp.enter(&p, p.entry, &[]);
        let mut heap = small_heap();
        let i1 = interp.step(&p, &mut heap, &natives).unwrap(); // Const
        assert_eq!(i1.event, StepEvent::Normal);
        let i2 = interp.step(&p, &mut heap, &natives).unwrap(); // NativeCall
        assert_eq!(
            i2.event,
            StepEvent::Native {
                id: memset,
                arg0: 4096
            }
        );
        let i3 = interp.step(&p, &mut heap, &natives).unwrap(); // Ret
        // memset returns Arg0.
        assert_eq!(
            i3.event,
            StepEvent::Ret {
                finished: true,
                value: Value::I64(4096)
            }
        );
    }

    #[test]
    fn roots_include_locals_stack_and_statics() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", 1);
        let m = b.add_method(c, "T.m", 0, 1, vec![Op::New(ClassId(0)), Op::Ret]);
        b.set_entry(m);
        b.reserve_statics(2);
        let p = b.build().unwrap();
        let mut heap = small_heap();
        let mut interp = Interp::new(&p);
        interp.enter(&p, p.entry, &[]);
        let r1 = heap.alloc_data(ClassId(0), 1).unwrap();
        interp.statics[0] = Value::Ref(Some(r1));
        let natives = NativeRegistry::new();
        interp.step(&p, &mut heap, &natives).unwrap(); // New → ref on stack
        let roots = interp.roots();
        assert!(roots.contains(&r1), "static root missing");
        assert_eq!(roots.len(), 2, "stack ref + static ref");
    }

    #[test]
    fn backedge_events_reported() {
        let mut a = crate::asm::MethodAsm::new();
        a.counted_loop(0, 3, |b| {
            b.op(Op::Nop);
        });
        a.op(Op::Const(0)).op(Op::Ret);
        let p = build_single(a.assemble().unwrap(), 0, 1);
        let mut interp = Interp::new(&p);
        interp.enter(&p, p.entry, &[]);
        let mut heap = small_heap();
        let natives = NativeRegistry::new();
        let mut backedges = 0;
        while interp.is_running() {
            let info = interp.step(&p, &mut heap, &natives).unwrap();
            if info.event == StepEvent::Backedge {
                backedges += 1;
            }
        }
        assert_eq!(backedges, 2, "loop of 3 takes the backedge twice");
    }

    #[test]
    fn step_after_halt_errors() {
        let p = build_single(vec![Op::Const(0), Op::Ret], 0, 0);
        let mut interp = Interp::new(&p);
        interp.enter(&p, p.entry, &[]);
        let mut heap = small_heap();
        let natives = NativeRegistry::new();
        interp.step(&p, &mut heap, &natives).unwrap();
        interp.step(&p, &mut heap, &natives).unwrap();
        assert_eq!(
            interp.step(&p, &mut heap, &natives),
            Err(StepError::Halted)
        );
        assert_eq!(interp.result(), Some(Value::I64(0)));
    }
}
