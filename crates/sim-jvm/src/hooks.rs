//! The profiler hook seam — where VIProf's VM Agent attaches.
//!
//! The paper's VM Agent is "a library with several hooks in the VM's
//! code" (§3): instructions added to the compile and recompile methods,
//! an instrumented GC move method that only *flags* moved bodies, and a
//! map-write step just before each garbage collection. This trait is
//! that set of hook points. Every hook returns the cycles its body
//! consumed so the VM can charge agent work to simulated time — the
//! source of the VIProf-vs-OProfile overhead delta in Figure 2.

use crate::aos::OptLevel;
use crate::bytecode::MethodId;
use sim_cpu::{Addr, Pid};
use sim_os::Vfs;

/// Everything the VM tells the agent about a (re)compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledBodyInfo {
    pub method: MethodId,
    /// Fully-qualified method signature (what the code map records).
    pub signature: String,
    /// Start address of the fresh code body.
    pub addr: Addr,
    /// Machine-code size in bytes.
    pub size: u64,
    pub opt_level: OptLevel,
    pub is_recompile: bool,
    /// GC epoch during which the body was produced.
    pub epoch: u64,
}

/// Profiler hooks. All methods return consumed cycles.
pub trait VmProfilerHooks: Send {
    /// VM startup: the paper's VM *registration* — PID, incarnation
    /// generation and heap boundaries handed to the runtime profiler.
    /// `gen` is the kernel's per-pid generation counter, so a restarted
    /// VM (or a reused pid) registers as a distinct incarnation.
    fn on_vm_start(&mut self, _pid: Pid, _gen: u32, _heap_range: (Addr, Addr)) -> u64 {
        0
    }

    /// A method was compiled or recompiled.
    fn on_compile(&mut self, _info: &CompiledBodyInfo) -> u64 {
        0
    }

    /// GC moved a code body (the agent only flags it — §3).
    fn on_code_moved(&mut self, _method: MethodId, _old: Addr, _new: Addr, _size: u64) -> u64 {
        0
    }

    /// Just before collection `ending_epoch` runs: the agent writes the
    /// partial code map for that epoch (§3.1: "we perform this write
    /// just before the launching of the garbage collection").
    fn on_gc_begin(&mut self, _ending_epoch: u64, _vfs: &mut Vfs) -> u64 {
        0
    }

    /// Collection finished; `new_epoch` begins.
    fn on_gc_end(&mut self, _new_epoch: u64) -> u64 {
        0
    }

    /// VM shutdown: final map flush.
    fn on_vm_exit(&mut self, _final_epoch: u64, _vfs: &mut Vfs) -> u64 {
        0
    }

    /// A call edge was executed (caller → callee), including calls into
    /// native code — the raw feed for VIProf's cross-layer
    /// call-sequence profiles (paper §4.2 mentions the capability).
    /// `caller` is `None` for top-level entry invocations. Only the
    /// detailed execution path reports edges.
    fn on_call(&mut self, _caller: Option<&str>, _callee: &str) -> u64 {
        0
    }

    /// Batched-execution variant: `count` identical edges executed as
    /// one replayed chunk.
    fn on_call_batch(&mut self, _caller: Option<&str>, _callee: &str, _count: u64) -> u64 {
        0
    }
}

/// No profiler attached (base runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHooks;

impl VmProfilerHooks for NullHooks {}

/// Test helper: counts hook invocations at configurable cost.
#[derive(Debug, Default)]
pub struct RecordingHooks {
    pub starts: Vec<(Pid, u32, (Addr, Addr))>,
    pub compiles: Vec<CompiledBodyInfo>,
    pub moves: Vec<(MethodId, Addr, Addr)>,
    pub gc_begins: Vec<u64>,
    pub gc_ends: Vec<u64>,
    pub exits: u64,
    pub cost_per_hook: u64,
}

impl VmProfilerHooks for RecordingHooks {
    fn on_vm_start(&mut self, pid: Pid, gen: u32, heap_range: (Addr, Addr)) -> u64 {
        self.starts.push((pid, gen, heap_range));
        self.cost_per_hook
    }

    fn on_compile(&mut self, info: &CompiledBodyInfo) -> u64 {
        self.compiles.push(info.clone());
        self.cost_per_hook
    }

    fn on_code_moved(&mut self, method: MethodId, old: Addr, new: Addr, _size: u64) -> u64 {
        self.moves.push((method, old, new));
        self.cost_per_hook
    }

    fn on_gc_begin(&mut self, ending_epoch: u64, _vfs: &mut Vfs) -> u64 {
        self.gc_begins.push(ending_epoch);
        self.cost_per_hook
    }

    fn on_gc_end(&mut self, new_epoch: u64) -> u64 {
        self.gc_ends.push(new_epoch);
        self.cost_per_hook
    }

    fn on_vm_exit(&mut self, _final_epoch: u64, _vfs: &mut Vfs) -> u64 {
        self.exits += 1;
        self.cost_per_hook
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_hooks_are_free() {
        let mut h = NullHooks;
        assert_eq!(h.on_vm_start(Pid(1), 0, (0, 100)), 0);
        assert_eq!(h.on_gc_end(3), 0);
        assert_eq!(
            h.on_code_moved(MethodId(0), 0x10, 0x20, 64),
            0
        );
    }

    #[test]
    fn recording_hooks_capture_everything() {
        let mut h = RecordingHooks {
            cost_per_hook: 5,
            ..Default::default()
        };
        let mut vfs = Vfs::new();
        assert_eq!(h.on_vm_start(Pid(2), 1, (0x100, 0x200)), 5);
        assert_eq!(h.on_gc_begin(0, &mut vfs), 5);
        assert_eq!(h.on_gc_end(1), 5);
        h.on_vm_exit(1, &mut vfs);
        assert_eq!(h.starts, vec![(Pid(2), 1, (0x100, 0x200))]);
        assert_eq!(h.gc_begins, vec![0]);
        assert_eq!(h.gc_ends, vec![1]);
        assert_eq!(h.exits, 1);
    }
}
