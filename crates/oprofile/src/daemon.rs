//! The userspace daemon (`oprofiled`).
//!
//! "The runtime profiler is the OProfile daemon that runs whenever we
//! wish to log the samples. It is the main source of profiling
//! overhead" (paper §3). Modelled as a [`MachineService`]: on its timer
//! it drains the driver's ring buffer into the sample database and
//! executes a block of its own cycles — in its own process, at its own
//! symbols, so the daemon itself shows up in profiles exactly like the
//! real `oprofiled` does.

use crate::driver::Driver;
use crate::faults::{DaemonFaultStats, DaemonFaults};
use crate::governor::{DeadlineVerdict, Governor, GovernorDecision};
use crate::samples::{SampleDb, SampleOrigin};
use parking_lot::Mutex;
use sim_cpu::{Addr, BlockExec, CostModel, CpuMode, HwEvent, MemActivity, Pid};
use sim_os::journal::{encode_traced_payload, JournalWriter, KIND_SAMPLE_BATCH, KIND_SAMPLE_BATCH_TRACED};
use sim_os::loader::BIN_HINT;
use sim_os::{Image, Kernel, Loader, MachineCtx, MachineService, Symbol, Vfs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use viprof_telemetry::{names, Counter, Gauge, Histogram, Stage, Telemetry, TraceCtx, TraceLayer};

/// Telemetry handles for the drain path, resolved once at attach.
struct DaemonTelemetry {
    registry: Telemetry,
    wakeups: Counter,
    drains: Counter,
    stalls: Counter,
    batches_journaled: Counter,
    dead_gen_dropped: Counter,
    registry_reaps: Counter,
    deadline_misses: Counter,
    governor_backoffs: Counter,
    governor_recoveries: Counter,
    governor_escalations: Counter,
    db_evicted: Counter,
    governor_period: Gauge,
    batch_samples: Histogram,
    occupancy_at_drain: Histogram,
    drain_cycles: Histogram,
    drain_stage: Stage,
}

impl DaemonTelemetry {
    fn attach(registry: &Telemetry) -> Self {
        DaemonTelemetry {
            registry: registry.clone(),
            wakeups: registry.counter(names::DAEMON_WAKEUPS),
            drains: registry.counter(names::DAEMON_DRAINS),
            stalls: registry.counter(names::DAEMON_STALLS),
            batches_journaled: registry.counter(names::DAEMON_BATCHES_JOURNALED),
            dead_gen_dropped: registry.counter(names::DAEMON_DEAD_GEN_DROPPED),
            registry_reaps: registry.counter(names::REGISTRY_REAPS),
            deadline_misses: registry.counter(names::DAEMON_DEADLINE_MISSES),
            governor_backoffs: registry.counter(names::GOVERNOR_BACKOFFS),
            governor_recoveries: registry.counter(names::GOVERNOR_RECOVERIES),
            governor_escalations: registry.counter(names::GOVERNOR_ESCALATIONS),
            db_evicted: registry.counter(names::DB_EVICTED_SAMPLES),
            governor_period: registry.gauge(names::GOVERNOR_PERIOD),
            batch_samples: registry.histogram(names::DAEMON_BATCH_SAMPLES),
            occupancy_at_drain: registry.histogram(names::BUFFER_OCCUPANCY_AT_DRAIN),
            drain_cycles: registry.histogram(names::DAEMON_DRAIN_CYCLES),
            drain_stage: registry.stage(names::STAGE_DAEMON_DRAIN),
        }
    }

    /// Account one landed drain: batch shape, drain cycles, and — when
    /// the ring overflowed since the previous drain — a coalesced
    /// `buffer.overflow` event carrying the loss count. `dead` is the
    /// portion of `batch.dropped` refused at admission because its
    /// incarnation was reaped (not a ring overflow), reported under its
    /// own counter/event.
    fn note_drain(&self, occupancy: u64, batch: &SampleDb, cycles: u64, journaled: bool, dead: u64) {
        self.drains.inc();
        self.occupancy_at_drain.record(occupancy);
        self.batch_samples.record(batch.total_samples());
        self.drain_cycles.record(cycles);
        self.drain_stage.record(cycles);
        if journaled && (batch.total_samples() > 0 || batch.dropped > 0 || batch.evicted > 0) {
            self.batches_journaled.inc();
        }
        let ring_dropped = batch.dropped - dead;
        if ring_dropped > 0 {
            self.registry.event(
                names::EVENT_BUFFER_OVERFLOW,
                "ring buffer overflowed since last drain",
                &[("dropped", ring_dropped), ("drained", batch.total_samples())],
            );
        }
        if dead > 0 {
            self.dead_gen_dropped.add(dead);
            self.registry.event(
                names::EVENT_DAEMON_DEAD_GEN_DROP,
                "late samples for reaped incarnations dropped at drain",
                &[("dropped", dead), ("drained", batch.total_samples())],
            );
        }
        if batch.evicted > 0 {
            self.db_evicted.add(batch.evicted);
            self.registry.event(
                names::EVENT_DB_EVICTION,
                "sample-db admission cap refused new buckets",
                &[("evicted", batch.evicted), ("drained", batch.total_samples())],
            );
        }
    }

    /// Open the causal spans for one landed drain: the NMI sampling
    /// window that just closed (retroactive — it began when the
    /// previous drain ended) and the drain itself as its child.
    /// `redrain` marks the supervisor's out-of-schedule catch-up.
    /// Returns the drain span, the parent for the journal append and
    /// everything downstream (live sink, lineage).
    fn begin_drain_spans(
        &self,
        window_begin: u64,
        now: u64,
        occupancy: u64,
        redrain: bool,
    ) -> TraceCtx {
        let root = self.registry.trace_root();
        let window = self.registry.trace_begin_at(
            window_begin.min(now),
            TraceLayer::Nmi,
            names::SPAN_NMI_WINDOW,
            root,
        );
        self.registry
            .trace_end_at(now, window, &[("occupancy", occupancy)]);
        let (layer, name) = if redrain {
            (TraceLayer::Redrain, names::SPAN_SUPERVISOR_REDRAIN)
        } else {
            (TraceLayer::Drain, names::SPAN_DAEMON_DRAIN)
        };
        self.registry.trace_begin_at(now, layer, name, Some(window))
    }

    /// Close a drain span opened by [`Self::begin_drain_spans`] at the
    /// virtual time the drain's charged cycles end, carrying the
    /// batch's full loss accounting.
    fn end_drain_span(&self, drain: TraceCtx, end: u64, batch: &SampleDb, dead: u64) {
        self.registry.trace_end_at(
            end,
            drain,
            &[
                ("samples", batch.total_samples()),
                ("dropped", batch.dropped),
                ("evicted", batch.evicted),
                ("dead", dead),
            ],
        );
    }
}

/// OS image name of the daemon binary.
pub const DAEMON_IMAGE: &str = "oprofiled";

/// Observer of drained sample batches — the seam the live resolution
/// engine feeds from. Fired after a drained window has been merged into
/// the shared database and journaled, for every batch that carries
/// samples or loss accounting (trivial empty windows are skipped, the
/// same rule the journal applies). `seq` is the journal sequence number
/// of the batch's record, `None` when the session runs unjournaled.
/// `ctx` is the drain span that delivered the batch — the causal parent
/// for any spans the sink opens — `None` when the session is untraced.
pub trait DrainSink: Send {
    fn on_batch(
        &mut self,
        kernel: &Kernel,
        seq: Option<u64>,
        batch: &SampleDb,
        ctx: Option<TraceCtx>,
    );
}

/// Cloneable shared handle to a [`DrainSink`], so `OpConfig` keeps its
/// `Debug`/`Clone` derives and the session, daemon, and caller can all
/// hold the same sink.
#[derive(Clone)]
pub struct SinkHandle(Arc<Mutex<dyn DrainSink>>);

impl SinkHandle {
    pub fn new(sink: impl DrainSink + 'static) -> SinkHandle {
        SinkHandle(Arc::new(Mutex::new(sink)))
    }

    pub fn on_batch(
        &self,
        kernel: &Kernel,
        seq: Option<u64>,
        batch: &SampleDb,
        ctx: Option<TraceCtx>,
    ) {
        self.0.lock().on_batch(kernel, seq, batch, ctx);
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}

/// The daemon service.
pub struct Daemon {
    driver: Arc<Mutex<Driver>>,
    db: Arc<Mutex<SampleDb>>,
    active: Arc<AtomicBool>,
    cost: CostModel,
    period_cycles: u64,
    next_wakeup: u64,
    pid: Pid,
    pc_range: (Addr, Addr),
    /// Wakeups performed (tests/ablation).
    pub wakeups: u64,
    /// Drains that actually landed (wakeups minus missed windows). The
    /// supervisor's heartbeat: a wakeup without a drain is a stall or a
    /// crash.
    pub drains: u64,
    /// Optional fault schedule (stalls, crash-and-restart).
    faults: Option<DaemonFaults>,
    /// Optional write-ahead journal for drained batches (shared with
    /// the session so the final synchronous flush journals too).
    journal: Option<Arc<Mutex<JournalWriter>>>,
    /// Closed-loop overload governor: observes occupancy and drop
    /// pressure each drain window, rescales the NMI period in response,
    /// and polices the per-drain deadline budget.
    governor: Option<Governor>,
    /// The event whose counter the governor reprograms.
    governed_event: HwEvent,
    /// Observer fed every non-trivial drained batch (live resolution).
    sink: Option<SinkHandle>,
    /// Set when consecutive deadline misses cross the escalation
    /// threshold; the supervisor consumes it as a missed heartbeat.
    deadline_escalated: bool,
    /// Virtual time the previous drain landed — the begin of the NMI
    /// sampling window the next drain's span closes retroactively.
    last_drain_end: u64,
    telemetry: Option<DaemonTelemetry>,
}

impl Daemon {
    /// Spawn the `oprofiled` process and build the service.
    pub fn spawn(
        kernel: &mut Kernel,
        driver: Arc<Mutex<Driver>>,
        db: Arc<Mutex<SampleDb>>,
        active: Arc<AtomicBool>,
        cost: CostModel,
        period_cycles: u64,
    ) -> Daemon {
        let image = match kernel.images.find_by_name(DAEMON_IMAGE) {
            Some(id) => id,
            None => kernel.images.insert(
                Image::new(DAEMON_IMAGE, 0x4000).with_symbols([
                    Symbol::new("opd_process_samples", 0x0000, 0x2000),
                    Symbol::new("sfile_log_sample", 0x2000, 0x1000),
                    Symbol::new("opd_open_files", 0x3000, 0x1000),
                ]),
            ),
        };
        let pid = kernel.spawn(DAEMON_IMAGE);
        let base = Loader::load_image(kernel, pid, image, BIN_HINT);
        Daemon {
            driver,
            db,
            active,
            cost,
            period_cycles,
            next_wakeup: period_cycles,
            pid,
            pc_range: (base, base + 0x2000), // opd_process_samples
            wakeups: 0,
            drains: 0,
            faults: None,
            journal: None,
            governor: None,
            governed_event: HwEvent::Cycles,
            sink: None,
            deadline_escalated: false,
            last_drain_end: 0,
            telemetry: None,
        }
    }

    /// Mirror wakeups, drains, stalls, and batch shapes into `registry`
    /// and record stall/overflow events on its flight recorder.
    pub fn with_telemetry(mut self, registry: &Telemetry) -> Daemon {
        self.telemetry = Some(DaemonTelemetry::attach(registry));
        self
    }

    /// Attach a fault schedule (chaos/robustness testing).
    pub fn with_faults(mut self, faults: DaemonFaults) -> Daemon {
        self.faults = Some(faults);
        self
    }

    /// Attach the overload governor, controlling the counter that
    /// watches `event` (the session's primary event).
    pub fn with_governor(mut self, governor: Governor, event: HwEvent) -> Daemon {
        self.governor = Some(governor);
        self.governed_event = event;
        self
    }

    /// The governor's controller state, if one is attached.
    pub fn governor(&self) -> Option<&Governor> {
        self.governor.as_ref()
    }

    /// Attach a drain sink: every non-trivial drained batch is handed
    /// to it after the merge + journal append.
    pub fn with_sink(mut self, sink: SinkHandle) -> Daemon {
        self.sink = Some(sink);
        self
    }

    /// Consume a pending deadline escalation (supervisor side). The
    /// flag re-arms on the next threshold crossing.
    pub fn take_deadline_escalation(&mut self) -> bool {
        std::mem::take(&mut self.deadline_escalated)
    }

    /// Attach a sample-batch journal. Every drained batch is appended
    /// as one committed record before the daemon moves on, so a crashed
    /// or corrupted `current.db` can be rebuilt by replay.
    pub fn with_journal(mut self, journal: Arc<Mutex<JournalWriter>>) -> Daemon {
        self.journal = Some(journal);
        self
    }

    /// Restart a crashed daemon process: clears any remaining injected
    /// downtime so the next wakeup drains again. No-op without faults.
    pub fn revive(&mut self) -> u64 {
        self.faults.as_mut().map(|f| f.revive()).unwrap_or(0)
    }

    /// Immediate out-of-schedule drain (the supervisor's catch-up after
    /// a restart). Charges daemon cycles and journals the batch like a
    /// timer drain. Returns the samples recovered from the ring buffer.
    pub fn force_drain(&mut self, ctx: &mut MachineCtx<'_>) -> u64 {
        let now = ctx.cpu.clock.cycles();
        self.reap_dead(ctx.kernel, now);
        let occupancy = self.driver.lock().buffer.len() as u64;
        let drain_span = self.telemetry.as_ref().map(|t| {
            t.registry.set_now(now);
            t.begin_drain_spans(self.last_drain_end, now, occupancy, true)
        });
        let (batch, cycles, dead) = Daemon::drain_batch(&self.driver, &self.db, &self.cost);
        let n = batch.total_samples();
        self.drains += 1;
        self.last_drain_end = now;
        let seq = Daemon::journal_batch(
            &self.journal,
            &mut ctx.kernel.vfs,
            &batch,
            drain_span,
            self.telemetry.as_ref().map(|t| &t.registry),
        );
        Daemon::notify_sink(&self.sink, ctx.kernel, seq, &batch, drain_span);
        if let Some(t) = &self.telemetry {
            t.note_drain(occupancy, &batch, cycles, self.journal.is_some(), dead);
            if let Some(span) = drain_span {
                t.end_drain_span(span, now + cycles, &batch, dead);
            }
            // A catch-up drain closes its own timeline window so restart
            // recovery is visible as a distinct sample on the timeline.
            t.registry.sample_timeline_at(now + cycles);
        }
        if cycles > 0 {
            ctx.exec(&BlockExec {
                pid: self.pid,
                mode: CpuMode::User,
                pc_range: self.pc_range,
                cycles,
                instructions: cycles,
                branches: cycles / 32,
                mem: MemActivity::None,
            });
        }
        n
    }

    /// Append one drained batch to the journal (if one is attached and
    /// the batch carries anything worth replaying). Journal appends are
    /// part of the drain's existing I/O budget — no extra cycles — so
    /// journaled and unjournaled runs stay cycle-identical. Returns the
    /// sequence number of the appended record, `None` when nothing was
    /// journaled (no journal, or a trivial batch).
    ///
    /// When a registry is supplied the append is wrapped in a
    /// `span.journal_batch` child of `parent`, the record is written as
    /// [`KIND_SAMPLE_BATCH_TRACED`], and that journal span's identity
    /// rides in the record header — so an offline resolver can point at
    /// the exact batch where a sample was dropped or evicted. Without a
    /// registry the untagged v1 record format is written, byte-for-byte
    /// what pre-tracing builds produced.
    pub fn journal_batch(
        journal: &Option<Arc<Mutex<JournalWriter>>>,
        vfs: &mut Vfs,
        batch: &SampleDb,
        parent: Option<TraceCtx>,
        registry: Option<&Telemetry>,
    ) -> Option<u64> {
        let journal = journal.as_ref()?;
        if batch.total_samples() == 0 && batch.dropped == 0 && batch.evicted == 0 {
            return None;
        }
        let body = batch.to_bytes();
        let seq = match registry {
            Some(t) => {
                let span = t.trace_begin(TraceLayer::Journal, names::SPAN_JOURNAL_BATCH, parent);
                let payload = encode_traced_payload(span, &body);
                let seq = journal
                    .lock()
                    .append(vfs, KIND_SAMPLE_BATCH_TRACED, &payload);
                t.trace_end(
                    span,
                    &[
                        ("seq", seq),
                        ("samples", batch.total_samples()),
                        ("dropped", batch.dropped),
                        ("evicted", batch.evicted),
                    ],
                );
                seq
            }
            None => journal.lock().append(vfs, KIND_SAMPLE_BATCH, &body),
        };
        Some(seq)
    }

    /// Hand a non-trivial drained batch to `sink`. Uses the same
    /// triviality rule as [`Daemon::journal_batch`], so a journaled
    /// session's sink sees exactly the journaled record stream (with
    /// matching sequence numbers) and an unjournaled one sees the same
    /// batches with `seq: None`. `ctx` is the drain span handed through
    /// to the sink as causal parent.
    pub fn notify_sink(
        sink: &Option<SinkHandle>,
        kernel: &Kernel,
        seq: Option<u64>,
        batch: &SampleDb,
        ctx: Option<TraceCtx>,
    ) {
        if let Some(sink) = sink {
            if batch.total_samples() > 0 || batch.dropped > 0 || batch.evicted > 0 {
                sink.on_batch(kernel, seq, batch, ctx);
            }
        }
    }

    /// Injected-fault counters, if a schedule is installed.
    pub fn fault_stats(&self) -> Option<DaemonFaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// One drain: move buffered samples into the DB, return the cycles
    /// the daemon consumed doing so. Shared by the timer path and the
    /// final synchronous flush at `stop`.
    pub fn drain_once(
        driver: &Mutex<Driver>,
        db: &Mutex<SampleDb>,
        cost: &CostModel,
    ) -> (u64, u64) {
        let (batch, cycles, _) = Daemon::drain_batch(driver, db, cost);
        (batch.total_samples(), cycles)
    }

    /// Drop the extension's registrations for processes that died
    /// since the last window, so subsequent drains refuse their late
    /// samples instead of resolving them against whatever owns the pid
    /// now. Returns how many registrations were reaped.
    pub fn reap_dead(&mut self, kernel: &Kernel, now: u64) -> u64 {
        let reaped = self
            .driver
            .lock()
            .reap(&mut |pid, gen| kernel.process(pid).map_or(false, |p| p.gen == gen));
        if reaped > 0 {
            if let Some(t) = &self.telemetry {
                t.registry.set_now(now);
                t.registry_reaps.add(reaped);
                t.registry.event(
                    names::EVENT_REGISTRY_REAP,
                    "registrations of dead incarnations reaped",
                    &[("reaped", reaped)],
                );
            }
        }
        reaped
    }

    /// [`Daemon::drain_once`], returning the drained window as its own
    /// [`SampleDb`] (already merged into `db`). The batch is what gets
    /// journaled: replaying every batch record in order rebuilds the
    /// full database, because [`SampleDb::merge`] is the same operation
    /// the drain itself performs.
    /// The drained vector is recycled back into the ring before the
    /// driver lock drops, so steady-state drains allocate nothing. The
    /// returned batch's `evicted` counts samples the shared database's
    /// admission cap refused *from this batch* — mirroring how
    /// `dropped` carries this window's overflow losses — so journal
    /// replay rebuilds eviction accounting too.
    /// The third return value is the count of samples refused because
    /// their `(pid, gen)` registration was reaped (the incarnation died
    /// unclean). Those are folded into `batch.dropped` — alongside ring
    /// overflow losses — so both the shared database and journal replay
    /// account them as dropped, never as resolvable samples.
    pub fn drain_batch(
        driver: &Mutex<Driver>,
        db: &Mutex<SampleDb>,
        cost: &CostModel,
    ) -> (SampleDb, u64, u64) {
        let (mut batch, n, probe, dead) = {
            let mut d = driver.lock();
            let (samples, dropped) = d.drain();
            let n = samples.len() as u64;
            let mut batch = SampleDb::new();
            let mut dead = 0u64;
            for s in &samples {
                if let SampleOrigin::JitApp { pid, gen } = s.origin {
                    if !d.admit(pid, gen) {
                        dead += 1;
                        continue;
                    }
                }
                batch.add(*s, 1);
            }
            batch.dropped = dropped + dead;
            d.recycle(samples);
            let probe = d.daemon_probe_cost();
            (batch, n, probe, dead)
        };
        batch.evicted = {
            let mut db = db.lock();
            let before = db.evicted;
            db.merge(&batch);
            db.evicted - before
        };
        (batch, cost.daemon_drain(n) + probe, dead)
    }
}

impl MachineService for Daemon {
    fn poll(&mut self, ctx: &mut MachineCtx<'_>) {
        if !self.active.load(Ordering::Relaxed) {
            return;
        }
        let now = ctx.cpu.clock.cycles();
        if now < self.next_wakeup {
            return;
        }
        // Catch up (a long block may skip several periods — one drain
        // covers them, like a coalesced timer).
        while self.next_wakeup <= now {
            self.next_wakeup += self.period_cycles;
        }
        self.wakeups += 1;
        if let Some(t) = &self.telemetry {
            t.registry.set_now(now);
            t.wakeups.inc();
        }
        if let Some(faults) = &mut self.faults {
            if !faults.wakeup_allowed(self.wakeups) {
                // Stalled or crashed: the drain window is missed and the
                // ring buffer keeps filling. No daemon cycles are burned
                // either — a dead process costs nothing.
                if let Some(t) = &self.telemetry {
                    t.stalls.inc();
                    t.registry.event(
                        names::EVENT_DAEMON_STALL,
                        "drain window missed (stalled or crashed daemon)",
                        &[("wakeup", self.wakeups)],
                    );
                }
                return;
            }
        }
        // Reap before draining: a registration whose process died in
        // this window must not admit the dead incarnation's samples.
        self.reap_dead(ctx.kernel, now);
        let (occupancy, capacity) = {
            let d = self.driver.lock();
            (d.buffer.len() as u64, d.buffer.capacity())
        };
        let drain_span = self
            .telemetry
            .as_ref()
            .map(|t| t.begin_drain_spans(self.last_drain_end, now, occupancy, false));
        let (batch, cycles, dead) = Daemon::drain_batch(&self.driver, &self.db, &self.cost);
        self.drains += 1;
        self.last_drain_end = now;
        let seq = Daemon::journal_batch(
            &self.journal,
            &mut ctx.kernel.vfs,
            &batch,
            drain_span,
            self.telemetry.as_ref().map(|t| &t.registry),
        );
        Daemon::notify_sink(&self.sink, ctx.kernel, seq, &batch, drain_span);
        if let Some(t) = &self.telemetry {
            t.note_drain(occupancy, &batch, cycles, self.journal.is_some(), dead);
            if let Some(span) = drain_span {
                t.end_drain_span(span, now + cycles, &batch, dead);
            }
        }

        // Close the overload loop: one observation per drain window,
        // actuated by reprogramming the live counter. Every input
        // (occupancy, drop count, drain cycles) is seed-deterministic
        // and produced online, so the period trajectory cannot depend
        // on offline post-processing choices like thread counts.
        if let Some(gov) = &mut self.governor {
            // Dead-generation drops are admission refusals, not ring
            // pressure — the governor only sees real overflow losses.
            let ring_dropped = batch.dropped - dead;
            match gov.observe(occupancy as usize, capacity, ring_dropped) {
                GovernorDecision::Hold => {}
                GovernorDecision::Backoff { from, to } => {
                    ctx.cpu.reprogram_period(self.governed_event, to);
                    if let Some(t) = &self.telemetry {
                        t.governor_backoffs.inc();
                        t.governor_period.set(to);
                        t.registry.event(
                            names::EVENT_GOVERNOR_RATE_CHANGE,
                            "overload pressure: sample period backed off",
                            &[
                                ("from", from),
                                ("to", to),
                                ("occupancy", occupancy),
                                ("dropped", ring_dropped),
                            ],
                        );
                    }
                }
                GovernorDecision::Recover { from, to } => {
                    ctx.cpu.reprogram_period(self.governed_event, to);
                    if let Some(t) = &self.telemetry {
                        t.governor_recoveries.inc();
                        t.governor_period.set(to);
                        t.registry.event(
                            names::EVENT_GOVERNOR_RATE_CHANGE,
                            "pressure subsided: sample period recovering",
                            &[("from", from), ("to", to), ("occupancy", occupancy)],
                        );
                    }
                }
            }
            match gov.note_drain_cycles(cycles) {
                DeadlineVerdict::Met => {}
                DeadlineVerdict::Missed { escalate } => {
                    // Retry at half the usual period instead of waiting
                    // out a full window behind an oversized backlog.
                    self.next_wakeup = now + (self.period_cycles / 2).max(1);
                    if let Some(t) = &self.telemetry {
                        t.deadline_misses.inc();
                        t.registry.event(
                            names::EVENT_GOVERNOR_DEADLINE_MISS,
                            "drain exceeded its cycle budget",
                            &[
                                ("cycles", cycles),
                                ("budget", gov.deadline_cycles()),
                                ("wakeup", self.wakeups),
                            ],
                        );
                    }
                    if escalate {
                        self.deadline_escalated = true;
                        if let Some(t) = &self.telemetry {
                            t.governor_escalations.inc();
                            t.registry.event(
                                names::EVENT_GOVERNOR_ESCALATION,
                                "repeated deadline misses escalated to the supervisor",
                                &[("misses", gov.deadline_misses)],
                            );
                        }
                    }
                }
            }
        }

        // One timeline window per drain, stamped at the drain's end and
        // taken *after* the governor acted so a reprogrammed period
        // lands in the window that caused it.
        if let Some(t) = &self.telemetry {
            t.registry.sample_timeline_at(now + cycles);
        }

        if cycles > 0 {
            ctx.exec(&BlockExec {
                pid: self.pid,
                mode: CpuMode::User,
                pc_range: self.pc_range,
                cycles,
                instructions: cycles,
                branches: cycles / 32,
                mem: MemActivity::None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::{SampleBucket, SampleOrigin};
    use sim_cpu::HwEvent;
    use sim_os::{Machine, MachineConfig};

    fn bucket(addr: u64) -> SampleBucket {
        SampleBucket {
            origin: SampleOrigin::Unknown,
            event: HwEvent::Cycles,
            addr,
            epoch: 0,
        }
    }

    fn setup_with_cost(
        period: u64,
        cost: CostModel,
    ) -> (Machine, Arc<Mutex<Driver>>, Arc<Mutex<SampleDb>>, Arc<AtomicBool>) {
        let mut m = Machine::new(MachineConfig::default());
        let driver = Arc::new(Mutex::new(Driver::new(cost, 1024)));
        let db = Arc::new(Mutex::new(SampleDb::new()));
        let active = Arc::new(AtomicBool::new(true));
        let d = Daemon::spawn(
            &mut m.kernel,
            driver.clone(),
            db.clone(),
            active.clone(),
            cost,
            period,
        );
        m.add_service(Box::new(d));
        (m, driver, db, active)
    }

    fn setup(period: u64) -> (Machine, Arc<Mutex<Driver>>, Arc<Mutex<SampleDb>>, Arc<AtomicBool>) {
        setup_with_cost(period, CostModel::default())
    }

    #[test]
    fn daemon_drains_on_timer_and_burns_cycles() {
        let (mut m, driver, db, _) = setup(1_000);
        driver.lock().buffer.push(bucket(0x10));
        driver.lock().buffer.push(bucket(0x20));
        // Not yet due.
        m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 500));
        assert_eq!(db.lock().total_samples(), 0);
        // Crossing the period triggers the drain.
        let before = m.cpu.clock.cycles();
        m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 600));
        assert_eq!(db.lock().total_samples(), 2);
        let elapsed = m.cpu.clock.cycles() - before;
        assert!(
            elapsed > 600,
            "daemon work must consume cycles beyond the app block"
        );
        assert!(driver.lock().buffer.is_empty());
    }

    #[test]
    fn inactive_daemon_does_nothing() {
        let (mut m, driver, db, active) = setup(100);
        active.store(false, Ordering::Relaxed);
        driver.lock().buffer.push(bucket(0x10));
        m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 10_000));
        assert_eq!(db.lock().total_samples(), 0);
        assert_eq!(m.cpu.clock.cycles(), 10_000, "no daemon cycles charged");
    }

    #[test]
    fn long_block_coalesces_wakeups() {
        // Free cost model so daemon work doesn't itself cross periods.
        let (mut m, driver, db, _) = setup_with_cost(1_000, CostModel::free());
        driver.lock().buffer.push(bucket(0x10));
        // One block spanning 10 periods → exactly one catch-up drain.
        m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 10_500));
        assert_eq!(db.lock().total_samples(), 1);
        // Next wakeup is aligned after `now`.
        driver.lock().buffer.push(bucket(0x20));
        m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 400));
        assert_eq!(db.lock().total_samples(), 1, "not due again yet");
    }

    #[test]
    fn crashed_daemon_misses_windows_and_buffer_overflows() {
        // Capacity-2 buffer, daemon crashed from its first wakeup for 3
        // windows: pushes during the outage overflow, and the loss is
        // counted — never silent.
        let mut m = Machine::new(MachineConfig::default());
        let driver = Arc::new(Mutex::new(Driver::new(CostModel::free(), 2)));
        let db = Arc::new(Mutex::new(SampleDb::new()));
        let active = Arc::new(AtomicBool::new(true));
        let d = Daemon::spawn(
            &mut m.kernel,
            driver.clone(),
            db.clone(),
            active,
            CostModel::free(),
            100,
        )
        .with_faults(DaemonFaults::new(1).with_crash(1, 2));
        m.add_service(Box::new(d));
        for round in 0..4u64 {
            driver.lock().buffer.push(bucket(round * 16));
            driver.lock().buffer.push(bucket(round * 16 + 8));
            m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 110));
        }
        // Wakeups 1-3 missed (crash + 2 down); wakeup 4 drains what the
        // 2-slot buffer still holds and propagates the overflow count.
        assert_eq!(db.lock().total_samples(), 2, "only the restart drain landed");
        assert_eq!(db.lock().dropped, 6, "pushes during the outage overflowed");
        let (rest, dropped) = driver.lock().drain();
        assert!(rest.is_empty());
        assert_eq!(dropped, 0, "drop counter was handed to the db");
    }

    #[test]
    fn telemetry_records_drains_stalls_and_overflow_events() {
        use viprof_telemetry::{names, Telemetry};
        let t = Telemetry::new();
        let mut m = Machine::new(MachineConfig::default());
        let driver = Arc::new(Mutex::new(Driver::new(CostModel::free(), 2)));
        driver.lock().buffer.attach_telemetry(&t);
        let db = Arc::new(Mutex::new(SampleDb::new()));
        let active = Arc::new(AtomicBool::new(true));
        let d = Daemon::spawn(
            &mut m.kernel,
            driver.clone(),
            db.clone(),
            active,
            CostModel::free(),
            100,
        )
        .with_faults(DaemonFaults::new(1).with_crash(1, 1))
        .with_telemetry(&t);
        m.add_service(Box::new(d));
        for round in 0..3u64 {
            driver.lock().buffer.push(bucket(round * 16));
            driver.lock().buffer.push(bucket(round * 16 + 8));
            driver.lock().buffer.push(bucket(round * 16 + 12)); // overflows
            m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 110));
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter(names::DAEMON_WAKEUPS), 3);
        assert_eq!(snap.counter(names::DAEMON_STALLS), 2, "crash + 1 window down");
        assert_eq!(snap.counter(names::DAEMON_DRAINS), 1);
        assert_eq!(snap.events_of(names::EVENT_DAEMON_STALL).len(), 2);
        let overflows = snap.events_of(names::EVENT_BUFFER_OVERFLOW);
        assert_eq!(overflows.len(), 1, "overflow is coalesced at the drain");
        assert!(overflows[0]
            .fields
            .iter()
            .any(|(k, v)| k == "dropped" && *v == 7));
        let h = snap.histogram(names::DAEMON_BATCH_SAMPLES).unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 2, "the surviving two samples were drained");
        assert!(snap.stage(names::STAGE_DAEMON_DRAIN).is_some());
    }

    #[test]
    fn drains_emit_causal_spans_and_traced_journal_records() {
        use sim_os::journal::{scan, split_traced_payload};
        use viprof_telemetry::Telemetry;
        let t = Telemetry::new();
        let mut m = Machine::new(MachineConfig::default());
        let driver = Arc::new(Mutex::new(Driver::new(CostModel::free(), 64)));
        let db = Arc::new(Mutex::new(SampleDb::new()));
        let active = Arc::new(AtomicBool::new(true));
        let journal = Arc::new(Mutex::new(JournalWriter::create(&mut m.kernel.vfs, "/j")));
        let d = Daemon::spawn(
            &mut m.kernel,
            driver.clone(),
            db,
            active,
            CostModel::free(),
            100,
        )
        .with_journal(journal)
        .with_telemetry(&t);
        m.add_service(Box::new(d));
        driver.lock().buffer.push(bucket(0x10));
        m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 110));

        // window → drain → journal, chained by parent links.
        let trace = t.trace_snapshot();
        let window = trace.spans.iter().find(|s| s.layer == TraceLayer::Nmi).unwrap();
        let drain = trace.spans.iter().find(|s| s.layer == TraceLayer::Drain).unwrap();
        let jspan = trace.spans.iter().find(|s| s.layer == TraceLayer::Journal).unwrap();
        assert_eq!(drain.parent, window.id);
        assert_eq!(jspan.parent, drain.id);
        assert_eq!(drain.field("samples"), Some(1));
        assert!(window.end <= drain.begin, "window closes before the drain runs");

        // The persisted record carries the journal span's identity and
        // the untouched SampleDb body.
        let s = scan(&m.kernel.vfs, "/j").unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].kind, KIND_SAMPLE_BATCH_TRACED);
        let (rec_ctx, body) = split_traced_payload(&s.records[0].payload).unwrap();
        assert_eq!(rec_ctx.span, jspan.id);
        assert_eq!(rec_ctx.trace, jspan.trace);
        assert_eq!(SampleDb::from_bytes(body).unwrap().total_samples(), 1);
    }

    #[test]
    fn untraced_daemon_journals_plain_v1_records() {
        use sim_os::journal::scan;
        let mut m = Machine::new(MachineConfig::default());
        let driver = Arc::new(Mutex::new(Driver::new(CostModel::free(), 64)));
        let db = Arc::new(Mutex::new(SampleDb::new()));
        let active = Arc::new(AtomicBool::new(true));
        let journal = Arc::new(Mutex::new(JournalWriter::create(&mut m.kernel.vfs, "/j")));
        let d = Daemon::spawn(
            &mut m.kernel,
            driver.clone(),
            db,
            active,
            CostModel::free(),
            100,
        )
        .with_journal(journal);
        m.add_service(Box::new(d));
        driver.lock().buffer.push(bucket(0x10));
        m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 110));
        let s = scan(&m.kernel.vfs, "/j").unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].kind, KIND_SAMPLE_BATCH, "no telemetry → v1 record");
        assert!(SampleDb::from_bytes(&s.records[0].payload).is_ok());
    }

    #[test]
    fn governor_backs_off_the_live_counter_under_pressure() {
        use crate::governor::{Governor, GovernorConfig};
        use viprof_telemetry::{names, Telemetry};
        let t = Telemetry::new();
        let mut m = Machine::new(MachineConfig::default());
        // A live counter the governor will reprogram; period far above
        // the test's block sizes so it never actually overflows here.
        m.cpu.program_counter(sim_cpu::CounterSpec::new(HwEvent::Cycles, 1_000_000));
        let driver = Arc::new(Mutex::new(Driver::new(CostModel::free(), 8)));
        let db = Arc::new(Mutex::new(SampleDb::new()));
        let active = Arc::new(AtomicBool::new(true));
        let gov = Governor::new(
            1_000_000,
            GovernorConfig {
                high_watermark_pct: 50,
                low_watermark_pct: 20,
                dwell_windows: 1,
                backoff_factor: 2,
                max_scale: 4,
                ..GovernorConfig::default()
            },
        );
        let d = Daemon::spawn(
            &mut m.kernel,
            driver.clone(),
            db.clone(),
            active,
            CostModel::free(),
            100,
        )
        .with_governor(gov, HwEvent::Cycles)
        .with_telemetry(&t);
        m.add_service(Box::new(d));
        for round in 0..6u64 {
            // 6 of 8 slots = 75% occupancy: above the high watermark.
            for i in 0..6 {
                driver.lock().buffer.push(bucket(round * 128 + i * 16));
            }
            m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 110));
        }
        // dwell 1 with a 1-window cooldown: back-offs land every other
        // drain until the 4× ceiling — 1M → 2M → 4M, then hold.
        assert_eq!(m.cpu.bank.counter(0).spec().period, 4_000_000);
        let snap = t.snapshot();
        assert_eq!(snap.counter(names::GOVERNOR_BACKOFFS), 2);
        assert_eq!(snap.gauge(names::GOVERNOR_PERIOD), 4_000_000);
        assert_eq!(snap.events_of(names::EVENT_GOVERNOR_RATE_CHANGE).len(), 2);
    }

    #[test]
    fn deadline_misses_surface_and_escalate() {
        use crate::governor::{Governor, GovernorConfig};
        use viprof_telemetry::{names, Telemetry};
        let t = Telemetry::new();
        let mut m = Machine::new(MachineConfig::default());
        // Default cost model: every drain costs well over 1 cycle, so a
        // 1-cycle budget misses each window.
        let driver = Arc::new(Mutex::new(Driver::new(CostModel::default(), 64)));
        let db = Arc::new(Mutex::new(SampleDb::new()));
        let active = Arc::new(AtomicBool::new(true));
        let gov = Governor::new(
            90_000,
            GovernorConfig {
                deadline_cycles: 1,
                deadline_miss_threshold: 2,
                ..GovernorConfig::default()
            },
        );
        let d = Daemon::spawn(
            &mut m.kernel,
            driver.clone(),
            db,
            active,
            CostModel::default(),
            100,
        )
        .with_governor(gov, HwEvent::Cycles)
        .with_telemetry(&t);
        m.add_service(Box::new(d));
        for round in 0..4u64 {
            driver.lock().buffer.push(bucket(round * 16));
            m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 110));
        }
        let snap = t.snapshot();
        assert!(snap.counter(names::DAEMON_DEADLINE_MISSES) >= 2);
        assert!(snap.counter(names::GOVERNOR_ESCALATIONS) >= 1, "threshold of 2 crossed");
        assert!(!snap.events_of(names::EVENT_GOVERNOR_DEADLINE_MISS).is_empty());
        assert!(!snap.events_of(names::EVENT_GOVERNOR_ESCALATION).is_empty());
    }

    #[test]
    fn capped_db_counts_evictions_through_the_drain_path() {
        use viprof_telemetry::{names, Telemetry};
        let t = Telemetry::new();
        let mut m = Machine::new(MachineConfig::default());
        let driver = Arc::new(Mutex::new(Driver::new(CostModel::free(), 64)));
        let db = Arc::new(Mutex::new(SampleDb::new()));
        db.lock().set_admission_cap(Some(2));
        let active = Arc::new(AtomicBool::new(true));
        let d = Daemon::spawn(
            &mut m.kernel,
            driver.clone(),
            db.clone(),
            active,
            CostModel::free(),
            100,
        )
        .with_telemetry(&t);
        m.add_service(Box::new(d));
        for i in 0..5 {
            driver.lock().buffer.push(bucket(i * 16)); // 5 distinct buckets
        }
        m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 110));
        assert_eq!(db.lock().len(), 2, "cap bounds distinct buckets");
        assert_eq!(db.lock().evicted, 3);
        assert_eq!(db.lock().total_samples(), 2);
        let snap = t.snapshot();
        assert_eq!(snap.counter(names::DB_EVICTED_SAMPLES), 3);
        assert!(!snap.events_of(names::EVENT_DB_EVICTION).is_empty());
    }

    #[test]
    fn dropped_samples_propagate_to_db() {
        let mut m = Machine::new(MachineConfig::default());
        let driver = Arc::new(Mutex::new(Driver::new(CostModel::default(), 2)));
        let db = Arc::new(Mutex::new(SampleDb::new()));
        let active = Arc::new(AtomicBool::new(true));
        let d = Daemon::spawn(
            &mut m.kernel,
            driver.clone(),
            db.clone(),
            active,
            CostModel::default(),
            100,
        );
        m.add_service(Box::new(d));
        for i in 0..5 {
            driver.lock().buffer.push(bucket(i * 16));
        }
        m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 200));
        assert_eq!(db.lock().total_samples(), 2);
        assert_eq!(db.lock().dropped, 3);
    }
}
