//! Deterministic fault injection for the kernel-side half of the
//! sampling pipeline.
//!
//! Real OProfile deployments lose data in ways the happy path never
//! shows: the NMI handler races a buffer the daemon is slow to drain
//! (overflow bursts), an interrupted context yields a garbage PC
//! (sample corruption), and `oprofiled` itself stalls on a slow disk or
//! is killed and restarted mid-run (missed drain windows). These types
//! let a test — or a chaos harness — schedule exactly those events from
//! a seed, so every run is reproducible bit for bit.
//!
//! The seams are consulted by [`crate::driver::Driver::handle_overflow`]
//! and [`crate::daemon::Daemon::poll`]; both are `None` by default and
//! cost nothing when absent. The `viprof` crate's `faults::FaultPlan`
//! builds these from one master seed and pairs them with agent-side
//! (code-map) faults.

use crate::samples::{SampleBucket, SampleOrigin};
use sim_os::SplitMix64;

/// What the injector decided about one NMI sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Push the (possibly mutated) bucket as usual.
    Deliver,
    /// Treat the buffer as full: count a drop, push nothing.
    Drop,
}

/// Counters for driver-side injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverFaultStats {
    /// Samples whose address was garbled before logging.
    pub corrupted: u64,
    /// Samples dropped by an injected overflow burst.
    pub forced_drops: u64,
    /// JIT samples whose epoch tag was skewed.
    pub skewed: u64,
}

/// NMI-path fault injector: overflow bursts, sample corruption and
/// agent/driver epoch-counter skew.
#[derive(Debug, Clone)]
pub struct DriverFaults {
    rng: SplitMix64,
    /// Probability that a given NMI starts an overflow burst.
    pub burst_rate: f64,
    /// Samples dropped per burst (the triggering sample included).
    pub burst_len: u64,
    /// Probability that a sample's address is garbled (a stale or
    /// corrupt PC read in the handler).
    pub corrupt_rate: f64,
    /// Epochs subtracted from every JIT sample's tag: the driver's view
    /// of the epoch counter lagging the agent's.
    pub epoch_skew: u64,
    burst_remaining: u64,
    pub stats: DriverFaultStats,
}

impl DriverFaults {
    pub fn new(seed: u64) -> DriverFaults {
        DriverFaults {
            rng: SplitMix64::new(seed),
            burst_rate: 0.0,
            burst_len: 0,
            corrupt_rate: 0.0,
            epoch_skew: 0,
            burst_remaining: 0,
            stats: DriverFaultStats::default(),
        }
    }

    pub fn with_bursts(mut self, rate: f64, len: u64) -> DriverFaults {
        self.burst_rate = rate;
        self.burst_len = len;
        self
    }

    pub fn with_corruption(mut self, rate: f64) -> DriverFaults {
        self.corrupt_rate = rate;
        self
    }

    pub fn with_epoch_skew(mut self, skew: u64) -> DriverFaults {
        self.epoch_skew = skew;
        self
    }

    /// Decide the fate of one classified sample. Mutates the bucket in
    /// place for corruption/skew; `Drop` means the caller must count an
    /// overflow drop instead of pushing.
    pub fn on_sample(&mut self, bucket: &mut SampleBucket) -> FaultVerdict {
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            self.stats.forced_drops += 1;
            return FaultVerdict::Drop;
        }
        if self.burst_rate > 0.0 && self.rng.next_f64() < self.burst_rate {
            self.burst_remaining = self.burst_len.saturating_sub(1);
            self.stats.forced_drops += 1;
            return FaultVerdict::Drop;
        }
        if self.corrupt_rate > 0.0 && self.rng.next_f64() < self.corrupt_rate {
            // Flip address bits above the 16-byte quantum so the sample
            // lands in the wrong bucket (or off every map) but stays in
            // a plausible range.
            bucket.addr ^= (self.rng.next_u64() | 0x10) & 0xffff_fff0;
            self.stats.corrupted += 1;
        }
        if self.epoch_skew > 0 {
            if let SampleOrigin::JitApp { .. } = bucket.origin {
                bucket.epoch = bucket.epoch.saturating_sub(self.epoch_skew);
                self.stats.skewed += 1;
            }
        }
        FaultVerdict::Deliver
    }
}

/// Counters for daemon-side injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonFaultStats {
    /// Wakeups that drained nothing because of an injected stall.
    pub stalled: u64,
    /// Crash events taken.
    pub crashes: u64,
    /// Total drain windows missed (stalls + downtime).
    pub missed_drains: u64,
}

/// Daemon fault injector: random stalls plus one crash-and-restart
/// window. While the daemon is down the ring buffer keeps filling, so
/// overflow drops emerge organically — exactly the real failure mode.
///
/// The stats live behind a shared handle: the injector is moved into
/// the boxed daemon service at install time, and the session keeps a
/// clone to read the counters afterwards.
#[derive(Debug, Clone)]
pub struct DaemonFaults {
    rng: SplitMix64,
    /// Probability that any given wakeup is stalled (drains nothing).
    pub stall_rate: f64,
    /// Crash on this (1-based) wakeup, if set.
    pub crash_at_wakeup: Option<u64>,
    /// Wakeups missed after the crash before the restart.
    pub down_wakeups: u64,
    down_remaining: u64,
    stats: std::sync::Arc<parking_lot::Mutex<DaemonFaultStats>>,
}

impl DaemonFaults {
    pub fn new(seed: u64) -> DaemonFaults {
        DaemonFaults {
            rng: SplitMix64::new(seed),
            stall_rate: 0.0,
            crash_at_wakeup: None,
            down_wakeups: 0,
            down_remaining: 0,
            stats: Default::default(),
        }
    }

    /// Snapshot of the injected-fault counters.
    pub fn stats(&self) -> DaemonFaultStats {
        *self.stats.lock()
    }

    pub fn with_stalls(mut self, rate: f64) -> DaemonFaults {
        self.stall_rate = rate;
        self
    }

    pub fn with_crash(mut self, at_wakeup: u64, down_wakeups: u64) -> DaemonFaults {
        self.crash_at_wakeup = Some(at_wakeup);
        self.down_wakeups = down_wakeups;
        self
    }

    /// Cancel any remaining post-crash downtime: the supervisor
    /// restarted the daemon process. Returns how many down windows were
    /// skipped. The crash already happened (and was counted); a revived
    /// daemon simply stops missing wakeups early.
    pub fn revive(&mut self) -> u64 {
        std::mem::take(&mut self.down_remaining)
    }

    /// May the daemon drain on this (1-based) wakeup?
    pub fn wakeup_allowed(&mut self, wakeup: u64) -> bool {
        let mut stats = self.stats.lock();
        if self.down_remaining > 0 {
            self.down_remaining -= 1;
            stats.missed_drains += 1;
            return false;
        }
        if self.crash_at_wakeup == Some(wakeup) {
            stats.crashes += 1;
            stats.missed_drains += 1;
            self.down_remaining = self.down_wakeups;
            return false;
        }
        if self.stall_rate > 0.0 && self.rng.next_f64() < self.stall_rate {
            stats.stalled += 1;
            stats.missed_drains += 1;
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::HwEvent;
    use sim_cpu::Pid;

    fn jit_bucket(addr: u64, epoch: u64) -> SampleBucket {
        SampleBucket {
            origin: SampleOrigin::JitApp { pid: Pid(1), gen: 0 },
            event: HwEvent::Cycles,
            addr,
            epoch,
        }
    }

    #[test]
    fn no_knobs_means_no_faults() {
        let mut f = DriverFaults::new(1);
        let mut b = jit_bucket(0x1000, 3);
        for _ in 0..1000 {
            assert_eq!(f.on_sample(&mut b), FaultVerdict::Deliver);
        }
        assert_eq!((b.addr, b.epoch), (0x1000, 3));
        assert_eq!(f.stats, DriverFaultStats::default());
    }

    #[test]
    fn bursts_drop_exactly_burst_len() {
        let mut f = DriverFaults::new(7).with_bursts(1.0, 3);
        let mut drops = 0;
        let mut b = jit_bucket(0, 0);
        for _ in 0..9 {
            if f.on_sample(&mut b) == FaultVerdict::Drop {
                drops += 1;
            }
        }
        // rate 1.0: every non-burst sample starts a new burst.
        assert_eq!(drops, 9);
        assert_eq!(f.stats.forced_drops, 9);
    }

    #[test]
    fn epoch_skew_only_touches_jit() {
        let mut f = DriverFaults::new(2).with_epoch_skew(2);
        let mut j = jit_bucket(0x10, 5);
        assert_eq!(f.on_sample(&mut j), FaultVerdict::Deliver);
        assert_eq!(j.epoch, 3);
        let mut u = SampleBucket {
            origin: SampleOrigin::Unknown,
            event: HwEvent::Cycles,
            addr: 0,
            epoch: 4,
        };
        f.on_sample(&mut u);
        assert_eq!(u.epoch, 4, "non-JIT epochs untouched");
        assert_eq!(f.stats.skewed, 1);
        // Skew saturates at zero.
        let mut early = jit_bucket(0x10, 1);
        f.on_sample(&mut early);
        assert_eq!(early.epoch, 0);
    }

    #[test]
    fn corruption_garbles_addr_deterministically() {
        let run = |seed| {
            let mut f = DriverFaults::new(seed).with_corruption(1.0);
            let mut b = jit_bucket(0x6400_0040, 0);
            f.on_sample(&mut b);
            (b.addr, f.stats.corrupted)
        };
        let (a1, c1) = run(9);
        let (a2, c2) = run(9);
        assert_eq!((a1, c1), (a2, c2), "same seed, same garbling");
        assert_ne!(a1, 0x6400_0040);
        assert_eq!(c1, 1);
    }

    #[test]
    fn daemon_crash_misses_a_window_then_restarts() {
        let mut f = DaemonFaults::new(1).with_crash(2, 2);
        let allowed: Vec<bool> = (1..=6).map(|w| f.wakeup_allowed(w)).collect();
        assert_eq!(allowed, vec![true, false, false, false, true, true]);
        assert_eq!(f.stats().crashes, 1);
        assert_eq!(f.stats().missed_drains, 3);
    }

    #[test]
    fn stalls_are_seed_deterministic() {
        let pattern = |seed| {
            let mut f = DaemonFaults::new(seed).with_stalls(0.5);
            (1..=32).map(|w| f.wakeup_allowed(w)).collect::<Vec<_>>()
        };
        assert_eq!(pattern(11), pattern(11));
        let p = pattern(11);
        assert!(p.iter().any(|x| *x) && p.iter().any(|x| !*x));
    }
}
