//! Samples and the sample database.
//!
//! The driver classifies each overflow at NMI time into a
//! [`SampleBucket`]; the daemon accumulates bucket counts into a
//! [`SampleDb`], which post-processing reads. Addresses are quantized to
//! 16-byte lines before bucketing — heap objects (and hence JIT code
//! bodies) are 16-byte aligned, so quantization can never smear a sample
//! across two code bodies, while keeping the database size proportional
//! to code bytes rather than sample count.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sim_cpu::{Addr, HwEvent, Pid};
use sim_os::ImageId;
use std::collections::HashMap;

/// Quantization granularity for sampled addresses.
pub const ADDR_QUANTUM: u64 = 16;

/// Where a sample landed, as far as the driver could tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SampleOrigin {
    /// File-backed (or kernel) text: resolvable offline via the image's
    /// symbol table. `addr` in the bucket is the image offset.
    Image(ImageId),
    /// Anonymous mapping — OProfile's dead end. `addr` is the absolute
    /// PC.
    Anon { pid: Pid, start: Addr, end: Addr },
    /// VIProf extension: inside a registered VM heap. `addr` is the
    /// absolute PC; the bucket's `epoch` holds the GC epoch the sample
    /// was taken in (paper §3.1). `gen` is the registrant's process
    /// generation stamped at NMI time, so samples from two incarnations
    /// of the same pid can never share a bucket.
    JitApp { pid: Pid, gen: u32 },
    /// Unmapped PC (stale process, race) — real OProfile drops these
    /// into a catch-all too.
    Unknown,
}

/// Aggregation key for one counter event at one location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SampleBucket {
    pub origin: SampleOrigin,
    pub event: HwEvent,
    /// Image offset (Image) or absolute PC (Anon/JitApp), quantized.
    pub addr: u64,
    /// GC epoch for `JitApp`, 0 otherwise.
    pub epoch: u64,
}

impl SampleBucket {
    pub fn quantize(mut self) -> Self {
        self.addr -= self.addr % ADDR_QUANTUM;
        self
    }
}

/// Accumulated profile: bucket → sample count.
#[derive(Debug, Clone, Default)]
pub struct SampleDb {
    counts: HashMap<SampleBucket, u64>,
    totals: HashMap<HwEvent, u64>,
    /// Samples lost to ring-buffer overflow (reported by the daemon).
    pub dropped: u64,
    /// Samples refused by the admission cap: the database was at its
    /// bucket limit and the sample would have created a new bucket.
    /// Like `dropped`, these never enter `total_samples()` but are
    /// carried through serialization so quality accounting sees them.
    pub evicted: u64,
    /// Bounded-memory admission cap on distinct buckets (`None` =
    /// unbounded). Configuration, not content: excluded from equality
    /// and serialization.
    cap: Option<usize>,
}

/// Equality is over sample *content* (buckets, drop and eviction
/// counts), not configuration — a capped database equals its uncapped
/// round-trip through the sample-file format.
impl PartialEq for SampleDb {
    fn eq(&self, other: &Self) -> bool {
        self.counts == other.counts
            && self.dropped == other.dropped
            && self.evicted == other.evicted
    }
}

impl SampleDb {
    pub fn new() -> Self {
        SampleDb::default()
    }

    /// Bound the database to at most `cap` distinct buckets. Samples
    /// for existing buckets always accumulate; samples that would mint
    /// a new bucket past the cap are counted in `evicted` instead.
    pub fn set_admission_cap(&mut self, cap: Option<usize>) {
        self.cap = cap;
    }

    pub fn admission_cap(&self) -> Option<usize> {
        self.cap
    }

    pub fn add(&mut self, bucket: SampleBucket, n: u64) {
        let bucket = bucket.quantize();
        if let Some(cap) = self.cap {
            if self.counts.len() >= cap && !self.counts.contains_key(&bucket) {
                self.evicted += n;
                return;
            }
        }
        *self.counts.entry(bucket).or_insert(0) += n;
        *self.totals.entry(bucket.event).or_insert(0) += n;
    }

    pub fn total(&self, event: HwEvent) -> u64 {
        self.totals.get(&event).copied().unwrap_or(0)
    }

    pub fn total_samples(&self) -> u64 {
        self.totals.values().sum()
    }

    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&SampleBucket, &u64)> {
        self.counts.iter()
    }

    /// Buckets in deterministic order (for reports and serialization).
    pub fn sorted(&self) -> Vec<(SampleBucket, u64)> {
        let mut v: Vec<(SampleBucket, u64)> =
            self.counts.iter().map(|(b, c)| (*b, *c)).collect();
        v.sort_unstable();
        v
    }

    pub fn merge(&mut self, other: &SampleDb) {
        for (b, c) in other.iter() {
            self.add(*b, *c);
        }
        self.dropped += other.dropped;
        self.evicted += other.evicted;
    }

    // --- binary serialization (the "sample files" on the VFS) ---

    fn event_code(e: HwEvent) -> u8 {
        HwEvent::ALL.iter().position(|x| *x == e).unwrap() as u8
    }

    fn event_from(code: u8) -> Result<HwEvent, String> {
        HwEvent::ALL
            .get(code as usize)
            .copied()
            .ok_or_else(|| format!("bad event code {code}"))
    }

    /// Serialize into the compact binary sample-file format (v3; v1
    /// files — which predate the `evicted` counter — and v2 files —
    /// which predate generation tags — still parse).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(40 + self.counts.len() * 40);
        buf.put_slice(b"OPDB");
        buf.put_u32_le(3); // version
        buf.put_u64_le(self.dropped);
        buf.put_u64_le(self.evicted);
        buf.put_u64_le(self.counts.len() as u64);
        for (b, c) in self.sorted() {
            match b.origin {
                SampleOrigin::Image(id) => {
                    buf.put_u8(0);
                    buf.put_u32_le(id.0);
                    buf.put_u32_le(0);
                    buf.put_u64_le(0);
                    buf.put_u64_le(0);
                }
                SampleOrigin::Anon { pid, start, end } => {
                    buf.put_u8(1);
                    buf.put_u32_le(pid.0);
                    buf.put_u32_le(0);
                    buf.put_u64_le(start);
                    buf.put_u64_le(end);
                }
                SampleOrigin::JitApp { pid, gen } => {
                    buf.put_u8(2);
                    buf.put_u32_le(pid.0);
                    buf.put_u32_le(gen); // v2's pad word, 0 pre-generation
                    buf.put_u64_le(0);
                    buf.put_u64_le(0);
                }
                SampleOrigin::Unknown => {
                    buf.put_u8(3);
                    buf.put_u32_le(0);
                    buf.put_u32_le(0);
                    buf.put_u64_le(0);
                    buf.put_u64_le(0);
                }
            }
            buf.put_u8(Self::event_code(b.event));
            buf.put_u64_le(b.addr);
            buf.put_u64_le(b.epoch);
            buf.put_u64_le(c);
        }
        buf.freeze()
    }

    /// Parse a serialized sample file.
    pub fn from_bytes(mut data: &[u8]) -> Result<SampleDb, String> {
        if data.remaining() < 24 || &data[..4] != b"OPDB" {
            return Err("bad magic".into());
        }
        data.advance(4);
        let version = data.get_u32_le();
        if !(1..=3).contains(&version) {
            return Err(format!("unsupported version {version}"));
        }
        let dropped = data.get_u64_le();
        let evicted = if version >= 2 {
            if data.remaining() < 16 {
                return Err("truncated v2 header".into());
            }
            data.get_u64_le()
        } else {
            0
        };
        let n = data.get_u64_le();
        let mut db = SampleDb {
            dropped,
            evicted,
            ..SampleDb::default()
        };
        for _ in 0..n {
            if data.remaining() < 25 + 25 {
                return Err("truncated sample record".into());
            }
            let tag = data.get_u8();
            let a = data.get_u32_le();
            let pad = data.get_u32_le();
            let x = data.get_u64_le();
            let y = data.get_u64_le();
            let origin = match tag {
                0 => SampleOrigin::Image(ImageId(a)),
                1 => SampleOrigin::Anon {
                    pid: Pid(a),
                    start: x,
                    end: y,
                },
                // Pre-v3 files predate generation tags: their pad word
                // is zero, which is exactly generation 0.
                2 => SampleOrigin::JitApp {
                    pid: Pid(a),
                    gen: pad,
                },
                3 => SampleOrigin::Unknown,
                t => return Err(format!("bad origin tag {t}")),
            };
            let event = Self::event_from(data.get_u8())?;
            let addr = data.get_u64_le();
            let epoch = data.get_u64_le();
            let count = data.get_u64_le();
            db.add(
                SampleBucket {
                    origin,
                    event,
                    addr,
                    epoch,
                },
                count,
            );
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img_bucket(off: u64, event: HwEvent) -> SampleBucket {
        SampleBucket {
            origin: SampleOrigin::Image(ImageId(3)),
            event,
            addr: off,
            epoch: 0,
        }
    }

    #[test]
    fn add_quantizes_and_accumulates() {
        let mut db = SampleDb::new();
        db.add(img_bucket(0x101, HwEvent::Cycles), 1);
        db.add(img_bucket(0x10f, HwEvent::Cycles), 2);
        db.add(img_bucket(0x110, HwEvent::Cycles), 4);
        assert_eq!(db.len(), 2, "0x101 and 0x10f share a 16-byte line");
        assert_eq!(db.total(HwEvent::Cycles), 7);
        let sorted = db.sorted();
        assert_eq!(sorted[0].0.addr, 0x100);
        assert_eq!(sorted[0].1, 3);
    }

    #[test]
    fn totals_track_per_event() {
        let mut db = SampleDb::new();
        db.add(img_bucket(0, HwEvent::Cycles), 5);
        db.add(img_bucket(0, HwEvent::L2Miss), 2);
        assert_eq!(db.total(HwEvent::Cycles), 5);
        assert_eq!(db.total(HwEvent::L2Miss), 2);
        assert_eq!(db.total(HwEvent::Branches), 0);
        assert_eq!(db.total_samples(), 7);
    }

    #[test]
    fn jit_buckets_keep_epochs_distinct() {
        let mut db = SampleDb::new();
        let mk = |epoch| SampleBucket {
            origin: SampleOrigin::JitApp { pid: Pid(9), gen: 0 },
            event: HwEvent::Cycles,
            addr: 0x64000040,
            epoch,
        };
        db.add(mk(1), 1);
        db.add(mk(2), 1);
        assert_eq!(db.len(), 2, "same PC, different epoch = different bucket");
    }

    #[test]
    fn jit_buckets_keep_generations_distinct() {
        let mut db = SampleDb::new();
        let mk = |gen| SampleBucket {
            origin: SampleOrigin::JitApp { pid: Pid(9), gen },
            event: HwEvent::Cycles,
            addr: 0x64000040,
            epoch: 1,
        };
        db.add(mk(0), 1);
        db.add(mk(1), 1);
        assert_eq!(
            db.len(),
            2,
            "same PC and epoch, different incarnation = different bucket"
        );
        let back = SampleDb::from_bytes(&db.to_bytes()).unwrap();
        assert_eq!(back, db, "generation tags survive serialization");
    }

    #[test]
    fn serialization_round_trips() {
        let mut db = SampleDb::new();
        db.add(img_bucket(0x40, HwEvent::Cycles), 10);
        db.add(
            SampleBucket {
                origin: SampleOrigin::Anon {
                    pid: Pid(4),
                    start: 0x6000_0000,
                    end: 0x6400_0000,
                },
                event: HwEvent::L2Miss,
                addr: 0x6100_0040,
                epoch: 0,
            },
            3,
        );
        db.add(
            SampleBucket {
                origin: SampleOrigin::JitApp { pid: Pid(4), gen: 2 },
                event: HwEvent::Cycles,
                addr: 0x6200_0000,
                epoch: 7,
            },
            5,
        );
        db.add(
            SampleBucket {
                origin: SampleOrigin::Unknown,
                event: HwEvent::Cycles,
                addr: 0,
                epoch: 0,
            },
            1,
        );
        db.dropped = 12;
        let bytes = db.to_bytes();
        let back = SampleDb::from_bytes(&bytes).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn deserialization_rejects_garbage() {
        assert!(SampleDb::from_bytes(b"NOPE").is_err());
        assert!(SampleDb::from_bytes(b"OPDB").is_err());
        let mut db = SampleDb::new();
        db.add(img_bucket(0, HwEvent::Cycles), 1);
        let bytes = db.to_bytes();
        assert!(SampleDb::from_bytes(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn admission_cap_bounds_buckets_and_counts_evictions() {
        let mut db = SampleDb::new();
        db.set_admission_cap(Some(2));
        db.add(img_bucket(0x00, HwEvent::Cycles), 1);
        db.add(img_bucket(0x10, HwEvent::Cycles), 1);
        db.add(img_bucket(0x20, HwEvent::Cycles), 5); // third bucket: refused
        db.add(img_bucket(0x00, HwEvent::Cycles), 3); // existing: accumulates
        assert_eq!(db.len(), 2);
        assert_eq!(db.evicted, 5);
        assert_eq!(db.total_samples(), 5, "evicted samples never enter totals");
        assert_eq!(db.total(HwEvent::Cycles), 5);
    }

    #[test]
    fn evictions_survive_serialization_and_merge() {
        let mut db = SampleDb::new();
        db.set_admission_cap(Some(1));
        db.add(img_bucket(0x00, HwEvent::Cycles), 2);
        db.add(img_bucket(0x10, HwEvent::Cycles), 3);
        assert_eq!(db.evicted, 3);
        let back = SampleDb::from_bytes(&db.to_bytes()).unwrap();
        assert_eq!(back, db, "content equality ignores the cap config");
        assert_eq!(back.evicted, 3);
        assert_eq!(back.admission_cap(), None, "cap is config, not content");

        let mut sink = SampleDb::new();
        sink.merge(&back);
        assert_eq!(sink.evicted, 3);
    }

    #[test]
    fn v1_files_without_eviction_field_still_parse() {
        let mut db = SampleDb::new();
        db.add(img_bucket(0x40, HwEvent::Cycles), 7);
        db.dropped = 2;
        // Hand-build the v1 layout: no `evicted` word in the header.
        let v2 = db.to_bytes();
        let mut v1 = BytesMut::new();
        v1.put_slice(b"OPDB");
        v1.put_u32_le(1);
        v1.put_u64_le(db.dropped);
        // Skip the v2 `evicted` word (offset 16..24), keep the rest.
        v1.put_slice(&v2[24..]);
        let back = SampleDb::from_bytes(&v1).unwrap();
        assert_eq!(back, db);
        assert_eq!(back.evicted, 0);
    }

    #[test]
    fn merge_combines_counts_and_drops() {
        let mut a = SampleDb::new();
        a.add(img_bucket(0, HwEvent::Cycles), 1);
        a.dropped = 2;
        let mut b = SampleDb::new();
        b.add(img_bucket(0, HwEvent::Cycles), 3);
        b.add(img_bucket(0x20, HwEvent::Cycles), 1);
        b.dropped = 1;
        a.merge(&b);
        assert_eq!(a.total(HwEvent::Cycles), 5);
        assert_eq!(a.dropped, 3);
        assert_eq!(a.len(), 2);
    }
}
