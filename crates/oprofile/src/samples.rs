//! Samples and the sample database.
//!
//! The driver classifies each overflow at NMI time into a
//! [`SampleBucket`]; the daemon accumulates bucket counts into a
//! [`SampleDb`], which post-processing reads. Addresses are quantized to
//! 16-byte lines before bucketing — heap objects (and hence JIT code
//! bodies) are 16-byte aligned, so quantization can never smear a sample
//! across two code bodies, while keeping the database size proportional
//! to code bytes rather than sample count.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sim_cpu::{Addr, HwEvent, Pid};
use sim_os::ImageId;
use std::collections::HashMap;

/// Quantization granularity for sampled addresses.
pub const ADDR_QUANTUM: u64 = 16;

/// Where a sample landed, as far as the driver could tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SampleOrigin {
    /// File-backed (or kernel) text: resolvable offline via the image's
    /// symbol table. `addr` in the bucket is the image offset.
    Image(ImageId),
    /// Anonymous mapping — OProfile's dead end. `addr` is the absolute
    /// PC.
    Anon { pid: Pid, start: Addr, end: Addr },
    /// VIProf extension: inside a registered VM heap. `addr` is the
    /// absolute PC; the bucket's `epoch` holds the GC epoch the sample
    /// was taken in (paper §3.1).
    JitApp { pid: Pid },
    /// Unmapped PC (stale process, race) — real OProfile drops these
    /// into a catch-all too.
    Unknown,
}

/// Aggregation key for one counter event at one location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SampleBucket {
    pub origin: SampleOrigin,
    pub event: HwEvent,
    /// Image offset (Image) or absolute PC (Anon/JitApp), quantized.
    pub addr: u64,
    /// GC epoch for `JitApp`, 0 otherwise.
    pub epoch: u64,
}

impl SampleBucket {
    pub fn quantize(mut self) -> Self {
        self.addr -= self.addr % ADDR_QUANTUM;
        self
    }
}

/// Accumulated profile: bucket → sample count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleDb {
    counts: HashMap<SampleBucket, u64>,
    totals: HashMap<HwEvent, u64>,
    /// Samples lost to ring-buffer overflow (reported by the daemon).
    pub dropped: u64,
}

impl SampleDb {
    pub fn new() -> Self {
        SampleDb::default()
    }

    pub fn add(&mut self, bucket: SampleBucket, n: u64) {
        let bucket = bucket.quantize();
        *self.counts.entry(bucket).or_insert(0) += n;
        *self.totals.entry(bucket.event).or_insert(0) += n;
    }

    pub fn total(&self, event: HwEvent) -> u64 {
        self.totals.get(&event).copied().unwrap_or(0)
    }

    pub fn total_samples(&self) -> u64 {
        self.totals.values().sum()
    }

    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&SampleBucket, &u64)> {
        self.counts.iter()
    }

    /// Buckets in deterministic order (for reports and serialization).
    pub fn sorted(&self) -> Vec<(SampleBucket, u64)> {
        let mut v: Vec<(SampleBucket, u64)> =
            self.counts.iter().map(|(b, c)| (*b, *c)).collect();
        v.sort_unstable();
        v
    }

    pub fn merge(&mut self, other: &SampleDb) {
        for (b, c) in other.iter() {
            self.add(*b, *c);
        }
        self.dropped += other.dropped;
    }

    // --- binary serialization (the "sample files" on the VFS) ---

    fn event_code(e: HwEvent) -> u8 {
        HwEvent::ALL.iter().position(|x| *x == e).unwrap() as u8
    }

    fn event_from(code: u8) -> Result<HwEvent, String> {
        HwEvent::ALL
            .get(code as usize)
            .copied()
            .ok_or_else(|| format!("bad event code {code}"))
    }

    /// Serialize into the compact binary sample-file format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32 + self.counts.len() * 40);
        buf.put_slice(b"OPDB");
        buf.put_u32_le(1); // version
        buf.put_u64_le(self.dropped);
        buf.put_u64_le(self.counts.len() as u64);
        for (b, c) in self.sorted() {
            match b.origin {
                SampleOrigin::Image(id) => {
                    buf.put_u8(0);
                    buf.put_u32_le(id.0);
                    buf.put_u32_le(0);
                    buf.put_u64_le(0);
                    buf.put_u64_le(0);
                }
                SampleOrigin::Anon { pid, start, end } => {
                    buf.put_u8(1);
                    buf.put_u32_le(pid.0);
                    buf.put_u32_le(0);
                    buf.put_u64_le(start);
                    buf.put_u64_le(end);
                }
                SampleOrigin::JitApp { pid } => {
                    buf.put_u8(2);
                    buf.put_u32_le(pid.0);
                    buf.put_u32_le(0);
                    buf.put_u64_le(0);
                    buf.put_u64_le(0);
                }
                SampleOrigin::Unknown => {
                    buf.put_u8(3);
                    buf.put_u32_le(0);
                    buf.put_u32_le(0);
                    buf.put_u64_le(0);
                    buf.put_u64_le(0);
                }
            }
            buf.put_u8(Self::event_code(b.event));
            buf.put_u64_le(b.addr);
            buf.put_u64_le(b.epoch);
            buf.put_u64_le(c);
        }
        buf.freeze()
    }

    /// Parse a serialized sample file.
    pub fn from_bytes(mut data: &[u8]) -> Result<SampleDb, String> {
        if data.remaining() < 24 || &data[..4] != b"OPDB" {
            return Err("bad magic".into());
        }
        data.advance(4);
        let version = data.get_u32_le();
        if version != 1 {
            return Err(format!("unsupported version {version}"));
        }
        let dropped = data.get_u64_le();
        let n = data.get_u64_le();
        let mut db = SampleDb {
            dropped,
            ..SampleDb::default()
        };
        for _ in 0..n {
            if data.remaining() < 25 + 25 {
                return Err("truncated sample record".into());
            }
            let tag = data.get_u8();
            let a = data.get_u32_le();
            let _pad = data.get_u32_le();
            let x = data.get_u64_le();
            let y = data.get_u64_le();
            let origin = match tag {
                0 => SampleOrigin::Image(ImageId(a)),
                1 => SampleOrigin::Anon {
                    pid: Pid(a),
                    start: x,
                    end: y,
                },
                2 => SampleOrigin::JitApp { pid: Pid(a) },
                3 => SampleOrigin::Unknown,
                t => return Err(format!("bad origin tag {t}")),
            };
            let event = Self::event_from(data.get_u8())?;
            let addr = data.get_u64_le();
            let epoch = data.get_u64_le();
            let count = data.get_u64_le();
            db.add(
                SampleBucket {
                    origin,
                    event,
                    addr,
                    epoch,
                },
                count,
            );
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img_bucket(off: u64, event: HwEvent) -> SampleBucket {
        SampleBucket {
            origin: SampleOrigin::Image(ImageId(3)),
            event,
            addr: off,
            epoch: 0,
        }
    }

    #[test]
    fn add_quantizes_and_accumulates() {
        let mut db = SampleDb::new();
        db.add(img_bucket(0x101, HwEvent::Cycles), 1);
        db.add(img_bucket(0x10f, HwEvent::Cycles), 2);
        db.add(img_bucket(0x110, HwEvent::Cycles), 4);
        assert_eq!(db.len(), 2, "0x101 and 0x10f share a 16-byte line");
        assert_eq!(db.total(HwEvent::Cycles), 7);
        let sorted = db.sorted();
        assert_eq!(sorted[0].0.addr, 0x100);
        assert_eq!(sorted[0].1, 3);
    }

    #[test]
    fn totals_track_per_event() {
        let mut db = SampleDb::new();
        db.add(img_bucket(0, HwEvent::Cycles), 5);
        db.add(img_bucket(0, HwEvent::L2Miss), 2);
        assert_eq!(db.total(HwEvent::Cycles), 5);
        assert_eq!(db.total(HwEvent::L2Miss), 2);
        assert_eq!(db.total(HwEvent::Branches), 0);
        assert_eq!(db.total_samples(), 7);
    }

    #[test]
    fn jit_buckets_keep_epochs_distinct() {
        let mut db = SampleDb::new();
        let mk = |epoch| SampleBucket {
            origin: SampleOrigin::JitApp { pid: Pid(9) },
            event: HwEvent::Cycles,
            addr: 0x64000040,
            epoch,
        };
        db.add(mk(1), 1);
        db.add(mk(2), 1);
        assert_eq!(db.len(), 2, "same PC, different epoch = different bucket");
    }

    #[test]
    fn serialization_round_trips() {
        let mut db = SampleDb::new();
        db.add(img_bucket(0x40, HwEvent::Cycles), 10);
        db.add(
            SampleBucket {
                origin: SampleOrigin::Anon {
                    pid: Pid(4),
                    start: 0x6000_0000,
                    end: 0x6400_0000,
                },
                event: HwEvent::L2Miss,
                addr: 0x6100_0040,
                epoch: 0,
            },
            3,
        );
        db.add(
            SampleBucket {
                origin: SampleOrigin::JitApp { pid: Pid(4) },
                event: HwEvent::Cycles,
                addr: 0x6200_0000,
                epoch: 7,
            },
            5,
        );
        db.add(
            SampleBucket {
                origin: SampleOrigin::Unknown,
                event: HwEvent::Cycles,
                addr: 0,
                epoch: 0,
            },
            1,
        );
        db.dropped = 12;
        let bytes = db.to_bytes();
        let back = SampleDb::from_bytes(&bytes).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn deserialization_rejects_garbage() {
        assert!(SampleDb::from_bytes(b"NOPE").is_err());
        assert!(SampleDb::from_bytes(b"OPDB").is_err());
        let mut db = SampleDb::new();
        db.add(img_bucket(0, HwEvent::Cycles), 1);
        let bytes = db.to_bytes();
        assert!(SampleDb::from_bytes(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn merge_combines_counts_and_drops() {
        let mut a = SampleDb::new();
        a.add(img_bucket(0, HwEvent::Cycles), 1);
        a.dropped = 2;
        let mut b = SampleDb::new();
        b.add(img_bucket(0, HwEvent::Cycles), 3);
        b.add(img_bucket(0x20, HwEvent::Cycles), 1);
        b.dropped = 1;
        a.merge(&b);
        assert_eq!(a.total(HwEvent::Cycles), 5);
        assert_eq!(a.dropped, 3);
        assert_eq!(a.len(), 2);
    }
}
