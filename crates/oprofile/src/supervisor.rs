//! Supervised daemon: heartbeat watchdog + restart with capped backoff.
//!
//! `oprofiled` is the pipeline's weakest process: it can stall on slow
//! I/O or die outright, and every missed drain window lets the driver's
//! ring buffer overflow (PR 1 measures exactly that decay). Production
//! deployments do not run such a daemon bare — an init system or
//! supervisor watches it and restarts it. This module is that
//! supervisor, in the simulation's terms:
//!
//! * **Heartbeat.** The [`Daemon`] counts `drains` next to `wakeups`. A
//!   wakeup that does not advance the drain counter is a missed window
//!   — the watchdog's only observable, exactly like a liveness probe
//!   that sees no progress file.
//! * **Watchdog.** After `miss_threshold` *consecutive* missed windows
//!   the supervisor schedules a restart. One miss can be a benign stall;
//!   a run of them is a dead process.
//! * **Capped exponential backoff, seeded jitter.** The restart lands
//!   `backoff + jitter` wakeups later. Backoff doubles per restart up
//!   to `backoff_cap` and resets on the next healthy drain; jitter is
//!   drawn from the supervisor's own [`SplitMix64`], so a fault plan's
//!   master seed replays the whole schedule bit for bit.
//! * **Catch-up drain.** A restart is not just a revived process: the
//!   supervisor immediately forces a drain ([`Daemon::force_drain`]) to
//!   empty whatever the ring buffer accumulated while the daemon was
//!   down — the step that turns "restarted eventually" into "lost
//!   strictly fewer samples".
//!
//! The supervisor *wraps* the daemon (it is the [`MachineService`]
//! registered with the machine) rather than running beside it, so its
//! observation point is exactly one delegated `poll` — no ordering
//! races between two services sharing one timer.

use crate::daemon::Daemon;
use sim_os::{MachineCtx, MachineService, SplitMix64};
use viprof_telemetry::{names, Counter, Gauge, Telemetry};

/// Watchdog/restart policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Consecutive missed drain windows before a restart is scheduled.
    pub miss_threshold: u64,
    /// Backoff (in daemon wakeups) before the first restart attempt.
    pub backoff_initial: u64,
    /// Backoff ceiling (restart storms double up to here).
    pub backoff_cap: u64,
    /// Max extra wakeups of seeded jitter added to each backoff.
    pub jitter: u64,
    /// Seed for the jitter stream (a fault plan derives this from its
    /// master seed so supervised runs replay deterministically).
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            miss_threshold: 2,
            backoff_initial: 1,
            backoff_cap: 8,
            jitter: 1,
            seed: 0,
        }
    }
}

/// Point-in-time supervisor activity (the shape older call sites
/// consume and the fault-matrix tests compare).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Restarts performed.
    pub restarts: u64,
    /// Missed drain windows the watchdog observed.
    pub missed_observed: u64,
    /// Samples recovered by post-restart catch-up drains.
    pub redrained_samples: u64,
    /// Backoff (wakeups) used by the most recent restart.
    pub last_backoff: u64,
}

/// Live supervisor activity as lock-free atomic counters (the
/// supervisor is boxed into the machine; the session keeps a clone of
/// this handle). Standalone by default, or backed by the telemetry
/// registry's `supervisor.*` metrics via [`from_telemetry`] — in which
/// case the session snapshot and [`SupervisorStats`] read the same
/// atomics and can never drift.
///
/// [`from_telemetry`]: SupervisorCounters::from_telemetry
#[derive(Debug, Clone, Default)]
pub struct SupervisorCounters {
    restarts: Counter,
    missed_observed: Counter,
    redrained_samples: Counter,
    last_backoff: Gauge,
}

impl SupervisorCounters {
    /// Counters resolved from the shared registry, so the exported
    /// telemetry snapshot carries the supervisor's activity.
    pub fn from_telemetry(registry: &Telemetry) -> Self {
        SupervisorCounters {
            restarts: registry.counter(names::SUPERVISOR_RESTARTS),
            missed_observed: registry.counter(names::SUPERVISOR_MISSED),
            redrained_samples: registry.counter(names::SUPERVISOR_REDRAINED_SAMPLES),
            last_backoff: registry.gauge(names::SUPERVISOR_LAST_BACKOFF),
        }
    }

    /// Point-in-time copy in the legacy [`SupervisorStats`] shape.
    pub fn snapshot(&self) -> SupervisorStats {
        SupervisorStats {
            restarts: self.restarts.get(),
            missed_observed: self.missed_observed.get(),
            redrained_samples: self.redrained_samples.get(),
            last_backoff: self.last_backoff.get(),
        }
    }
}

/// The service: wraps a [`Daemon`], delegates its timer, watches the
/// heartbeat, restarts on sustained silence.
pub struct Supervisor {
    daemon: Daemon,
    config: SupervisorConfig,
    rng: SplitMix64,
    /// Consecutive missed windows since the last drain.
    missed: u64,
    /// Current backoff (doubles per restart, resets on a drain).
    backoff: u64,
    /// Wakeup number at which the scheduled restart fires.
    restart_at: Option<u64>,
    stats: SupervisorCounters,
    /// Registry for watchdog events (`supervisor.missed_window`,
    /// `supervisor.restart`); counters alone work without one.
    telemetry: Option<Telemetry>,
}

impl Supervisor {
    pub fn new(daemon: Daemon, config: SupervisorConfig) -> Supervisor {
        Supervisor {
            daemon,
            rng: SplitMix64::new(config.seed),
            missed: 0,
            backoff: config.backoff_initial.max(1),
            restart_at: None,
            stats: SupervisorCounters::default(),
            telemetry: None,
            config,
        }
    }

    /// Back the activity counters by the registry's `supervisor.*`
    /// metrics and record watchdog events on its flight recorder.
    pub fn with_telemetry(mut self, registry: &Telemetry) -> Supervisor {
        self.stats = SupervisorCounters::from_telemetry(registry);
        self.telemetry = Some(registry.clone());
        self
    }

    /// Shared handle to the live atomic counters.
    pub fn stats_handle(&self) -> SupervisorCounters {
        self.stats.clone()
    }

    pub fn stats(&self) -> SupervisorStats {
        self.stats.snapshot()
    }

    pub fn daemon(&self) -> &Daemon {
        &self.daemon
    }
}

impl MachineService for Supervisor {
    fn poll(&mut self, ctx: &mut MachineCtx<'_>) {
        let wakeups_before = self.daemon.wakeups;
        let drains_before = self.daemon.drains;
        self.daemon.poll(ctx);
        if self.daemon.wakeups == wakeups_before {
            // Not a drain window — nothing to observe.
            return;
        }
        // A drain that repeatedly blows its deadline budget is as sick
        // as a stalled one; the governor applies its own consecutive-
        // miss threshold before raising this flag, so one escalation is
        // a full watchdog trip, not a single strike.
        let escalated = self.daemon.take_deadline_escalation();
        if self.daemon.drains > drains_before && !escalated {
            // Healthy heartbeat: reset the watchdog and the backoff.
            self.missed = 0;
            self.backoff = self.config.backoff_initial.max(1);
            self.restart_at = None;
            return;
        }
        // A wakeup passed with no drain — or with an escalation.
        if escalated {
            self.missed = self.missed.max(self.config.miss_threshold.saturating_sub(1));
            // The governor's own consecutive-miss threshold supplied
            // the dwell; restart now rather than waiting out a backoff
            // window that an interleaved on-time drain would cancel.
            self.restart_at = Some(self.daemon.wakeups);
        }
        self.missed += 1;
        self.stats.missed_observed.inc();
        if let Some(t) = &self.telemetry {
            t.event(
                names::EVENT_SUPERVISOR_MISSED,
                if escalated {
                    "governor escalated repeated drain-deadline misses"
                } else {
                    "watchdog observed a missed drain window"
                },
                &[("wakeup", self.daemon.wakeups), ("consecutive", self.missed)],
            );
        }
        match self.restart_at {
            Some(at) if self.daemon.wakeups >= at => {
                // Restart: revive the process and immediately drain the
                // backlog the outage accumulated.
                self.daemon.revive();
                let recovered = self.daemon.force_drain(ctx);
                self.stats.restarts.inc();
                self.stats.redrained_samples.add(recovered);
                self.stats.last_backoff.set(self.backoff);
                if let Some(t) = &self.telemetry {
                    t.event(
                        names::EVENT_SUPERVISOR_RESTART,
                        "daemon restarted after sustained silence",
                        &[("backoff", self.backoff), ("redrained", recovered)],
                    );
                }
                self.backoff = (self.backoff * 2).min(self.config.backoff_cap.max(1));
                self.restart_at = None;
                self.missed = 0;
            }
            Some(_) => {} // Restart pending; wait out the backoff.
            None if self.missed >= self.config.miss_threshold => {
                let jitter = self.rng.range_u64(0, self.config.jitter + 1);
                self.restart_at = Some(self.daemon.wakeups + self.backoff + jitter);
            }
            None => {} // Below the threshold; could be a lone stall.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use crate::faults::DaemonFaults;
    use crate::samples::{SampleBucket, SampleDb, SampleOrigin};
    use parking_lot::Mutex;
    use sim_cpu::{BlockExec, CostModel, CpuMode, HwEvent, Pid};
    use sim_os::{Machine, MachineConfig};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn bucket(addr: u64) -> SampleBucket {
        SampleBucket {
            origin: SampleOrigin::Unknown,
            event: HwEvent::Cycles,
            addr,
            epoch: 0,
        }
    }

    struct Rig {
        m: Machine,
        driver: Arc<Mutex<Driver>>,
        db: Arc<Mutex<SampleDb>>,
        stats: SupervisorCounters,
    }

    /// Capacity-2 ring + 100-cycle daemon timer + supplied faults,
    /// wrapped in a supervisor with the given config.
    fn rig(faults: Option<DaemonFaults>, config: SupervisorConfig) -> Rig {
        rig_with_telemetry(faults, config, None)
    }

    fn rig_with_telemetry(
        faults: Option<DaemonFaults>,
        config: SupervisorConfig,
        telemetry: Option<&Telemetry>,
    ) -> Rig {
        let mut m = Machine::new(MachineConfig::default());
        let driver = Arc::new(Mutex::new(Driver::new(CostModel::free(), 2)));
        let db = Arc::new(Mutex::new(SampleDb::new()));
        let active = Arc::new(AtomicBool::new(true));
        let mut d = Daemon::spawn(
            &mut m.kernel,
            driver.clone(),
            db.clone(),
            active,
            CostModel::free(),
            100,
        );
        if let Some(f) = faults {
            d = d.with_faults(f);
        }
        let mut sup = Supervisor::new(d, config);
        if let Some(t) = telemetry {
            sup = sup.with_telemetry(t);
        }
        let stats = sup.stats_handle();
        m.add_service(Box::new(sup));
        Rig { m, driver, db, stats }
    }

    fn run_windows(rig: &mut Rig, windows: u64) {
        for round in 0..windows {
            rig.driver.lock().buffer.push(bucket(round * 16));
            rig.driver.lock().buffer.push(bucket(round * 16 + 8));
            rig.m
                .exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 110));
        }
    }

    #[test]
    fn healthy_daemon_is_never_restarted() {
        let mut r = rig(None, SupervisorConfig::default());
        run_windows(&mut r, 6);
        assert_eq!(r.stats.snapshot().restarts, 0);
        assert_eq!(r.stats.snapshot().missed_observed, 0);
        assert_eq!(r.db.lock().total_samples(), 12, "all windows drained");
    }

    #[test]
    fn crash_is_detected_and_restarted_with_catchup_drain() {
        // Crash at wakeup 1, 6 windows of injected downtime. Unsupervised
        // (cf. daemon.rs's crashed_daemon test) the daemon would sit dead
        // through all of them while the 2-slot ring overflows.
        let cfg = SupervisorConfig {
            jitter: 0,
            seed: 7,
            ..SupervisorConfig::default()
        };
        let mut r = rig(Some(DaemonFaults::new(1).with_crash(1, 6)), cfg);
        run_windows(&mut r, 8);
        let s = r.stats.snapshot();
        // Misses at wakeups 1 and 2 cross the threshold; backoff 1 puts
        // the restart at wakeup 3 — four windows before the injected
        // downtime would have ended on its own.
        assert_eq!(s.restarts, 1, "{s:?}");
        assert!(s.missed_observed >= 2);
        assert!(s.redrained_samples > 0, "catch-up drain recovered backlog");
        assert_eq!(s.last_backoff, 1);
        let db = r.db.lock();
        // 8 rounds x 2 pushes: the supervised run keeps everything except
        // what overflowed during the short outage.
        assert!(db.total_samples() >= 10, "got {}", db.total_samples());
        assert!(db.dropped < 12, "outage was cut short: {}", db.dropped);
    }

    #[test]
    fn supervised_outage_loses_strictly_less_than_unsupervised() {
        let faults = || DaemonFaults::new(1).with_crash(1, 6);
        // Unsupervised baseline.
        let mut m = Machine::new(MachineConfig::default());
        let driver = Arc::new(Mutex::new(Driver::new(CostModel::free(), 2)));
        let db = Arc::new(Mutex::new(SampleDb::new()));
        let active = Arc::new(AtomicBool::new(true));
        let d = Daemon::spawn(
            &mut m.kernel,
            driver.clone(),
            db.clone(),
            active,
            CostModel::free(),
            100,
        )
        .with_faults(faults());
        m.add_service(Box::new(d));
        for round in 0..8u64 {
            driver.lock().buffer.push(bucket(round * 16));
            driver.lock().buffer.push(bucket(round * 16 + 8));
            m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 110));
        }
        let bare = (db.lock().total_samples(), db.lock().dropped);

        let cfg = SupervisorConfig {
            jitter: 0,
            seed: 7,
            ..SupervisorConfig::default()
        };
        let mut r = rig(Some(faults()), cfg);
        run_windows(&mut r, 8);
        let supervised = (r.db.lock().total_samples(), r.db.lock().dropped);
        assert!(
            supervised.0 > bare.0,
            "supervised kept {} vs bare {}",
            supervised.0,
            bare.0
        );
        assert!(supervised.1 < bare.1, "supervised dropped less");
    }

    #[test]
    fn backoff_doubles_across_restarts_and_is_capped() {
        // A daemon that crashes, gets revived, and is immediately down
        // again: every revive clears `down_remaining`, but a huge
        // downtime re-arms nothing — so emulate repeated death with a
        // 100 % stall rate. Every window misses; the supervisor keeps
        // restarting into a stalled process and backs off further each
        // time.
        let cfg = SupervisorConfig {
            miss_threshold: 1,
            backoff_initial: 1,
            backoff_cap: 4,
            jitter: 0,
            seed: 3,
        };
        let mut r = rig(Some(DaemonFaults::new(2).with_stalls(1.0)), cfg);
        run_windows(&mut r, 40);
        let s = r.stats.snapshot();
        assert!(s.restarts >= 3, "{s:?}");
        assert_eq!(s.last_backoff, 4, "backoff reached and held the cap");
    }

    #[test]
    fn registry_backed_counters_match_stats_and_record_restart_events() {
        let t = Telemetry::new();
        let cfg = SupervisorConfig {
            jitter: 0,
            seed: 7,
            ..SupervisorConfig::default()
        };
        let mut r = rig_with_telemetry(Some(DaemonFaults::new(1).with_crash(1, 6)), cfg, Some(&t));
        run_windows(&mut r, 8);
        let s = r.stats.snapshot();
        assert_eq!(s.restarts, 1);
        let snap = t.snapshot();
        // Same atomics, two views: the registry can never drift from
        // the compat accessor.
        assert_eq!(snap.counter(names::SUPERVISOR_RESTARTS), s.restarts);
        assert_eq!(snap.counter(names::SUPERVISOR_MISSED), s.missed_observed);
        assert_eq!(
            snap.counter(names::SUPERVISOR_REDRAINED_SAMPLES),
            s.redrained_samples
        );
        assert_eq!(snap.gauge(names::SUPERVISOR_LAST_BACKOFF), s.last_backoff);
        let restarts = snap.events_of(names::EVENT_SUPERVISOR_RESTART);
        assert_eq!(restarts.len(), 1);
        assert!(restarts[0].fields.iter().any(|(k, _)| k == "redrained"));
        assert!(!snap.events_of(names::EVENT_SUPERVISOR_MISSED).is_empty());
    }

    #[test]
    fn deadline_escalations_trip_the_watchdog_and_restart() {
        use crate::governor::{Governor, GovernorConfig};
        let t = Telemetry::new();
        let mut m = Machine::new(MachineConfig::default());
        // Default cost model: every drain blows the 1-cycle budget.
        let driver = Arc::new(Mutex::new(Driver::new(CostModel::default(), 64)));
        let db = Arc::new(Mutex::new(SampleDb::new()));
        let active = Arc::new(AtomicBool::new(true));
        let gov = Governor::new(
            90_000,
            GovernorConfig {
                deadline_cycles: 1,
                deadline_miss_threshold: 2,
                ..GovernorConfig::default()
            },
        );
        let d = Daemon::spawn(
            &mut m.kernel,
            driver.clone(),
            db,
            active,
            CostModel::default(),
            100,
        )
        .with_governor(gov, HwEvent::Cycles)
        .with_telemetry(&t);
        let cfg = SupervisorConfig {
            jitter: 0,
            seed: 1,
            ..SupervisorConfig::default()
        };
        let sup = Supervisor::new(d, cfg).with_telemetry(&t);
        let stats = sup.stats_handle();
        m.add_service(Box::new(sup));
        for round in 0..8u64 {
            driver.lock().buffer.push(bucket(round * 16));
            m.exec(&BlockExec::compute(Pid(1), CpuMode::User, (0, 0x100), 110));
        }
        let s = stats.snapshot();
        assert!(s.missed_observed >= 1, "{s:?}");
        assert!(s.restarts >= 1, "escalation must drive a restart: {s:?}");
        let snap = t.snapshot();
        assert!(snap.counter(names::GOVERNOR_ESCALATIONS) >= 1);
        assert!(snap
            .events_of(names::EVENT_SUPERVISOR_MISSED)
            .iter()
            .any(|e| e.detail.contains("escalated")));
    }

    #[test]
    fn supervisor_schedule_replays_per_seed() {
        let run = |seed: u64| {
            let cfg = SupervisorConfig {
                jitter: 2,
                seed,
                ..SupervisorConfig::default()
            };
            let mut r = rig(Some(DaemonFaults::new(5).with_stalls(0.6)), cfg);
            run_windows(&mut r, 30);
            let s = r.stats.snapshot();
            let db = r.db.lock();
            (s, db.total_samples(), db.dropped)
        };
        assert_eq!(run(11), run(11), "same seed, same schedule");
    }
}
