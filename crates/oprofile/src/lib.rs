//! # oprofile — the baseline system-wide profiler
//!
//! A faithful model of OProfile 0.9.x, the system VIProf extends:
//!
//! * a **kernel driver** ([`driver::Driver`]) installed as the machine's
//!   NMI handler: programs the counters, and on each overflow resolves
//!   the interrupted PC against the current task's VMA list, classifies
//!   it (kernel text / mapped image / anonymous region) and pushes a
//!   compact sample into a ring buffer;
//! * a **userspace daemon** ([`daemon::Daemon`]) that wakes periodically,
//!   drains the buffer into the sample database and burns its own
//!   (sampled!) cycles — the main source of profiling overhead;
//! * **post-processing** ([`report::opreport`]) that aggregates samples
//!   by image and symbol, the way `opreport --symbols` does.
//!
//! The deliberate limitation the paper attacks is preserved: PCs inside
//! anonymous mappings (JIT code heaps) can only be logged as
//! `anon (range:0x…-0x…)`, and the boot image of a Java-in-Java VM shows
//! up as `RVM.code.image (no symbols)` (Figure 1, lower half). VIProf
//! plugs in through the [`anon::AnonExtension`] seam.

pub mod annotate;
pub mod anon;
pub mod buffer;
pub mod config;
pub mod daemon;
pub mod driver;
pub mod faults;
pub mod governor;
pub mod report;
pub mod samples;
pub mod session;
pub mod supervisor;

pub use annotate::{opannotate, Annotation, AnnotateRow};
pub use anon::{AnonExtension, AnonTable, JitClaim, NoExtension};
pub use buffer::RingBuffer;
pub use config::OpConfig;
pub use daemon::{Daemon, DrainSink, SinkHandle};
pub use driver::{Driver, DriverStats};
pub use faults::{DaemonFaultStats, DaemonFaults, DriverFaultStats, DriverFaults, FaultVerdict};
pub use governor::{DeadlineVerdict, Governor, GovernorConfig, GovernorDecision};
pub use report::{opreport, Report, ReportOptions, ReportRow};
pub use samples::{SampleBucket, SampleDb, SampleOrigin};
pub use session::{
    Oprofile, SAMPLES_PATH, SAMPLE_JOURNAL_PATH, TELEMETRY_PATH, TIMELINE_PATH, TRACE_PATH,
};
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorCounters, SupervisorStats};
