//! `opreport`-style post-processing.
//!
//! Aggregates the sample database by (image, symbol), resolving
//! file-backed offsets through image symbol tables. Anonymous ranges
//! render as `anon (range:0x…-0x…),process` and symbol-less images as
//! `(no symbols)` — reproducing the lower half of the paper's Figure 1.
//! (The upper half — resolved VM and JIT methods — needs VIProf's
//! post-processor in the `viprof` crate, which builds on this one.)

use crate::samples::{SampleDb, SampleOrigin};
use sim_cpu::HwEvent;
use sim_os::Kernel;
use std::collections::HashMap;

/// Report shaping options.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Event columns, in order. Defaults to whatever the DB contains,
    /// cycles first.
    pub events: Option<Vec<HwEvent>>,
    /// Drop rows below this percentage of the primary event.
    pub min_primary_percent: f64,
    /// Keep at most this many rows.
    pub max_rows: Option<usize>,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            events: None,
            min_primary_percent: 0.0,
            max_rows: None,
        }
    }
}

/// One aggregated row.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ReportRow {
    pub image: String,
    pub symbol: String,
    /// Counts per event, in the report's event order.
    pub counts: Vec<u64>,
    /// Percentages per event.
    pub percents: Vec<f64>,
}

/// A rendered profile.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Report {
    pub events: Vec<HwEvent>,
    pub totals: Vec<u64>,
    pub rows: Vec<ReportRow>,
}

impl Report {
    /// Percentage for (row, event index), 0 when the event saw no
    /// samples.
    fn percent(count: u64, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            100.0 * count as f64 / total as f64
        }
    }

    /// Figure-1-style text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("{:<10}", e.column_label()));
        }
        out.push_str(&format!("{:<44}{}\n", "Image name", "Symbol name"));
        for r in &self.rows {
            for p in &r.percents {
                out.push_str(&format!("{:<10.4}", p));
            }
            out.push_str(&format!("{:<44}{}\n", r.image, r.symbol));
        }
        out
    }

    /// CSV rendering: one header row, then
    /// `image,symbol,<count>,<percent>` per event column. Fields with
    /// commas/quotes are quoted per RFC 4180.
    pub fn render_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::from("image,symbol");
        for e in &self.events {
            out.push_str(&format!(",{}_count,{}_percent", e.unit_name(), e.unit_name()));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&field(&r.image));
            out.push(',');
            out.push_str(&field(&r.symbol));
            for (c, p) in r.counts.iter().zip(&r.percents) {
                out.push_str(&format!(",{c},{p:.6}"));
            }
            out.push('\n');
        }
        out
    }

    /// Find a row by (image, symbol) — test convenience.
    pub fn find(&self, image: &str, symbol: &str) -> Option<&ReportRow> {
        self.rows
            .iter()
            .find(|r| r.image == image && r.symbol == symbol)
    }

    /// Sum of primary-event percentages (≤ 100 modulo rounding).
    pub fn primary_percent_sum(&self) -> f64 {
        self.rows.iter().map(|r| r.percents[0]).sum()
    }
}

/// Stock OProfile labelling of one bucket: (image name, symbol name).
/// Exposed so VIProf's post-processor can fall back to it for every
/// bucket its code maps don't cover.
pub fn bucket_label(bucket: &crate::samples::SampleBucket, kernel: &Kernel) -> (String, String) {
    match bucket.origin {
        SampleOrigin::Image(id) => {
            let img = kernel.images.get(id);
            let symbol = img
                .resolve(bucket.addr)
                .map(|s| s.name.clone())
                .unwrap_or_else(|| "(no symbols)".to_string());
            (img.name.clone(), symbol)
        }
        SampleOrigin::Anon { pid, start, end } => {
            let proc_name = kernel
                .process(pid)
                .map(|p| p.name.clone())
                .unwrap_or_else(|| format!("pid{}", pid.0));
            (
                format!("anon (range:0x{start:x}-0x{end:x}),{proc_name}"),
                "(no symbols)".to_string(),
            )
        }
        // Stock opreport has no code maps: JIT samples stay opaque.
        SampleOrigin::JitApp { pid, .. } => {
            let proc_name = kernel
                .process(pid)
                .map(|p| p.name.clone())
                .unwrap_or_else(|| format!("pid{}", pid.0));
            (format!("JIT.App,{proc_name}"), "(no symbols)".to_string())
        }
        SampleOrigin::Unknown => ("(unknown)".to_string(), "(no symbols)".to_string()),
    }
}

/// Event columns and their totals for a database under `options` —
/// the first step of [`aggregate`], exposed so external aggregators
/// (VIProf's sharded resolution engine) share the exact same column
/// selection: explicit order, or discovered with cycles first.
pub fn report_events(db: &SampleDb, options: &ReportOptions) -> (Vec<HwEvent>, Vec<u64>) {
    let events: Vec<HwEvent> = options.events.clone().unwrap_or_else(|| {
        let mut evs: Vec<HwEvent> = HwEvent::ALL
            .iter()
            .copied()
            .filter(|e| db.total(*e) > 0)
            .collect();
        evs.sort_by_key(|e| *e != HwEvent::Cycles);
        evs
    });
    let totals: Vec<u64> = events.iter().map(|e| db.total(*e)).collect();
    (events, totals)
}

/// Finish a report from pre-aggregated `(image, symbol) → per-event
/// counts`: percentage computation, deterministic row ordering, the
/// min-percent filter and row cap — exactly the shaping [`aggregate`]
/// performs, exposed so external aggregators produce bit-identical
/// reports.
pub fn finish_report(
    events: Vec<HwEvent>,
    totals: Vec<u64>,
    agg: HashMap<(String, String), Vec<u64>>,
    options: &ReportOptions,
) -> Report {
    let mut rows: Vec<ReportRow> = agg
        .into_iter()
        .map(|((image, symbol), counts)| {
            let percents = counts
                .iter()
                .zip(&totals)
                .map(|(c, t)| Report::percent(*c, *t))
                .collect();
            ReportRow {
                image,
                symbol,
                counts,
                percents,
            }
        })
        .collect();
    // Primary-event descending, then name for determinism.
    rows.sort_by(|a, b| {
        b.counts[0]
            .cmp(&a.counts[0])
            .then_with(|| a.image.cmp(&b.image))
            .then_with(|| a.symbol.cmp(&b.symbol))
    });
    rows.retain(|r| r.percents[0] >= options.min_primary_percent);
    if let Some(n) = options.max_rows {
        rows.truncate(n);
    }
    Report {
        events,
        totals,
        rows,
    }
}

/// Aggregate a sample DB into a report using a custom bucket labeller.
/// `opreport` uses [`bucket_label`]; VIProf passes a labeller that
/// resolves boot-image and JIT buckets first.
pub fn aggregate(
    db: &SampleDb,
    options: &ReportOptions,
    mut labeller: impl FnMut(&crate::samples::SampleBucket) -> (String, String),
) -> Report {
    let (events, totals) = report_events(db, options);
    let mut agg: HashMap<(String, String), Vec<u64>> = HashMap::new();
    for (bucket, count) in db.iter() {
        let Some(col) = events.iter().position(|e| *e == bucket.event) else {
            continue;
        };
        let key = labeller(bucket);
        agg.entry(key).or_insert_with(|| vec![0; events.len()])[col] += count;
    }
    finish_report(events, totals, agg, options)
}

/// Resolve a sample-db into a stock opreport.
pub fn opreport(db: &SampleDb, kernel: &Kernel, options: &ReportOptions) -> Report {
    aggregate(db, options, |bucket| bucket_label(bucket, kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::SampleBucket;
    use sim_cpu::Pid;
    use sim_os::{Image, Symbol};

    fn kernel_with_app() -> (Kernel, sim_os::ImageId, Pid) {
        let mut k = Kernel::new();
        let img = k.images.insert(
            Image::new("libc-2.3.2.so", 0x4000)
                .with_symbols([Symbol::new("memset", 0x1000, 0x400)]),
        );
        let pid = k.spawn("jikesrvm");
        (k, img, pid)
    }

    fn db_with(buckets: &[(SampleOrigin, HwEvent, u64, u64)]) -> SampleDb {
        let mut db = SampleDb::new();
        for (origin, event, addr, count) in buckets {
            db.add(
                SampleBucket {
                    origin: *origin,
                    event: *event,
                    addr: *addr,
                    epoch: 0,
                },
                *count,
            );
        }
        db
    }

    #[test]
    fn image_samples_resolve_to_symbols() {
        let (k, img, _) = kernel_with_app();
        let db = db_with(&[
            (SampleOrigin::Image(img), HwEvent::Cycles, 0x1000, 60),
            (SampleOrigin::Image(img), HwEvent::Cycles, 0x1100, 30),
            (SampleOrigin::Image(img), HwEvent::Cycles, 0x0100, 10), // gap
        ]);
        let r = opreport(&db, &k, &ReportOptions::default());
        let memset = r.find("libc-2.3.2.so", "memset").unwrap();
        assert_eq!(memset.counts, vec![90]);
        assert!((memset.percents[0] - 90.0).abs() < 1e-9);
        let nosym = r.find("libc-2.3.2.so", "(no symbols)").unwrap();
        assert_eq!(nosym.counts, vec![10]);
    }

    #[test]
    fn anon_rows_render_range_and_process() {
        let (k, _, pid) = kernel_with_app();
        let db = db_with(&[(
            SampleOrigin::Anon {
                pid,
                start: 0x64000000,
                end: 0x65000000,
            },
            HwEvent::Cycles,
            0x64000100,
            5,
        )]);
        let r = opreport(&db, &k, &ReportOptions::default());
        assert_eq!(
            r.rows[0].image,
            "anon (range:0x64000000-0x65000000),jikesrvm"
        );
        assert_eq!(r.rows[0].symbol, "(no symbols)");
    }

    #[test]
    fn two_event_columns_like_figure1() {
        let (k, img, _) = kernel_with_app();
        let db = db_with(&[
            (SampleOrigin::Image(img), HwEvent::Cycles, 0x1000, 80),
            (SampleOrigin::Image(img), HwEvent::L2Miss, 0x1000, 20),
            (SampleOrigin::Image(img), HwEvent::Cycles, 0x0000, 20),
        ]);
        let r = opreport(&db, &k, &ReportOptions::default());
        assert_eq!(r.events, vec![HwEvent::Cycles, HwEvent::L2Miss]);
        let memset = r.find("libc-2.3.2.so", "memset").unwrap();
        assert_eq!(memset.counts, vec![80, 20]);
        assert!((memset.percents[1] - 100.0).abs() < 1e-9);
        let text = r.render_text();
        assert!(text.contains("Time %"));
        assert!(text.contains("Dmiss %"));
        assert!(text.contains("memset"));
    }

    #[test]
    fn rows_sorted_by_primary_event_desc() {
        let (k, img, pid) = kernel_with_app();
        let db = db_with(&[
            (SampleOrigin::Image(img), HwEvent::Cycles, 0x1000, 10),
            (
                SampleOrigin::Anon {
                    pid,
                    start: 0x1000,
                    end: 0x2000,
                },
                HwEvent::Cycles,
                0x1000,
                90,
            ),
        ]);
        let r = opreport(&db, &k, &ReportOptions::default());
        assert!(r.rows[0].image.starts_with("anon"));
        assert_eq!(r.rows[1].symbol, "memset");
    }

    #[test]
    fn min_percent_and_max_rows_filter() {
        let (k, img, _) = kernel_with_app();
        let db = db_with(&[
            (SampleOrigin::Image(img), HwEvent::Cycles, 0x1000, 97),
            (SampleOrigin::Image(img), HwEvent::Cycles, 0x0000, 3),
        ]);
        let filtered = opreport(
            &db,
            &k,
            &ReportOptions {
                min_primary_percent: 5.0,
                ..Default::default()
            },
        );
        assert_eq!(filtered.rows.len(), 1);
        let truncated = opreport(
            &db,
            &k,
            &ReportOptions {
                max_rows: Some(1),
                ..Default::default()
            },
        );
        assert_eq!(truncated.rows.len(), 1);
    }

    #[test]
    fn percentages_sum_to_at_most_100() {
        let (k, img, pid) = kernel_with_app();
        let db = db_with(&[
            (SampleOrigin::Image(img), HwEvent::Cycles, 0x1000, 33),
            (SampleOrigin::Image(img), HwEvent::Cycles, 0x0000, 41),
            (
                SampleOrigin::Anon {
                    pid,
                    start: 0,
                    end: 0x1000,
                },
                HwEvent::Cycles,
                0,
                26,
            ),
        ]);
        let r = opreport(&db, &k, &ReportOptions::default());
        assert!((r.primary_percent_sum() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn csv_rendering_quotes_and_aligns_columns() {
        let (k, img, pid) = kernel_with_app();
        let db = db_with(&[
            (SampleOrigin::Image(img), HwEvent::Cycles, 0x1000, 3),
            (
                SampleOrigin::Anon {
                    pid,
                    start: 0x1000,
                    end: 0x2000,
                },
                HwEvent::Cycles,
                0x1000,
                1,
            ),
        ]);
        let csv = opreport(&db, &k, &ReportOptions::default()).render_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "image,symbol,GLOBAL_POWER_EVENTS_count,GLOBAL_POWER_EVENTS_percent"
        );
        // Each data line has exactly 4 fields; the anon image (which
        // contains a comma) is quoted.
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), 2);
        assert!(body.iter().any(|l| l.starts_with("libc-2.3.2.so,memset,3,")));
        assert!(body
            .iter()
            .any(|l| l.starts_with("\"anon (range:0x1000-0x2000),jikesrvm\",")));
    }

    #[test]
    fn report_serializes_to_json() {
        let (k, img, _) = kernel_with_app();
        let db = db_with(&[(SampleOrigin::Image(img), HwEvent::Cycles, 0x1000, 3)]);
        let r = opreport(&db, &k, &ReportOptions::default());
        // serde derive works end to end (serde_json is only a dev-dep
        // of downstream crates; use serde's Serialize via a tiny
        // hand-rolled check instead of pulling serde_json here).
        #[derive(serde::Serialize)]
        struct Wrap<'a> {
            r: &'a Report,
        }
        let _ = Wrap { r: &r }; // compiles = derive present
        assert_eq!(r.rows[0].counts, vec![3]);
    }

    #[test]
    fn empty_db_renders_empty_report() {
        let (k, _, _) = kernel_with_app();
        let r = opreport(&SampleDb::new(), &k, &ReportOptions::default());
        assert!(r.rows.is_empty());
        assert!(r.events.is_empty());
    }
}
