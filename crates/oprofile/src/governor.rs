//! The adaptive overload governor: closed-loop sample-rate control.
//!
//! PR 4 gave the pipeline sensors — buffer occupancy gauges, drain
//! stage timers, the flight recorder — but nothing *acted* on them: a
//! sustained overflow burst simply shed samples. This module closes the
//! loop, in the spirit of Metz & Lencevicius' argument that a profiler
//! must regulate its own overhead:
//!
//! * the daemon feeds one observation per drain window (ring occupancy
//!   before the drain, samples dropped since the last drain) into a
//!   [`Governor`];
//! * under pressure (drops, or occupancy at/above the **high
//!   watermark**) for a full **dwell** of consecutive windows, the
//!   governor backs the NMI overflow period off *multiplicatively*
//!   (fewer samples per cycle — load sheds at the source, not the ring);
//! * once calm (no drops, occupancy at/below the **low watermark**)
//!   for a full dwell, it walks the period back *additively* toward the
//!   configured base, restoring resolution gradually;
//! * hysteresis comes from the watermark gap plus a post-change
//!   cooldown of one dwell, so the controller cannot oscillate faster
//!   than the dwell window.
//!
//! The governor also owns the daemon's per-drain **deadline budget**:
//! a drain that costs more cycles than the budget is a miss; enough
//! consecutive misses escalate to the [`Supervisor`](crate::Supervisor)
//! (which treats the escalation like a missed heartbeat and schedules a
//! restart) instead of letting a chronically late daemon stall the
//! session silently.
//!
//! Everything here is a pure function of the observation sequence — no
//! randomness, no wall clock — so a fixed seed and fault plan replay to
//! a bit-identical period trajectory, which the telemetry determinism
//! tests rely on.

/// Tuning for the overload governor. All percentages are of ring
/// capacity; all periods are in primary-counter events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Occupancy at/above this percentage counts as a pressure window
    /// (drops always do).
    pub high_watermark_pct: u64,
    /// Occupancy at/below this percentage — with zero drops — counts as
    /// a calm window. The gap to `high_watermark_pct` is the hysteresis
    /// band where the controller holds.
    pub low_watermark_pct: u64,
    /// Consecutive windows a condition must persist before the period
    /// changes, and the cooldown after each change. The controller can
    /// never change the period twice within `dwell_windows` windows.
    pub dwell_windows: u64,
    /// Multiplicative back-off applied to the period under sustained
    /// pressure (≥ 2: the period at least doubles).
    pub backoff_factor: u64,
    /// Additive step the period recovers by per calm decision. `0`
    /// means "an eighth of the base period".
    pub recovery_step: u64,
    /// Ceiling on back-off, as a multiple of the base period.
    pub max_scale: u64,
    /// Per-drain cycle budget; a costlier drain is a deadline miss.
    /// `0` disables deadline tracking.
    pub deadline_cycles: u64,
    /// Consecutive deadline misses before the governor escalates to the
    /// supervisor.
    pub deadline_miss_threshold: u64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            high_watermark_pct: 60,
            low_watermark_pct: 20,
            dwell_windows: 2,
            backoff_factor: 2,
            recovery_step: 0,
            max_scale: 16,
            deadline_cycles: 0,
            deadline_miss_threshold: 3,
        }
    }
}

impl GovernorConfig {
    /// Sanity-check the tuning; called from `OpConfig::validate`.
    pub fn validate(&self) -> Result<(), String> {
        if self.high_watermark_pct > 100 {
            return Err(format!(
                "governor high watermark {}% exceeds 100%",
                self.high_watermark_pct
            ));
        }
        if self.low_watermark_pct >= self.high_watermark_pct {
            return Err(format!(
                "governor watermarks inverted: low {}% must be below high {}%",
                self.low_watermark_pct, self.high_watermark_pct
            ));
        }
        if self.dwell_windows == 0 {
            return Err("governor dwell must be at least one window".into());
        }
        if self.backoff_factor < 2 {
            return Err(format!(
                "governor backoff factor {} must be at least 2",
                self.backoff_factor
            ));
        }
        if self.max_scale == 0 {
            return Err("governor max scale must be at least 1".into());
        }
        if self.deadline_cycles > 0 && self.deadline_miss_threshold == 0 {
            return Err("governor deadline miss threshold must be at least 1".into());
        }
        Ok(())
    }
}

/// What the governor decided for one drain window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GovernorDecision {
    /// No change (in the hysteresis band, mid-dwell, or cooling down).
    Hold,
    /// Pressure persisted a full dwell: the period backed off.
    Backoff { from: u64, to: u64 },
    /// Calm persisted a full dwell: the period stepped toward base.
    Recover { from: u64, to: u64 },
}

/// Verdict on one drain's cycle cost against the deadline budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineVerdict {
    /// Within budget (or deadline tracking disabled).
    Met,
    /// Over budget. `escalate` is set when this miss crossed the
    /// consecutive-miss threshold; the caller must surface it to the
    /// supervisor (the streak resets so escalations re-arm).
    Missed { escalate: bool },
}

/// The controller state. One per session, owned by the daemon.
#[derive(Debug, Clone)]
pub struct Governor {
    config: GovernorConfig,
    base_period: u64,
    max_period: u64,
    recovery_step: u64,
    period: u64,
    pressure_streak: u64,
    calm_streak: u64,
    cooldown: u64,
    /// Multiplicative back-offs taken.
    pub backoffs: u64,
    /// Additive recovery steps taken.
    pub recoveries: u64,
    /// Total drain-deadline misses observed.
    pub deadline_misses: u64,
    /// Escalations handed to the supervisor.
    pub escalations: u64,
    consecutive_misses: u64,
}

impl Governor {
    /// `base_period` is the configured primary period: the floor the
    /// controller recovers to and the unit `max_scale` multiplies.
    pub fn new(base_period: u64, config: GovernorConfig) -> Governor {
        assert!(base_period > 0, "governor base period must be positive");
        config.validate().expect("invalid governor config");
        Governor {
            max_period: base_period.saturating_mul(config.max_scale),
            recovery_step: match config.recovery_step {
                0 => (base_period / 8).max(1),
                step => step,
            },
            base_period,
            period: base_period,
            pressure_streak: 0,
            calm_streak: 0,
            cooldown: 0,
            backoffs: 0,
            recoveries: 0,
            deadline_misses: 0,
            escalations: 0,
            consecutive_misses: 0,
            config,
        }
    }

    /// The period the controller currently wants programmed.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The configured (floor) period.
    pub fn base_period(&self) -> u64 {
        self.base_period
    }

    /// The back-off ceiling.
    pub fn max_period(&self) -> u64 {
        self.max_period
    }

    /// Feed one drain window: ring occupancy *before* the drain and the
    /// samples dropped since the previous window. Returns the decision;
    /// on `Backoff`/`Recover` the caller reprograms the counter to
    /// [`period()`](Self::period).
    pub fn observe(&mut self, occupancy: usize, capacity: usize, dropped: u64) -> GovernorDecision {
        let pct = occupancy as u64 * 100 / capacity.max(1) as u64;
        if dropped > 0 || pct >= self.config.high_watermark_pct {
            self.pressure_streak += 1;
            self.calm_streak = 0;
        } else if pct <= self.config.low_watermark_pct {
            self.calm_streak += 1;
            self.pressure_streak = 0;
        } else {
            // Hysteresis band: neither streak advances.
            self.pressure_streak = 0;
            self.calm_streak = 0;
        }

        if self.cooldown > 0 {
            self.cooldown -= 1;
            return GovernorDecision::Hold;
        }

        if self.pressure_streak >= self.config.dwell_windows && self.period < self.max_period {
            let from = self.period;
            self.period = self
                .period
                .saturating_mul(self.config.backoff_factor)
                .min(self.max_period);
            self.after_change();
            self.backoffs += 1;
            return GovernorDecision::Backoff { from, to: self.period };
        }

        if self.calm_streak >= self.config.dwell_windows && self.period > self.base_period {
            let from = self.period;
            self.period = self
                .period
                .saturating_sub(self.recovery_step)
                .max(self.base_period);
            self.after_change();
            self.recoveries += 1;
            return GovernorDecision::Recover { from, to: self.period };
        }

        GovernorDecision::Hold
    }

    fn after_change(&mut self) {
        self.cooldown = self.config.dwell_windows;
        self.pressure_streak = 0;
        self.calm_streak = 0;
    }

    /// Check one drain's cycle cost against the deadline budget.
    pub fn note_drain_cycles(&mut self, cycles: u64) -> DeadlineVerdict {
        if self.config.deadline_cycles == 0 || cycles <= self.config.deadline_cycles {
            self.consecutive_misses = 0;
            return DeadlineVerdict::Met;
        }
        self.deadline_misses += 1;
        self.consecutive_misses += 1;
        let escalate = self.consecutive_misses >= self.config.deadline_miss_threshold;
        if escalate {
            self.escalations += 1;
            self.consecutive_misses = 0;
        }
        DeadlineVerdict::Missed { escalate }
    }

    /// Per-drain deadline budget in cycles (0 = disabled).
    pub fn deadline_cycles(&self) -> u64 {
        self.config.deadline_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gov(base: u64) -> Governor {
        Governor::new(base, GovernorConfig::default())
    }

    #[test]
    fn sustained_pressure_backs_off_multiplicatively() {
        let mut g = gov(90_000);
        // Dwell is 2: one pressure window holds, the second backs off.
        assert_eq!(g.observe(90, 100, 0), GovernorDecision::Hold);
        assert_eq!(
            g.observe(90, 100, 0),
            GovernorDecision::Backoff { from: 90_000, to: 180_000 }
        );
        assert_eq!(g.period(), 180_000);
        assert_eq!(g.backoffs, 1);
    }

    #[test]
    fn drops_count_as_pressure_regardless_of_occupancy() {
        let mut g = gov(90_000);
        g.observe(0, 100, 5);
        let d = g.observe(0, 100, 5);
        assert!(matches!(d, GovernorDecision::Backoff { .. }));
    }

    #[test]
    fn cooldown_blocks_consecutive_changes() {
        let mut g = gov(90_000);
        g.observe(100, 100, 1);
        assert!(matches!(g.observe(100, 100, 1), GovernorDecision::Backoff { .. }));
        // Two cooldown windows (dwell = 2) must hold even under pressure.
        assert_eq!(g.observe(100, 100, 1), GovernorDecision::Hold);
        assert_eq!(g.observe(100, 100, 1), GovernorDecision::Hold);
        assert!(matches!(g.observe(100, 100, 1), GovernorDecision::Backoff { .. }));
    }

    #[test]
    fn recovery_is_additive_and_floors_at_base() {
        let mut g = gov(80_000); // recovery step = 10_000
        g.observe(100, 100, 1);
        g.observe(100, 100, 1); // dwell met: one back-off to 160_000
        assert_eq!(g.period(), 160_000);
        let mut steps = Vec::new();
        for _ in 0..40 {
            if let GovernorDecision::Recover { from, to } = g.observe(0, 100, 0) {
                steps.push(from - to);
            }
        }
        assert_eq!(g.period(), 80_000, "converges back to base");
        assert!(steps.iter().all(|&s| s == 10_000), "additive steps: {steps:?}");
        // Once at base, calm windows change nothing.
        assert_eq!(g.observe(0, 100, 0), GovernorDecision::Hold);
    }

    #[test]
    fn backoff_saturates_at_max_scale() {
        let mut g = gov(1_000); // max period 16_000
        for _ in 0..100 {
            g.observe(100, 100, 10);
        }
        assert_eq!(g.period(), 16_000);
        assert_eq!(g.observe(100, 100, 10), GovernorDecision::Hold);
    }

    #[test]
    fn hysteresis_band_resets_both_streaks() {
        let mut g = gov(90_000);
        g.observe(90, 100, 0); // pressure 1 of 2
        g.observe(40, 100, 0); // mid-band: streak resets
        assert_eq!(g.observe(90, 100, 0), GovernorDecision::Hold, "streak restarted");
    }

    #[test]
    fn deadline_streak_escalates_then_rearms() {
        let mut g = Governor::new(
            90_000,
            GovernorConfig {
                deadline_cycles: 1_000,
                deadline_miss_threshold: 2,
                ..GovernorConfig::default()
            },
        );
        assert_eq!(g.note_drain_cycles(900), DeadlineVerdict::Met);
        assert_eq!(g.note_drain_cycles(1_500), DeadlineVerdict::Missed { escalate: false });
        assert_eq!(g.note_drain_cycles(1_500), DeadlineVerdict::Missed { escalate: true });
        // Streak reset: escalation re-arms.
        assert_eq!(g.note_drain_cycles(1_500), DeadlineVerdict::Missed { escalate: false });
        // A healthy drain also resets the streak.
        assert_eq!(g.note_drain_cycles(100), DeadlineVerdict::Met);
        assert_eq!(g.note_drain_cycles(1_500), DeadlineVerdict::Missed { escalate: false });
        assert_eq!(g.deadline_misses, 4);
        assert_eq!(g.escalations, 1);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let ok = GovernorConfig::default();
        assert!(ok.validate().is_ok());
        assert!(GovernorConfig { high_watermark_pct: 101, ..ok }.validate().is_err());
        assert!(GovernorConfig { low_watermark_pct: 60, ..ok }.validate().is_err());
        assert!(GovernorConfig { dwell_windows: 0, ..ok }.validate().is_err());
        assert!(GovernorConfig { backoff_factor: 1, ..ok }.validate().is_err());
        assert!(GovernorConfig { max_scale: 0, ..ok }.validate().is_err());
        assert!(GovernorConfig {
            deadline_cycles: 1,
            deadline_miss_threshold: 0,
            ..ok
        }
        .validate()
        .is_err());
    }

    prop_compose! {
        fn arb_config()(
            low in 0u64..50,
            gap in 1u64..50,
            dwell in 1u64..5,
            backoff in 2u64..5,
            recovery in 0u64..200_000,
            scale in 1u64..32,
        ) -> GovernorConfig {
            GovernorConfig {
                high_watermark_pct: low + gap,
                low_watermark_pct: low,
                dwell_windows: dwell,
                backoff_factor: backoff,
                recovery_step: recovery,
                max_scale: scale,
                ..GovernorConfig::default()
            }
        }
    }

    proptest! {
        /// The controlled period stays inside [base, base × max_scale]
        /// at every step, for any observation sequence.
        #[test]
        fn period_always_within_bounds(
            config in arb_config(),
            base in 1u64..1_000_000,
            windows in proptest::collection::vec((0usize..2_000, 0u64..100), 0..200),
        ) {
            let mut g = Governor::new(base, config);
            for (occ, dropped) in windows {
                g.observe(occ, 1_000, dropped);
                prop_assert!(g.period() >= g.base_period());
                prop_assert!(g.period() <= g.max_period());
            }
        }

        /// No oscillation: two period changes are always separated by
        /// at least `dwell_windows` observation windows.
        #[test]
        fn changes_never_outpace_the_dwell_window(
            config in arb_config(),
            base in 1u64..1_000_000,
            windows in proptest::collection::vec((0usize..2_000, 0u64..100), 0..200),
        ) {
            let mut g = Governor::new(base, config);
            let mut last_change: Option<usize> = None;
            for (i, (occ, dropped)) in windows.into_iter().enumerate() {
                if g.observe(occ, 1_000, dropped) != GovernorDecision::Hold {
                    if let Some(prev) = last_change {
                        prop_assert!(
                            i - prev > config.dwell_windows as usize,
                            "changes at windows {prev} and {i} violate dwell {}",
                            config.dwell_windows
                        );
                    }
                    last_change = Some(i);
                }
            }
        }

        /// After pressure subsides, sustained calm converges the period
        /// back to the configured base, exactly.
        #[test]
        fn calm_converges_back_to_base(
            config in arb_config(),
            base in 1u64..1_000_000,
            pressure_windows in 0usize..50,
        ) {
            // Derived recovery step (base/8) keeps the walk back to base
            // short enough to enumerate exhaustively.
            let config = GovernorConfig { recovery_step: 0, ..config };
            let mut g = Governor::new(base, config);
            for _ in 0..pressure_windows {
                g.observe(1_000, 1_000, 1);
            }
            // Worst case: period at max, stepping down by ≥ 1 per
            // (dwell + 1) calm windows.
            let span = g.max_period() - g.base_period();
            let step = match config.recovery_step { 0 => (base / 8).max(1), s => s };
            let needed = (span / step + 2) * (config.dwell_windows + 1) + 2;
            for _ in 0..needed {
                g.observe(0, 1_000, 0);
            }
            prop_assert_eq!(g.period(), g.base_period());
        }
    }
}
