//! Anonymous-region handling — and the seam VIProf plugs into.
//!
//! Stock OProfile logs a PC inside an anonymous mapping against the
//! mapping's range (`anon (range:0x…-0x…)`), after a relatively
//! expensive bookkeeping path. The paper's §3 extension makes the
//! logging code "consult this [VM registration] information before
//! deciding to log a sample as being anonymous": that consult is the
//! [`AnonExtension`] trait here. The base profiler uses
//! [`NoExtension`]; VIProf's runtime profiler provides the real one.

use sim_cpu::{Addr, Pid};
use sim_os::Vma;
use std::collections::HashSet;

/// Outcome of the extension claiming an anon sample as JIT code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitClaim {
    /// GC epoch to tag the sample with (paper §3.1).
    pub epoch: u64,
    /// Process generation of the registrant whose heap range claimed
    /// the sample, stamped at NMI time.
    pub gen: u32,
}

/// Extension point consulted for every anon-region sample.
pub trait AnonExtension: Send {
    /// Return `Some` to log this sample as `JIT.App` instead of anon.
    fn classify(&mut self, pid: Pid, pc: Addr, vma: &Vma) -> Option<JitClaim>;

    /// Extra daemon work per wakeup while a VM is registered ("a few
    /// other limited VM probing routines", §3).
    fn daemon_probe_cost(&self) -> u64 {
        0
    }

    /// Should a drained sample stamped `(pid, gen)` still be admitted
    /// into the sample database? The daemon asks this per JIT sample so
    /// that late-arriving samples for a reaped (dead, unclean)
    /// incarnation become `dropped` instead of resolving against a
    /// successor's maps. The default admits everything.
    fn admit(&self, _pid: Pid, _gen: u32) -> bool {
        true
    }

    /// Drop registrations whose process is gone: `is_live(pid, gen)`
    /// is the kernel's process table. Returns how many registrations
    /// were reaped. The default extension keeps no registrations.
    fn reap(&mut self, _is_live: &mut dyn FnMut(Pid, u32) -> bool) -> u64 {
        0
    }
}

/// Stock OProfile: nothing claims anon samples.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoExtension;

impl AnonExtension for NoExtension {
    fn classify(&mut self, _pid: Pid, _pc: Addr, _vma: &Vma) -> Option<JitClaim> {
        None
    }
}

/// Bookkeeping of anonymous ranges the driver has logged against —
/// OProfile's "anon cookie" table. Tracked for reporting and so tests
/// can assert which ranges were hit.
#[derive(Debug, Default, Clone)]
pub struct AnonTable {
    ranges: HashSet<(Pid, Addr, Addr)>,
    pub samples: u64,
}

impl AnonTable {
    pub fn new() -> Self {
        AnonTable::default()
    }

    /// Record an anon sample; returns `true` the first time a range is
    /// seen.
    pub fn note(&mut self, pid: Pid, vma: &Vma) -> bool {
        self.samples += 1;
        self.ranges.insert((pid, vma.start, vma.end))
    }

    pub fn distinct_ranges(&self) -> usize {
        self.ranges.len()
    }

    pub fn ranges(&self) -> impl Iterator<Item = &(Pid, Addr, Addr)> {
        self.ranges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_extension_never_claims() {
        let mut e = NoExtension;
        let vma = Vma::anon(0x1000, 0x2000);
        assert_eq!(e.classify(Pid(1), 0x1800, &vma), None);
        assert_eq!(e.daemon_probe_cost(), 0);
    }

    #[test]
    fn anon_table_dedups_ranges() {
        let mut t = AnonTable::new();
        let a = Vma::anon(0x1000, 0x2000);
        let b = Vma::anon(0x3000, 0x4000);
        assert!(t.note(Pid(1), &a));
        assert!(!t.note(Pid(1), &a));
        assert!(t.note(Pid(1), &b));
        assert!(t.note(Pid(2), &a), "per-pid ranges are distinct");
        assert_eq!(t.distinct_ranges(), 3);
        assert_eq!(t.samples, 4);
    }
}
