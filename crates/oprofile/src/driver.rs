//! The kernel-side driver: OProfile's NMI handler.
//!
//! On every counter overflow it resolves the interrupted PC the way the
//! real module does — kernel text directly, user PCs through the
//! current task's VMA list — classifies the sample, pushes it into the
//! ring buffer, and returns the cycles the whole path consumed (which
//! the CPU charges to simulated time). The per-path costs come from
//! [`sim_cpu::CostModel`]; the anonymous path is the most expensive,
//! and the [`AnonExtension`] (VIProf) path replaces it with a cheap
//! registered-range check.

use crate::anon::{AnonExtension, AnonTable, NoExtension};
use crate::buffer::RingBuffer;
use crate::faults::{DriverFaults, FaultVerdict};
use crate::samples::{SampleBucket, SampleOrigin};
use sim_cpu::{CostModel, SampleContext};
use sim_os::{Kernel, OsNmiHandler};

/// Per-classification sample counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    pub total: u64,
    pub kernel: u64,
    pub image: u64,
    pub anon: u64,
    pub jit: u64,
    pub unknown: u64,
}

/// Driver state (lives behind the machine's shared handler).
pub struct Driver {
    cost: CostModel,
    pub buffer: RingBuffer,
    pub anon_table: AnonTable,
    ext: Box<dyn AnonExtension>,
    pub stats: DriverStats,
    /// Optional fault injector (tests/chaos harnesses); `None` in
    /// production paths.
    pub faults: Option<DriverFaults>,
}

impl Driver {
    pub fn new(cost: CostModel, buffer_capacity: usize) -> Self {
        Driver::with_extension(cost, buffer_capacity, Box::new(NoExtension))
    }

    pub fn with_extension(
        cost: CostModel,
        buffer_capacity: usize,
        ext: Box<dyn AnonExtension>,
    ) -> Self {
        Driver {
            cost,
            buffer: RingBuffer::new(buffer_capacity),
            anon_table: AnonTable::new(),
            ext,
            stats: DriverStats::default(),
            faults: None,
        }
    }

    /// Install an NMI-path fault injector.
    pub fn set_faults(&mut self, faults: DriverFaults) {
        self.faults = Some(faults);
    }

    /// Injected-fault counters, if an injector is installed.
    pub fn fault_stats(&self) -> Option<crate::faults::DriverFaultStats> {
        self.faults.as_ref().map(|f| f.stats)
    }

    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Extra daemon work per wakeup (delegated to the extension).
    pub fn daemon_probe_cost(&self) -> u64 {
        self.ext.daemon_probe_cost()
    }

    /// Is a drained `(pid, gen)` JIT sample still admissible?
    /// (Delegated to the extension's registration table.)
    pub fn admit(&self, pid: sim_cpu::Pid, gen: u32) -> bool {
        self.ext.admit(pid, gen)
    }

    /// Reap registrations of dead incarnations (delegated to the
    /// extension); returns how many were reaped.
    pub fn reap(&mut self, is_live: &mut dyn FnMut(sim_cpu::Pid, u32) -> bool) -> u64 {
        self.ext.reap(is_live)
    }

    /// Drain the ring buffer (daemon side).
    pub fn drain(&mut self) -> (Vec<SampleBucket>, u64) {
        let dropped = self.buffer.dropped;
        self.buffer.dropped = 0;
        (self.buffer.drain(), dropped)
    }

    /// Hand a consumed drain batch back for reuse, so steady-state
    /// drains allocate nothing (see [`RingBuffer::recycle`]).
    pub fn recycle(&mut self, batch: Vec<SampleBucket>) {
        self.buffer.recycle(batch);
    }
}

impl OsNmiHandler for Driver {
    fn handle_overflow(&mut self, kernel: &Kernel, ctx: &SampleContext) -> u64 {
        self.stats.total += 1;
        let res = kernel.resolve_pc(ctx.pid, ctx.pc, ctx.mode);
        let (mut bucket, cost) = match (res.image, res.vma) {
            // Kernel text or mapped image: offset-based sample.
            (Some((image, offset)), _) => {
                if ctx.mode.is_kernel() {
                    self.stats.kernel += 1;
                } else {
                    self.stats.image += 1;
                }
                (
                    SampleBucket {
                        origin: SampleOrigin::Image(image),
                        event: ctx.event,
                        addr: offset,
                        epoch: 0,
                    },
                    self.cost.nmi_mapped(),
                )
            }
            // Anonymous mapping: consult the extension first (paper §3),
            // fall back to the expensive anon-logging path.
            (None, Some(vma)) => match self.ext.classify(ctx.pid, ctx.pc, &vma) {
                Some(claim) => {
                    self.stats.jit += 1;
                    (
                        SampleBucket {
                            origin: SampleOrigin::JitApp {
                                pid: ctx.pid,
                                gen: claim.gen,
                            },
                            event: ctx.event,
                            addr: ctx.pc,
                            epoch: claim.epoch,
                        },
                        self.cost.nmi_jit(),
                    )
                }
                None => {
                    self.stats.anon += 1;
                    self.anon_table.note(ctx.pid, &vma);
                    (
                        SampleBucket {
                            origin: SampleOrigin::Anon {
                                pid: ctx.pid,
                                start: vma.start,
                                end: vma.end,
                            },
                            event: ctx.event,
                            addr: ctx.pc,
                            epoch: 0,
                        },
                        self.cost.nmi_anon(),
                    )
                }
            },
            // Unresolvable PC.
            (None, None) => {
                self.stats.unknown += 1;
                (
                    SampleBucket {
                        origin: SampleOrigin::Unknown,
                        event: ctx.event,
                        addr: 0,
                        epoch: 0,
                    },
                    self.cost.nmi_mapped(),
                )
            }
        };
        if let Some(faults) = &mut self.faults {
            if faults.on_sample(&mut bucket) == FaultVerdict::Drop {
                // Injected overflow: the sample is lost exactly like a
                // full buffer would lose it — visibly, via `dropped`.
                self.buffer.count_drop();
                return cost;
            }
        }
        self.buffer.push(bucket);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anon::JitClaim;
    use sim_cpu::{Addr, CpuMode, HwEvent, Pid};
    use sim_os::kernel::KERNEL_TEXT_BASE;
    use sim_os::{Image, Loader, Vma};

    fn ctx(pc: Addr, pid: Pid, mode: CpuMode) -> SampleContext {
        SampleContext {
            pc,
            pid,
            mode,
            event: HwEvent::Cycles,
            counter: 0,
            cycle: 0,
        }
    }

    fn setup() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        let img = k.images.insert(Image::new("app", 0x1000));
        let pid = k.spawn("app");
        Loader::load_image(&mut k, pid, img, 0x0804_8000);
        k.process_mut(pid)
            .unwrap()
            .space
            .map(Vma::anon(0x6000_0000, 0x6400_0000))
            .unwrap();
        (k, pid)
    }

    #[test]
    fn kernel_sample_classified_and_costed() {
        let (k, pid) = setup();
        let mut d = Driver::new(CostModel::default(), 16);
        let cost = d.handle_overflow(&k, &ctx(KERNEL_TEXT_BASE + 0x3000, pid, CpuMode::Kernel));
        assert_eq!(cost, CostModel::default().nmi_mapped());
        assert_eq!(d.stats.kernel, 1);
        let (samples, _) = d.drain();
        assert!(matches!(samples[0].origin, SampleOrigin::Image(_)));
        assert_eq!(samples[0].addr, 0x3000);
    }

    #[test]
    fn image_sample_records_offset() {
        let (k, pid) = setup();
        let mut d = Driver::new(CostModel::default(), 16);
        d.handle_overflow(&k, &ctx(0x0804_8000 + 0x123, pid, CpuMode::User));
        assert_eq!(d.stats.image, 1);
        let (samples, _) = d.drain();
        assert_eq!(samples[0].addr, 0x123);
    }

    #[test]
    fn anon_sample_takes_expensive_path() {
        let (k, pid) = setup();
        let mut d = Driver::new(CostModel::default(), 16);
        let cost = d.handle_overflow(&k, &ctx(0x6100_0000, pid, CpuMode::User));
        assert_eq!(cost, CostModel::default().nmi_anon());
        assert_eq!(d.stats.anon, 1);
        assert_eq!(d.anon_table.distinct_ranges(), 1);
        let (samples, _) = d.drain();
        match samples[0].origin {
            SampleOrigin::Anon { start, end, .. } => {
                assert_eq!((start, end), (0x6000_0000, 0x6400_0000));
            }
            o => panic!("expected anon, got {o:?}"),
        }
    }

    /// Extension claiming a sub-range, VIProf-style.
    struct RangeExt {
        range: (Addr, Addr),
        epoch: u64,
    }
    impl AnonExtension for RangeExt {
        fn classify(&mut self, _pid: Pid, pc: Addr, _vma: &Vma) -> Option<JitClaim> {
            (pc >= self.range.0 && pc < self.range.1).then_some(JitClaim {
                epoch: self.epoch,
                gen: 0,
            })
        }
        fn daemon_probe_cost(&self) -> u64 {
            42
        }
    }

    #[test]
    fn extension_claims_jit_samples_cheaper_than_anon() {
        let (k, pid) = setup();
        let cost_model = CostModel::default();
        let mut d = Driver::with_extension(
            cost_model,
            16,
            Box::new(RangeExt {
                range: (0x6000_0000, 0x6400_0000),
                epoch: 5,
            }),
        );
        let cost = d.handle_overflow(&k, &ctx(0x6100_0000, pid, CpuMode::User));
        assert_eq!(cost, cost_model.nmi_jit());
        assert!(cost < cost_model.nmi_anon(), "the paper's §4.3 claim");
        assert_eq!(d.stats.jit, 1);
        assert_eq!(d.stats.anon, 0);
        let (samples, _) = d.drain();
        assert_eq!(samples[0].epoch, 5);
        assert!(matches!(samples[0].origin, SampleOrigin::JitApp { .. }));
        assert_eq!(d.daemon_probe_cost(), 42);
    }

    #[test]
    fn unknown_pc_still_logged() {
        let (k, pid) = setup();
        let mut d = Driver::new(CostModel::default(), 16);
        d.handle_overflow(&k, &ctx(0xdead_0000, pid, CpuMode::User));
        assert_eq!(d.stats.unknown, 1);
        let (samples, _) = d.drain();
        assert_eq!(samples[0].origin, SampleOrigin::Unknown);
    }

    #[test]
    fn injected_bursts_surface_as_counted_drops() {
        let (k, pid) = setup();
        let mut d = Driver::new(CostModel::default(), 64);
        d.set_faults(DriverFaults::new(3).with_bursts(1.0, 4));
        for _ in 0..10 {
            d.handle_overflow(&k, &ctx(0x0804_8000, pid, CpuMode::User));
        }
        assert_eq!(d.stats.total, 10, "NMIs still counted");
        let (samples, dropped) = d.drain();
        assert_eq!(samples.len(), 0, "burst rate 1.0 drops everything");
        assert_eq!(dropped, 10);
        assert_eq!(d.fault_stats().unwrap().forced_drops, 10);
    }

    #[test]
    fn injected_skew_rewinds_jit_epochs() {
        let (k, pid) = setup();
        let mut d = Driver::with_extension(
            CostModel::default(),
            16,
            Box::new(RangeExt {
                range: (0x6000_0000, 0x6400_0000),
                epoch: 5,
            }),
        );
        d.set_faults(DriverFaults::new(1).with_epoch_skew(2));
        d.handle_overflow(&k, &ctx(0x6100_0000, pid, CpuMode::User));
        let (samples, _) = d.drain();
        assert_eq!(samples[0].epoch, 3, "driver lags the agent by 2 epochs");
    }

    #[test]
    fn buffer_overflow_reported_via_drain() {
        let (k, pid) = setup();
        let mut d = Driver::new(CostModel::default(), 2);
        for _ in 0..5 {
            d.handle_overflow(&k, &ctx(0x0804_8000, pid, CpuMode::User));
        }
        let (samples, dropped) = d.drain();
        assert_eq!(samples.len(), 2);
        assert_eq!(dropped, 3);
        // Drop counter resets after drain.
        let (_, dropped2) = d.drain();
        assert_eq!(dropped2, 0);
    }
}
