//! Profiler lifecycle: `opcontrol --start` / `--stop`.

use crate::anon::AnonExtension;
use crate::config::OpConfig;
use crate::daemon::Daemon;
use crate::driver::{Driver, DriverStats};
use crate::faults::{DaemonFaultStats, DaemonFaults, DriverFaultStats};
use crate::samples::SampleDb;
use crate::supervisor::{Supervisor, SupervisorCounters, SupervisorStats};
use parking_lot::Mutex;
use sim_cpu::Pid;
use sim_os::journal::JournalWriter;
use sim_os::Machine;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use viprof_telemetry::{names, Telemetry, TraceLayer};

/// VFS path where `stop` persists the final sample database.
pub const SAMPLES_PATH: &str = "/var/lib/oprofile/samples/current.db";

/// VFS path of the drained-batch write-ahead journal (when
/// [`OpConfig::journal`] is on).
pub const SAMPLE_JOURNAL_PATH: &str = "/var/lib/oprofile/samples/journal";

/// VFS path where `stop` persists the session's telemetry snapshot
/// (deterministic JSON; `viprof-stat` reads it back).
pub const TELEMETRY_PATH: &str = "/var/log/viprof/telemetry.json";

/// VFS path where `stop` persists the session's causal trace as Chrome
/// trace-event JSON (`viprof-trace` reads it back).
pub const TRACE_PATH: &str = "/var/log/viprof/trace.json";

/// VFS path where `stop` persists the session's sampled timeline
/// (per-drain-window telemetry deltas; the resolver evaluates health
/// rules over it and `viprof-diff` compares two of them).
pub const TIMELINE_PATH: &str = "/var/log/viprof/timeline.json";

/// A running profiling session.
pub struct Oprofile {
    pub driver: Arc<Mutex<Driver>>,
    pub db: Arc<Mutex<SampleDb>>,
    active: Arc<AtomicBool>,
    config: OpConfig,
    daemon_pid: Pid,
    /// Shared-stats handle to the daemon's fault schedule, if any.
    daemon_faults: Option<DaemonFaults>,
    /// Shared sample-batch journal (the daemon appends timer drains,
    /// `stop` appends the final flush).
    sample_journal: Option<Arc<Mutex<JournalWriter>>>,
    /// Shared-counters handle to the supervisor, if one wraps the daemon.
    supervisor_stats: Option<SupervisorCounters>,
    /// The session's telemetry registry (always on; shared with every
    /// layer the session installs).
    telemetry: Telemetry,
}

impl Oprofile {
    /// Start stock OProfile.
    pub fn start(machine: &mut Machine, config: OpConfig) -> Oprofile {
        let driver = Arc::new(Mutex::new(Driver::new(config.cost, config.buffer_capacity)));
        Self::install(machine, config, driver)
    }

    /// Start with an anon extension (how VIProf builds on this crate).
    pub fn start_with_extension(
        machine: &mut Machine,
        config: OpConfig,
        ext: Box<dyn AnonExtension>,
    ) -> Oprofile {
        let driver = Arc::new(Mutex::new(Driver::with_extension(
            config.cost,
            config.buffer_capacity,
            ext,
        )));
        Self::install(machine, config, driver)
    }

    fn install(machine: &mut Machine, config: OpConfig, driver: Arc<Mutex<Driver>>) -> Oprofile {
        assert!(
            machine.cpu.bank.is_empty(),
            "another profiling session is already running"
        );
        if let Err(e) = config.validate() {
            panic!("invalid OpConfig: {e}");
        }
        let telemetry = config.telemetry.clone().unwrap_or_default();
        if let Some(faults) = config.driver_faults.clone() {
            driver.lock().set_faults(faults);
        }
        {
            let mut d = driver.lock();
            d.buffer.attach_telemetry(&telemetry);
        }
        machine.cpu.attach_telemetry(&telemetry);
        for spec in &config.events {
            machine.cpu.program_counter(*spec);
        }
        machine.set_handler(driver.clone());

        let db = Arc::new(Mutex::new(SampleDb::new()));
        db.lock().set_admission_cap(config.db_bucket_cap);
        let active = Arc::new(AtomicBool::new(true));
        let mut daemon = Daemon::spawn(
            &mut machine.kernel,
            driver.clone(),
            db.clone(),
            active.clone(),
            config.cost,
            config.daemon_period_cycles,
        );
        // Clones share the stats handle: the daemon mutates, the
        // session reads.
        let daemon_faults = config.daemon_faults.clone();
        if let Some(faults) = daemon_faults.clone() {
            daemon = daemon.with_faults(faults);
        }
        daemon = daemon.with_telemetry(&telemetry);
        if let Some(gov_config) = config.governor {
            let governor = crate::governor::Governor::new(config.primary_period(), gov_config);
            telemetry.gauge(names::GOVERNOR_PERIOD).set(governor.period());
            daemon = daemon.with_governor(governor, config.primary_event());
        }
        let sample_journal = if config.journal {
            let mut writer = JournalWriter::create(&mut machine.kernel.vfs, SAMPLE_JOURNAL_PATH);
            writer.set_telemetry(&telemetry);
            let shared = Arc::new(Mutex::new(writer));
            daemon = daemon.with_journal(shared.clone());
            Some(shared)
        } else {
            None
        };
        if let Some(sink) = config.drain_sink.clone() {
            daemon = daemon.with_sink(sink);
        }
        let daemon_pid = daemon.pid();
        let supervisor_stats = match &config.supervisor {
            Some(sup_config) => {
                let supervisor = Supervisor::new(daemon, *sup_config).with_telemetry(&telemetry);
                let stats = supervisor.stats_handle();
                machine.add_service(Box::new(supervisor));
                Some(stats)
            }
            None => {
                machine.add_service(Box::new(daemon));
                None
            }
        };
        // Open the session's root span: every causal chain the pipeline
        // emits (NMI window → drain → journal → live) hangs off it.
        telemetry.set_now(machine.cpu.clock.cycles());
        telemetry.trace_begin(TraceLayer::Session, names::SPAN_SESSION, None);
        telemetry.counter(names::SESSION_INSTALLS).inc();
        telemetry.event(
            names::EVENT_SESSION_INSTALL,
            "profiling session installed",
            &[
                ("events", config.events.len() as u64),
                ("buffer_capacity", config.buffer_capacity as u64),
            ],
        );
        Oprofile {
            driver,
            db,
            active,
            config,
            daemon_pid,
            daemon_faults,
            sample_journal,
            supervisor_stats,
            telemetry,
        }
    }

    /// Handle to the session's telemetry registry.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    pub fn config(&self) -> &OpConfig {
        &self.config
    }

    pub fn daemon_pid(&self) -> Pid {
        self.daemon_pid
    }

    pub fn driver_stats(&self) -> DriverStats {
        self.driver.lock().stats
    }

    /// Injected driver-fault counters (sessions started with faults).
    pub fn driver_fault_stats(&self) -> Option<DriverFaultStats> {
        self.driver.lock().fault_stats()
    }

    /// Injected daemon-fault counters (sessions started with faults).
    pub fn daemon_fault_stats(&self) -> Option<DaemonFaultStats> {
        self.daemon_faults.as_ref().map(|f| f.stats())
    }

    /// Supervisor activity counters (sessions with a supervisor).
    pub fn supervisor_stats(&self) -> Option<SupervisorStats> {
        self.supervisor_stats.as_ref().map(|s| s.snapshot())
    }

    /// Snapshot of the sample DB as accumulated so far (not including
    /// still-buffered samples).
    pub fn db_snapshot(&self) -> SampleDb {
        self.db.lock().clone()
    }

    /// Stop profiling: final buffer flush (charged to simulated time),
    /// deprogram counters, uninstall the handler, persist the sample
    /// database to the VFS, and return it.
    pub fn stop(&self, machine: &mut Machine) -> SampleDb {
        // Reap registrations of processes that died since the last
        // timer drain: their late samples must be accounted as dropped,
        // never resolved against a pid's current owner.
        let reaped = self
            .driver
            .lock()
            .reap(&mut |pid, gen| machine.kernel.process(pid).map_or(false, |p| p.gen == gen));
        // Final synchronous drain, charged like a daemon wakeup — and
        // journaled like one, so replay covers the whole run.
        self.telemetry.set_now(machine.cpu.clock.cycles());
        let flush_span = self.telemetry.trace_begin(
            TraceLayer::Drain,
            names::SPAN_DAEMON_DRAIN,
            self.telemetry.trace_root(),
        );
        let (batch, cycles, dead) =
            Daemon::drain_batch(&self.driver, &self.db, &self.config.cost);
        let seq = Daemon::journal_batch(
            &self.sample_journal,
            &mut machine.kernel.vfs,
            &batch,
            Some(flush_span),
            Some(&self.telemetry),
        );
        Daemon::notify_sink(
            &self.config.drain_sink,
            &machine.kernel,
            seq,
            &batch,
            Some(flush_span),
        );
        self.active.store(false, Ordering::Relaxed);
        machine.cpu.clear_counters();
        machine.clear_handler();
        if cycles > 0 {
            // The flush runs in the daemon process; attribute to kernel
            // sys_write for the file part (coarse but stable).
            let range = machine.kernel.kernel_symbol_range("sys_write");
            machine.exec(&sim_cpu::BlockExec::compute(
                self.daemon_pid,
                sim_cpu::CpuMode::Kernel,
                range,
                cycles,
            ));
        }
        let db = self.db.lock().clone();
        machine.kernel.vfs.write(SAMPLES_PATH, db.to_bytes().to_vec());
        // Telemetry epilogue: stamp the final clock, account the flush,
        // and persist the snapshot next to the sample database.
        self.telemetry.set_now(machine.cpu.clock.cycles());
        self.telemetry.trace_end(
            flush_span,
            &[
                ("samples", batch.total_samples()),
                ("dropped", batch.dropped),
                ("evicted", batch.evicted),
            ],
        );
        self.telemetry.stage(names::STAGE_SESSION_FLUSH).record(cycles);
        if reaped > 0 {
            self.telemetry.counter(names::REGISTRY_REAPS).add(reaped);
            self.telemetry.event(
                names::EVENT_REGISTRY_REAP,
                "registrations of dead incarnations reaped at stop",
                &[("reaped", reaped)],
            );
        }
        if batch.dropped - dead > 0 {
            self.telemetry.event(
                names::EVENT_BUFFER_OVERFLOW,
                "ring buffer overflowed before the final flush",
                &[
                    ("dropped", batch.dropped - dead),
                    ("drained", batch.total_samples()),
                ],
            );
        }
        if dead > 0 {
            self.telemetry
                .counter(names::DAEMON_DEAD_GEN_DROPPED)
                .add(dead);
            self.telemetry.event(
                names::EVENT_DAEMON_DEAD_GEN_DROP,
                "late samples for reaped incarnations dropped at the final flush",
                &[("dropped", dead), ("drained", batch.total_samples())],
            );
        }
        if batch.evicted > 0 {
            self.telemetry.counter(names::DB_EVICTED_SAMPLES).add(batch.evicted);
            self.telemetry.event(
                names::EVENT_DB_EVICTION,
                "admission cap refused new buckets in the final flush",
                &[("evicted", batch.evicted), ("drained", batch.total_samples())],
            );
        }
        self.telemetry.counter(names::SESSION_STOPS).inc();
        self.telemetry.event(
            names::EVENT_SESSION_STOP,
            "profiling session stopped",
            &[("samples", db.total_samples()), ("dropped", db.dropped)],
        );
        if let Some(root) = self.telemetry.trace_root() {
            self.telemetry.trace_end(
                root,
                &[("samples", db.total_samples()), ("dropped", db.dropped)],
            );
        }
        // Close the final timeline window (the stop flush) before the
        // timeline is frozen to the VFS next to the other artifacts.
        self.telemetry.sample_timeline();
        machine
            .kernel
            .vfs
            .write(TELEMETRY_PATH, self.telemetry.snapshot().to_json().into_bytes());
        machine.kernel.vfs.write(
            TRACE_PATH,
            self.telemetry.trace_snapshot().to_chrome_json().into_bytes(),
        );
        machine.kernel.vfs.write(
            TIMELINE_PATH,
            self.telemetry.timeline_snapshot().to_json().into_bytes(),
        );
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::SupervisorConfig;
    use sim_cpu::{BlockExec, CpuMode, HwEvent};
    use sim_os::{MachineConfig, Vma};

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    #[test]
    fn start_programs_counters_and_stop_clears_them() {
        let mut m = machine();
        let op = Oprofile::start(&mut m, OpConfig::time_at(90_000));
        assert_eq!(m.cpu.bank.len(), 1);
        op.stop(&mut m);
        assert!(m.cpu.bank.is_empty());
    }

    #[test]
    #[should_panic(expected = "already running")]
    fn double_start_rejected() {
        let mut m = machine();
        let _a = Oprofile::start(&mut m, OpConfig::default());
        let _b = Oprofile::start(&mut m, OpConfig::default());
    }

    #[test]
    fn end_to_end_samples_flow_to_db() {
        let mut m = machine();
        let pid = m.kernel.spawn("app");
        m.kernel
            .process_mut(pid)
            .unwrap()
            .space
            .map(Vma::anon(0x6000_0000, 0x6100_0000))
            .unwrap();
        let op = Oprofile::start(&mut m, OpConfig::time_at(10_000));
        // 1M cycles in anon code → 100 samples.
        m.exec(&BlockExec::compute(
            pid,
            CpuMode::User,
            (0x6000_0000, 0x6100_0000),
            1_000_000,
        ));
        let db = op.stop(&mut m);
        assert_eq!(db.total(HwEvent::Cycles), 100);
        assert_eq!(op.driver_stats().anon, 100);
        // Persisted to the VFS and parseable.
        let raw = m.kernel.vfs.read(SAMPLES_PATH).unwrap();
        let parsed = SampleDb::from_bytes(raw).unwrap();
        assert_eq!(parsed.total(HwEvent::Cycles), 100);
    }

    #[test]
    fn profiling_overhead_is_visible_in_clock() {
        // Identical work with and without profiling: the profiled run
        // must take longer — that delta is Figure 2's subject.
        let work = 50_000_000u64;
        let mut base = machine();
        let pid_b = base.kernel.spawn("app");
        base.exec(&BlockExec::compute(pid_b, CpuMode::User, (0x1000, 0x2000), work));
        let base_cycles = base.cpu.clock.cycles();

        let mut prof = machine();
        let pid_p = prof.kernel.spawn("app");
        let op = Oprofile::start(&mut prof, OpConfig::time_at(90_000));
        prof.exec(&BlockExec::compute(pid_p, CpuMode::User, (0x1000, 0x2000), work));
        op.stop(&mut prof);
        let prof_cycles = prof.cpu.clock.cycles();

        assert!(prof_cycles > base_cycles);
        let overhead = (prof_cycles - base_cycles) as f64 / base_cycles as f64;
        assert!(
            overhead > 0.005 && overhead < 0.15,
            "overhead {overhead} outside plausible band"
        );
    }

    #[test]
    fn journaled_session_replays_to_the_persisted_db() {
        let mut m = machine();
        let pid = m.kernel.spawn("app");
        m.kernel
            .process_mut(pid)
            .unwrap()
            .space
            .map(Vma::anon(0x6000_0000, 0x6100_0000))
            .unwrap();
        let config = OpConfig {
            daemon_period_cycles: 200_000,
            ..OpConfig::time_at(10_000)
        }
        .with_journal();
        let op = Oprofile::start(&mut m, config);
        for _ in 0..5 {
            m.exec(&BlockExec::compute(
                pid,
                CpuMode::User,
                (0x6000_0000, 0x6100_0000),
                220_000,
            ));
        }
        let db = op.stop(&mut m);
        assert!(db.total_samples() > 0);
        // Replaying every committed batch record rebuilds the database
        // bit for bit.
        let scan = sim_os::journal::scan(&m.kernel.vfs, SAMPLE_JOURNAL_PATH).unwrap();
        assert_eq!(scan.damaged_bytes, 0);
        assert!(scan.records.len() >= 2, "timer drains + final flush");
        let mut replayed = SampleDb::new();
        for rec in &scan.records {
            // Telemetry is always on for sessions, so every batch record
            // carries a trace header.
            assert_eq!(rec.kind, sim_os::journal::KIND_SAMPLE_BATCH_TRACED);
            let (ctx, body) = sim_os::journal::split_traced_payload(&rec.payload).unwrap();
            assert_ne!(ctx.span, 0, "journal span identity persisted");
            replayed.merge(&SampleDb::from_bytes(body).unwrap());
        }
        assert_eq!(replayed, db);
    }

    #[test]
    fn journal_costs_no_cycles() {
        // Journaled and unjournaled runs of the same workload burn the
        // same simulated time — the journal rides the drain's existing
        // I/O budget.
        let run = |journal: bool| {
            let mut m = machine();
            let pid = m.kernel.spawn("app");
            let mut config = OpConfig {
                daemon_period_cycles: 200_000,
                ..OpConfig::time_at(10_000)
            };
            config.journal = journal;
            let op = Oprofile::start(&mut m, config);
            m.exec(&BlockExec::compute(pid, CpuMode::User, (0x1000, 0x2000), 1_000_000));
            op.stop(&mut m);
            m.cpu.clock.cycles()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn supervised_session_exposes_stats() {
        let mut m = machine();
        let config = OpConfig::time_at(90_000).with_supervisor(SupervisorConfig::default());
        let op = Oprofile::start(&mut m, config);
        assert_eq!(op.supervisor_stats(), Some(SupervisorStats::default()));
        op.stop(&mut m);
        // Unsupervised sessions report none.
        let op2 = Oprofile::start(&mut m, OpConfig::default());
        assert_eq!(op2.supervisor_stats(), None);
        op2.stop(&mut m);
    }

    #[test]
    fn stop_persists_a_parseable_telemetry_snapshot() {
        use viprof_telemetry::TelemetrySnapshot;
        let mut m = machine();
        let pid = m.kernel.spawn("app");
        let op = Oprofile::start(&mut m, OpConfig::time_at(10_000));
        m.exec(&BlockExec::compute(pid, CpuMode::User, (0x1000, 0x2000), 1_000_000));
        op.stop(&mut m);
        let raw = m.kernel.vfs.read(TELEMETRY_PATH).unwrap();
        let snap = TelemetrySnapshot::from_json(std::str::from_utf8(raw).unwrap()).unwrap();
        assert_eq!(snap.counter(names::SESSION_INSTALLS), 1);
        assert_eq!(snap.counter(names::SESSION_STOPS), 1);
        assert_eq!(snap.counter(names::CPU_SAMPLES_DELIVERED), 100);
        assert_eq!(snap.counter(names::BUFFER_PUSHED), 100);
        assert_eq!(snap.events_of(names::EVENT_SESSION_STOP).len(), 1);
        assert!(snap.stage(names::STAGE_SESSION_FLUSH).is_some());
    }

    #[test]
    fn stop_persists_a_parseable_chrome_trace() {
        use viprof_telemetry::TraceSnapshot;
        let mut m = machine();
        let pid = m.kernel.spawn("app");
        let config = OpConfig {
            daemon_period_cycles: 200_000,
            ..OpConfig::time_at(10_000)
        };
        let op = Oprofile::start(&mut m, config);
        m.exec(&BlockExec::compute(pid, CpuMode::User, (0x1000, 0x2000), 1_000_000));
        op.stop(&mut m);
        let raw = m.kernel.vfs.read(TRACE_PATH).unwrap();
        let trace = TraceSnapshot::from_chrome_json(std::str::from_utf8(raw).unwrap()).unwrap();
        // One session root, closed at stop, with drains hanging off it.
        let roots = trace.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, names::SPAN_SESSION);
        assert_eq!(roots[0].end, m.cpu.clock.cycles());
        assert!(trace
            .spans
            .iter()
            .any(|s| s.name == names::SPAN_DAEMON_DRAIN && s.parent != 0));
    }

    #[test]
    #[should_panic(expected = "invalid OpConfig")]
    fn start_rejects_invalid_config() {
        let mut m = machine();
        let mut config = OpConfig::default();
        config.events.clear();
        let _ = Oprofile::start(&mut m, config);
    }

    #[test]
    fn governed_session_publishes_period_and_cap() {
        use crate::governor::GovernorConfig;
        let mut m = machine();
        let config = OpConfig::time_at(90_000)
            .with_governor(GovernorConfig::default())
            .with_db_bucket_cap(64);
        let op = Oprofile::start(&mut m, config);
        let snap = op.telemetry().snapshot();
        assert_eq!(snap.gauge(names::GOVERNOR_PERIOD), 90_000);
        assert_eq!(op.db.lock().admission_cap(), Some(64));
        op.stop(&mut m);
    }

    #[test]
    fn stop_returns_clean_machine_for_next_session() {
        let mut m = machine();
        let op1 = Oprofile::start(&mut m, OpConfig::time_at(50_000));
        op1.stop(&mut m);
        // A second session can start cleanly.
        let op2 = Oprofile::start(&mut m, OpConfig::time_at(90_000));
        assert_eq!(m.cpu.bank.len(), 1);
        op2.stop(&mut m);
    }
}
