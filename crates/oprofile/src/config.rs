//! Profiler configuration.

use crate::daemon::SinkHandle;
use crate::faults::{DaemonFaults, DriverFaults};
use crate::governor::GovernorConfig;
use crate::supervisor::SupervisorConfig;
use sim_cpu::{CostModel, CounterSpec, HwEvent};
use viprof_telemetry::Telemetry;

/// Everything `opcontrol --setup` would take.
#[derive(Debug, Clone)]
pub struct OpConfig {
    /// Counters to program (event + overflow period).
    pub events: Vec<CounterSpec>,
    /// Ring-buffer capacity in samples (OProfile's `--buffer-size`).
    pub buffer_capacity: usize,
    /// Daemon wakeup period in cycles (~50 ms at 3.4 GHz by default).
    pub daemon_period_cycles: u64,
    /// Cycle costs of the profiling machinery.
    pub cost: CostModel,
    /// NMI-path fault injector (robustness testing; `None` normally).
    pub driver_faults: Option<DriverFaults>,
    /// Daemon fault schedule (robustness testing; `None` normally).
    pub daemon_faults: Option<DaemonFaults>,
    /// Journal drained sample batches to a write-ahead log so a crashed
    /// session's database can be rebuilt by replay.
    pub journal: bool,
    /// Wrap the daemon in a watchdog/restart supervisor.
    pub supervisor: Option<SupervisorConfig>,
    /// Close the overload loop: watch ring occupancy and dynamically
    /// rescale the NMI period (`None` = fixed period, the classic
    /// OProfile behaviour — and the default, so unregulated sessions
    /// replay bit-identically to older seeds).
    pub governor: Option<GovernorConfig>,
    /// Admission cap on distinct sample-database buckets (bounded
    /// memory). `None` = unbounded; rejected samples are counted as
    /// evictions and flow into quality accounting.
    pub db_bucket_cap: Option<usize>,
    /// Observer fed every non-trivial drained batch, in drain order,
    /// with the batch's journal sequence number when journaling is on.
    /// The live resolution engine plugs in here; `None` (the default)
    /// keeps the classic drain path.
    pub drain_sink: Option<SinkHandle>,
    /// Share a telemetry registry with the session. Telemetry is
    /// always on — `None` just means the session creates its own
    /// registry; pass a handle to observe it (or to share one registry
    /// across the VM agent and the profiler).
    pub telemetry: Option<Telemetry>,
}

impl Default for OpConfig {
    fn default() -> Self {
        OpConfig {
            events: vec![CounterSpec::new(HwEvent::Cycles, 90_000)],
            buffer_capacity: 65_536,
            daemon_period_cycles: 170_000_000,
            cost: CostModel::default(),
            driver_faults: None,
            daemon_faults: None,
            journal: false,
            supervisor: None,
            governor: None,
            db_bucket_cap: None,
            drain_sink: None,
            telemetry: None,
        }
    }
}

impl OpConfig {
    /// Cycle sampling at the given period — the Figure-2 configurations
    /// use periods 45_000 / 90_000 / 450_000.
    pub fn time_at(period: u64) -> Self {
        OpConfig {
            events: vec![CounterSpec::new(HwEvent::Cycles, period)],
            ..OpConfig::default()
        }
    }

    /// The Figure-1 configuration: time (GLOBAL_POWER_EVENTS) plus L2
    /// data misses (BSQ_CACHE_REFERENCE), each with its own period.
    pub fn figure1(time_period: u64, l2_period: u64) -> Self {
        OpConfig {
            events: vec![
                CounterSpec::new(HwEvent::Cycles, time_period),
                CounterSpec::new(HwEvent::L2Miss, l2_period),
            ],
            ..OpConfig::default()
        }
    }

    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Install fault injectors for the driver and/or daemon layers.
    pub fn with_faults(
        mut self,
        driver: Option<DriverFaults>,
        daemon: Option<DaemonFaults>,
    ) -> Self {
        self.driver_faults = driver;
        self.daemon_faults = daemon;
        self
    }

    /// Enable the sample-batch write-ahead journal.
    pub fn with_journal(mut self) -> Self {
        self.journal = true;
        self
    }

    /// Wrap the daemon in a watchdog/restart supervisor.
    pub fn with_supervisor(mut self, config: SupervisorConfig) -> Self {
        self.supervisor = Some(config);
        self
    }

    /// Enable the adaptive overload governor.
    pub fn with_governor(mut self, config: GovernorConfig) -> Self {
        self.governor = Some(config);
        self
    }

    /// Bound the sample database to at most `buckets` distinct buckets.
    pub fn with_db_bucket_cap(mut self, buckets: usize) -> Self {
        self.db_bucket_cap = Some(buckets);
        self
    }

    /// Feed every non-trivial drained batch to `sink` (live resolution).
    pub fn with_drain_sink(mut self, sink: SinkHandle) -> Self {
        self.drain_sink = Some(sink);
        self
    }

    /// Share `registry` with the session instead of letting it create
    /// a private one.
    pub fn with_telemetry(mut self, registry: &Telemetry) -> Self {
        self.telemetry = Some(registry.clone());
        self
    }

    /// Validate the configuration before a session starts. An empty
    /// event list used to slip through here and surface later as a
    /// zero `primary_period()` — a divide-by-zero hazard once the
    /// governor started rescaling periods — so sessions now reject it
    /// up front (the core API wraps this in a typed `ViprofError`).
    pub fn validate(&self) -> Result<(), String> {
        if self.events.is_empty() {
            return Err("OpConfig.events must program at least one counter".into());
        }
        for spec in &self.events {
            if spec.period == 0 {
                return Err(format!("counter {:?} has a zero period", spec.event));
            }
        }
        if let Some(governor) = &self.governor {
            governor.validate()?;
        }
        if self.db_bucket_cap == Some(0) {
            return Err("db_bucket_cap of 0 would reject every sample".into());
        }
        Ok(())
    }

    /// Period of the primary (first) event.
    ///
    /// Panics on an empty event list rather than silently returning 0;
    /// [`validate`](Self::validate) rejects such configs before any
    /// session reaches this point.
    pub fn primary_period(&self) -> u64 {
        self.events
            .first()
            .map(|e| e.period)
            .expect("OpConfig.events is empty — OpConfig::validate rejects this")
    }

    pub fn primary_event(&self) -> HwEvent {
        self.events
            .first()
            .map(|e| e.event)
            .unwrap_or(HwEvent::Cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_median_rate() {
        let c = OpConfig::default();
        assert_eq!(c.primary_period(), 90_000);
        assert_eq!(c.primary_event(), HwEvent::Cycles);
    }

    #[test]
    fn figure1_programs_two_counters() {
        let c = OpConfig::figure1(90_000, 5_000);
        assert_eq!(c.events.len(), 2);
        assert_eq!(c.events[1].event, HwEvent::L2Miss);
        assert_eq!(c.events[1].period, 5_000);
    }

    #[test]
    fn with_cost_overrides() {
        let c = OpConfig::default().with_cost(CostModel::free());
        assert_eq!(c.cost, CostModel::free());
    }

    #[test]
    fn validate_rejects_empty_events() {
        let mut c = OpConfig::default();
        assert!(c.validate().is_ok());
        c.events.clear();
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "OpConfig.events is empty")]
    fn primary_period_no_longer_silently_returns_zero() {
        let mut c = OpConfig::default();
        c.events.clear();
        c.primary_period();
    }

    #[test]
    fn validate_checks_governor_and_cap() {
        use crate::governor::GovernorConfig;
        let bad_gov = OpConfig::default().with_governor(GovernorConfig {
            dwell_windows: 0,
            ..GovernorConfig::default()
        });
        assert!(bad_gov.validate().is_err());
        let good_gov = OpConfig::default().with_governor(GovernorConfig::default());
        assert!(good_gov.validate().is_ok());
        assert!(OpConfig::default().with_db_bucket_cap(0).validate().is_err());
        assert!(OpConfig::default().with_db_bucket_cap(10_000).validate().is_ok());
    }
}
