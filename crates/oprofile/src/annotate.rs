//! `opannotate`-style per-address annotation.
//!
//! Where `opreport` aggregates to symbols, `opannotate` breaks one
//! symbol down by address — which loop inside `memset`, which basic
//! block of a kernel routine. Samples are bucketed at the database's
//! 16-byte quantum, so an annotation line corresponds to roughly one
//! x86 basic block.

use crate::samples::{SampleDb, SampleOrigin, ADDR_QUANTUM};
use sim_cpu::HwEvent;
use sim_os::{Kernel, Symbol};
use std::collections::BTreeMap;

/// One annotated address bucket.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct AnnotateRow {
    /// Offset within the image.
    pub offset: u64,
    pub counts: Vec<u64>,
    /// Percent of the *symbol's* samples, per event.
    pub percents: Vec<f64>,
}

/// An annotated symbol.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Annotation {
    pub image: String,
    pub symbol: String,
    pub events: Vec<HwEvent>,
    /// Symbol-wide totals per event.
    pub totals: Vec<u64>,
    /// Rows in ascending offset order (only buckets with samples).
    pub rows: Vec<AnnotateRow>,
}

impl Annotation {
    /// Text rendering: `vma  samples %  ...` like opannotate -a.
    pub fn render_text(&self) -> String {
        let mut out = format!("{}:{}\n", self.image, self.symbol);
        for e in &self.events {
            out.push_str(&format!("{:<22}", e.unit_name()));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(" {:#010x}: ", r.offset));
            for (c, p) in r.counts.iter().zip(&r.percents) {
                out.push_str(&format!("{c:>8} {p:>7.3}%  "));
            }
            out.push('\n');
        }
        out
    }

    /// The hottest bucket (by primary event).
    pub fn hottest(&self) -> Option<&AnnotateRow> {
        self.rows.iter().max_by_key(|r| r.counts[0])
    }
}

/// Annotate `symbol` within `image_name`. Returns `None` when the
/// image or symbol is unknown.
pub fn opannotate(
    db: &SampleDb,
    kernel: &Kernel,
    image_name: &str,
    symbol_name: &str,
) -> Option<Annotation> {
    let image_id = kernel.images.find_by_name(image_name)?;
    let image = kernel.images.get(image_id);
    let symbol: &Symbol = image.symbols().iter().find(|s| s.name == symbol_name)?;

    let events: Vec<HwEvent> = {
        let mut evs: Vec<HwEvent> = HwEvent::ALL
            .iter()
            .copied()
            .filter(|e| db.total(*e) > 0)
            .collect();
        evs.sort_by_key(|e| *e != HwEvent::Cycles);
        evs
    };

    let mut buckets: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut totals = vec![0u64; events.len()];
    for (bucket, count) in db.iter() {
        if bucket.origin != SampleOrigin::Image(image_id) || !symbol.contains(bucket.addr) {
            continue;
        }
        let Some(col) = events.iter().position(|e| *e == bucket.event) else {
            continue;
        };
        let offset = bucket.addr - bucket.addr % ADDR_QUANTUM;
        buckets.entry(offset).or_insert_with(|| vec![0; events.len()])[col] += count;
        totals[col] += count;
    }

    let rows = buckets
        .into_iter()
        .map(|(offset, counts)| {
            let percents = counts
                .iter()
                .zip(&totals)
                .map(|(c, t)| {
                    if *t == 0 {
                        0.0
                    } else {
                        100.0 * *c as f64 / *t as f64
                    }
                })
                .collect();
            AnnotateRow {
                offset,
                counts,
                percents,
            }
        })
        .collect();
    Some(Annotation {
        image: image.name.clone(),
        symbol: symbol.name.clone(),
        events,
        totals,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::SampleBucket;
    use sim_os::Image;

    fn setup() -> (Kernel, sim_os::ImageId) {
        let mut k = Kernel::new();
        let img = k.images.insert(
            Image::new("libc-2.3.2.so", 0x4000)
                .with_symbols([Symbol::new("memset", 0x1000, 0x400)]),
        );
        (k, img)
    }

    fn db(img: sim_os::ImageId, points: &[(u64, u64)]) -> SampleDb {
        let mut db = SampleDb::new();
        for (addr, count) in points {
            db.add(
                SampleBucket {
                    origin: SampleOrigin::Image(img),
                    event: HwEvent::Cycles,
                    addr: *addr,
                    epoch: 0,
                },
                *count,
            );
        }
        db
    }

    #[test]
    fn buckets_within_symbol_only() {
        let (k, img) = setup();
        let db = db(
            img,
            &[
                (0x1000, 10), // memset start
                (0x1008, 5),  // same 16-byte bucket
                (0x1200, 85), // hot inner loop
                (0x0800, 99), // outside memset — excluded
            ],
        );
        let a = opannotate(&db, &k, "libc-2.3.2.so", "memset").unwrap();
        assert_eq!(a.totals, vec![100]);
        assert_eq!(a.rows.len(), 2);
        assert_eq!(a.rows[0].offset, 0x1000);
        assert_eq!(a.rows[0].counts, vec![15]);
        assert_eq!(a.rows[1].offset, 0x1200);
        assert!((a.rows[1].percents[0] - 85.0).abs() < 1e-9);
        assert_eq!(a.hottest().unwrap().offset, 0x1200);
    }

    #[test]
    fn unknown_image_or_symbol_is_none() {
        let (k, img) = setup();
        let db = db(img, &[(0x1000, 1)]);
        assert!(opannotate(&db, &k, "nope.so", "memset").is_none());
        assert!(opannotate(&db, &k, "libc-2.3.2.so", "nope").is_none());
    }

    #[test]
    fn render_contains_offsets_and_percents() {
        let (k, img) = setup();
        let db = db(img, &[(0x1200, 4)]);
        let a = opannotate(&db, &k, "libc-2.3.2.so", "memset").unwrap();
        let text = a.render_text();
        assert!(text.contains("libc-2.3.2.so:memset"));
        assert!(text.contains("0x00001200"));
        assert!(text.contains("100.000%"));
    }
}
