//! The per-CPU sample ring buffer.
//!
//! The NMI handler pushes compact samples here; the userspace daemon
//! drains it on its timer. A full buffer drops samples (counted), just
//! like OProfile's `buffer_size` overflow behaviour — one of the
//! classic tuning knobs when sampling fast.

use crate::samples::SampleBucket;
use viprof_telemetry::{names, Counter, Gauge, Telemetry};

/// Telemetry handles for the ring's hot path, resolved once at attach.
#[derive(Debug, Clone)]
struct BufferTelemetry {
    pushed: Counter,
    dropped: Counter,
    drain_allocated: Counter,
    occupancy: Gauge,
}

/// Fixed-capacity FIFO ring.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    slots: Vec<SampleBucket>,
    head: usize,
    len: usize,
    capacity: usize,
    /// Samples rejected because the buffer was full.
    pub dropped: u64,
    /// Total samples ever accepted.
    pub pushed: u64,
    /// Recycled drain vector: [`drain`](Self::drain) hands it out,
    /// [`recycle`](Self::recycle) takes it back, so steady-state drains
    /// allocate nothing.
    spare: Vec<SampleBucket>,
    /// Total slots of fresh allocation `drain` ever had to perform.
    /// With callers recycling, this is bounded by the ring capacity
    /// (times the growth factor), independent of how many drains run.
    pub drain_allocated_slots: u64,
    telemetry: Option<BufferTelemetry>,
}

impl RingBuffer {
    /// A zero capacity (a misconfigured `--buffer-size`) is clamped to
    /// one slot: the session degrades to near-total sample loss — every
    /// loss counted in `dropped` — instead of aborting.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            slots: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            capacity,
            dropped: 0,
            pushed: 0,
            spare: Vec::new(),
            drain_allocated_slots: 0,
            telemetry: None,
        }
    }

    /// Mirror pushes, drops, and occupancy into `registry`. The
    /// capacity gauge is published once here.
    pub fn attach_telemetry(&mut self, registry: &Telemetry) {
        registry.gauge(names::BUFFER_CAPACITY).set(self.capacity as u64);
        let t = BufferTelemetry {
            pushed: registry.counter(names::BUFFER_PUSHED),
            dropped: registry.counter(names::BUFFER_DROPPED),
            drain_allocated: registry.counter(names::BUFFER_DRAIN_ALLOCATED_SLOTS),
            occupancy: registry.gauge(names::BUFFER_OCCUPANCY),
        };
        t.occupancy.set(self.len as u64);
        self.telemetry = Some(t);
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Push a sample; returns `false` (and counts a drop) when full.
    pub fn push(&mut self, s: SampleBucket) -> bool {
        if self.is_full() {
            self.dropped += 1;
            if let Some(t) = &self.telemetry {
                t.dropped.inc();
            }
            return false;
        }
        let tail = (self.head + self.len) % self.capacity;
        if tail == self.slots.len() {
            self.slots.push(s);
        } else {
            self.slots[tail] = s;
        }
        self.len += 1;
        self.pushed += 1;
        if let Some(t) = &self.telemetry {
            t.pushed.inc();
            t.occupancy.set(self.len as u64);
        }
        true
    }

    /// Count a sample lost before it reached the ring (the driver's
    /// injected-drop path), so telemetry sees every loss.
    pub fn count_drop(&mut self) {
        self.dropped += 1;
        if let Some(t) = &self.telemetry {
            t.dropped.inc();
        }
    }

    /// Drain every buffered sample in FIFO order.
    ///
    /// The returned vector is the recycled spare when one is available;
    /// hand it back via [`recycle`](Self::recycle) after consuming it
    /// and steady-state drains stop allocating. Fresh allocation (first
    /// drain, or growth after a deeper-than-ever occupancy) is tallied
    /// in `drain_allocated_slots` and the matching telemetry counter.
    pub fn drain(&mut self) -> Vec<SampleBucket> {
        let mut out = std::mem::take(&mut self.spare);
        out.clear();
        if out.capacity() < self.len {
            let before = out.capacity();
            out.reserve(self.len);
            let grown = (out.capacity() - before) as u64;
            self.drain_allocated_slots += grown;
            if let Some(t) = &self.telemetry {
                t.drain_allocated.add(grown);
            }
        }
        while self.len > 0 {
            out.push(self.slots[self.head]);
            self.head = (self.head + 1) % self.capacity;
            self.len -= 1;
        }
        self.head = 0;
        if let Some(t) = &self.telemetry {
            t.occupancy.set(0);
        }
        out
    }

    /// Return a drained vector for reuse by the next [`drain`]
    /// (keeping whichever of the two has more capacity).
    ///
    /// [`drain`]: Self::drain
    pub fn recycle(&mut self, mut v: Vec<SampleBucket>) {
        v.clear();
        if v.capacity() > self.spare.capacity() {
            self.spare = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::SampleOrigin;
    use sim_cpu::HwEvent;

    fn s(addr: u64) -> SampleBucket {
        SampleBucket {
            origin: SampleOrigin::Unknown,
            event: HwEvent::Cycles,
            addr,
            epoch: 0,
        }
    }

    #[test]
    fn zero_capacity_degrades_instead_of_panicking() {
        let mut r = RingBuffer::new(0);
        assert_eq!(r.capacity(), 1);
        assert!(r.push(s(1)));
        assert!(!r.push(s(2)), "second push overflows the single slot");
        assert_eq!(r.dropped, 1);
        assert_eq!(r.drain().len(), 1);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut r = RingBuffer::new(4);
        for i in 0..3 {
            assert!(r.push(s(i)));
        }
        let drained = r.drain();
        let addrs: Vec<u64> = drained.iter().map(|b| b.addr).collect();
        assert_eq!(addrs, vec![0, 1, 2]);
        assert!(r.is_empty());
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut r = RingBuffer::new(2);
        assert!(r.push(s(0)));
        assert!(r.push(s(1)));
        assert!(!r.push(s(2)));
        assert_eq!(r.dropped, 1);
        assert_eq!(r.pushed, 2);
        assert_eq!(r.drain().len(), 2);
    }

    #[test]
    fn reusable_after_drain_with_wraparound() {
        let mut r = RingBuffer::new(3);
        r.push(s(0));
        r.push(s(1));
        r.drain();
        for i in 10..13 {
            assert!(r.push(s(i)));
        }
        assert!(r.is_full());
        let addrs: Vec<u64> = r.drain().iter().map(|b| b.addr).collect();
        assert_eq!(addrs, vec![10, 11, 12]);
    }

    #[test]
    fn interleaved_push_drain() {
        let mut r = RingBuffer::new(2);
        let mut seen = Vec::new();
        for round in 0..10u64 {
            r.push(s(round * 2));
            r.push(s(round * 2 + 1));
            seen.extend(r.drain().iter().map(|b| b.addr));
        }
        assert_eq!(seen, (0..20).collect::<Vec<u64>>());
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn recycled_drains_stop_allocating() {
        let t = Telemetry::new();
        let mut r = RingBuffer::new(8);
        r.attach_telemetry(&t);
        let mut after_first = None;
        for round in 0..100u64 {
            for i in 0..8 {
                r.push(s(round * 8 + i));
            }
            let batch = r.drain();
            assert_eq!(batch.len(), 8);
            r.recycle(batch);
            match after_first {
                None => {
                    after_first = Some(r.drain_allocated_slots);
                    assert!(r.drain_allocated_slots >= 8, "first drain must allocate");
                }
                Some(first) => assert_eq!(
                    r.drain_allocated_slots, first,
                    "recycled drains must not allocate again (round {round})"
                ),
            }
        }
        // Peak allocation is bounded by the capacity (×2 for Vec growth
        // slack), not by drain count × capacity.
        assert!(r.drain_allocated_slots <= 2 * 8);
        assert_eq!(
            t.snapshot().counter(names::BUFFER_DRAIN_ALLOCATED_SLOTS),
            r.drain_allocated_slots
        );
    }

    #[test]
    fn recycle_keeps_the_larger_vector() {
        let mut r = RingBuffer::new(4);
        r.push(s(0));
        let small = r.drain(); // capacity ≥ 1
        for i in 0..4 {
            r.push(s(i));
        }
        let big = r.drain(); // fresh allocation: spare was handed out
        r.recycle(small);
        r.recycle(big);
        for i in 0..4 {
            r.push(s(i));
        }
        let before = r.drain_allocated_slots;
        let batch = r.drain();
        assert_eq!(batch.len(), 4);
        assert_eq!(r.drain_allocated_slots, before, "big spare was kept");
    }

    #[test]
    fn telemetry_tracks_occupancy_and_drops() {
        let t = Telemetry::new();
        let mut r = RingBuffer::new(2);
        r.attach_telemetry(&t);
        assert_eq!(t.snapshot().gauge(names::BUFFER_CAPACITY), 2);
        r.push(s(0));
        r.push(s(1));
        r.push(s(2));
        r.count_drop();
        let snap = t.snapshot();
        assert_eq!(snap.counter(names::BUFFER_PUSHED), 2);
        assert_eq!(snap.counter(names::BUFFER_DROPPED), 2);
        assert_eq!(snap.gauge(names::BUFFER_OCCUPANCY), 2);
        r.drain();
        assert_eq!(t.snapshot().gauge(names::BUFFER_OCCUPANCY), 0);
    }
}
