//! Object-file images and their symbol tables.
//!
//! An [`Image`] stands in for an ELF binary or shared library: a named
//! text section of a given size plus a sorted symbol table. OProfile
//! resolves a sample by computing the PC's offset into the backing image
//! and binary-searching the symbol table — [`Image::resolve`] is that
//! operation. Images with an empty table report as `(no symbols)`,
//! exactly like the `libxul.so.0d` and `RVM.code.image` rows in the
//! paper's Figure 1.

use serde::{Deserialize, Serialize};

/// Index into the global [`ImageTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ImageId(pub u32);

/// One function/method in an image's symbol table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symbol {
    pub name: String,
    /// Offset of the symbol's first byte within the image text.
    pub offset: u64,
    /// Size in bytes; `offset + size` is exclusive.
    pub size: u64,
}

impl Symbol {
    pub fn new(name: impl Into<String>, offset: u64, size: u64) -> Self {
        Symbol {
            name: name.into(),
            offset,
            size,
        }
    }

    pub fn contains(&self, offset: u64) -> bool {
        offset >= self.offset && offset < self.offset + self.size
    }
}

/// An object file: named text region plus symbol table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Image {
    pub name: String,
    pub text_size: u64,
    /// Sorted by `offset`; non-overlapping (checked on insertion).
    symbols: Vec<Symbol>,
}

impl Image {
    pub fn new(name: impl Into<String>, text_size: u64) -> Self {
        Image {
            name: name.into(),
            text_size,
            symbols: Vec::new(),
        }
    }

    /// Add a symbol, keeping the table sorted. Panics on overlap or
    /// out-of-bounds — symbol tables come from our own builders, so a
    /// violation is a bug, not input error.
    pub fn add_symbol(&mut self, sym: Symbol) {
        assert!(
            sym.offset + sym.size <= self.text_size,
            "symbol {} [{:#x}+{:#x}] exceeds image {} text size {:#x}",
            sym.name,
            sym.offset,
            sym.size,
            self.name,
            self.text_size
        );
        let pos = self
            .symbols
            .partition_point(|s| s.offset < sym.offset);
        if pos > 0 {
            let prev = &self.symbols[pos - 1];
            assert!(
                prev.offset + prev.size <= sym.offset,
                "symbol {} overlaps {} in {}",
                sym.name,
                prev.name,
                self.name
            );
        }
        if pos < self.symbols.len() {
            let next = &self.symbols[pos];
            assert!(
                sym.offset + sym.size <= next.offset,
                "symbol {} overlaps {} in {}",
                sym.name,
                next.name,
                self.name
            );
        }
        self.symbols.insert(pos, sym);
    }

    /// Builder-style bulk construction.
    pub fn with_symbols(mut self, syms: impl IntoIterator<Item = Symbol>) -> Self {
        for s in syms {
            self.add_symbol(s);
        }
        self
    }

    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    pub fn has_symbols(&self) -> bool {
        !self.symbols.is_empty()
    }

    /// Binary-search the symbol covering `offset`.
    pub fn resolve(&self, offset: u64) -> Option<&Symbol> {
        let pos = self.symbols.partition_point(|s| s.offset <= offset);
        if pos == 0 {
            return None;
        }
        let cand = &self.symbols[pos - 1];
        cand.contains(offset).then_some(cand)
    }
}

/// Global table of every image known to the kernel.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ImageTable {
    images: Vec<Image>,
}

impl ImageTable {
    pub fn new() -> Self {
        ImageTable::default()
    }

    pub fn insert(&mut self, image: Image) -> ImageId {
        assert!(
            self.find_by_name(&image.name).is_none(),
            "duplicate image name {}",
            image.name
        );
        self.images.push(image);
        ImageId(self.images.len() as u32 - 1)
    }

    pub fn get(&self, id: ImageId) -> &Image {
        &self.images[id.0 as usize]
    }

    pub fn get_mut(&mut self, id: ImageId) -> &mut Image {
        &mut self.images[id.0 as usize]
    }

    pub fn find_by_name(&self, name: &str) -> Option<ImageId> {
        self.images
            .iter()
            .position(|i| i.name == name)
            .map(|p| ImageId(p as u32))
    }

    pub fn len(&self) -> usize {
        self.images.len()
    }

    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (ImageId, &Image)> {
        self.images
            .iter()
            .enumerate()
            .map(|(i, img)| (ImageId(i as u32), img))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn libc() -> Image {
        Image::new("libc-2.3.2.so", 0x10000).with_symbols([
            Symbol::new("memset", 0x1000, 0x200),
            Symbol::new("memcpy", 0x1200, 0x300),
            Symbol::new("strlen", 0x2000, 0x100),
        ])
    }

    #[test]
    fn resolve_hits_within_symbol() {
        let img = libc();
        assert_eq!(img.resolve(0x1000).unwrap().name, "memset");
        assert_eq!(img.resolve(0x11ff).unwrap().name, "memset");
        assert_eq!(img.resolve(0x1200).unwrap().name, "memcpy");
        assert_eq!(img.resolve(0x20ff).unwrap().name, "strlen");
    }

    #[test]
    fn resolve_misses_in_gaps_and_before_first() {
        let img = libc();
        assert!(img.resolve(0x0).is_none());
        assert!(img.resolve(0x0fff).is_none());
        assert!(img.resolve(0x1500).is_none(), "gap between memcpy and strlen");
        assert!(img.resolve(0x2100).is_none(), "just past strlen");
    }

    #[test]
    fn out_of_order_insertion_keeps_table_sorted() {
        let mut img = Image::new("x", 0x1000);
        img.add_symbol(Symbol::new("c", 0x800, 0x10));
        img.add_symbol(Symbol::new("a", 0x100, 0x10));
        img.add_symbol(Symbol::new("b", 0x400, 0x10));
        let names: Vec<&str> = img.symbols().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_symbols_rejected() {
        let mut img = Image::new("x", 0x1000);
        img.add_symbol(Symbol::new("a", 0x100, 0x100));
        img.add_symbol(Symbol::new("b", 0x180, 0x10));
    }

    #[test]
    #[should_panic(expected = "exceeds image")]
    fn symbol_past_text_rejected() {
        let mut img = Image::new("x", 0x100);
        img.add_symbol(Symbol::new("a", 0x80, 0x100));
    }

    #[test]
    fn no_symbols_image_reports_none() {
        let img = Image::new("libxul.so.0d", 0x100000);
        assert!(!img.has_symbols());
        assert!(img.resolve(0x500).is_none());
    }

    #[test]
    fn table_intern_and_lookup() {
        let mut t = ImageTable::new();
        let a = t.insert(Image::new("vmlinux", 0x100000));
        let b = t.insert(libc());
        assert_ne!(a, b);
        assert_eq!(t.find_by_name("libc-2.3.2.so"), Some(b));
        assert_eq!(t.get(a).name, "vmlinux");
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate image")]
    fn table_rejects_duplicate_names() {
        let mut t = ImageTable::new();
        t.insert(Image::new("x", 1));
        t.insert(Image::new("x", 2));
    }
}
