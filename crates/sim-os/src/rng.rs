//! Deterministic PRNG shared by the simulated stack.
//!
//! SplitMix64: tiny, fast, and — unlike pulling `rand`'s thread RNG —
//! exactly reproducible from the seed every experiment prints. The
//! Figure-2 "system noise" model and workload jitter both draw from it.

use serde::{Deserialize, Serialize};

/// SplitMix64 generator (public-domain algorithm by Sebastiano Vigna).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Approximately standard-normal deviate (sum of 12 uniforms − 6:
    /// Irwin–Hall; adequate for the ±2 % noise model and fully
    /// deterministic).
    pub fn next_normal(&mut self) -> f64 {
        let mut s = 0.0;
        for _ in 0..12 {
            s += self.next_f64();
        }
        s - 6.0
    }

    /// Derive an independent stream (for parallel benchmark runs).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut r = SplitMix64::new(1234);
        let n = 100_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.next_normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let mut a = SplitMix64::new(5);
        let fork1: Vec<u64> = {
            let mut f = a.fork();
            (0..5).map(|_| f.next_u64()).collect()
        };
        let mut b = SplitMix64::new(5);
        let fork2: Vec<u64> = {
            let mut f = b.fork();
            (0..5).map(|_| f.next_u64()).collect()
        };
        assert_eq!(fork1, fork2);
    }
}
