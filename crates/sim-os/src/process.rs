//! Processes: a PID, a name, and an address space.

use crate::vma::AddressSpace;
use serde::{Deserialize, Serialize};
use sim_cpu::Pid;

/// A simulated process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Process {
    pub pid: Pid,
    pub name: String,
    pub space: AddressSpace,
    /// Incarnation counter for this PID: 0 the first time the kernel
    /// hands the PID out, bumped each time the PID is reused after an
    /// exit. `serde(default)` keeps pre-generation session exports
    /// loadable.
    #[serde(default)]
    pub gen: u32,
}

impl Process {
    pub fn new(pid: Pid, name: impl Into<String>) -> Self {
        Process::with_gen(pid, name, 0)
    }

    pub fn with_gen(pid: Pid, name: impl Into<String>, gen: u32) -> Self {
        Process {
            pid,
            name: name.into(),
            space: AddressSpace::new(),
            gen,
        }
    }

    /// This process's generation-tagged identity.
    pub fn key(&self) -> sim_cpu::ProcKey {
        sim_cpu::ProcKey::new(self.pid, self.gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_process_has_empty_space() {
        let p = Process::new(Pid(12), "jikesrvm");
        assert_eq!(p.pid, Pid(12));
        assert_eq!(p.name, "jikesrvm");
        assert!(p.space.is_empty());
    }
}
