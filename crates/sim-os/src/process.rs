//! Processes: a PID, a name, and an address space.

use crate::vma::AddressSpace;
use serde::{Deserialize, Serialize};
use sim_cpu::Pid;

/// A simulated process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Process {
    pub pid: Pid,
    pub name: String,
    pub space: AddressSpace,
}

impl Process {
    pub fn new(pid: Pid, name: impl Into<String>) -> Self {
        Process {
            pid,
            name: name.into(),
            space: AddressSpace::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_process_has_empty_space() {
        let p = Process::new(Pid(12), "jikesrvm");
        assert_eq!(p.pid, Pid(12));
        assert_eq!(p.name, "jikesrvm");
        assert!(p.space.is_empty());
    }
}
