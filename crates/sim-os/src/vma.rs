//! Virtual memory areas and per-process address spaces.
//!
//! OProfile classifies every sample by walking the interrupted process's
//! VMA list: a PC either falls in a region backed by a mapped image
//! (binary/library — resolvable to a symbol) or in an *anonymous*
//! region (JIT code heaps, malloc arenas). The anonymous case is
//! precisely where OProfile loses information and where VIProf's
//! registered-heap check takes over, so this module keeps the
//! image/anon distinction explicit.

use crate::image::ImageId;
use serde::{Deserialize, Serialize};
use sim_cpu::Addr;

/// What backs a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmaBacking {
    /// File-backed: PC−start+file_offset is an offset into the image.
    Image { image: ImageId, file_offset: u64 },
    /// Anonymous memory (heaps, JIT code). OProfile logs these as
    /// `anon (range:0x…-0x…)`.
    Anon,
}

/// One mapping in an address space. `start..end` is half-open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vma {
    pub start: Addr,
    pub end: Addr,
    pub backing: VmaBacking,
}

impl Vma {
    pub fn image(start: Addr, end: Addr, image: ImageId, file_offset: u64) -> Self {
        assert!(start < end, "empty VMA {start:#x}..{end:#x}");
        Vma {
            start,
            end,
            backing: VmaBacking::Image { image, file_offset },
        }
    }

    pub fn anon(start: Addr, end: Addr) -> Self {
        assert!(start < end, "empty VMA {start:#x}..{end:#x}");
        Vma {
            start,
            end,
            backing: VmaBacking::Anon,
        }
    }

    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr < self.end
    }

    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    pub fn is_anon(&self) -> bool {
        matches!(self.backing, VmaBacking::Anon)
    }
}

/// A process's sorted, non-overlapping VMA list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AddressSpace {
    /// Sorted by `start`.
    vmas: Vec<Vma>,
}

/// Error returned when a mapping would overlap an existing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapError {
    pub existing: Vma,
}

impl std::fmt::Display for OverlapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mapping overlaps existing VMA {:#x}..{:#x}",
            self.existing.start, self.existing.end
        )
    }
}

impl std::error::Error for OverlapError {}

impl AddressSpace {
    pub fn new() -> Self {
        AddressSpace::default()
    }

    /// Insert a mapping; fails if it overlaps an existing VMA.
    pub fn map(&mut self, vma: Vma) -> Result<(), OverlapError> {
        let pos = self.vmas.partition_point(|v| v.start < vma.start);
        if pos > 0 {
            let prev = self.vmas[pos - 1];
            if prev.end > vma.start {
                return Err(OverlapError { existing: prev });
            }
        }
        if pos < self.vmas.len() {
            let next = self.vmas[pos];
            if vma.end > next.start {
                return Err(OverlapError { existing: next });
            }
        }
        self.vmas.insert(pos, vma);
        Ok(())
    }

    /// Remove the mapping starting exactly at `start`; returns it.
    pub fn unmap(&mut self, start: Addr) -> Option<Vma> {
        let pos = self.vmas.iter().position(|v| v.start == start)?;
        Some(self.vmas.remove(pos))
    }

    /// Binary-search the VMA containing `addr`.
    pub fn lookup(&self, addr: Addr) -> Option<&Vma> {
        let pos = self.vmas.partition_point(|v| v.start <= addr);
        if pos == 0 {
            return None;
        }
        let cand = &self.vmas[pos - 1];
        cand.contains(addr).then_some(cand)
    }

    /// Resolve `addr` to (image, file offset) if it is file-backed.
    pub fn resolve_image_offset(&self, addr: Addr) -> Option<(ImageId, u64)> {
        let vma = self.lookup(addr)?;
        match vma.backing {
            VmaBacking::Image { image, file_offset } => {
                Some((image, addr - vma.start + file_offset))
            }
            VmaBacking::Anon => None,
        }
    }

    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    pub fn len(&self) -> usize {
        self.vmas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vmas.is_empty()
    }

    /// Base virtual address where `image` is mapped (the VMA covering
    /// the image's file offset 0), if present.
    pub fn image_base(&self, image: ImageId) -> Option<Addr> {
        self.vmas.iter().find_map(|v| match v.backing {
            VmaBacking::Image {
                image: id,
                file_offset,
            } if id == image => v.start.checked_sub(file_offset),
            _ => None,
        })
    }

    /// Lowest address at or above `hint` where `size` bytes fit without
    /// overlapping any mapping (used by the loader's bump allocation).
    pub fn find_free(&self, hint: Addr, size: u64) -> Addr {
        let mut candidate = hint;
        for v in &self.vmas {
            if v.end <= candidate {
                continue;
            }
            if v.start >= candidate && v.start - candidate >= size {
                break;
            }
            candidate = v.end;
        }
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(id: u32) -> VmaBacking {
        VmaBacking::Image {
            image: ImageId(id),
            file_offset: 0,
        }
    }

    #[test]
    fn map_and_lookup() {
        let mut a = AddressSpace::new();
        a.map(Vma::image(0x1000, 0x2000, ImageId(1), 0)).unwrap();
        a.map(Vma::anon(0x8000, 0x9000)).unwrap();
        assert_eq!(a.lookup(0x1800).unwrap().backing, img(1));
        assert!(a.lookup(0x8000).unwrap().is_anon());
        assert!(a.lookup(0x0fff).is_none());
        assert!(a.lookup(0x2000).is_none(), "end is exclusive");
        assert!(a.lookup(0x7fff).is_none(), "gap between VMAs");
    }

    #[test]
    fn overlap_rejected_both_sides() {
        let mut a = AddressSpace::new();
        a.map(Vma::anon(0x1000, 0x2000)).unwrap();
        assert!(a.map(Vma::anon(0x1800, 0x2800)).is_err());
        assert!(a.map(Vma::anon(0x0800, 0x1001)).is_err());
        assert!(a.map(Vma::anon(0x1000, 0x2000)).is_err());
        // Adjacent is fine.
        assert!(a.map(Vma::anon(0x2000, 0x3000)).is_ok());
        assert!(a.map(Vma::anon(0x0800, 0x1000)).is_ok());
    }

    #[test]
    fn resolve_image_offset_applies_file_offset() {
        let mut a = AddressSpace::new();
        a.map(Vma::image(0x4000, 0x5000, ImageId(3), 0x200)).unwrap();
        assert_eq!(a.resolve_image_offset(0x4010), Some((ImageId(3), 0x210)));
        a.map(Vma::anon(0x6000, 0x7000)).unwrap();
        assert_eq!(a.resolve_image_offset(0x6010), None);
    }

    #[test]
    fn unmap_removes_exact_start() {
        let mut a = AddressSpace::new();
        a.map(Vma::anon(0x1000, 0x2000)).unwrap();
        assert!(a.unmap(0x1001).is_none());
        assert!(a.unmap(0x1000).is_some());
        assert!(a.lookup(0x1800).is_none());
    }

    #[test]
    fn find_free_skips_existing_mappings() {
        let mut a = AddressSpace::new();
        a.map(Vma::anon(0x1000, 0x2000)).unwrap();
        a.map(Vma::anon(0x3000, 0x4000)).unwrap();
        // Fits in the 0x2000..0x3000 gap.
        assert_eq!(a.find_free(0x0, 0x1000), 0x0);
        assert_eq!(a.find_free(0x1000, 0x1000), 0x2000);
        // Too big for the gap → lands after the last VMA.
        assert_eq!(a.find_free(0x1000, 0x1001), 0x4000);
    }

    #[test]
    fn mapping_keeps_sorted_order() {
        let mut a = AddressSpace::new();
        a.map(Vma::anon(0x9000, 0xA000)).unwrap();
        a.map(Vma::anon(0x1000, 0x2000)).unwrap();
        a.map(Vma::anon(0x5000, 0x6000)).unwrap();
        let starts: Vec<Addr> = a.vmas().iter().map(|v| v.start).collect();
        assert_eq!(starts, [0x1000, 0x5000, 0x9000]);
    }
}
