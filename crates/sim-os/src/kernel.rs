//! The simulated kernel: process table, image table, PC resolution and
//! the NMI dispatch context OProfile's kernel module plugs into.

use crate::image::{Image, ImageId, ImageTable, Symbol};
use crate::process::Process;
use crate::vfs::Vfs;
use crate::vma::{Vma, VmaBacking};
use sim_cpu::{Addr, CpuMode, Pid, ProcKey};
use std::collections::BTreeMap;

/// Base virtual address of kernel text. Matches the default NMI vector
/// in `sim_cpu::CpuConfig` so handler cycles resolve to kernel symbols.
pub const KERNEL_TEXT_BASE: Addr = 0xffff_ffff_8000_0000;

/// Result of resolving a sampled PC, the way OProfile's driver does it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// Image and offset within it, when the PC is file-backed (or
    /// kernel text).
    pub image: Option<(ImageId, u64)>,
    /// The VMA the PC fell into, when it belongs to a live process
    /// mapping (kernel text has no VMA here).
    pub vma: Option<Vma>,
}

impl Resolution {
    pub const UNKNOWN: Resolution = Resolution {
        image: None,
        vma: None,
    };

    pub fn is_anon(&self) -> bool {
        self.image.is_none() && matches!(self.vma, Some(v) if v.is_anon())
    }
}

/// The kernel.
#[derive(Debug)]
pub struct Kernel {
    pub images: ImageTable,
    processes: BTreeMap<u32, Process>,
    next_pid: u32,
    /// PIDs freed by `exit_process`, reused LIFO (most recently freed
    /// first) before `next_pid` advances — the deterministic analogue
    /// of a real kernel recycling low pid numbers.
    free_pids: Vec<u32>,
    /// Highest generation ever assigned per PID, including exited
    /// processes (the live process also carries its own `gen`).
    generations: BTreeMap<u32, u32>,
    /// The `vmlinux` image: kernel text symbols.
    pub kernel_image: ImageId,
    pub vfs: Vfs,
}

/// Kernel text symbols, roughly the set that shows up in OProfile
/// output on a 2.6 kernel under a JVM workload. Offsets/sizes are
/// arbitrary but fixed; the NMI handler must be first so that handler
/// cycles (charged at the NMI vector) resolve to it.
const KERNEL_SYMBOLS: &[(&str, u64, u64)] = &[
    ("nmi_int", 0x0000, 0x1000),
    ("do_page_fault", 0x1000, 0x2000),
    ("schedule", 0x3000, 0x1800),
    ("sys_write", 0x4800, 0x0800),
    ("sys_read", 0x5000, 0x0800),
    ("do_gettimeofday", 0x5800, 0x0400),
    ("copy_to_user", 0x5c00, 0x0c00),
    ("copy_from_user", 0x6800, 0x0c00),
    ("kmalloc", 0x7400, 0x0800),
    ("clear_page", 0x7c00, 0x0400),
    ("timer_interrupt", 0x8000, 0x0800),
    ("do_brk", 0x8800, 0x0800),
    ("sys_mmap", 0x9000, 0x1000),
];

impl Kernel {
    pub fn new() -> Self {
        let mut images = ImageTable::new();
        let kernel_image = images.insert(
            Image::new("vmlinux", 0x10000).with_symbols(
                KERNEL_SYMBOLS
                    .iter()
                    .map(|(n, o, s)| Symbol::new(*n, *o, *s)),
            ),
        );
        Kernel {
            images,
            processes: BTreeMap::new(),
            next_pid: 1,
            free_pids: Vec::new(),
            generations: BTreeMap::new(),
            kernel_image,
            vfs: Vfs::new(),
        }
    }

    /// Create a process. Freed PIDs are reused LIFO before fresh PIDs
    /// are handed out sequentially from 1; a reused PID gets its
    /// generation counter bumped so the new incarnation is
    /// distinguishable from every earlier one.
    pub fn spawn(&mut self, name: impl Into<String>) -> Pid {
        let (raw, gen) = match self.free_pids.pop() {
            Some(raw) => (raw, self.generations.get(&raw).map_or(0, |g| g + 1)),
            None => {
                let raw = self.next_pid;
                self.next_pid += 1;
                (raw, 0)
            }
        };
        self.generations.insert(raw, gen);
        self.processes
            .insert(raw, Process::with_gen(Pid(raw), name, gen));
        Pid(raw)
    }

    /// Tear down a process: remove it from the table and return its
    /// PID to the free list for reuse. Returns the removed process, or
    /// `None` if the PID names nothing live.
    pub fn exit_process(&mut self, pid: Pid) -> Option<Process> {
        let p = self.processes.remove(&pid.0)?;
        self.free_pids.push(pid.0);
        Some(p)
    }

    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.processes.get(&pid.0)
    }

    pub fn process_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.processes.get_mut(&pid.0)
    }

    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.processes.values()
    }

    /// Current generation of a PID: the live process's generation, or
    /// the last incarnation's if the PID is free. 0 for PIDs never
    /// handed out.
    pub fn generation(&self, pid: Pid) -> u32 {
        self.generations.get(&pid.0).copied().unwrap_or(0)
    }

    /// The generation-tagged identity of a live process.
    pub fn proc_key(&self, pid: Pid) -> Option<ProcKey> {
        self.process(pid).map(Process::key)
    }

    /// Insert a fully-formed process (session import); future `spawn`s
    /// won't collide with its PID, and its generation is recorded so a
    /// later reuse of the PID bumps past it.
    pub fn insert_process(&mut self, p: Process) {
        self.next_pid = self.next_pid.max(p.pid.0 + 1);
        let gen = self.generations.get(&p.pid.0).map_or(p.gen, |g| p.gen.max(*g));
        self.generations.insert(p.pid.0, gen);
        self.processes.insert(p.pid.0, p);
    }

    /// Address range of a kernel text symbol (for building kernel-mode
    /// execution blocks).
    pub fn kernel_symbol_range(&self, name: &str) -> (Addr, Addr) {
        let img = self.images.get(self.kernel_image);
        let sym = img
            .symbols()
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown kernel symbol {name}"));
        (
            KERNEL_TEXT_BASE + sym.offset,
            KERNEL_TEXT_BASE + sym.offset + sym.size,
        )
    }

    /// Resolve a sampled PC exactly the way OProfile's kernel module
    /// does: kernel-mode PCs against kernel text, user-mode PCs against
    /// the interrupted process's VMA list.
    pub fn resolve_pc(&self, pid: Pid, pc: Addr, mode: CpuMode) -> Resolution {
        if mode.is_kernel() || pc >= KERNEL_TEXT_BASE {
            let offset = pc.wrapping_sub(KERNEL_TEXT_BASE);
            if offset < self.images.get(self.kernel_image).text_size {
                return Resolution {
                    image: Some((self.kernel_image, offset)),
                    vma: None,
                };
            }
            return Resolution::UNKNOWN;
        }
        let Some(proc_) = self.process(pid) else {
            return Resolution::UNKNOWN;
        };
        let Some(vma) = proc_.space.lookup(pc) else {
            return Resolution::UNKNOWN;
        };
        let image = match vma.backing {
            VmaBacking::Image { image, file_offset } => {
                Some((image, pc - vma.start + file_offset))
            }
            VmaBacking::Anon => None,
        };
        Resolution {
            image,
            vma: Some(*vma),
        }
    }

    /// Resolve all the way to a symbol name (convenience for reports
    /// and tests).
    pub fn symbolize(&self, pid: Pid, pc: Addr, mode: CpuMode) -> Option<(String, String)> {
        let r = self.resolve_pc(pid, pc, mode);
        let (image_id, offset) = r.image?;
        let img = self.images.get(image_id);
        let sym = img.resolve(offset)?;
        Some((img.name.clone(), sym.name.clone()))
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn spawn_assigns_sequential_pids() {
        let mut k = Kernel::new();
        assert_eq!(k.spawn("a"), Pid(1));
        assert_eq!(k.spawn("b"), Pid(2));
        assert_eq!(k.process(Pid(2)).unwrap().name, "b");
        assert!(k.process(Pid(99)).is_none());
    }

    #[test]
    fn exited_pids_are_reused_lifo_with_bumped_generations() {
        let mut k = Kernel::new();
        let a = k.spawn("a"); // Pid(1) gen 0
        let b = k.spawn("b"); // Pid(2) gen 0
        assert_eq!(k.generation(a), 0);
        assert!(k.exit_process(a).is_some());
        assert!(k.exit_process(b).is_some());
        assert!(k.process(a).is_none());
        // LIFO: b's pid (freed last) comes back first, generation bumped.
        let c = k.spawn("c");
        assert_eq!(c, b);
        assert_eq!(k.process(c).unwrap().gen, 1);
        assert_eq!(k.proc_key(c), Some(sim_cpu::ProcKey::new(b, 1)));
        let d = k.spawn("d");
        assert_eq!(d, a);
        assert_eq!(k.generation(d), 1);
        // Free list drained: fresh pids resume where next_pid left off.
        assert_eq!(k.spawn("e"), Pid(3));
        assert_eq!(k.generation(Pid(3)), 0);
    }

    #[test]
    fn exit_of_unknown_pid_is_none_and_generation_survives_exit() {
        let mut k = Kernel::new();
        assert!(k.exit_process(Pid(5)).is_none());
        let p = k.spawn("p");
        k.exit_process(p);
        // The last incarnation's generation is still queryable.
        assert_eq!(k.generation(p), 0);
        let p2 = k.spawn("q");
        k.exit_process(p2);
        let p3 = k.spawn("r");
        assert_eq!((p2, p3), (p, p));
        assert_eq!(k.generation(p), 2);
    }

    #[test]
    fn insert_process_records_imported_generation() {
        let mut k = Kernel::new();
        k.insert_process(Process::with_gen(Pid(4), "imported", 3));
        assert_eq!(k.generation(Pid(4)), 3);
        // A fresh spawn skips past the imported pid.
        assert_eq!(k.spawn("next"), Pid(5));
        // Reuse after exit bumps past the imported generation.
        k.exit_process(Pid(4));
        let again = k.spawn("again");
        assert_eq!(again, Pid(4));
        assert_eq!(k.process(again).unwrap().gen, 4);
    }

    #[test]
    fn kernel_pc_resolves_to_vmlinux_symbol() {
        let k = Kernel::new();
        let (start, _) = k.kernel_symbol_range("schedule");
        let (img, sym) = k.symbolize(Pid(1), start + 0x10, CpuMode::Kernel).unwrap();
        assert_eq!(img, "vmlinux");
        assert_eq!(sym, "schedule");
    }

    #[test]
    fn nmi_vector_resolves_to_nmi_int() {
        let k = Kernel::new();
        // The default CPU NMI vector is KERNEL_TEXT_BASE..+0x1000.
        let (img, sym) = k
            .symbolize(Pid(1), KERNEL_TEXT_BASE + 0x10, CpuMode::Kernel)
            .unwrap();
        assert_eq!((img.as_str(), sym.as_str()), ("vmlinux", "nmi_int"));
    }

    #[test]
    fn user_pc_resolves_through_process_vmas() {
        let mut k = Kernel::new();
        let libc = k
            .images
            .insert(Image::new("libc.so", 0x1000).with_symbols([Symbol::new("memset", 0x100, 0x80)]));
        let pid = k.spawn("app");
        k.process_mut(pid)
            .unwrap()
            .space
            .map(Vma::image(0x40000, 0x41000, libc, 0))
            .unwrap();
        let (img, sym) = k.symbolize(pid, 0x40110, CpuMode::User).unwrap();
        assert_eq!((img.as_str(), sym.as_str()), ("libc.so", "memset"));
    }

    #[test]
    fn anon_pc_is_classified_anon_not_symbolized() {
        let mut k = Kernel::new();
        let pid = k.spawn("jvm");
        k.process_mut(pid)
            .unwrap()
            .space
            .map(Vma::anon(0x60000000, 0x65000000))
            .unwrap();
        let r = k.resolve_pc(pid, 0x61000000, CpuMode::User);
        assert!(r.is_anon());
        assert!(k.symbolize(pid, 0x61000000, CpuMode::User).is_none());
    }

    #[test]
    fn unknown_pid_or_unmapped_pc_is_unknown() {
        let mut k = Kernel::new();
        assert_eq!(k.resolve_pc(Pid(9), 0x1234, CpuMode::User), Resolution::UNKNOWN);
        let pid = k.spawn("p");
        assert_eq!(k.resolve_pc(pid, 0x1234, CpuMode::User), Resolution::UNKNOWN);
    }

    #[test]
    fn kernel_pc_past_text_is_unknown() {
        let k = Kernel::new();
        let r = k.resolve_pc(Pid(1), KERNEL_TEXT_BASE + 0x20000, CpuMode::Kernel);
        assert_eq!(r, Resolution::UNKNOWN);
    }
}
