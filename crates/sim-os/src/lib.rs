//! # sim-os — simulated operating-system substrate
//!
//! Models the Linux layer the VIProf paper runs on: processes with
//! address spaces made of VMAs, loadable images carrying symbol tables,
//! a kernel that dispatches NMIs and resolves PCs the way OProfile's
//! kernel module does, a timer queue that drives the userspace profiling
//! daemon, and an in-memory VFS that stands in for the filesystem where
//! OProfile keeps its sample files and VIProf its epoch code maps.
//!
//! The [`machine::Machine`] type bundles a [`sim_cpu::Cpu`] with the
//! kernel and is the object everything above (JVM, workloads, profilers)
//! executes against.

pub mod image;
pub mod journal;
pub mod kernel;
pub mod loader;
pub mod machine;
pub mod process;
pub mod rng;
pub mod vfs;
pub mod vma;

pub use image::{Image, ImageId, ImageTable, Symbol};
pub use journal::{
    crc32, Crc32, JournalRecord, JournalScan, JournalWriter, KIND_CODE_MAP, KIND_SAMPLE_BATCH,
};
pub use kernel::{Kernel, Resolution};
pub use loader::Loader;
pub use machine::{
    share_handler, Machine, MachineConfig, MachineCtx, MachineService, OsNmiHandler,
    OsNullHandler, SharedHandler,
};
pub use process::Process;
pub use rng::SplitMix64;
pub use vfs::{Vfs, VfsError};
pub use vma::{AddressSpace, Vma, VmaBacking};
