//! Crash-consistent write-ahead journal on the [`Vfs`].
//!
//! Both halves of the profiling pipeline persist through ordinary
//! `write(2)`-style VFS calls, and both are crash points: the VM agent
//! writes one code map per GC epoch, the daemon flushes drained sample
//! batches. A torn or bit-rotted file is only detected *post mortem* —
//! after the run — when a lossy parser quarantines whatever no longer
//! decodes. This module adds the discipline that makes such damage
//! *recoverable* instead of merely counted: an append-only journal of
//! self-describing records, each carrying
//!
//! * a fixed **marker** byte (resynchronization is never attempted —
//!   a record that does not start where the previous one ended is
//!   damage, not drift);
//! * a **monotonic sequence number** (a valid-looking record from a
//!   previous generation, or one that skips ahead, is rejected);
//! * a **CRC32** over the record header and payload (bit rot is
//!   detected, not parsed);
//! * a trailing **commit byte** (a record is committed only when its
//!   last byte is on disk — the classic WAL commit protocol).
//!
//! [`scan`] replays the longest valid prefix and stops at the first
//! record that fails any of these checks; everything after that point
//! is untrusted, exactly like a database truncating its WAL at the last
//! commit. [`repair`] makes that truncation physical so a journal can
//! be appended to again after a crash.
//!
//! The writer side models two distinct failure modes the fault plans
//! inject:
//!
//! * a **short (torn) append** by a *living* writer —
//!   [`JournalWriter::append_torn_then_repair`]: the writer's read-back
//!   verification notices the missing commit byte immediately and
//!   rewrites the record in place (one retry; the write path is why a
//!   journal exists at all);
//! * **post-commit media damage** — [`JournalWriter::append_rotted`]:
//!   the bytes rot *after* the writer verified them, so nothing repairs
//!   them at write time; the damage surfaces at [`scan`] as a CRC
//!   mismatch and the journal is truncated there.

use crate::vfs::Vfs;
use viprof_telemetry::{names, Counter, Telemetry, TraceCtx};

/// Journal file header.
pub const JOURNAL_MAGIC: &[u8; 4] = b"VJL1";

/// First byte of every record.
pub const RECORD_MARKER: u8 = 0xA5;

/// Last byte of every committed record.
pub const COMMIT_BYTE: u8 = 0x5A;

/// Record kind: one epoch code map (payload: epoch `u64` LE + rendered
/// map text).
pub const KIND_CODE_MAP: u8 = 1;

/// Record kind: one drained sample batch (payload: `SampleDb` binary
/// encoding).
pub const KIND_SAMPLE_BATCH: u8 = 2;

/// Record kind: a traced sample batch — the payload is a 16-byte trace
/// header ([`TRACE_HEADER_LEN`]: trace id then span id, both `u64` LE,
/// see [`encode_traced_payload`]) followed by the same `SampleDb`
/// binary encoding as [`KIND_SAMPLE_BATCH`]. Untagged v1 (kind 2)
/// records stay valid forever; every batch reader accepts both kinds.
pub const KIND_SAMPLE_BATCH_TRACED: u8 = 3;

/// Length of the `(trace, span)` header prefixed to traced payloads.
pub const TRACE_HEADER_LEN: usize = 16;

/// Prefix `body` with `ctx`'s 16-byte trace header, producing the
/// payload of a [`KIND_SAMPLE_BATCH_TRACED`] record.
pub fn encode_traced_payload(ctx: TraceCtx, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(TRACE_HEADER_LEN + body.len());
    payload.extend_from_slice(&ctx.trace.to_le_bytes());
    payload.extend_from_slice(&ctx.span.to_le_bytes());
    payload.extend_from_slice(body);
    payload
}

/// Split a [`KIND_SAMPLE_BATCH_TRACED`] payload back into its trace
/// context and batch body. `None` when the payload cannot carry a
/// header (such a record is damage the CRC did not see — callers treat
/// it like an undecodable batch).
pub fn split_traced_payload(payload: &[u8]) -> Option<(TraceCtx, &[u8])> {
    let header = payload.get(..TRACE_HEADER_LEN)?;
    let trace = u64::from_le_bytes(header[..8].try_into().ok()?);
    let span = u64::from_le_bytes(header[8..].try_into().ok()?);
    Some((TraceCtx { trace, span }, &payload[TRACE_HEADER_LEN..]))
}

/// marker + seq + kind + len.
const HEADER_LEN: usize = 1 + 8 + 1 + 4;
/// Header + crc + commit byte.
const RECORD_OVERHEAD: usize = HEADER_LEN + 4 + 1;

// --- CRC32 (IEEE 802.3, the zlib polynomial) -------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Incremental CRC32 hasher (no external crates in the simulator).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = CRC_TABLE[idx] ^ (self.state >> 8);
        }
    }

    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

// --- records ---------------------------------------------------------

/// One committed journal record, as replayed by [`scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    pub seq: u64,
    pub kind: u8,
    pub payload: Vec<u8>,
}

/// Result of scanning a journal: the longest valid record prefix plus
/// how much trailing damage was cut off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// Committed records, in sequence order.
    pub records: Vec<JournalRecord>,
    /// Bytes up to and including the last committed record (the length
    /// [`repair`] truncates to).
    pub valid_len: usize,
    /// Bytes past the last committed record (torn tail, rotted record,
    /// or a damaged header — untrusted either way).
    pub damaged_bytes: usize,
}

impl JournalScan {
    /// Sequence number the next append should carry.
    pub fn next_seq(&self) -> u64 {
        self.records.last().map(|r| r.seq + 1).unwrap_or(0)
    }
}

fn record_crc(seq: u64, kind: u8, payload: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(&seq.to_le_bytes());
    h.update(&[kind]);
    h.update(&(payload.len() as u32).to_le_bytes());
    h.update(payload);
    h.finalize()
}

fn encode_record(seq: u64, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    rec.push(RECORD_MARKER);
    rec.extend_from_slice(&seq.to_le_bytes());
    rec.push(kind);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(payload);
    rec.extend_from_slice(&record_crc(seq, kind, payload).to_le_bytes());
    rec.push(COMMIT_BYTE);
    rec
}

/// Parse the record expected at `pos`. `None` on any violation: short
/// read, wrong marker, out-of-order sequence, CRC mismatch, missing
/// commit byte.
fn parse_record_at(data: &[u8], pos: usize, expect_seq: u64) -> Option<(JournalRecord, usize)> {
    let header_end = pos.checked_add(HEADER_LEN)?;
    if data.len() < header_end || data[pos] != RECORD_MARKER {
        return None;
    }
    let seq = u64::from_le_bytes(data[pos + 1..pos + 9].try_into().ok()?);
    if seq != expect_seq {
        return None;
    }
    let kind = data[pos + 9];
    let len = u32::from_le_bytes(data[pos + 10..pos + 14].try_into().ok()?) as usize;
    let end = pos.checked_add(RECORD_OVERHEAD)?.checked_add(len)?;
    if data.len() < end {
        return None;
    }
    let payload = &data[header_end..header_end + len];
    let crc = u32::from_le_bytes(data[header_end + len..header_end + len + 4].try_into().ok()?);
    if crc != record_crc(seq, kind, payload) || data[end - 1] != COMMIT_BYTE {
        return None;
    }
    Some((
        JournalRecord {
            seq,
            kind,
            payload: payload.to_vec(),
        },
        end,
    ))
}

/// Scan raw journal bytes: replay the longest valid prefix, stop at the
/// first check that fails. A damaged file header discredits everything.
pub fn scan_bytes(data: &[u8]) -> JournalScan {
    let mut out = JournalScan {
        records: Vec::new(),
        valid_len: 0,
        damaged_bytes: data.len(),
    };
    if data.len() < JOURNAL_MAGIC.len() || &data[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        return out;
    }
    out.valid_len = JOURNAL_MAGIC.len();
    let mut pos = out.valid_len;
    let mut expect_seq = 0u64;
    while let Some((rec, end)) = parse_record_at(data, pos, expect_seq) {
        out.records.push(rec);
        pos = end;
        out.valid_len = end;
        expect_seq += 1;
    }
    out.damaged_bytes = data.len() - out.valid_len;
    out
}

/// Scan the journal at `path`. `None` when the file does not exist (a
/// run that never journaled — not the same thing as an empty journal).
pub fn scan(vfs: &Vfs, path: &str) -> Option<JournalScan> {
    vfs.read(path).map(scan_bytes)
}

/// Physically truncate `path` to its valid prefix so appends can resume
/// after a crash. Returns the bytes removed (0 if the file is absent or
/// already clean).
pub fn repair(vfs: &mut Vfs, path: &str) -> usize {
    let Some(s) = scan(vfs, path) else { return 0 };
    if s.damaged_bytes == 0 {
        return 0;
    }
    let kept: Vec<u8> = vfs
        .read(path)
        .map(|d| d[..s.valid_len].to_vec())
        .unwrap_or_default();
    vfs.write(path.to_string(), kept);
    s.damaged_bytes
}

// --- writer ----------------------------------------------------------

/// Telemetry handles for the journal write path, resolved once at
/// attach time. Journal work charges no simulated cycles, so events
/// are stamped with the registry's published virtual "now".
#[derive(Debug, Clone)]
struct JournalTelemetry {
    registry: Telemetry,
    appends: Counter,
    commits: Counter,
    repairs: Counter,
    appended_bytes: Counter,
    damaged_bytes: Counter,
}

impl JournalTelemetry {
    fn attach(registry: &Telemetry) -> JournalTelemetry {
        JournalTelemetry {
            appends: registry.counter(names::JOURNAL_APPENDS),
            commits: registry.counter(names::JOURNAL_COMMITS),
            repairs: registry.counter(names::JOURNAL_REPAIRS),
            appended_bytes: registry.counter(names::JOURNAL_APPENDED_BYTES),
            damaged_bytes: registry.counter(names::JOURNAL_DAMAGED_BYTES),
            registry: registry.clone(),
        }
    }
}

/// Appending side of the journal: tracks the committed length and the
/// next sequence number, and implements the read-back commit protocol.
#[derive(Debug, Clone)]
pub struct JournalWriter {
    path: String,
    next_seq: u64,
    committed_len: usize,
    /// Torn appends detected by read-back verification and rewritten.
    pub repaired: u64,
    /// Records appended (committed or rotted-after-commit).
    pub appended: u64,
    telemetry: Option<JournalTelemetry>,
}

impl JournalWriter {
    /// Start a fresh journal at `path` (truncates any previous one).
    pub fn create(vfs: &mut Vfs, path: impl Into<String>) -> JournalWriter {
        let path = path.into();
        vfs.write(path.clone(), JOURNAL_MAGIC.to_vec());
        JournalWriter {
            path,
            next_seq: 0,
            committed_len: JOURNAL_MAGIC.len(),
            repaired: 0,
            appended: 0,
            telemetry: None,
        }
    }

    /// Reopen an existing journal for appending: scan it, truncate any
    /// damaged tail, continue after the last committed record. Creates
    /// the journal if it does not exist — or afresh when its *header*
    /// is damaged (nothing in such a file is trustworthy, and appending
    /// after a missing magic would leave the records unreachable).
    pub fn open(vfs: &mut Vfs, path: impl Into<String>) -> JournalWriter {
        let path = path.into();
        match scan(vfs, &path) {
            Some(s) if s.valid_len >= JOURNAL_MAGIC.len() => {
                repair(vfs, &path);
                JournalWriter {
                    next_seq: s.next_seq(),
                    committed_len: s.valid_len,
                    path,
                    repaired: 0,
                    appended: 0,
                    telemetry: None,
                }
            }
            _ => JournalWriter::create(vfs, path),
        }
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    /// The sequence number the next appended record will carry — what
    /// a drain-order observer (e.g. a live drain sink deduplicating
    /// replayed batches) should expect from the upcoming record.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Record appends/commits/repairs into `registry` from here on.
    pub fn set_telemetry(&mut self, registry: &Telemetry) {
        self.telemetry = Some(JournalTelemetry::attach(registry));
    }

    /// Append one record; returns its sequence number.
    pub fn append(&mut self, vfs: &mut Vfs, kind: u8, payload: &[u8]) -> u64 {
        let seq = self.next_seq;
        let rec = encode_record(seq, kind, payload);
        vfs.append(&self.path, &rec);
        self.commit(rec.len());
        seq
    }

    /// Append that suffers a short write: only `payload_prefix` payload
    /// bytes reach disk, so the commit byte never lands. The commit
    /// protocol's read-back verification catches the uncommitted tail
    /// immediately, truncates it, and rewrites the record whole — the
    /// repair a plain map-file `write` cannot perform.
    pub fn append_torn_then_repair(
        &mut self,
        vfs: &mut Vfs,
        kind: u8,
        payload: &[u8],
        payload_prefix: usize,
    ) -> u64 {
        let seq = self.next_seq;
        let rec = encode_record(seq, kind, payload);
        // Short write: header + a payload prefix, never the commit byte.
        let keep = (HEADER_LEN + payload_prefix).min(rec.len() - 1);
        vfs.append(&self.path, &rec[..keep]);
        // Read-back verification fails (no committed record at the
        // tail), so truncate to the last commit and retry once.
        debug_assert!(vfs
            .read(&self.path)
            .and_then(|d| parse_record_at(d, self.committed_len, seq))
            .is_none());
        let kept: Vec<u8> = vfs
            .read(&self.path)
            .map(|d| d[..self.committed_len.min(d.len())].to_vec())
            .unwrap_or_else(|| JOURNAL_MAGIC.to_vec());
        // The short write's bytes are all discarded by the truncation.
        let torn_bytes = keep as u64;
        vfs.write(self.path.clone(), kept);
        vfs.append(&self.path, &rec);
        self.commit(rec.len());
        self.repaired += 1;
        if let Some(t) = &self.telemetry {
            t.repairs.inc();
            t.damaged_bytes.add(torn_bytes);
            t.registry.event(
                names::EVENT_JOURNAL_REPAIR,
                &self.path,
                &[("seq", seq), ("torn_bytes", torn_bytes)],
            );
        }
        seq
    }

    /// Append whose stored payload bytes rot *after* the commit (media
    /// damage): the CRC covers the pristine payload, the bytes on disk
    /// are `rot` (clipped to the payload length). Write-time
    /// verification cannot see this — [`scan`] detects the mismatch and
    /// truncates the journal at the previous record.
    pub fn append_rotted(&mut self, vfs: &mut Vfs, kind: u8, payload: &[u8], rot: &[u8]) -> u64 {
        let seq = self.next_seq;
        let mut rec = encode_record(seq, kind, payload);
        let n = rot.len().min(payload.len());
        rec[HEADER_LEN..HEADER_LEN + n].copy_from_slice(&rot[..n]);
        vfs.append(&self.path, &rec);
        // The writer verified the pristine bytes before the rot landed,
        // so it believes the record committed and keeps appending after
        // it. Readers will stop here.
        self.commit(rec.len());
        seq
    }

    fn commit(&mut self, rec_len: usize) {
        self.next_seq += 1;
        self.committed_len += rec_len;
        self.appended += 1;
        if let Some(t) = &self.telemetry {
            t.appends.inc();
            t.commits.inc();
            t.appended_bytes.add(rec_len as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_is_incremental() {
        let mut h = Crc32::new();
        h.update(b"1234");
        h.update(b"56789");
        assert_eq!(h.finalize(), crc32(b"123456789"));
    }

    #[test]
    fn append_scan_round_trip() {
        let mut vfs = Vfs::new();
        let mut w = JournalWriter::create(&mut vfs, "/j");
        assert_eq!(w.append(&mut vfs, KIND_CODE_MAP, b"alpha"), 0);
        assert_eq!(w.append(&mut vfs, KIND_SAMPLE_BATCH, b""), 1);
        assert_eq!(w.append(&mut vfs, KIND_CODE_MAP, b"gamma"), 2);
        let s = scan(&vfs, "/j").unwrap();
        assert_eq!(s.damaged_bytes, 0);
        assert_eq!(s.valid_len, vfs.read("/j").unwrap().len());
        let kinds: Vec<(u64, u8, &[u8])> = s
            .records
            .iter()
            .map(|r| (r.seq, r.kind, r.payload.as_slice()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (0, KIND_CODE_MAP, &b"alpha"[..]),
                (1, KIND_SAMPLE_BATCH, &b""[..]),
                (2, KIND_CODE_MAP, &b"gamma"[..]),
            ]
        );
        assert_eq!(s.next_seq(), 3);
    }

    #[test]
    fn missing_file_scans_as_none_empty_journal_as_zero_records() {
        let mut vfs = Vfs::new();
        assert!(scan(&vfs, "/nope").is_none());
        JournalWriter::create(&mut vfs, "/j");
        let s = scan(&vfs, "/j").unwrap();
        assert!(s.records.is_empty());
        assert_eq!(s.damaged_bytes, 0);
    }

    #[test]
    fn crash_at_any_byte_keeps_a_committed_prefix() {
        let mut vfs = Vfs::new();
        let mut w = JournalWriter::create(&mut vfs, "/j");
        for i in 0..4u8 {
            w.append(&mut vfs, KIND_CODE_MAP, &[i; 24]);
        }
        let full = vfs.read("/j").unwrap().to_vec();
        let full_scan = scan_bytes(&full);
        assert_eq!(full_scan.records.len(), 4);
        for cut in 0..=full.len() {
            let s = scan_bytes(&full[..cut]);
            // Records are exactly the ones whose encoding fits in the cut.
            assert_eq!(
                s.records,
                full_scan.records[..s.records.len()],
                "cut {cut}: prefix property violated"
            );
            assert!(s.valid_len <= cut);
            assert_eq!(s.damaged_bytes, cut - s.valid_len);
            // A cut exactly on a record boundary loses nothing.
            if cut == full_scan.valid_len {
                assert_eq!(s.records.len(), 4);
            }
        }
    }

    #[test]
    fn corrupted_record_truncates_the_journal_there() {
        let mut vfs = Vfs::new();
        let mut w = JournalWriter::create(&mut vfs, "/j");
        w.append(&mut vfs, KIND_CODE_MAP, b"first");
        let good_len = vfs.read("/j").unwrap().len();
        w.append_rotted(&mut vfs, KIND_CODE_MAP, b"second", b"sEcOnd");
        w.append(&mut vfs, KIND_CODE_MAP, b"third");
        let s = scan(&vfs, "/j").unwrap();
        // Everything at and after the rotted record is untrusted — the
        // commit chain is broken even though "third" itself is intact.
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].payload, b"first");
        assert_eq!(s.valid_len, good_len);
        assert!(s.damaged_bytes > 0);
    }

    #[test]
    fn torn_append_is_repaired_in_place() {
        let mut vfs = Vfs::new();
        let mut w = JournalWriter::create(&mut vfs, "/j");
        w.append(&mut vfs, KIND_CODE_MAP, b"first");
        w.append_torn_then_repair(&mut vfs, KIND_CODE_MAP, b"second-payload", 3);
        assert_eq!(w.repaired, 1);
        let s = scan(&vfs, "/j").unwrap();
        assert_eq!(s.damaged_bytes, 0, "repair leaves no damage behind");
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.records[1].payload, b"second-payload");
        assert_eq!(s.records[1].seq, 1, "the retry reuses the seq");
    }

    #[test]
    fn repair_truncates_and_open_resumes() {
        let mut vfs = Vfs::new();
        let mut w = JournalWriter::create(&mut vfs, "/j");
        w.append(&mut vfs, KIND_CODE_MAP, b"kept");
        // Crash mid-append: raw torn tail, nobody around to retry.
        vfs.append("/j", &[RECORD_MARKER, 1, 2, 3]);
        let removed = repair(&mut vfs, "/j");
        assert_eq!(removed, 4);
        assert_eq!(repair(&mut vfs, "/j"), 0, "already clean");
        let mut w2 = JournalWriter::open(&mut vfs, "/j");
        w2.append(&mut vfs, KIND_CODE_MAP, b"resumed");
        let s = scan(&vfs, "/j").unwrap();
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.records[1].seq, 1, "sequence continues across reopen");
        assert_eq!(s.records[1].payload, b"resumed");
    }

    #[test]
    fn open_starts_fresh_over_a_damaged_header() {
        // A journal whose magic is gone is untrusted in full; reopening
        // must not append after the broken header (those records would
        // be unreachable) but start a fresh, readable journal.
        let mut vfs = Vfs::new();
        let mut w = JournalWriter::create(&mut vfs, "/j");
        w.append(&mut vfs, KIND_CODE_MAP, b"old-generation");
        let mut raw = vfs.read("/j").unwrap().to_vec();
        raw[1] ^= 0xFF;
        vfs.write("/j", raw);
        let mut w2 = JournalWriter::open(&mut vfs, "/j");
        assert_eq!(w2.append(&mut vfs, KIND_CODE_MAP, b"fresh"), 0);
        let s = scan(&vfs, "/j").unwrap();
        assert_eq!(s.damaged_bytes, 0);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].payload, b"fresh");
    }

    #[test]
    fn damaged_header_discredits_the_whole_file() {
        let mut vfs = Vfs::new();
        let mut w = JournalWriter::create(&mut vfs, "/j");
        w.append(&mut vfs, KIND_CODE_MAP, b"data");
        let mut raw = vfs.read("/j").unwrap().to_vec();
        raw[0] ^= 0xFF;
        let s = scan_bytes(&raw);
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, 0);
        assert_eq!(s.damaged_bytes, raw.len());
    }

    #[test]
    fn stale_sequence_numbers_are_rejected() {
        // A record from a previous journal generation spliced after the
        // current tail: marker and CRC are fine, seq is not next.
        let mut vfs = Vfs::new();
        let mut w = JournalWriter::create(&mut vfs, "/j");
        w.append(&mut vfs, KIND_CODE_MAP, b"a");
        w.append(&mut vfs, KIND_CODE_MAP, b"b");
        let raw = vfs.read("/j").unwrap().to_vec();
        let s = scan_bytes(&raw);
        let first_end = {
            let one = scan_bytes(&raw[..s.valid_len - (raw.len() - s.valid_len).max(0)]);
            one.valid_len
        };
        // Duplicate record 0 after record 1: seq 0 != expected 2.
        let rec0 = encode_record(0, KIND_CODE_MAP, b"a");
        let mut spliced = raw.clone();
        spliced.extend_from_slice(&rec0);
        let s2 = scan_bytes(&spliced);
        assert_eq!(s2.records.len(), 2, "replayed generation rejected");
        assert!(s2.damaged_bytes >= rec0.len());
        let _ = first_end;
    }

    #[test]
    fn traced_payload_round_trips_and_rejects_short_headers() {
        let ctx = TraceCtx { trace: 0xDEAD_BEEF_0BAD_F00D, span: 42 };
        let payload = encode_traced_payload(ctx, b"batch-bytes");
        assert_eq!(payload.len(), TRACE_HEADER_LEN + 11);
        let (back, body) = split_traced_payload(&payload).unwrap();
        assert_eq!(back, ctx);
        assert_eq!(body, b"batch-bytes");
        // An empty body is legal (an empty batch was journaled).
        let empty = encode_traced_payload(ctx, b"");
        assert_eq!(split_traced_payload(&empty).unwrap().1, b"");
        // Anything shorter than the header cannot be traced.
        assert!(split_traced_payload(&empty[..TRACE_HEADER_LEN - 1]).is_none());

        // Traced records ride the normal commit protocol.
        let mut vfs = Vfs::new();
        let mut w = JournalWriter::create(&mut vfs, "/j");
        w.append(&mut vfs, KIND_SAMPLE_BATCH_TRACED, &payload);
        let s = scan(&vfs, "/j").unwrap();
        assert_eq!(s.records[0].kind, KIND_SAMPLE_BATCH_TRACED);
        assert_eq!(split_traced_payload(&s.records[0].payload).unwrap().0, ctx);
    }

    #[test]
    fn telemetry_counts_appends_commits_and_repairs() {
        let mut vfs = Vfs::new();
        let t = Telemetry::new();
        let mut w = JournalWriter::create(&mut vfs, "/j");
        w.set_telemetry(&t);
        w.append(&mut vfs, KIND_CODE_MAP, b"hello");
        w.append_torn_then_repair(&mut vfs, KIND_CODE_MAP, b"world", 2);
        w.append_rotted(&mut vfs, KIND_CODE_MAP, b"abcd", b"XY");
        let snap = t.snapshot();
        assert_eq!(snap.counter(names::JOURNAL_APPENDS), 3);
        assert_eq!(snap.counter(names::JOURNAL_COMMITS), 3);
        assert_eq!(snap.counter(names::JOURNAL_REPAIRS), 1);
        assert!(snap.counter(names::JOURNAL_APPENDED_BYTES) > 0);
        assert!(snap.counter(names::JOURNAL_DAMAGED_BYTES) > 0);
        let repairs = snap.events_of(names::EVENT_JOURNAL_REPAIR);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].detail, "/j");
        // The writer's own public counters agree with telemetry.
        assert_eq!(w.appended, 3);
        assert_eq!(w.repaired, 1);
    }
}
