//! The whole machine: CPU + kernel + pluggable profiler + services.
//!
//! Every layer above (JVM, workloads) executes by handing
//! [`sim_cpu::BlockExec`]s to [`Machine::exec`]. The machine routes
//! counter-overflow NMIs to the installed handler (the profiler's
//! kernel driver) and, after each block, polls registered
//! [`MachineService`]s — most importantly the profiler's userspace
//! daemon, which wakes on its timer, drains the sample buffer and burns
//! its own (sampled!) cycles.
//!
//! The profiler handler is an [`OsNmiHandler`]: unlike the raw
//! `sim_cpu::NmiHandler` it receives `&Kernel`, because a real HPC
//! driver resolves the interrupted PC against the current task's memory
//! map *inside the NMI* — that lookup (and its cost) is the heart of
//! both OProfile's and VIProf's logging paths.

use crate::kernel::Kernel;
use crate::rng::SplitMix64;
use parking_lot::Mutex;
use sim_cpu::{BlockEvents, BlockExec, Cpu, CpuConfig, NmiHandler, SampleContext};
use std::sync::Arc;

/// A profiler's kernel-side interrupt handler, with kernel access.
pub trait OsNmiHandler: Send {
    /// Handle one overflow; returns cycles consumed.
    fn handle_overflow(&mut self, kernel: &Kernel, ctx: &SampleContext) -> u64;
}

/// Handler used when profiling is off.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsNullHandler;

impl OsNmiHandler for OsNullHandler {
    fn handle_overflow(&mut self, _kernel: &Kernel, _ctx: &SampleContext) -> u64 {
        0
    }
}

/// Shared, lockable NMI handler. The profiler driver state lives behind
/// this so the daemon service (and tests) can reach it while it is
/// installed as the machine's handler.
pub type SharedHandler = Arc<Mutex<dyn OsNmiHandler + Send>>;

/// Wrap a concrete handler into a [`SharedHandler`].
pub fn share_handler<H: OsNmiHandler + 'static>(h: H) -> SharedHandler {
    Arc::new(Mutex::new(h))
}

/// Adapter: locks the shared handler and lends the kernel per delivery.
struct LockedHandler<'a> {
    handler: &'a SharedHandler,
    kernel: &'a Kernel,
}

impl NmiHandler for LockedHandler<'_> {
    fn handle_overflow(&mut self, ctx: &SampleContext) -> u64 {
        self.handler.lock().handle_overflow(self.kernel, ctx)
    }
}

/// Context passed to services so they can execute work on the machine
/// without fighting the borrow checker over `Machine` itself.
pub struct MachineCtx<'a> {
    pub cpu: &'a mut Cpu,
    pub kernel: &'a mut Kernel,
    pub handler: &'a SharedHandler,
    pub rng: &'a mut SplitMix64,
}

impl MachineCtx<'_> {
    /// Execute a block on behalf of a service (e.g. the daemon's own
    /// drain loop, which is itself subject to sampling).
    pub fn exec(&mut self, block: &BlockExec) -> BlockEvents {
        self.cpu.execute_block(
            block,
            &mut LockedHandler {
                handler: self.handler,
                kernel: self.kernel,
            },
        )
    }
}

/// A background component polled after every executed block
/// (profiling daemons, background desktop processes, …).
pub trait MachineService: Send {
    fn poll(&mut self, ctx: &mut MachineCtx<'_>);
}

/// Machine construction parameters.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    pub cpu: CpuConfig,
    pub seed: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cpu: CpuConfig::default(),
            seed: 0x5EED,
        }
    }
}

/// CPU + kernel + profiler seam + services.
pub struct Machine {
    pub cpu: Cpu,
    pub kernel: Kernel,
    pub rng: SplitMix64,
    handler: SharedHandler,
    services: Vec<Box<dyn MachineService>>,
}

impl Machine {
    pub fn new(config: MachineConfig) -> Self {
        Machine {
            cpu: Cpu::new(config.cpu),
            kernel: Kernel::new(),
            rng: SplitMix64::new(config.seed),
            handler: share_handler(OsNullHandler),
            services: Vec::new(),
        }
    }

    /// Install the profiler's NMI handler. Returns the previous one.
    pub fn set_handler(&mut self, h: SharedHandler) -> SharedHandler {
        std::mem::replace(&mut self.handler, h)
    }

    /// Remove the profiler (back to the free-running null handler).
    pub fn clear_handler(&mut self) -> SharedHandler {
        self.set_handler(share_handler(OsNullHandler))
    }

    pub fn handler(&self) -> &SharedHandler {
        &self.handler
    }

    /// Register a background service.
    pub fn add_service(&mut self, s: Box<dyn MachineService>) {
        self.services.push(s);
    }

    pub fn clear_services(&mut self) {
        self.services.clear();
    }

    /// Execute one block, then poll services.
    pub fn exec(&mut self, block: &BlockExec) -> BlockEvents {
        let events = self.cpu.execute_block(
            block,
            &mut LockedHandler {
                handler: &self.handler,
                kernel: &self.kernel,
            },
        );
        self.poll_services();
        events
    }

    /// Poll all services once (also called automatically by `exec`).
    pub fn poll_services(&mut self) {
        if self.services.is_empty() {
            return;
        }
        let mut services = std::mem::take(&mut self.services);
        {
            let mut ctx = MachineCtx {
                cpu: &mut self.cpu,
                kernel: &mut self.kernel,
                handler: &self.handler,
                rng: &mut self.rng,
            };
            for s in &mut services {
                s.poll(&mut ctx);
            }
        }
        // Services registered *by* services are appended after the
        // originals (take/put-back would drop them otherwise).
        services.append(&mut self.services);
        self.services = services;
    }

    /// Simulated seconds elapsed.
    pub fn seconds(&self) -> f64 {
        self.cpu.clock.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::{CounterSpec, CpuMode, HwEvent, Pid};

    fn block(cycles: u64) -> BlockExec {
        BlockExec::compute(Pid(1), CpuMode::User, (0x1000, 0x2000), cycles)
    }

    /// OS-level counting handler that also symbolizes each sample.
    #[derive(Default)]
    struct Recorder {
        samples: Vec<(SampleContext, Option<(String, String)>)>,
        cost: u64,
    }

    impl OsNmiHandler for Recorder {
        fn handle_overflow(&mut self, kernel: &Kernel, ctx: &SampleContext) -> u64 {
            let sym = kernel.symbolize(ctx.pid, ctx.pc, ctx.mode);
            self.samples.push((*ctx, sym));
            self.cost
        }
    }

    #[test]
    fn exec_advances_clock() {
        let mut m = Machine::new(MachineConfig::default());
        m.exec(&block(1_000));
        assert_eq!(m.cpu.clock.cycles(), 1_000);
    }

    #[test]
    fn installed_handler_sees_kernel_and_charges() {
        let mut m = Machine::new(MachineConfig::default());
        m.cpu.program_counter(CounterSpec::new(HwEvent::Cycles, 100));
        let rec = share_handler(Recorder {
            cost: 10,
            ..Default::default()
        });
        m.set_handler(rec.clone());
        // Sample kernel code so symbolization has something to find.
        let (s, e) = m.kernel.kernel_symbol_range("schedule");
        m.exec(&BlockExec::compute(Pid(1), CpuMode::Kernel, (s, e), 1_000));
        assert_eq!(m.cpu.stats.samples_delivered, 10);
        assert_eq!(m.cpu.stats.handler_cycles, 100);
        assert_eq!(m.cpu.clock.cycles(), 1_100);
        // The handler resolved samples against the kernel map.
        let guard = rec.lock();
        // (We can't downcast through the trait object; assert via stats
        // instead — the Recorder-specific check runs below with a
        // dedicated shared instance.)
        drop(guard);
    }

    #[test]
    fn handler_can_symbolize_at_nmi_time() {
        use parking_lot::Mutex;
        use std::sync::Arc;
        let mut m = Machine::new(MachineConfig::default());
        m.cpu.program_counter(CounterSpec::new(HwEvent::Cycles, 500));
        let shared = Arc::new(Mutex::new(Recorder::default()));
        struct Fwd(Arc<Mutex<Recorder>>);
        impl OsNmiHandler for Fwd {
            fn handle_overflow(&mut self, k: &Kernel, c: &SampleContext) -> u64 {
                self.0.lock().handle_overflow(k, c)
            }
        }
        m.set_handler(share_handler(Fwd(shared.clone())));
        let (s, e) = m.kernel.kernel_symbol_range("sys_write");
        m.exec(&BlockExec::compute(Pid(1), CpuMode::Kernel, (s, e), 1_000));
        let rec = shared.lock();
        assert_eq!(rec.samples.len(), 2);
        for (_, sym) in &rec.samples {
            assert_eq!(
                sym.as_ref().map(|(i, s)| (i.as_str(), s.as_str())),
                Some(("vmlinux", "sys_write"))
            );
        }
    }

    #[test]
    fn clear_handler_stops_charging() {
        let mut m = Machine::new(MachineConfig::default());
        m.cpu.program_counter(CounterSpec::new(HwEvent::Cycles, 100));
        let rec = share_handler(Recorder {
            cost: 10,
            ..Default::default()
        });
        m.set_handler(rec);
        m.exec(&block(1_000));
        m.clear_handler();
        m.exec(&block(1_000));
        assert_eq!(m.cpu.stats.handler_cycles, 100);
    }

    struct TickService {
        ticks: Arc<Mutex<u64>>,
    }

    impl MachineService for TickService {
        fn poll(&mut self, ctx: &mut MachineCtx<'_>) {
            *self.ticks.lock() += 1;
            // Services can execute their own (accounted) work.
            let b = BlockExec::compute(Pid(0), CpuMode::Kernel, (0, 0), 7);
            ctx.exec(&b);
        }
    }

    #[test]
    fn services_polled_after_each_block_and_their_work_is_charged() {
        let mut m = Machine::new(MachineConfig::default());
        let ticks = Arc::new(Mutex::new(0u64));
        m.add_service(Box::new(TickService { ticks: ticks.clone() }));
        m.exec(&block(100));
        m.exec(&block(100));
        assert_eq!(*ticks.lock(), 2);
        assert_eq!(m.cpu.clock.cycles(), 2 * 100 + 2 * 7);
    }

    #[test]
    fn seconds_reflect_default_frequency() {
        let mut m = Machine::new(MachineConfig::default());
        m.exec(&block(3_400_000_000));
        assert!((m.seconds() - 1.0).abs() < 1e-9);
    }
}
