//! Program loader: maps images and anonymous regions into a process's
//! address space with page-aligned bump allocation.

use crate::image::ImageId;
use crate::kernel::Kernel;
use crate::vma::Vma;
use sim_cpu::{Addr, Pid};

/// Page size used for alignment of all mappings.
pub const PAGE: u64 = 0x1000;

/// Default placement hints, mimicking a 32-bit Linux layout: binaries
/// low, libraries in the middle, anonymous heaps high (the paper's
/// Figure 1 shows Jikes RVM heap ranges like `0x64000000-0x65000000`).
pub const BIN_HINT: Addr = 0x0804_8000;
pub const LIB_HINT: Addr = 0x4000_0000;
pub const ANON_HINT: Addr = 0x6000_0000;

fn page_align_up(x: u64) -> u64 {
    x.div_ceil(PAGE) * PAGE
}

/// Stateless loader operating on the kernel's process table.
pub struct Loader;

impl Loader {
    /// Map the whole text of `image` into `pid`'s space at or above
    /// `hint`. Returns the chosen base address.
    pub fn load_image(kernel: &mut Kernel, pid: Pid, image: ImageId, hint: Addr) -> Addr {
        let size = page_align_up(kernel.images.get(image).text_size.max(1));
        let proc_ = kernel
            .process_mut(pid)
            .unwrap_or_else(|| panic!("no such process {pid}"));
        let base = proc_.space.find_free(page_align_up(hint), size);
        proc_
            .space
            .map(Vma::image(base, base + size, image, 0))
            .expect("find_free returned an overlapping range");
        base
    }

    /// Map `size` bytes of anonymous memory at or above `hint`.
    /// Returns the mapped range.
    pub fn map_anon(kernel: &mut Kernel, pid: Pid, size: u64, hint: Addr) -> (Addr, Addr) {
        let size = page_align_up(size.max(1));
        let proc_ = kernel
            .process_mut(pid)
            .unwrap_or_else(|| panic!("no such process {pid}"));
        let base = proc_.space.find_free(page_align_up(hint), size);
        proc_
            .space
            .map(Vma::anon(base, base + size))
            .expect("find_free returned an overlapping range");
        (base, base + size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use sim_cpu::CpuMode;

    #[test]
    fn load_places_at_hint_and_is_resolvable() {
        let mut k = Kernel::new();
        let img = k.images.insert(Image::new("app", 0x1800));
        let pid = k.spawn("app");
        let base = Loader::load_image(&mut k, pid, img, BIN_HINT);
        assert_eq!(base, BIN_HINT);
        let r = k.resolve_pc(pid, base + 0x10, CpuMode::User);
        assert_eq!(r.image, Some((img, 0x10)));
        assert_eq!(k.process(pid).unwrap().space.image_base(img), Some(base));
    }

    #[test]
    fn successive_loads_do_not_overlap() {
        let mut k = Kernel::new();
        let a = k.images.insert(Image::new("a.so", 0x2000));
        let b = k.images.insert(Image::new("b.so", 0x2000));
        let pid = k.spawn("app");
        let ba = Loader::load_image(&mut k, pid, a, LIB_HINT);
        let bb = Loader::load_image(&mut k, pid, b, LIB_HINT);
        assert!(bb >= ba + 0x2000);
    }

    #[test]
    fn anon_mapping_is_page_aligned_and_classified_anon() {
        let mut k = Kernel::new();
        let pid = k.spawn("jvm");
        let (start, end) = Loader::map_anon(&mut k, pid, 10, ANON_HINT);
        assert_eq!(start % PAGE, 0);
        assert_eq!(end - start, PAGE);
        assert!(k.resolve_pc(pid, start, CpuMode::User).is_anon());
    }

    #[test]
    fn text_size_is_rounded_up_to_pages() {
        let mut k = Kernel::new();
        let img = k.images.insert(Image::new("tiny", 1));
        let pid = k.spawn("p");
        let base = Loader::load_image(&mut k, pid, img, 0x10000);
        let vma = *k.process(pid).unwrap().space.lookup(base).unwrap();
        assert_eq!(vma.len(), PAGE);
    }
}
