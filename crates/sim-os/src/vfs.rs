//! In-memory virtual filesystem.
//!
//! Stands in for `/var/lib/oprofile/samples/…` and the directory where
//! VIProf's VM agent writes its epoch code maps. A `BTreeMap` keeps
//! listings sorted, which the epoch-chained post-processor relies on to
//! enumerate `jit-map.<pid>.<epoch>` files in epoch order.

use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// Typed failure for in-place file mutations ([`Vfs::truncate`],
/// [`Vfs::patch`]). A fault injector that thinks it is tearing a file
/// but is actually aiming past the end deserves an error, not a silent
/// clamp that quietly weakens the fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// The target file does not exist.
    NotFound { path: String },
    /// The requested range falls outside the file's current extent.
    OutOfRange {
        path: String,
        offset: usize,
        len: usize,
        file_len: usize,
    },
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound { path } => write!(f, "vfs: no such file: {path}"),
            VfsError::OutOfRange {
                path,
                offset,
                len,
                file_len,
            } => write!(
                f,
                "vfs: range {offset}..{} out of bounds for {path} ({file_len} bytes)",
                offset + len
            ),
        }
    }
}

impl std::error::Error for VfsError {}

/// Flat, ordered, in-memory file store.
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    files: BTreeMap<String, Vec<u8>>,
}

impl Vfs {
    pub fn new() -> Self {
        Vfs::default()
    }

    /// Create or truncate a file with the given content.
    pub fn write(&mut self, path: impl Into<String>, data: impl Into<Vec<u8>>) {
        self.files.insert(path.into(), data.into());
    }

    /// Append to a file, creating it if absent.
    pub fn append(&mut self, path: &str, data: &[u8]) {
        self.files
            .entry(path.to_string())
            .or_default()
            .extend_from_slice(data);
    }

    pub fn read(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|v| v.as_slice())
    }

    /// Zero-copy handle to a file's content.
    pub fn read_bytes(&self, path: &str) -> Option<Bytes> {
        self.files.get(path).map(|v| Bytes::copy_from_slice(v))
    }

    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    pub fn remove(&mut self, path: &str) -> Option<Vec<u8>> {
        self.files.remove(path)
    }

    /// Truncate a file to `len` bytes, returning how many bytes were
    /// removed. This is the "torn write" fault seam: a writer that died
    /// mid-`write(2)` leaves exactly such a prefix on disk. A `len`
    /// beyond the file's extent is an [`VfsError::OutOfRange`] — a torn
    /// write cannot make a file longer.
    pub fn truncate(&mut self, path: &str, len: usize) -> Result<usize, VfsError> {
        match self.files.get_mut(path) {
            Some(data) if len <= data.len() => {
                let removed = data.len() - len;
                data.truncate(len);
                Ok(removed)
            }
            Some(data) => Err(VfsError::OutOfRange {
                path: path.to_string(),
                offset: len,
                len: 0,
                file_len: data.len(),
            }),
            None => Err(VfsError::NotFound {
                path: path.to_string(),
            }),
        }
    }

    /// Overwrite bytes at `offset` in an existing file. The "bit rot /
    /// corrupt block" fault seam. The whole range must lie inside the
    /// file — patching past the end is [`VfsError::OutOfRange`], never
    /// a silent clip (bit rot flips bytes that exist; it does not
    /// extend files).
    pub fn patch(&mut self, path: &str, offset: usize, bytes: &[u8]) -> Result<(), VfsError> {
        match self.files.get_mut(path) {
            Some(data) => {
                let end = offset.checked_add(bytes.len());
                match end {
                    Some(end) if end <= data.len() => {
                        data[offset..end].copy_from_slice(bytes);
                        Ok(())
                    }
                    _ => Err(VfsError::OutOfRange {
                        path: path.to_string(),
                        offset,
                        len: bytes.len(),
                        file_len: data.len(),
                    }),
                }
            }
            None => Err(VfsError::NotFound {
                path: path.to_string(),
            }),
        }
    }

    /// All paths with the given prefix, in lexicographic order.
    pub fn list(&self, prefix: &str) -> Vec<&str> {
        self.files
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
            .collect()
    }

    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total bytes stored (for overhead accounting / tests).
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(|v| v.len()).sum()
    }

    /// Export every file to a real directory (simulated path separators
    /// become host separators). Lets post-processing tools run outside
    /// the simulation, like `opreport` runs after `opcontrol --stop`.
    pub fn export_to_dir(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        for (path, data) in &self.files {
            let rel = path.trim_start_matches('/');
            let host = dir.join(rel);
            if let Some(parent) = host.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(host, data)?;
        }
        Ok(self.files.len())
    }

    /// Import a directory tree exported by [`Vfs::export_to_dir`].
    pub fn import_from_dir(dir: &std::path::Path) -> std::io::Result<Vfs> {
        fn walk(base: &std::path::Path, dir: &std::path::Path, vfs: &mut Vfs) -> std::io::Result<()> {
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    walk(base, &path, vfs)?;
                } else {
                    let rel = path
                        .strip_prefix(base)
                        .expect("walk stays under base")
                        .to_string_lossy()
                        .replace('\\', "/");
                    vfs.write(format!("/{rel}"), std::fs::read(&path)?);
                }
            }
            Ok(())
        }
        let mut vfs = Vfs::new();
        walk(dir, dir, &mut vfs)?;
        Ok(vfs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut v = Vfs::new();
        v.write("/samples/a", b"hello".to_vec());
        assert_eq!(v.read("/samples/a"), Some(&b"hello"[..]));
        assert!(v.read("/samples/b").is_none());
    }

    #[test]
    fn write_truncates() {
        let mut v = Vfs::new();
        v.write("/f", b"long content".to_vec());
        v.write("/f", b"x".to_vec());
        assert_eq!(v.read("/f"), Some(&b"x"[..]));
    }

    #[test]
    fn append_creates_and_extends() {
        let mut v = Vfs::new();
        v.append("/log", b"ab");
        v.append("/log", b"cd");
        assert_eq!(v.read("/log"), Some(&b"abcd"[..]));
    }

    #[test]
    fn list_is_prefix_filtered_and_sorted() {
        let mut v = Vfs::new();
        v.write("/maps/jit-map.12.2", vec![]);
        v.write("/maps/jit-map.12.0", vec![]);
        v.write("/maps/jit-map.12.1", vec![]);
        v.write("/samples/x", vec![]);
        assert_eq!(
            v.list("/maps/"),
            vec![
                "/maps/jit-map.12.0",
                "/maps/jit-map.12.1",
                "/maps/jit-map.12.2"
            ]
        );
        assert_eq!(v.list("/nope/"), Vec::<&str>::new());
    }

    #[test]
    fn truncate_models_a_torn_write() {
        let mut v = Vfs::new();
        v.write("/maps/m", b"line one\nline two\n".to_vec());
        assert_eq!(v.truncate("/maps/m", 12), Ok(6));
        assert_eq!(v.read("/maps/m"), Some(&b"line one\nlin"[..]));
        // Truncating to the current length removes nothing.
        assert_eq!(v.truncate("/maps/m", 12), Ok(0));
        assert_eq!(v.truncate("/maps/m", 0), Ok(12));
    }

    #[test]
    fn truncate_rejects_out_of_range_and_missing() {
        let mut v = Vfs::new();
        v.write("/maps/m", b"twelve bytes".to_vec());
        assert_eq!(
            v.truncate("/maps/m", 13),
            Err(VfsError::OutOfRange {
                path: "/maps/m".into(),
                offset: 13,
                len: 0,
                file_len: 12,
            })
        );
        assert_eq!(v.read("/maps/m").unwrap().len(), 12, "file untouched");
        assert_eq!(
            v.truncate("/nope", 0),
            Err(VfsError::NotFound { path: "/nope".into() })
        );
    }

    #[test]
    fn patch_corrupts_in_place_without_extending() {
        let mut v = Vfs::new();
        v.write("/f", b"0123456789".to_vec());
        assert_eq!(v.patch("/f", 4, b"zz"), Ok(()));
        assert_eq!(v.read("/f"), Some(&b"0123zz6789"[..]));
        // Boundary: a patch ending exactly at the file's end is fine.
        assert_eq!(v.patch("/f", 8, b"ab"), Ok(()));
        assert_eq!(v.read("/f"), Some(&b"0123zz67ab"[..]));
        // Empty patch at the end offset touches nothing but is in range.
        assert_eq!(v.patch("/f", 10, b""), Ok(()));
    }

    #[test]
    fn patch_rejects_out_of_range_and_missing() {
        let mut v = Vfs::new();
        v.write("/f", b"0123456789".to_vec());
        // One byte past the end: error, not a clip.
        assert_eq!(
            v.patch("/f", 8, b"abc"),
            Err(VfsError::OutOfRange {
                path: "/f".into(),
                offset: 8,
                len: 3,
                file_len: 10,
            })
        );
        assert_eq!(v.read("/f"), Some(&b"0123456789"[..]), "file untouched");
        assert!(matches!(
            v.patch("/f", 10, b"x"),
            Err(VfsError::OutOfRange { .. })
        ));
        // Overflow-proof: offset + len wrapping must not panic or pass.
        assert!(matches!(
            v.patch("/f", usize::MAX, b"x"),
            Err(VfsError::OutOfRange { .. })
        ));
        assert_eq!(
            v.patch("/nope", 0, b"x"),
            Err(VfsError::NotFound { path: "/nope".into() })
        );
    }

    #[test]
    fn remove_and_accounting() {
        let mut v = Vfs::new();
        v.write("/a", b"12345".to_vec());
        v.write("/b", b"678".to_vec());
        assert_eq!(v.total_bytes(), 8);
        assert_eq!(v.remove("/a"), Some(b"12345".to_vec()));
        assert_eq!(v.len(), 1);
        assert!(!v.exists("/a"));
    }

    #[test]
    fn export_import_round_trip() {
        let mut v = Vfs::new();
        v.write("/var/lib/oprofile/samples/current.db", b"binary\x00data".to_vec());
        v.write("/jikes/RVM.map", b"00000000 00004000 m\n".to_vec());
        v.write("/var/lib/oprofile/jit/4/map.0000000000", b"entry\n".to_vec());
        let dir = std::env::temp_dir().join(format!("viprof-vfs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(v.export_to_dir(&dir).unwrap(), 3);
        let back = Vfs::import_from_dir(&dir).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(
            back.read("/var/lib/oprofile/samples/current.db"),
            v.read("/var/lib/oprofile/samples/current.db")
        );
        assert_eq!(back.read("/jikes/RVM.map"), v.read("/jikes/RVM.map"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_bytes_is_independent_copy() {
        let mut v = Vfs::new();
        v.write("/a", b"data".to_vec());
        let b = v.read_bytes("/a").unwrap();
        v.write("/a", b"other".to_vec());
        assert_eq!(&b[..], b"data");
    }
}
