//! Experiment harness shared by the figure-regenerating binaries.
//!
//! Reproduction protocol (paper §4.1): each configuration is run ten
//! times, the fastest and slowest runs are dropped, and the remaining
//! eight are averaged. Every run gets its own noise seed (derived
//! deterministically from the experiment seed, benchmark, configuration
//! and trial index), mirroring the run-to-run variation of a real
//! full-system testbed.

use crossbeam::channel;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::OnceLock;
use viprof_telemetry::{names, Telemetry};
use viprof_workloads::{
    calibrate, catalog, programs, run_benchmark, BenchParams, ProfilerKind, Suite, WorkPlan,
};

/// Harness options, read from the environment so `cargo run` stays
/// simple:
///
/// * `VIPROF_SCALE`  — fraction of the paper's base seconds to simulate
///   (default 1.0; the simulator is fast enough for full scale);
/// * `VIPROF_TRIALS` — runs per configuration (default 10, the paper's);
/// * `VIPROF_SEED`   — experiment master seed (default 2007).
#[derive(Debug, Clone, Copy)]
pub struct HarnessOpts {
    pub scale: f64,
    pub trials: u32,
    pub seed: u64,
}

impl HarnessOpts {
    /// The harness knobs as the `config` block of the shared artifact
    /// envelope (see [`write_artifact`]).
    pub fn config_json(&self) -> serde_json::Value {
        serde_json::json!({ "scale": self.scale, "trials": self.trials })
    }

    pub fn from_env() -> HarnessOpts {
        let get = |k: &str| std::env::var(k).ok();
        HarnessOpts {
            scale: get("VIPROF_SCALE")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1.0),
            trials: get("VIPROF_TRIALS")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10),
            seed: get("VIPROF_SEED")
                .and_then(|v| v.parse().ok())
                .unwrap_or(2007),
        }
    }
}

/// The paper's measurement protocol: drop min and max, average the rest.
pub fn trimmed_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    if xs.len() <= 2 {
        return xs.iter().sum::<f64>() / xs.len() as f64;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let inner = &v[1..v.len() - 1];
    inner.iter().sum::<f64>() / inner.len() as f64
}

/// Stable per-run seed (FNV-1a over the identifying tuple).
pub fn run_seed(master: u64, bench: &str, config: &str, trial: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ master;
    for b in bench
        .bytes()
        .chain(config.bytes())
        .chain(trial.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One profiler configuration of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Fig2Config {
    Base,
    Oprofile90k,
    Viprof45k,
    Viprof90k,
    Viprof450k,
}

impl Fig2Config {
    pub const ALL: [Fig2Config; 5] = [
        Fig2Config::Base,
        Fig2Config::Oprofile90k,
        Fig2Config::Viprof45k,
        Fig2Config::Viprof90k,
        Fig2Config::Viprof450k,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Fig2Config::Base => "base",
            Fig2Config::Oprofile90k => "Oprof 90K",
            Fig2Config::Viprof45k => "VIProf 45K",
            Fig2Config::Viprof90k => "VIProf 90K",
            Fig2Config::Viprof450k => "VIProf 450K",
        }
    }

    pub fn profiler(self) -> ProfilerKind {
        match self {
            Fig2Config::Base => ProfilerKind::None,
            Fig2Config::Oprofile90k => ProfilerKind::oprofile_at(90_000),
            Fig2Config::Viprof45k => ProfilerKind::viprof_at(45_000),
            Fig2Config::Viprof90k => ProfilerKind::viprof_at(90_000),
            Fig2Config::Viprof450k => ProfilerKind::viprof_at(450_000),
        }
    }
}

/// Measured seconds for every config of one benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct BenchMeasurement {
    pub name: String,
    pub suite: String,
    /// Trimmed-mean seconds per config label.
    pub seconds: BTreeMap<String, f64>,
    /// Slowdown vs. base per config label.
    pub slowdown: BTreeMap<String, f64>,
}

/// Measure one benchmark across the given configs.
pub fn measure_benchmark(
    params: &BenchParams,
    configs: &[Fig2Config],
    opts: HarnessOpts,
) -> BenchMeasurement {
    let built = programs::build(params);
    let plan: WorkPlan = calibrate(&built, opts.scale);
    let mut seconds = BTreeMap::new();
    for cfg in configs {
        let mut runs = Vec::with_capacity(opts.trials as usize);
        for trial in 0..opts.trials {
            let seed = run_seed(opts.seed, params.name, cfg.label(), trial);
            let out = run_benchmark(&built, &plan, cfg.profiler(), seed, true);
            runs.push(out.seconds);
        }
        seconds.insert(cfg.label().to_string(), trimmed_mean(&runs));
    }
    let base = seconds.get("base").copied().unwrap_or(f64::NAN);
    let slowdown = seconds
        .iter()
        .map(|(k, v)| (k.clone(), v / base))
        .collect();
    BenchMeasurement {
        name: params.name.to_string(),
        suite: params.suite.as_str().to_string(),
        seconds,
        slowdown,
    }
}

/// Measure the whole catalog in parallel (one thread per benchmark).
pub fn measure_catalog(configs: &[Fig2Config], opts: HarnessOpts) -> Vec<BenchMeasurement> {
    let benchmarks = catalog();
    let (tx, rx) = channel::unbounded();
    std::thread::scope(|scope| {
        for params in &benchmarks {
            let tx = tx.clone();
            let configs = configs.to_vec();
            scope.spawn(move || {
                let m = measure_benchmark(params, &configs, opts);
                tx.send((params.name, m)).expect("harness channel closed");
            });
        }
        drop(tx);
    });
    let mut by_name: BTreeMap<&str, BenchMeasurement> = rx.into_iter().collect();
    // Preserve catalog order.
    benchmarks
        .iter()
        .filter_map(|p| by_name.remove(p.name))
        .collect()
}

/// Collapse the seven JVM98 programs into the single averaged bar of
/// Figure 2, and append the cross-benchmark average row.
pub fn figure2_rows(measurements: &[BenchMeasurement]) -> Vec<BenchMeasurement> {
    let mut rows = Vec::new();
    rows.extend(
        measurements
            .iter()
            .filter(|m| m.suite == Suite::PseudoJbb.as_str())
            .cloned(),
    );
    let jvm98: Vec<&BenchMeasurement> = measurements
        .iter()
        .filter(|m| m.suite == Suite::Jvm98.as_str())
        .collect();
    if !jvm98.is_empty() {
        rows.push(average_rows("JVM98", &jvm98));
    }
    rows.extend(
        measurements
            .iter()
            .filter(|m| m.suite == Suite::Dacapo.as_str())
            .cloned(),
    );
    let shown: Vec<&BenchMeasurement> = rows.iter().collect();
    rows.push(average_rows("Average", &shown));
    rows
}

fn average_rows(name: &str, rows: &[&BenchMeasurement]) -> BenchMeasurement {
    let mut seconds = BTreeMap::new();
    let mut slowdown = BTreeMap::new();
    if let Some(first) = rows.first() {
        for key in first.seconds.keys() {
            let s: f64 = rows.iter().map(|r| r.seconds[key]).sum::<f64>() / rows.len() as f64;
            seconds.insert(key.clone(), s);
            let d: f64 = rows.iter().map(|r| r.slowdown[key]).sum::<f64>() / rows.len() as f64;
            slowdown.insert(key.clone(), d);
        }
    }
    BenchMeasurement {
        name: name.to_string(),
        suite: "aggregate".to_string(),
        seconds,
        slowdown,
    }
}

/// Where experiment outputs land (`VIPROF_RESULTS`, default `results/`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("VIPROF_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// `VIPROF_QUIET=1` silences the harness's progress chatter on stderr
/// (the artifacts themselves are unaffected). Telemetry still records
/// everything — `harness_telemetry()` is the quiet channel.
pub fn quiet() -> bool {
    static QUIET: OnceLock<bool> = OnceLock::new();
    *QUIET.get_or_init(|| {
        std::env::var("VIPROF_QUIET").map_or(false, |v| !v.is_empty() && v != "0")
    })
}

/// The harness-process telemetry registry: one per process, shared by
/// every artifact write so a run's activity can be dumped at exit.
pub fn harness_telemetry() -> &'static Telemetry {
    static REGISTRY: OnceLock<Telemetry> = OnceLock::new();
    REGISTRY.get_or_init(Telemetry::new)
}

/// Persist a `BENCH_*.json` artifact in the canonical envelope every
/// bench bin shares: `{name, seed, config, metrics, gates}`.
/// `viprof-diff` detects this shape and diffs the `metrics`/`gates`
/// subtrees, so two fixed-seed runs of the same bin can be gated
/// against each other (or against a committed artifact) uniformly.
pub fn write_artifact<C: Serialize, M: Serialize, G: Serialize>(
    file: &str,
    seed: u64,
    config: &C,
    metrics: &M,
    gates: &G,
) {
    let value = serde_json::json!({
        "name": file.trim_end_matches(".json"),
        "seed": seed,
        "config": config,
        "metrics": metrics,
        "gates": gates,
    });
    write_json(file, &value);
}

/// Persist a JSON result artifact.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    let data = serde_json::to_string_pretty(value).expect("serialize results");
    std::fs::write(&path, &data).expect("write results");
    let t = harness_telemetry();
    t.counter(names::BENCH_ARTIFACTS_WRITTEN).inc();
    t.event(
        names::EVENT_BENCH_ARTIFACT,
        &path.display().to_string(),
        &[("bytes", data.len() as u64)],
    );
    if !quiet() {
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_drops_extremes() {
        let xs = [1.0, 10.0, 2.0, 3.0, 100.0];
        // drops 1.0 and 100.0 → mean of (2,3,10) = 5
        assert!((trimmed_mean(&xs) - 5.0).abs() < 1e-12);
        assert_eq!(trimmed_mean(&[4.0]), 4.0);
        assert_eq!(trimmed_mean(&[4.0, 6.0]), 5.0);
    }

    #[test]
    fn write_json_records_an_artifact_event() {
        let dir = std::env::temp_dir().join(format!("viprof-bench-results-{}", std::process::id()));
        std::env::set_var("VIPROF_RESULTS", &dir);
        let before = harness_telemetry()
            .counter(names::BENCH_ARTIFACTS_WRITTEN)
            .get();
        write_json("telemetry-probe.json", &BTreeMap::from([("ok", 1u64)]));
        let snap = harness_telemetry().snapshot();
        assert_eq!(snap.counter(names::BENCH_ARTIFACTS_WRITTEN), before + 1);
        assert!(snap
            .events_of(names::EVENT_BENCH_ARTIFACT)
            .iter()
            .any(|e| e.detail.contains("telemetry-probe.json")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_seeds_are_distinct_and_stable() {
        let a = run_seed(1, "antlr", "base", 0);
        let b = run_seed(1, "antlr", "base", 1);
        let c = run_seed(1, "antlr", "Oprof 90K", 0);
        let d = run_seed(2, "antlr", "base", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, run_seed(1, "antlr", "base", 0));
    }

    #[test]
    fn figure2_rows_aggregate_jvm98_and_average() {
        let mk = |name: &str, suite: &str, slow: f64| BenchMeasurement {
            name: name.to_string(),
            suite: suite.to_string(),
            seconds: BTreeMap::from([("base".to_string(), 10.0)]),
            slowdown: BTreeMap::from([("base".to_string(), slow)]),
        };
        let ms = vec![
            mk("compress", "JVM98", 1.02),
            mk("jess", "JVM98", 1.04),
            mk("pseudojbb", "pseudoJBB", 1.01),
            mk("antlr", "DaCapo", 1.12),
        ];
        let rows = figure2_rows(&ms);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["pseudojbb", "JVM98", "antlr", "Average"]);
        let jvm98 = &rows[1];
        assert!((jvm98.slowdown["base"] - 1.03).abs() < 1e-12);
        let avg = &rows[3];
        assert!((avg.slowdown["base"] - (1.01 + 1.03 + 1.12) / 3.0).abs() < 1e-12);
    }
}
