//! Live-resolution benchmark: incremental epoch extension vs. full
//! re-flattening, and streaming snapshot latency.
//!
//! Two measurements on the acceptance session (1M samples, 64 epochs,
//! 4 PIDs, 4096 methods per PID — the same `deep_epochs_1m` shape
//! `bench_resolve` gates):
//!
//! 1. **Index maintenance.** A naive live engine re-flattens a PID's
//!    whole epoch chain after every drain; `FlatIndex::extend` re-sweeps
//!    only the address window the new map touches. Both paths process
//!    the same 64-epoch chain epoch by epoch, the final indexes are
//!    asserted `==`, and the incremental path must not lose.
//!
//! 2. **Streaming snapshots.** A [`viprof::LiveEngine`] is fed one
//!    drain batch per epoch (maps appearing as they are "compiled"),
//!    with `snapshot()` latency measured mid-run and after sealing. The
//!    sealed snapshot is asserted identical — lines, quality,
//!    incarnations — to the batch `ResolutionEngine` over the same
//!    database.
//!
//! Results land in `results/BENCH_live.json`. Usage:
//! `bench_live [--smoke]` — `--smoke` shrinks the session so
//! `scripts/verify.sh` can run it as a correctness gate in seconds.

use oprofile::{SampleBucket, SampleDb, SampleOrigin};
use serde::Serialize;
use sim_cpu::HwEvent;
use sim_os::Kernel;
use std::time::Instant;
use viprof::codemap::{map_path, render_map, CodeMapEntry, CodeMapSet, EpochMap};
use viprof::resolve::ResolveOptions;
use viprof::{FlatIndex, LiveEngine, LiveSpec, ReportSpec, ResolutionEngine, ViprofResolver};
use viprof_bench::{quiet, write_artifact};
use viprof_telemetry::{names, Telemetry};

/// Master seed of the deterministic sample stream (the scenario
/// derives its stream as `GENERATOR_SEED ^ samples`).
const GENERATOR_SEED: u64 = 0x11FE;

/// Deterministic generator (SplitMix64), same recurrence as
/// `bench_resolve` so runs are reproducible bit for bit.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const BASE: u64 = 0x6400_0000;
const METHOD_STRIDE: u64 = 0x100;
const METHOD_SIZE: u64 = 0x80;

#[derive(Clone, Copy)]
struct Scenario {
    pids: usize,
    epochs: u64,
    methods_per_pid: u64,
    samples: u64,
}

const ACCEPTANCE: Scenario = Scenario {
    pids: 4,
    epochs: 64,
    methods_per_pid: 4096,
    samples: 1_000_000,
};

/// Method `m` is compiled in epoch `m % epochs` at
/// `BASE + m * METHOD_STRIDE` — the `bench_resolve` layout.
fn epoch_entries(s: &Scenario, pid_no: usize, epoch: u64) -> Vec<CodeMapEntry> {
    (0..s.methods_per_pid)
        .filter(|m| m % s.epochs == epoch)
        .map(|m| CodeMapEntry {
            addr: BASE + m * METHOD_STRIDE,
            size: METHOD_SIZE,
            level: "O2".to_string(),
            signature: format!("bench.P{pid_no}.M{m:05}.run"),
        })
        .collect()
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

#[derive(Serialize)]
struct IndexMaintenance {
    chains: usize,
    epochs_per_chain: u64,
    entries_per_chain: u64,
    /// Total time to grow every chain epoch by epoch via
    /// `FlatIndex::extend`.
    incremental_ms: f64,
    /// Total time to re-run `FlatIndex::build` on the chain prefix
    /// after every epoch (the naive per-drain rebuild).
    full_reflatten_ms: f64,
    speedup: f64,
}

/// Grow one chain both ways, min-of-`trials` each, and check the final
/// indexes are identical. Prefix sets are materialized outside the
/// timed region — the comparison is flattening work, not cloning.
fn measure_index_maintenance(s: &Scenario, trials: u32) -> IndexMaintenance {
    let chains: Vec<Vec<EpochMap>> = (0..s.pids)
        .map(|i| {
            (0..s.epochs)
                .map(|e| EpochMap::new(e, epoch_entries(s, i, e)))
                .collect()
        })
        .collect();
    let prefixes: Vec<Vec<CodeMapSet>> = chains
        .iter()
        .map(|chain| {
            (0..chain.len())
                .map(|e| CodeMapSet::new(chain[..=e].to_vec()))
                .collect()
        })
        .collect();

    let mut incremental_ms = f64::INFINITY;
    let mut full_reflatten_ms = f64::INFINITY;
    for _ in 0..trials {
        let t = Instant::now();
        let mut grown = Vec::with_capacity(chains.len());
        for chain in &chains {
            let mut idx = FlatIndex::build(&CodeMapSet::default());
            for (ordinal, map) in chain.iter().enumerate() {
                assert!(
                    idx.extend(map, ordinal as u32),
                    "in-order epoch append must take the fast path"
                );
            }
            grown.push(idx);
        }
        incremental_ms = incremental_ms.min(ms_since(t));

        let t = Instant::now();
        let mut rebuilt = Vec::with_capacity(prefixes.len());
        for per_epoch in &prefixes {
            let mut last = FlatIndex::default();
            for set in per_epoch {
                last = FlatIndex::build(set);
            }
            rebuilt.push(last);
        }
        full_reflatten_ms = full_reflatten_ms.min(ms_since(t));

        assert_eq!(
            grown, rebuilt,
            "extend-grown index diverged from the rebuilt chain"
        );
    }

    IndexMaintenance {
        chains: s.pids,
        epochs_per_chain: s.epochs,
        entries_per_chain: s.methods_per_pid,
        incremental_ms,
        full_reflatten_ms,
        speedup: full_reflatten_ms / incremental_ms,
    }
}

#[derive(Serialize)]
struct StreamingRun {
    batches: u64,
    samples: u64,
    incremental_extends: u64,
    full_rebuilds: u64,
    /// Total time spent inside `on_batch` across the run.
    ingest_ms: f64,
    midrun_snapshot_ms: f64,
    sealed_snapshot_ms: f64,
    /// Sealed snapshot with `ReportSpec::trace` off — the baseline for
    /// the lineage/trace overhead gate.
    sealed_plain_ms: f64,
    batch_report_ms: f64,
    trace_overhead_pct: f64,
}

/// One drain per epoch: the epoch's maps land on disk, then a batch of
/// samples (uniform over the methods compiled so far, tagged with the
/// current epoch) is pushed through `on_batch`.
fn measure_streaming(s: &Scenario, threads: usize) -> StreamingRun {
    let mut kernel = Kernel::new();
    let pids: Vec<_> = (0..s.pids)
        .map(|i| kernel.spawn(format!("jikesrvm-{i}")))
        .collect();

    let registry = Telemetry::new();
    let mut live = LiveEngine::new(LiveSpec::new());
    live.set_telemetry(&registry);
    let spec = ReportSpec::default().threads(threads);

    let mut rng = SplitMix64(GENERATOR_SEED ^ s.samples);
    let per_batch = s.samples / s.epochs;
    let mut ingest_ms = 0.0;
    let mut midrun_snapshot_ms = 0.0;
    for epoch in 0..s.epochs {
        for (i, &pid) in pids.iter().enumerate() {
            kernel.vfs.write(
                map_path(pid, epoch),
                render_map(&epoch_entries(s, i, epoch)).into_bytes(),
            );
        }
        let mut batch = SampleDb::new();
        for _ in 0..per_batch {
            let pid = pids[rng.below(s.pids as u64) as usize];
            let m = rng.below(s.methods_per_pid);
            batch.add(
                SampleBucket {
                    origin: SampleOrigin::JitApp { pid, gen: 0 },
                    event: HwEvent::Cycles,
                    addr: BASE + m * METHOD_STRIDE + rng.below(METHOD_SIZE),
                    epoch,
                },
                1,
            );
        }
        let t = Instant::now();
        live.on_batch(&kernel, Some(epoch), &batch, None);
        ingest_ms += ms_since(t);
        if epoch == s.epochs / 2 {
            let t = Instant::now();
            let _ = live.snapshot(&kernel, &spec);
            midrun_snapshot_ms = ms_since(t);
        }
    }

    live.seal(&kernel);
    let spec_plain = ReportSpec::default().threads(threads).with_trace(false);
    let t = Instant::now();
    let _ = live.snapshot(&kernel, &spec_plain);
    let sealed_plain_ms = ms_since(t);
    let t = Instant::now();
    let sealed = live.snapshot(&kernel, &spec);
    let sealed_snapshot_ms = ms_since(t);

    // The whole point of the stream: its sealed answer is the batch
    // engine's answer.
    let t = Instant::now();
    let (resolver, _) =
        ViprofResolver::load_with(&kernel, ResolveOptions::default()).expect("load maps");
    let mut engine = ResolutionEngine::build(&resolver);
    let offline = engine.resolve(live.db(), &kernel, &spec);
    let batch_report_ms = ms_since(t);
    assert_eq!(sealed.lines, offline.lines, "live report diverged from batch");
    assert_eq!(sealed.quality, offline.quality, "live quality diverged from batch");
    assert_eq!(
        sealed.incarnations, offline.incarnations,
        "live incarnation rows diverged from batch"
    );
    // Lineage and trace are pure functions of (journal, quality,
    // incarnations): the sealed stream and the offline batch pass must
    // agree byte for byte.
    assert_eq!(sealed.lineage, offline.lineage, "live lineage diverged from batch");
    assert_eq!(
        sealed.trace.to_chrome_json(),
        offline.trace.to_chrome_json(),
        "live trace diverged from batch"
    );

    let snap = registry.snapshot();
    StreamingRun {
        batches: live.batches(),
        samples: live.db().total_samples(),
        incremental_extends: snap.counter(names::LIVE_INCREMENTAL_EXTENDS),
        full_rebuilds: snap.counter(names::LIVE_FULL_REBUILDS),
        ingest_ms,
        midrun_snapshot_ms,
        sealed_snapshot_ms,
        sealed_plain_ms,
        batch_report_ms,
        trace_overhead_pct: (sealed_snapshot_ms - sealed_plain_ms) / sealed_plain_ms * 100.0,
    }
}

#[derive(Serialize)]
struct BenchConfig {
    smoke: bool,
    trials: u32,
    samples: u64,
    epochs: u64,
    pids: usize,
    methods_per_pid: u64,
}

#[derive(Serialize)]
struct BenchMetrics {
    index_maintenance: IndexMaintenance,
    streaming: StreamingRun,
}

#[derive(Serialize)]
struct BenchGates {
    incremental_beats_reflatten: bool,
    streaming_took_incremental_path: bool,
    sealed_trace_overhead_under_3pct: bool,
}

/// Min-of-N deltas on sub-millisecond smoke runs are noise; an absolute
/// 0.5 ms slack keeps the gate meaningful at every scale (the same
/// convention as `bench_resolve`'s telemetry gate).
fn faster_ok(fast_ms: f64, slow_ms: f64) -> bool {
    fast_ms < slow_ms || fast_ms - slow_ms < 0.5
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trials = if smoke { 1 } else { 3 };
    let mut s = ACCEPTANCE;
    if smoke {
        s.samples = 20_000;
        s.methods_per_pid = s.methods_per_pid.min(256);
    }

    if !quiet() {
        eprintln!(
            "index maintenance: {} chains x {} epochs ({} entries each)...",
            s.pids, s.epochs, s.methods_per_pid
        );
    }
    let maintenance = measure_index_maintenance(&s, trials);
    println!(
        "index maintenance: incremental {:>8.2} ms | reflatten {:>8.2} ms ({:.2}x)",
        maintenance.incremental_ms, maintenance.full_reflatten_ms, maintenance.speedup
    );
    assert!(
        faster_ok(maintenance.incremental_ms, maintenance.full_reflatten_ms),
        "incremental extend lost to full re-flattening: {:.2} ms vs {:.2} ms",
        maintenance.incremental_ms,
        maintenance.full_reflatten_ms
    );

    if !quiet() {
        eprintln!("streaming {} samples over {} drains...", s.samples, s.epochs);
    }
    let streaming = measure_streaming(&s, 4);
    println!(
        "streaming: {} batches ingested in {:>8.2} ms | snapshot mid {:.2} ms, sealed {:.2} ms | batch report {:.2} ms",
        streaming.batches,
        streaming.ingest_ms,
        streaming.midrun_snapshot_ms,
        streaming.sealed_snapshot_ms,
        streaming.batch_report_ms
    );
    assert!(
        streaming.incremental_extends > 0,
        "streaming run never took the incremental path"
    );
    println!(
        "trace overhead (sealed snapshot): {:+.2}% ({:.2} -> {:.2} ms)",
        streaming.trace_overhead_pct, streaming.sealed_plain_ms, streaming.sealed_snapshot_ms
    );
    // Same budget as bench_resolve's telemetry gate: <3% or <0.5 ms.
    let trace_gate = streaming.sealed_snapshot_ms - streaming.sealed_plain_ms < 0.5
        || streaming.trace_overhead_pct < 3.0;
    assert!(
        trace_gate,
        "lineage/trace overhead on the sealed snapshot exceeds 3%: {:.2}%",
        streaming.trace_overhead_pct
    );

    let gates = BenchGates {
        incremental_beats_reflatten: faster_ok(
            maintenance.incremental_ms,
            maintenance.full_reflatten_ms,
        ),
        streaming_took_incremental_path: streaming.incremental_extends > 0,
        sealed_trace_overhead_under_3pct: trace_gate,
    };
    write_artifact(
        "BENCH_live.json",
        GENERATOR_SEED,
        &BenchConfig {
            smoke,
            trials,
            samples: s.samples,
            epochs: s.epochs,
            pids: s.pids,
            methods_per_pid: s.methods_per_pid,
        },
        &BenchMetrics {
            index_maintenance: maintenance,
            streaming,
        },
        &gates,
    );
}
