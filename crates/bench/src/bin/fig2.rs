//! Regenerate **Figure 2**: execution-time overhead of profiling with
//! VIProf compared to OProfile, normalized to unprofiled base time.
//!
//! Configurations (as in the paper): base, OProfile at the median
//! 90K-cycle sampling period, and VIProf at 45K / 90K / 450K.
//!
//! ```text
//! cargo run --release -p viprof-bench --bin fig2
//! ```

use viprof_bench::{figure2_rows, measure_catalog, quiet, write_artifact, Fig2Config, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_env();
    if !quiet() {
        eprintln!(
            "fig2: overhead sweep, scale {} trials {} seed {}",
            opts.scale, opts.trials, opts.seed
        );
    }
    let measurements = measure_catalog(&Fig2Config::ALL, opts);
    let rows = figure2_rows(&measurements);

    println!("Figure 2: Overhead of profiling with VIProf compared to Oprofile.");
    println!("(slowdown normalized to base execution time; higher = slower)\n");
    print!("{:<12}", "benchmark");
    let configs = [
        Fig2Config::Oprofile90k,
        Fig2Config::Viprof45k,
        Fig2Config::Viprof90k,
        Fig2Config::Viprof450k,
    ];
    for c in configs {
        print!("{:>13}", c.label());
    }
    println!();
    for row in &rows {
        print!("{:<12}", row.name);
        for c in configs {
            print!("{:>13.4}", row.slowdown[c.label()]);
        }
        println!();
    }

    // Paper headline checks, printed for EXPERIMENTS.md.
    let avg = rows.iter().find(|r| r.name == "Average").unwrap();
    let antlr = rows.iter().find(|r| r.name == "antlr").unwrap();
    println!("\nHeadlines vs. paper:");
    println!(
        "  OProfile 90K average slowdown: {:.3} (paper: ~1.05)",
        avg.slowdown["Oprof 90K"]
    );
    println!(
        "  VIProf   90K average slowdown: {:.3} (paper: similar to OProfile, ~1.05)",
        avg.slowdown["VIProf 90K"]
    );
    println!(
        "  antlr VIProf 90K: {:.3} (paper: the one benchmark above 1.10)",
        antlr.slowdown["VIProf 90K"]
    );
    let below_ten = rows
        .iter()
        .filter(|r| !matches!(r.name.as_str(), "Average"))
        .filter(|r| r.slowdown["VIProf 90K"] < 1.10)
        .count();
    println!(
        "  benchmarks below 1.10 at VIProf 90K: {}/{} (paper: all but antlr)",
        below_ten,
        rows.len() - 1
    );

    write_artifact(
        "fig2.json",
        opts.seed,
        &opts.config_json(),
        &rows,
        &serde_json::json!({
            "benchmarks_below_1_10_at_90k": below_ten,
        }),
    );
}
