//! **E4 — epoch-chained resolution ablation (paper §3.1–3.2).**
//!
//! Runs an adversarial churn workload (tiny heap, constant compilation
//! and code movement), then resolves every JIT sample several ways:
//!
//! 1. `chained` — the paper's algorithm: the sample's epoch map, then
//!    walk backwards;
//! 2. `same-epoch` — only the sample's own epoch map (no backward walk);
//! 3. `final-map` — only the last map written;
//! 4. `chained + precise moves` — the paper's algorithm over maps from
//!    an agent that snapshots moved addresses at move time.
//!
//! Finding (documented in EXPERIMENTS.md): the paper's flag-only move
//! protocol loses a small fraction of samples — a body moved by one
//! collection whose method is recompiled before the next map write
//! never gets its moved address recorded (the paper concedes samples
//! may not be found, §3.1). The precise-move agent closes the gap to
//! 100 %.
//!
//! ```text
//! cargo run --release -p viprof-bench --bin ablation_epochs
//! ```

use oprofile::{OpConfig, SampleOrigin};
use serde::Serialize;
use viprof::codemap::CodeMapSet;
use viprof_bench::{write_artifact, HarnessOpts};
use viprof_workloads::{calibrate, find_benchmark, programs, run_benchmark, ProfilerKind};

#[derive(Serialize, Default)]
struct Rates {
    jit_samples: u64,
    chained: u64,
    same_epoch_only: u64,
    final_map_only: u64,
}

#[derive(Serialize)]
struct EpochAblation {
    paper_mode: Rates,
    precise_mode: Rates,
    epochs: u64,
    maps: usize,
}

fn resolve_rates(out: &viprof_workloads::RunOutcome) -> (Rates, u64, usize) {
    let db = out.db.as_ref().expect("profiled run");
    let pid = db
        .iter()
        .find_map(|(b, _)| match b.origin {
            SampleOrigin::JitApp { pid, .. } => Some(pid),
            _ => None,
        })
        .expect("run must produce JIT samples");
    let maps = CodeMapSet::load(&out.machine.kernel.vfs, pid).expect("maps load");
    let last_epoch = maps.maps().last().map(|m| m.epoch).unwrap_or(0);
    let mut r = Rates::default();
    for (bucket, count) in db.iter() {
        if !matches!(bucket.origin, SampleOrigin::JitApp { .. }) {
            continue;
        }
        r.jit_samples += count;
        if maps.resolve(bucket.addr, bucket.epoch).is_some() {
            r.chained += count;
        }
        if maps
            .maps()
            .iter()
            .find(|m| m.epoch == bucket.epoch)
            .and_then(|m| m.resolve(bucket.addr))
            .is_some()
        {
            r.same_epoch_only += count;
        }
        if maps
            .maps()
            .last()
            .and_then(|m| m.resolve(bucket.addr))
            .is_some()
        {
            r.final_map_only += count;
        }
    }
    (r, last_epoch + 1, maps.maps().len())
}

fn main() {
    let opts = HarnessOpts::from_env();
    // Adversarial churn: antlr with an even smaller heap, noise off so
    // the rates are exact.
    let mut params = find_benchmark("antlr").expect("antlr in catalog");
    params.heap_mb = 12;
    let built = programs::build(&params);
    let plan = calibrate(&built, (0.5 * opts.scale).clamp(0.01, 4.0));

    let paper_out = run_benchmark(
        &built,
        &plan,
        ProfilerKind::Viprof(OpConfig::time_at(30_000)),
        opts.seed,
        false,
    );
    let (paper, epochs, maps) = resolve_rates(&paper_out);
    let precise_out = run_benchmark(
        &built,
        &plan,
        ProfilerKind::ViprofPreciseMoves(OpConfig::time_at(30_000)),
        opts.seed,
        false,
    );
    let (precise, _, _) = resolve_rates(&precise_out);

    let pct = |n: u64, d: u64| 100.0 * n as f64 / d.max(1) as f64;
    println!("E4: epoch-chained resolution under adversarial churn");
    println!("  GC epochs: {epochs}   maps written: {maps}");
    println!("  JIT samples: {}\n", paper.jit_samples);
    println!("  resolution strategy                      resolved");
    println!(
        "  chained, flag-only agent (paper)          {:7.3}%",
        pct(paper.chained, paper.jit_samples)
    );
    println!(
        "  same-epoch map only                       {:7.3}%",
        pct(paper.same_epoch_only, paper.jit_samples)
    );
    println!(
        "  final map only                            {:7.3}%",
        pct(paper.final_map_only, paper.jit_samples)
    );
    println!(
        "  chained, precise-move agent (extension)   {:7.3}%",
        pct(precise.chained, precise.jit_samples)
    );

    assert!(
        pct(paper.chained, paper.jit_samples) > 99.0,
        "the paper's algorithm must resolve almost everything"
    );
    assert!(
        pct(paper.same_epoch_only, paper.jit_samples)
            < pct(paper.chained, paper.jit_samples) - 10.0,
        "the backward walk must matter"
    );
    assert_eq!(
        precise.chained, precise.jit_samples,
        "precise moves must resolve 100%"
    );
    write_artifact(
        "ablation_epochs.json",
        opts.seed,
        &opts.config_json(),
        &EpochAblation {
            paper_mode: paper,
            precise_mode: precise,
            epochs,
            maps,
        },
        &serde_json::json!({
            "chained_resolves_over_99pct": true,
            "backward_walk_matters": true,
            "precise_moves_resolve_all": true,
        }),
    );
}
