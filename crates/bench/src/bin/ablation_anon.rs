//! **E6 — anon-path replacement (paper §3 / §4.3).**
//!
//! "While most benchmarks experienced a slight slowdown compared to
//! Oprofile, a few experienced speedups. We believe this is due to
//! VIProf avoiding the anonymous memory logging code in Oprofile
//! (which we replace with our VIProf mapping code)."
//!
//! This ablation isolates the driver-side effect by zeroing the VM
//! agent's costs: with agent work free, VIProf's only difference from
//! OProfile is the per-sample logging path — and because most samples
//! land in JIT code (anon to OProfile), VIProf must come out *faster*.
//! A second sweep varies `nmi_anon_log_cycles` to show the gap scales
//! with exactly that constant.
//!
//! ```text
//! cargo run --release -p viprof-bench --bin ablation_anon
//! ```

use oprofile::OpConfig;
use serde::Serialize;
use sim_cpu::CostModel;
use viprof_bench::{run_seed, trimmed_mean, write_artifact, HarnessOpts};
use viprof_workloads::{calibrate, find_benchmark, programs, run_benchmark, ProfilerKind};

#[derive(Serialize)]
struct AnonAblation {
    anon_log_cycles: u64,
    oprofile_slowdown: f64,
    viprof_agent_free_slowdown: f64,
}

/// Agent-free cost model: driver paths intact, VM-agent work zeroed.
fn agent_free(anon_log_cycles: u64) -> CostModel {
    CostModel {
        nmi_anon_log_cycles: anon_log_cycles,
        agent_compile_log_cycles: 0,
        agent_move_flag_cycles: 0,
        mapwrite_base_cycles: 0,
        mapwrite_per_entry_cycles: 0,
        vm_probe_cycles: 0,
        ..CostModel::default()
    }
}

fn main() {
    let opts = HarnessOpts::from_env();
    let params = find_benchmark("ps").expect("ps in catalog");
    let built = programs::build(&params);
    let plan = calibrate(&built, (0.5 * opts.scale).clamp(0.01, 4.0));
    // Noise off → runs are deterministic; one trial is exact.
    let trials = 1;

    println!("E6: driver-path ablation (agent costs zeroed), DaCapo ps @ 90K");
    println!(
        "{:>12}{:>12}{:>16}{:>10}",
        "anon cycles", "OProfile", "VIProf(no agent)", "delta"
    );
    let mut rows = Vec::new();
    for anon_cycles in [0u64, 700, 1_400, 2_800, 5_600] {
        let cost = agent_free(anon_cycles);
        let mut bases = Vec::new();
        let mut oprofs = Vec::new();
        let mut viprofs = Vec::new();
        for t in 0..trials {
            let key = format!("anon{anon_cycles}");
            bases.push(
                run_benchmark(
                    &built,
                    &plan,
                    ProfilerKind::None,
                    run_seed(opts.seed, "anon-base", &key, t),
                    false,
                )
                .seconds,
            );
            oprofs.push(
                run_benchmark(
                    &built,
                    &plan,
                    ProfilerKind::Oprofile(OpConfig::time_at(90_000).with_cost(cost)),
                    run_seed(opts.seed, "anon-op", &key, t),
                    false,
                )
                .seconds,
            );
            viprofs.push(
                run_benchmark(
                    &built,
                    &plan,
                    ProfilerKind::Viprof(OpConfig::time_at(90_000).with_cost(cost)),
                    run_seed(opts.seed, "anon-vip", &key, t),
                    false,
                )
                .seconds,
            );
        }
        let base = trimmed_mean(&bases);
        let o = trimmed_mean(&oprofs) / base;
        let v = trimmed_mean(&viprofs) / base;
        println!(
            "{:>12}{:>12.4}{:>16.4}{:>+10.4}",
            anon_cycles,
            o,
            v,
            v - o
        );
        rows.push(AnonAblation {
            anon_log_cycles: anon_cycles,
            oprofile_slowdown: o,
            viprof_agent_free_slowdown: v,
        });
    }
    // Shape: with the default anon cost, agent-free VIProf beats
    // OProfile; the gap grows with the anon-path cost.
    let default_row = &rows[2];
    assert!(
        default_row.viprof_agent_free_slowdown < default_row.oprofile_slowdown,
        "VIProf's replacement of the anon path must win when agent work is free"
    );
    let first_gap = rows[0].oprofile_slowdown - rows[0].viprof_agent_free_slowdown;
    let last_gap = rows[4].oprofile_slowdown - rows[4].viprof_agent_free_slowdown;
    assert!(
        last_gap > first_gap,
        "the gap must scale with the anon-path cost"
    );
    write_artifact(
        "ablation_anon.json",
        opts.seed,
        &opts.config_json(),
        &rows,
        &serde_json::json!({
            "agent_free_viprof_beats_oprofile": true,
            "gap_scales_with_anon_cost": last_gap > first_gap,
        }),
    );
}
