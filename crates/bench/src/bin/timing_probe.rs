//! Quick wall-clock probe: how expensive is one full-scale profiled
//! run? Used to choose the harness's default scale.

use std::time::Instant;
use viprof_workloads::{calibrate, find_benchmark, programs, run_benchmark, ProfilerKind};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "pseudojbb".into());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let built = programs::build(&find_benchmark(&name).unwrap());

    let t = Instant::now();
    let plan = calibrate(&built, scale);
    println!("calibrate: {:?} (total inv {})", t.elapsed(), plan.total_invocations());

    let t = Instant::now();
    let base = run_benchmark(&built, &plan, ProfilerKind::None, 1, true);
    println!(
        "base: sim {:.2}s wall {:?} (gcs {}, compiles {})",
        base.seconds,
        t.elapsed(),
        base.vm.gcs,
        base.vm.compiles
    );

    let t = Instant::now();
    let v = run_benchmark(&built, &plan, ProfilerKind::viprof_at(90_000), 1, true);
    println!(
        "viprof90k: sim {:.4}s wall {:?} samples {} slowdown {:.4}",
        v.seconds,
        t.elapsed(),
        v.db.as_ref().unwrap().total_samples(),
        v.seconds / base.seconds
    );

    let t = Instant::now();
    let o = run_benchmark(&built, &plan, ProfilerKind::oprofile_at(90_000), 1, true);
    println!(
        "oprof90k: sim {:.4}s wall {:?} slowdown {:.4}",
        o.seconds,
        t.elapsed(),
        o.seconds / base.seconds
    );
}
