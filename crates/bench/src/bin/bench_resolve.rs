//! Resolution-engine benchmark: legacy per-bucket epoch walk vs. the
//! flattened interval index, single-threaded and sharded.
//!
//! Synthetic sessions (1M–10M samples, varying epoch depth and PID
//! count) are generated deterministically, then each post-processing
//! path runs end to end — resolver load / index build, report
//! aggregation and quality classification — with the reports asserted
//! bit-identical between paths before any number is written. Results
//! land in `results/BENCH_resolve.json`.
//!
//! Usage: `bench_resolve [--smoke]` — `--smoke` shrinks every scenario
//! (and drops the 10M one) so `scripts/verify.sh` can run it as a
//! correctness smoke test in seconds.
//!
//! The run also measures the cost of the self-telemetry layer on the
//! acceptance scenario (resolve both paths with and without an
//! attached registry) and asserts it stays under 3% — always-on
//! telemetry is a design contract, not a hope.

use oprofile::report::ReportOptions;
use oprofile::{SampleBucket, SampleDb, SampleOrigin};
use serde::Serialize;
use sim_cpu::HwEvent;
use sim_os::Kernel;
use std::time::Instant;
use viprof::codemap::{map_path, render_map, CodeMapEntry};
use viprof::resolve::ResolveOptions;
use viprof::{viprof_report, ReportSpec, ResolutionEngine, ViprofResolver};
use viprof_bench::{quiet, write_artifact};
use viprof_telemetry::Telemetry;

/// Master seed of the deterministic session generator (each scenario
/// derives its stream as `GENERATOR_SEED ^ samples`).
const GENERATOR_SEED: u64 = 0x5EED;

/// Deterministic generator (SplitMix64) so every trial and every run
/// resolves the exact same session.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Clone, Copy)]
struct Scenario {
    name: &'static str,
    pids: usize,
    epochs: u64,
    methods_per_pid: u64,
    samples: u64,
}

const BASE: u64 = 0x6400_0000;
const METHOD_STRIDE: u64 = 0x100;
const METHOD_SIZE: u64 = 0x80;

const SCENARIOS: [Scenario; 4] = [
    // The acceptance scenario: deep epoch chains make the legacy
    // backward walk scan ~epochs/2 maps per bucket.
    Scenario {
        name: "deep_epochs_1m",
        pids: 4,
        epochs: 64,
        methods_per_pid: 4096,
        samples: 1_000_000,
    },
    Scenario {
        name: "shallow_epochs_1m",
        pids: 4,
        epochs: 4,
        methods_per_pid: 4096,
        samples: 1_000_000,
    },
    Scenario {
        name: "many_pids_1m",
        pids: 64,
        epochs: 16,
        methods_per_pid: 1024,
        samples: 1_000_000,
    },
    Scenario {
        name: "deep_epochs_10m",
        pids: 4,
        epochs: 64,
        methods_per_pid: 4096,
        samples: 10_000_000,
    },
];

/// Build the on-disk map chains and the sample database for one
/// scenario. Method `m` of each PID is compiled in epoch `m % epochs`
/// at `BASE + m * METHOD_STRIDE`; most samples arrive at the final
/// epoch (deep backward walks), a slice arrives at epoch 0 (forward
/// salvage), and a slice misses every method (unresolved).
fn build_session(s: &Scenario) -> (Kernel, SampleDb) {
    let mut kernel = Kernel::new();
    let mut pids = Vec::with_capacity(s.pids);
    for i in 0..s.pids {
        let pid = kernel.spawn(&format!("jikesrvm-{i}"));
        for epoch in 0..s.epochs {
            let entries: Vec<CodeMapEntry> = (0..s.methods_per_pid)
                .filter(|m| m % s.epochs == epoch)
                .map(|m| CodeMapEntry {
                    addr: BASE + m * METHOD_STRIDE,
                    size: METHOD_SIZE,
                    level: "O2".to_string(),
                    signature: format!("bench.P{i}.M{m:05}.run"),
                })
                .collect();
            kernel
                .vfs
                .write(map_path(pid, epoch), render_map(&entries).into_bytes());
        }
        pids.push(pid);
    }

    let mut rng = SplitMix64(GENERATOR_SEED ^ s.samples);
    let mut db = SampleDb::new();
    let span = s.methods_per_pid * METHOD_STRIDE;
    for _ in 0..s.samples {
        let pid = pids[rng.below(s.pids as u64) as usize];
        let roll = rng.below(100);
        // 90% deep-walk hits, 5% salvage (early epoch), 5% misses
        // (inter-method gaps), so every classification path is hot.
        let (addr, epoch) = if roll < 90 {
            let m = rng.below(s.methods_per_pid);
            (
                BASE + m * METHOD_STRIDE + rng.below(METHOD_SIZE),
                s.epochs - 1,
            )
        } else if roll < 95 {
            let m = rng.below(s.methods_per_pid);
            (BASE + m * METHOD_STRIDE + rng.below(METHOD_SIZE), 0)
        } else {
            // Force the offset past the method body: every lookup
            // lands in an inter-method gap.
            ((BASE + rng.below(span)) | METHOD_SIZE, s.epochs - 1)
        };
        let event = if rng.below(4) == 0 {
            HwEvent::L2Miss
        } else {
            HwEvent::Cycles
        };
        db.add(
            SampleBucket {
                origin: SampleOrigin::JitApp { pid, gen: 0 },
                event,
                addr,
                epoch,
            },
            1,
        );
    }
    (kernel, db)
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

#[derive(Serialize)]
struct ThreadResult {
    threads: usize,
    setup_ms: f64,
    report_ms: f64,
    samples_per_sec: f64,
    speedup_vs_legacy: f64,
}

#[derive(Serialize)]
struct ScenarioResult {
    name: String,
    samples: u64,
    buckets: usize,
    pids: usize,
    epochs: u64,
    methods_per_pid: u64,
    legacy_setup_ms: f64,
    legacy_report_ms: f64,
    legacy_samples_per_sec: f64,
    flat: Vec<ThreadResult>,
}

#[derive(Serialize)]
struct BenchConfig {
    smoke: bool,
    trials: u32,
    thread_counts: Vec<usize>,
}

#[derive(Serialize)]
struct BenchMetrics {
    scenarios: Vec<ScenarioResult>,
    telemetry_overhead: TelemetryOverhead,
    trace_overhead: TraceOverhead,
}

#[derive(Serialize)]
struct BenchGates {
    reports_bit_identical: bool,
    telemetry_overhead_under_3pct: bool,
    trace_overhead_under_3pct: bool,
}

/// Cost of the always-on telemetry layer on the acceptance scenario:
/// each resolve path timed with and without an attached registry.
#[derive(Serialize)]
struct TelemetryOverhead {
    scenario: String,
    runs: u32,
    legacy_plain_ms: f64,
    legacy_telemetry_ms: f64,
    legacy_overhead_pct: f64,
    flat_plain_ms: f64,
    flat_telemetry_ms: f64,
    flat_overhead_pct: f64,
}

/// Cost of the lineage/trace pass on the flat engine: the same resolve
/// with `ReportSpec::trace` off vs on (the default).
#[derive(Serialize)]
struct TraceOverhead {
    scenario: String,
    runs: u32,
    plain_ms: f64,
    traced_ms: f64,
    overhead_pct: f64,
}

/// Overhead is a delta of two min-of-N timings, so tiny smoke runs can
/// report wild percentages on sub-millisecond noise; an absolute slack
/// of 0.5 ms keeps the gate meaningful at every scale.
fn overhead_ok(plain_ms: f64, telemetry_ms: f64) -> bool {
    let delta = telemetry_ms - plain_ms;
    delta < 0.5 || delta / plain_ms * 100.0 < 3.0
}

/// Measure telemetry overhead on the report path of one scenario: the
/// legacy resolver with/without a mirrored registry, and the flat
/// engine with/without its counter bundle. Min over `runs` trials each,
/// interleaved so cache warmth favors neither side.
fn measure_telemetry_overhead(s: &Scenario, runs: u32) -> TelemetryOverhead {
    let (kernel, db) = build_session(s);
    let options = ReportOptions::default();

    let (resolver_plain, _) =
        ViprofResolver::load_with(&kernel, ResolveOptions::default()).expect("load maps");
    let (mut resolver_tel, _) =
        ViprofResolver::load_with(&kernel, ResolveOptions::default()).expect("load maps");
    let legacy_registry = Telemetry::new();
    resolver_tel.set_telemetry(&legacy_registry);

    let mut engine_plain = ResolutionEngine::build(&resolver_plain);
    let mut engine_tel = ResolutionEngine::build(&resolver_tel);
    let flat_registry = Telemetry::new();
    engine_tel.set_telemetry(&flat_registry);
    let spec = ReportSpec::default().with_options(options.clone()).threads(1);

    let mut legacy_plain_ms = f64::INFINITY;
    let mut legacy_telemetry_ms = f64::INFINITY;
    let mut flat_plain_ms = f64::INFINITY;
    let mut flat_telemetry_ms = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        let _ = viprof_report(&db, &kernel, &resolver_plain, &options);
        let _ = resolver_plain.quality(&db);
        legacy_plain_ms = legacy_plain_ms.min(ms_since(t));

        let t = Instant::now();
        let _ = viprof_report(&db, &kernel, &resolver_tel, &options);
        let _ = resolver_tel.quality(&db);
        legacy_telemetry_ms = legacy_telemetry_ms.min(ms_since(t));

        let t = Instant::now();
        let _ = engine_plain.resolve(&db, &kernel, &spec);
        flat_plain_ms = flat_plain_ms.min(ms_since(t));

        let t = Instant::now();
        let _ = engine_tel.resolve(&db, &kernel, &spec);
        flat_telemetry_ms = flat_telemetry_ms.min(ms_since(t));
    }

    TelemetryOverhead {
        scenario: s.name.to_string(),
        runs,
        legacy_plain_ms,
        legacy_telemetry_ms,
        legacy_overhead_pct: (legacy_telemetry_ms - legacy_plain_ms) / legacy_plain_ms * 100.0,
        flat_plain_ms,
        flat_telemetry_ms,
        flat_overhead_pct: (flat_telemetry_ms - flat_plain_ms) / flat_plain_ms * 100.0,
    }
}

/// Measure the lineage/trace construction overhead on the flat engine:
/// `with_trace(false)` vs the tracing default, min over `runs` trials,
/// interleaved like the telemetry measurement.
fn measure_trace_overhead(s: &Scenario, runs: u32) -> TraceOverhead {
    let (kernel, db) = build_session(s);
    let (resolver, _) =
        ViprofResolver::load_with(&kernel, ResolveOptions::default()).expect("load maps");
    let mut engine = ResolutionEngine::build(&resolver);
    let spec_plain = ReportSpec::default().threads(1).with_trace(false);
    let spec_traced = ReportSpec::default().threads(1);

    let mut plain_ms = f64::INFINITY;
    let mut traced_ms = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        let _ = engine.resolve(&db, &kernel, &spec_plain);
        plain_ms = plain_ms.min(ms_since(t));

        let t = Instant::now();
        let _ = engine.resolve(&db, &kernel, &spec_traced);
        traced_ms = traced_ms.min(ms_since(t));
    }
    TraceOverhead {
        scenario: s.name.to_string(),
        runs,
        plain_ms,
        traced_ms,
        overhead_pct: (traced_ms - plain_ms) / plain_ms * 100.0,
    }
}

fn run_scenario(s: &Scenario, trials: u32, thread_counts: &[usize]) -> ScenarioResult {
    let (kernel, db) = build_session(s);
    let options = ReportOptions::default();
    let total = db.total_samples() as f64;

    // Legacy reference: epoch-walk resolver, report + quality.
    let mut legacy_setup = f64::INFINITY;
    let mut legacy_report_ms = f64::INFINITY;
    let mut walk = None;
    for _ in 0..trials {
        let t0 = Instant::now();
        let (resolver, _) =
            ViprofResolver::load_with(&kernel, ResolveOptions::default()).expect("load maps");
        let setup = ms_since(t0);
        let t1 = Instant::now();
        let report = viprof_report(&db, &kernel, &resolver, &options);
        let quality = resolver.quality(&db);
        legacy_report_ms = legacy_report_ms.min(ms_since(t1));
        legacy_setup = legacy_setup.min(setup);
        walk = Some((report, quality));
    }
    let (walk_report, walk_quality) = walk.expect("at least one trial");
    assert_eq!(
        walk_quality.accounted(),
        db.total_samples(),
        "legacy quality accounts for every sample"
    );

    // Flattened engine, across shard counts.
    let mut flat = Vec::new();
    for &threads in thread_counts {
        let spec = ReportSpec::default()
            .with_options(options.clone())
            .threads(threads);
        let mut setup_ms = f64::INFINITY;
        let mut report_ms = f64::INFINITY;
        for _ in 0..trials {
            let t0 = Instant::now();
            let (resolver, _) =
                ViprofResolver::load_with(&kernel, ResolveOptions::default()).expect("load maps");
            let mut engine = ResolutionEngine::build(&resolver);
            let setup = ms_since(t0);
            let t1 = Instant::now();
            let session = engine.resolve(&db, &kernel, &spec);
            report_ms = report_ms.min(ms_since(t1));
            setup_ms = setup_ms.min(setup);
            // The speedup is only worth reporting if the output is the
            // same bytes the legacy path produces.
            assert_eq!(session.lines, walk_report, "flat report diverged ({threads} threads)");
            assert_eq!(session.quality, walk_quality, "flat quality diverged ({threads} threads)");
        }
        flat.push(ThreadResult {
            threads,
            setup_ms,
            report_ms,
            samples_per_sec: total / (report_ms / 1e3),
            speedup_vs_legacy: legacy_report_ms / report_ms,
        });
    }

    ScenarioResult {
        name: s.name.to_string(),
        samples: s.samples,
        buckets: db.iter().count(),
        pids: s.pids,
        epochs: s.epochs,
        methods_per_pid: s.methods_per_pid,
        legacy_setup_ms: legacy_setup,
        legacy_report_ms,
        legacy_samples_per_sec: total / (legacy_report_ms / 1e3),
        flat,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trials = if smoke { 1 } else { 3 };
    let thread_counts = vec![1usize, 2, 4, 8];

    let mut scenarios = Vec::new();
    for s in &SCENARIOS {
        let mut s = *s;
        if smoke {
            if s.name == "deep_epochs_10m" {
                continue;
            }
            s.samples = 20_000;
            s.methods_per_pid = s.methods_per_pid.min(256);
        }
        if !quiet() {
            eprintln!("scenario {} ({} samples)...", s.name, s.samples);
        }
        let r = run_scenario(&s, trials, &thread_counts);
        println!(
            "{:>18}: legacy {:>9.1} ms | flat x1 {:>9.1} ms ({:.2}x) | best {:.2}x @{} threads",
            r.name,
            r.legacy_report_ms,
            r.flat[0].report_ms,
            r.flat[0].speedup_vs_legacy,
            r.flat
                .iter()
                .map(|t| t.speedup_vs_legacy)
                .fold(0.0f64, f64::max),
            r.flat
                .iter()
                .max_by(|a, b| a.speedup_vs_legacy.total_cmp(&b.speedup_vs_legacy))
                .map_or(1, |t| t.threads),
        );
        scenarios.push(r);
    }

    // Telemetry-overhead gate on the acceptance scenario (shrunk the
    // same way under --smoke so the gate runs everywhere).
    let mut accept = SCENARIOS[0];
    if smoke {
        accept.samples = 20_000;
        accept.methods_per_pid = accept.methods_per_pid.min(256);
    }
    if !quiet() {
        eprintln!("telemetry overhead on {}...", accept.name);
    }
    let overhead = measure_telemetry_overhead(&accept, trials.max(5));
    println!(
        "telemetry overhead ({}): legacy {:+.2}% ({:.1} -> {:.1} ms) | flat {:+.2}% ({:.1} -> {:.1} ms)",
        overhead.scenario,
        overhead.legacy_overhead_pct,
        overhead.legacy_plain_ms,
        overhead.legacy_telemetry_ms,
        overhead.flat_overhead_pct,
        overhead.flat_plain_ms,
        overhead.flat_telemetry_ms,
    );
    let telemetry_gate = overhead_ok(overhead.legacy_plain_ms, overhead.legacy_telemetry_ms)
        && overhead_ok(overhead.flat_plain_ms, overhead.flat_telemetry_ms);
    assert!(
        overhead_ok(overhead.legacy_plain_ms, overhead.legacy_telemetry_ms),
        "legacy-path telemetry overhead exceeds 3%: {:.2}%",
        overhead.legacy_overhead_pct
    );
    assert!(
        overhead_ok(overhead.flat_plain_ms, overhead.flat_telemetry_ms),
        "flat-path telemetry overhead exceeds 3%: {:.2}%",
        overhead.flat_overhead_pct
    );

    // Lineage/trace gate: the causal-tracing pass rides the same <3%
    // budget as the telemetry layer.
    if !quiet() {
        eprintln!("trace overhead on {}...", accept.name);
    }
    let trace_overhead = measure_trace_overhead(&accept, trials.max(5));
    println!(
        "trace overhead ({}): {:+.2}% ({:.1} -> {:.1} ms)",
        trace_overhead.scenario,
        trace_overhead.overhead_pct,
        trace_overhead.plain_ms,
        trace_overhead.traced_ms,
    );
    let trace_gate = overhead_ok(trace_overhead.plain_ms, trace_overhead.traced_ms);
    assert!(
        trace_gate,
        "lineage/trace overhead exceeds 3%: {:.2}%",
        trace_overhead.overhead_pct
    );

    write_artifact(
        "BENCH_resolve.json",
        GENERATOR_SEED,
        &BenchConfig {
            smoke,
            trials,
            thread_counts,
        },
        &BenchMetrics {
            scenarios,
            telemetry_overhead: overhead,
            trace_overhead,
        },
        &BenchGates {
            // run_scenario asserts bit-identity before returning, so
            // reaching the artifact write means that gate held.
            reports_bit_identical: true,
            telemetry_overhead_under_3pct: telemetry_gate,
            trace_overhead_under_3pct: trace_gate,
        },
    );
}
