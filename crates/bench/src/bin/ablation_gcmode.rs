//! **E8 — GC-mode ablation: what if code never moved?**
//!
//! The paper's hard problem — attributing samples to code bodies that
//! "exist at several different memory locations during a single
//! execution" (§3.1) — only exists under a *moving* collector. This
//! experiment runs the same workload with the Jikes-like copying heap
//! and with a non-moving mark-sweep heap, under VIProf:
//!
//! * copying: the agent flags thousands of moves, maps carry one entry
//!   per moved body per epoch, and the backward search does real work;
//! * non-moving: zero move flags, maps shrink to compile records, the
//!   agent's steady-state cost collapses — quantifying how much of
//!   VIProf's machinery (and overhead) exists purely to cope with
//!   moving collectors.
//!
//! ```text
//! cargo run --release -p viprof-bench --bin ablation_gcmode
//! ```

use oprofile::OpConfig;
use serde::Serialize;
use sim_jvm::{GcMode, VmConfig};
use sim_os::{Machine, MachineConfig};
use viprof::Viprof;
use viprof_bench::{write_artifact, HarnessOpts};
use viprof_workloads::runner::{execute_plan_with_config, vm_config};
use viprof_workloads::{calibrate, find_benchmark, programs};

#[derive(Serialize)]
struct GcModeRow {
    mode: String,
    base_seconds: f64,
    viprof_seconds: f64,
    slowdown: f64,
    gcs: u64,
    moves_flagged: u64,
    maps_written: u64,
    entries_written: u64,
}

fn run(mode: GcMode, profiled: bool, built: &viprof_workloads::BuiltWorkload, plan: &viprof_workloads::WorkPlan, seed: u64) -> GcModeRow {
    let mut machine = Machine::new(MachineConfig {
        seed,
        ..MachineConfig::default()
    });
    let config = VmConfig {
        gc_mode: mode,
        ..vm_config(&built.params)
    };
    if !profiled {
        let stats = execute_plan_with_config(
            &mut machine,
            built,
            plan,
            Box::new(sim_jvm::NullHooks),
            config,
        );
        return GcModeRow {
            mode: format!("{mode:?}"),
            base_seconds: machine.seconds(),
            viprof_seconds: 0.0,
            slowdown: 0.0,
            gcs: stats.gcs,
            moves_flagged: 0,
            maps_written: 0,
            entries_written: 0,
        };
    }
    let vp = Viprof::builder()
        .config(OpConfig::time_at(90_000))
        .start(&mut machine);
    let agent = vp.make_agent();
    let agent_stats = agent.stats_handle();
    let stats = execute_plan_with_config(&mut machine, built, plan, Box::new(agent), config);
    vp.stop(&mut machine);
    let ast = agent_stats.lock();
    GcModeRow {
        mode: format!("{mode:?}"),
        base_seconds: 0.0,
        viprof_seconds: machine.seconds(),
        slowdown: 0.0,
        gcs: stats.gcs,
        moves_flagged: ast.moves_flagged,
        maps_written: ast.maps_written,
        entries_written: ast.entries_written,
    }
}

fn main() {
    let opts = HarnessOpts::from_env();
    let params = find_benchmark("antlr").expect("antlr in catalog");
    let built = programs::build(&params);
    let plan = calibrate(&built, (0.5 * opts.scale).clamp(0.01, 4.0));

    println!("E8: VIProf under copying vs non-moving GC (antlr)");
    println!(
        "{:<12}{:>10}{:>12}{:>10}{:>12}{:>10}{:>12}",
        "gc mode", "gcs", "slowdown", "maps", "entries", "moves", "sim s"
    );
    let mut rows = Vec::new();
    for mode in [GcMode::Copying, GcMode::NonMoving] {
        let base = run(mode, false, &built, &plan, opts.seed);
        let mut prof = run(mode, true, &built, &plan, opts.seed);
        prof.base_seconds = base.base_seconds;
        prof.slowdown = prof.viprof_seconds / base.base_seconds;
        println!(
            "{:<12}{:>10}{:>12.4}{:>10}{:>12}{:>10}{:>12.2}",
            prof.mode,
            prof.gcs,
            prof.slowdown,
            prof.maps_written,
            prof.entries_written,
            prof.moves_flagged,
            prof.viprof_seconds
        );
        rows.push(prof);
    }
    let copying = &rows[0];
    let nonmoving = &rows[1];
    assert!(copying.moves_flagged > 0);
    assert_eq!(nonmoving.moves_flagged, 0, "non-moving GC never moves code");
    assert!(
        nonmoving.entries_written < copying.entries_written,
        "maps shrink to compile records without moves"
    );
    write_artifact(
        "ablation_gcmode.json",
        opts.seed,
        &opts.config_json(),
        &rows,
        &serde_json::json!({
            "copying_flags_moves": true,
            "nonmoving_flags_none": true,
            "nonmoving_maps_smaller": true,
        }),
    );
}
