//! Tuning probe: GC count and period per benchmark at full scale
//! (used when recalibrating workload parameters; see EXPERIMENTS.md).

use viprof_workloads::{calibrate, catalog, programs, run_benchmark, ProfilerKind};

fn main() {
    println!(
        "{:<12}{:>8}{:>8}{:>10}{:>10}{:>12}",
        "bench", "sim_s", "gcs", "gc_per_s", "period_s", "compiles"
    );
    for params in catalog() {
        let built = programs::build(&params);
        let plan = calibrate(&built, 1.0);
        let out = run_benchmark(&built, &plan, ProfilerKind::None, 1, false);
        let per_s = out.vm.gcs as f64 / out.seconds;
        println!(
            "{:<12}{:>8.2}{:>8}{:>10.2}{:>10.3}{:>12}",
            params.name,
            out.seconds,
            out.vm.gcs,
            per_s,
            1.0 / per_s.max(1e-9),
            out.vm.compiles + out.vm.recompiles,
        );
    }
}
