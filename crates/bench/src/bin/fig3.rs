//! Regenerate **Figure 3**: base execution time in seconds for the
//! benchmarks (no profiling).
//!
//! ```text
//! cargo run --release -p viprof-bench --bin fig3
//! ```

use serde::Serialize;
use viprof_bench::{figure2_rows, measure_catalog, quiet, write_artifact, Fig2Config, HarnessOpts};

#[derive(Serialize)]
struct Fig3Row {
    benchmark: String,
    measured_seconds: f64,
    paper_seconds: Option<f64>,
}

/// Paper's Figure-3 values (reconstructed — see DESIGN.md for the
/// garbled-table note; `ps` has no paper value).
fn paper_value(name: &str) -> Option<f64> {
    match name {
        "pseudojbb" => Some(31.0),
        "JVM98" => Some(5.74),
        "antlr" => Some(8.7),
        "bloat" => Some(28.5),
        "fop" => Some(3.2),
        "hsqldb" => Some(43.0),
        "pmd" => Some(16.3),
        "xalan" => Some(22.2),
        _ => None,
    }
}

fn main() {
    let opts = HarnessOpts::from_env();
    if !quiet() {
        eprintln!(
            "fig3: base times, scale {} trials {} seed {}",
            opts.scale, opts.trials, opts.seed
        );
    }
    let measurements = measure_catalog(&[Fig2Config::Base], opts);
    let rows = figure2_rows(&measurements);

    println!("Figure 3: Base execution time in seconds for the benchmarks.");
    println!("(simulated; scale factor {})\n", opts.scale);
    println!("{:<14}{:>12}{:>12}", "Benchmark", "Measured", "Paper");
    let mut out = Vec::new();
    for row in &rows {
        if row.name == "Average" {
            continue;
        }
        let measured = row.seconds["base"] / opts.scale;
        let paper = paper_value(&row.name);
        println!(
            "{:<14}{:>12.2}{:>12}",
            row.name,
            measured,
            paper.map(|p| format!("{p:.2}")).unwrap_or_else(|| "—".into())
        );
        out.push(Fig3Row {
            benchmark: row.name.clone(),
            measured_seconds: measured,
            paper_seconds: paper,
        });
    }
    // The paper's "Average" row (over the displayed bars).
    let avg: f64 = out.iter().map(|r| r.measured_seconds).sum::<f64>() / out.len() as f64;
    println!("{:<14}{:>12.2}{:>12}", "Average", avg, "—");

    write_artifact(
        "fig3.json",
        opts.seed,
        &opts.config_json(),
        &out,
        &serde_json::json!({}),
    );
}
