//! **E5 — run-length amortization (paper §4.3).**
//!
//! "Longer running benchmarks generally experienced the smaller
//! slowdowns, due to the amortization of the cost of writing out the
//! code maps."
//!
//! pseudoJBB is a *fixed-transaction* workload ("configured to have a
//! fixed number of transactions", §4.1), so its allocation volume —
//! and hence its GC/epoch/map-write count — is a property of the
//! workload, not of how long it runs. This experiment scales the
//! computation per transaction ×{0.25 … 4} while keeping transaction
//! (and therefore collection) counts fixed: total map-write cost stays
//! constant while run time stretches, so the VIProf slowdown must fall
//! monotonically with run length. Noise is off: the series is exact.
//!
//! ```text
//! cargo run --release -p viprof-bench --bin ablation_amortize
//! ```

use serde::Serialize;
use viprof_bench::{write_artifact, HarnessOpts};
use viprof_workloads::{calibrate, find_benchmark, programs, run_benchmark, ProfilerKind};

#[derive(Serialize)]
struct AmortizePoint {
    length_factor: f64,
    sim_seconds: f64,
    gcs: u64,
    slowdown_viprof_90k: f64,
}

fn main() {
    let opts = HarnessOpts::from_env();
    let base_params = find_benchmark("pseudojbb").expect("pseudojbb in catalog");

    println!("E5: VIProf 90K slowdown vs run length (pseudoJBB, fixed transactions)");
    println!("{:>8}{:>12}{:>8}{:>12}", "length", "sim s", "gcs", "slowdown");
    let mut out = Vec::new();
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        // More computation per transaction, same number of transactions:
        // scale the inner loop AND the target time together, so the
        // calibrated invocation (≈ transaction) count stays put.
        let mut params = base_params.clone();
        params.inner_iters = ((base_params.inner_iters as f64) * factor).max(20.0) as u32;
        params.base_seconds = base_params.base_seconds * factor;
        let built = programs::build(&params);
        let plan = calibrate(&built, (0.25 * opts.scale).clamp(0.01, 4.0));

        let base = run_benchmark(&built, &plan, ProfilerKind::None, opts.seed, false);
        let prof = run_benchmark(
            &built,
            &plan,
            ProfilerKind::viprof_at(90_000),
            opts.seed,
            false,
        );
        let slowdown = prof.seconds / base.seconds;
        println!(
            "{:>8.2}{:>12.2}{:>8}{:>12.4}",
            factor, base.seconds, prof.vm.gcs, slowdown
        );
        out.push(AmortizePoint {
            length_factor: factor,
            sim_seconds: base.seconds,
            gcs: prof.vm.gcs,
            slowdown_viprof_90k: slowdown,
        });
    }
    for w in out.windows(2) {
        assert!(
            w[1].slowdown_viprof_90k <= w[0].slowdown_viprof_90k + 0.002,
            "slowdown must fall (or hold) as runs lengthen: {:?} vs {:?}",
            w[0].slowdown_viprof_90k,
            w[1].slowdown_viprof_90k
        );
    }
    assert!(
        out.first().unwrap().slowdown_viprof_90k
            > out.last().unwrap().slowdown_viprof_90k + 0.005,
        "amortization must be visible end to end"
    );
    write_artifact(
        "ablation_amortize.json",
        opts.seed,
        &opts.config_json(),
        &out,
        &serde_json::json!({
            "slowdown_monotone_nonincreasing": true,
            "amortization_visible_end_to_end": true,
        }),
    );
}
