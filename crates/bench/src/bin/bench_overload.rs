//! Overload-governor benchmark: fixed-rate sampling vs. the closed
//! loop under a ring buffer small enough to force sustained overflow.
//!
//! One workload, one seed, three runs — unprofiled base, VIProf at a
//! fixed aggressive period, and the same configuration with the
//! adaptive governor on. The fixed run sheds samples every drain
//! window; the governed run backs the NMI period off at the source and
//! must (a) drop strictly fewer samples, (b) keep the final drop
//! fraction under 5%, and (c) leave a complete decision trail in the
//! flight recorder. Results land in `results/BENCH_overload.json`.
//!
//! Usage: `bench_overload [--smoke]` — `--smoke` shrinks the workload
//! so `scripts/verify.sh` can run the gate in seconds.

use oprofile::{GovernorConfig, OpConfig};
use serde::Serialize;
use viprof_bench::{quiet, write_artifact};
use viprof_telemetry::names;
use viprof_workloads::{calibrate, find_benchmark, programs, run_benchmark, ProfilerKind, RunOutcome};

/// Aggressive enough that 20 samples land per drain window in an
/// 8-slot ring: overflow is structural, not incidental.
const BASE_PERIOD: u64 = 15_000;
const RING: usize = 8;
const DAEMON_PERIOD: u64 = 300_000;
const SEED: u64 = 3;

fn config(governed: bool) -> OpConfig {
    let base = OpConfig {
        buffer_capacity: RING,
        daemon_period_cycles: DAEMON_PERIOD,
        ..OpConfig::time_at(BASE_PERIOD)
    };
    if governed {
        base.with_governor(GovernorConfig {
            high_watermark_pct: 50,
            low_watermark_pct: 20,
            dwell_windows: 1,
            backoff_factor: 4,
            recovery_step: 0,
            max_scale: 64,
            deadline_cycles: 0,
            deadline_miss_threshold: 3,
        })
    } else {
        base
    }
}

#[derive(Serialize)]
struct RunResult {
    label: String,
    cycles: u64,
    overhead_pct: f64,
    samples: u64,
    dropped: u64,
    drop_pct: f64,
    final_period: u64,
    backoffs: u64,
    recoveries: u64,
    rate_change_events: usize,
}

fn result_of(label: &str, out: &RunOutcome, base_cycles: u64) -> RunResult {
    let db = out.db.as_ref().expect("profiled run");
    let snap = out.telemetry.as_ref().expect("profiled run records telemetry");
    let emitted = db.total_samples() + db.dropped;
    RunResult {
        label: label.to_string(),
        cycles: out.cycles,
        overhead_pct: (out.cycles as f64 - base_cycles as f64) / base_cycles as f64 * 100.0,
        samples: db.total_samples(),
        dropped: db.dropped,
        drop_pct: if emitted == 0 {
            0.0
        } else {
            100.0 * db.dropped as f64 / emitted as f64
        },
        final_period: snap.gauge(names::GOVERNOR_PERIOD),
        backoffs: snap.counter(names::GOVERNOR_BACKOFFS),
        recoveries: snap.counter(names::GOVERNOR_RECOVERIES),
        rate_change_events: snap.events_of(names::EVENT_GOVERNOR_RATE_CHANGE).len(),
    }
}

#[derive(Serialize)]
struct BenchConfig {
    smoke: bool,
    base_period: u64,
    ring_capacity: usize,
    daemon_period: u64,
}

#[derive(Serialize)]
struct BenchMetrics {
    base_cycles: u64,
    fixed: RunResult,
    governed: RunResult,
}

#[derive(Serialize)]
struct BenchGates {
    fixed_overflows: bool,
    governed_sheds_less: bool,
    governed_drop_under_5pct: bool,
    backoff_fired: bool,
    period_backed_off: bool,
    ungoverned_untouched: bool,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut params = find_benchmark("fop").expect("benchmark exists");
    params.support_methods = params.support_methods.min(120);
    params.heap_mb = 2;
    let built = programs::build(&params);
    let plan = calibrate(&built, if smoke { 0.02 } else { 0.1 });

    if !quiet() {
        eprintln!("overload runs (smoke={smoke})...");
    }
    let base = run_benchmark(&built, &plan, ProfilerKind::None, SEED, false);
    let fixed_out = run_benchmark(&built, &plan, ProfilerKind::Viprof(config(false)), SEED, false);
    let governed_out =
        run_benchmark(&built, &plan, ProfilerKind::Viprof(config(true)), SEED, false);

    let fixed = result_of("fixed", &fixed_out, base.cycles);
    let governed = result_of("governed", &governed_out, base.cycles);
    println!(
        "overload: fixed dropped {} of {} ({:.1}%) at +{:.2}% overhead",
        fixed.dropped,
        fixed.samples + fixed.dropped,
        fixed.drop_pct,
        fixed.overhead_pct
    );
    println!(
        "overload: governed dropped {} of {} ({:.1}%) at +{:.2}% overhead — \
         {} backoff(s), {} recovery(ies), final period {}",
        governed.dropped,
        governed.samples + governed.dropped,
        governed.drop_pct,
        governed.overhead_pct,
        governed.backoffs,
        governed.recoveries,
        governed.final_period
    );

    // The gates scripts/verify.sh relies on.
    let gates = BenchGates {
        fixed_overflows: fixed.dropped > 0,
        governed_sheds_less: governed.dropped < fixed.dropped,
        governed_drop_under_5pct: governed.drop_pct < 5.0,
        backoff_fired: governed.backoffs >= 1,
        period_backed_off: governed.final_period > BASE_PERIOD,
        ungoverned_untouched: fixed.backoffs == 0,
    };
    assert!(
        gates.fixed_overflows,
        "an {RING}-slot ring at period {BASE_PERIOD} must overflow — the scenario is broken"
    );
    assert!(
        gates.governed_sheds_less,
        "governor must shed load at the source: governed {} vs fixed {}",
        governed.dropped,
        fixed.dropped
    );
    assert!(
        gates.governed_drop_under_5pct,
        "governed drop fraction must stay under 5%: {:.2}%",
        governed.drop_pct
    );
    assert!(gates.backoff_fired, "pressure must trigger a backoff");
    assert!(
        gates.period_backed_off,
        "the governed period must have backed off from {BASE_PERIOD}: {}",
        governed.final_period
    );
    assert!(
        gates.ungoverned_untouched,
        "the ungoverned run must record no governor activity"
    );

    write_artifact(
        "BENCH_overload.json",
        SEED,
        &BenchConfig {
            smoke,
            base_period: BASE_PERIOD,
            ring_capacity: RING,
            daemon_period: DAEMON_PERIOD,
        },
        &BenchMetrics {
            base_cycles: base.cycles,
            fixed,
            governed,
        },
        &gates,
    );
}
