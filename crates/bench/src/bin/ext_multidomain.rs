//! **E7 — multiple concurrent software stacks over a hypervisor
//! (paper §5, future work).**
//!
//! "We plan to integrate Xen virtualization extensions into VIProf to
//! integrate profiling of the Xen layer (via XenoProf) as well as
//! multiple concurrently executing software stacks."
//!
//! This experiment realizes that design: a `xen-syms` hypervisor layer
//! with a vCPU scheduler consuming (sampled) cycles beneath the guests,
//! two guest stacks (two VMs running different benchmarks) time-sliced
//! above it, one VIProf session profiling the whole machine, and a
//! XenoProf-style post-processing pass:
//!
//! * per-domain sample breakdown (who used the machine),
//! * hypervisor-layer rows (`xen-syms schedule_vcpu`, …),
//! * *within* each domain, full VIProf resolution of JIT methods.
//!
//! ```text
//! cargo run --release -p viprof-bench --bin ext_multidomain
//! ```

use oprofile::{OpConfig, ReportOptions};
use serde::Serialize;
use sim_cpu::HwEvent;
use sim_jvm::Vm;
use sim_os::{Machine, MachineConfig};
use viprof::resolve::{ResolveOptions, ViprofResolver};
use viprof::xen::{domain_breakdown, domain_jit_profile, DomainTable, Hypervisor, XenScheduler};
use viprof::{ReportSpec, Viprof};
use viprof_bench::{write_artifact, HarnessOpts};
use viprof_workloads::runner::vm_config;
use viprof_workloads::{calibrate, find_benchmark, programs};

#[derive(Serialize)]
struct MultiDomainOut {
    breakdown: Vec<(String, u64, f64)>,
    dom1_top: Vec<(String, u64)>,
    dom2_top: Vec<(String, u64)>,
    xen_rows: Vec<(String, f64)>,
    unresolved_rows: usize,
}

fn main() {
    let opts = HarnessOpts::from_env();
    let scale = (0.25 * opts.scale).clamp(0.01, 4.0);

    let p1 = find_benchmark("ps").unwrap();
    let p2 = find_benchmark("pseudojbb").unwrap();
    let b1 = programs::build(&p1);
    let b2 = programs::build(&p2);
    let plan1 = calibrate(&b1, scale);
    let plan2 = calibrate(&b2, scale);

    let mut machine = Machine::new(MachineConfig {
        seed: opts.seed,
        ..MachineConfig::default()
    });

    // The virtualization layer: hypervisor image + 30ms vCPU scheduler.
    let hv = Hypervisor::install(&mut machine.kernel);
    machine.add_service(Box::new(XenScheduler::new(hv, 102_000_000)));
    let mut domains = DomainTable::new();
    let dom1 = domains.register("domU-ps");
    let dom2 = domains.register("domU-jbb");

    let vp = Viprof::builder()
        .config(OpConfig::time_at(90_000))
        .start(&mut machine);

    // Two guest stacks, two agents, one shared registration table.
    let mut vm1 = Vm::boot(
        &mut machine,
        b1.program.clone(),
        b1.natives.clone(),
        vm_config(&p1),
        Box::new(vp.make_agent()),
    );
    let mut vm2 = Vm::boot(
        &mut machine,
        b2.program.clone(),
        b2.natives.clone(),
        vm_config(&p2),
        Box::new(vp.make_agent()),
    );
    domains.assign(vm1.pid, dom1);
    domains.assign(vm2.pid, dom2);
    assert_eq!(vp.registry.read().len(), 2, "both VMs registered");

    vm1.call(&mut machine, b1.startup, &[]);
    vm2.call(&mut machine, b2.startup, &[]);
    // Interleave the two stacks slice by slice (coarse time sharing;
    // the Xen scheduler injects hypervisor work underneath).
    for slice in 0..plan1.slices.max(plan2.slices) {
        if slice < plan1.slices {
            for (i, w) in b1.workers.iter().enumerate() {
                let n = plan1.slice_share(i, slice);
                if n > 0 {
                    vm1.run_batched(&mut machine, *w, &[], n);
                }
            }
        }
        if slice < plan2.slices {
            for (i, w) in b2.workers.iter().enumerate() {
                let n = plan2.slice_share(i, slice);
                if n > 0 {
                    vm2.run_batched(&mut machine, *w, &[], n);
                }
            }
        }
    }
    vm1.shutdown(&mut machine);
    vm2.shutdown(&mut machine);
    let db = vp.stop(&mut machine);

    // ---- XenoProf-style per-domain breakdown ----
    let breakdown = domain_breakdown(&db, &domains, HwEvent::Cycles);
    println!("E7: two guest stacks over a hypervisor, one VIProf session\n");
    println!("Per-domain samples (XenoProf view):");
    for row in &breakdown {
        println!("  {:<12}{:>10}  {:>6.2}%", row.domain, row.samples, row.percent);
    }

    // ---- hypervisor layer visible in the merged report ----
    let report = Viprof::make_report(
        &db,
        &machine.kernel,
        &ReportSpec {
            options: ReportOptions {
                min_primary_percent: 0.005,
                ..ReportOptions::default()
            },
            ..ReportSpec::default()
        },
    )
    .expect("merged report")
    .lines;
    let xen_rows: Vec<(String, f64)> = report
        .rows
        .iter()
        .filter(|r| r.image == "xen-syms")
        .map(|r| (r.symbol.clone(), r.percents[0]))
        .collect();
    println!("\nHypervisor rows:");
    for (sym, pct) in &xen_rows {
        println!("  {:<24}{:>8.4}%", sym, pct);
    }

    // ---- per-domain method resolution (vertical, per stack) ----
    let resolver = ViprofResolver::load_with(&machine.kernel, ResolveOptions::default())
        .expect("resolver")
        .0;
    let dom1_top = domain_jit_profile(&db, &machine.kernel, &resolver, &domains, dom1, HwEvent::Cycles);
    let dom2_top = domain_jit_profile(&db, &machine.kernel, &resolver, &domains, dom2, HwEvent::Cycles);
    println!("\nTop methods in domU-ps:");
    for (sym, n) in dom1_top.iter().take(4) {
        println!("  {:<70}{:>8}", sym, n);
    }
    println!("Top methods in domU-jbb:");
    for (sym, n) in dom2_top.iter().take(4) {
        println!("  {:<70}{:>8}", sym, n);
    }

    let unresolved = report
        .rows
        .iter()
        .filter(|r| r.symbol == "(unresolved jit)")
        .count();

    assert!(!xen_rows.is_empty(), "the hypervisor layer must be sampled");
    assert!(breakdown.iter().any(|r| r.domain == "domU-ps" && r.samples > 0));
    assert!(breakdown.iter().any(|r| r.domain == "domU-jbb" && r.samples > 0));
    assert!(dom1_top.iter().any(|(s, _)| s.starts_with(p1.package)));
    assert!(dom2_top.iter().any(|(s, _)| s.starts_with(p2.package)));
    assert_eq!(unresolved, 0, "all JIT samples resolve across both stacks");

    write_artifact(
        "ext_multidomain.json",
        opts.seed,
        &opts.config_json(),
        &MultiDomainOut {
            breakdown: breakdown
                .iter()
                .map(|r| (r.domain.clone(), r.samples, r.percent))
                .collect(),
            dom1_top: dom1_top.into_iter().take(8).collect(),
            dom2_top: dom2_top.into_iter().take(8).collect(),
            xen_rows,
            unresolved_rows: unresolved,
        },
        &serde_json::json!({
            "hypervisor_sampled": true,
            "both_domains_sampled": true,
            "all_jit_resolved": unresolved == 0,
        }),
    );
}
