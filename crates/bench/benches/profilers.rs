//! Criterion end-to-end benchmarks: one scaled-down benchmark run
//! under each profiler, plus post-processing. These measure the *host*
//! cost of the simulation itself (how fast the reproduction runs), not
//! simulated overhead — see the fig2 binary for the latter.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oprofile::{opreport, ReportOptions};
use viprof::{ReportSpec, Viprof};
use viprof_bench::HarnessOpts;
use viprof_workloads::{calibrate, find_benchmark, programs, run_benchmark, ProfilerKind};
use viprof_workloads::{BuiltWorkload, WorkPlan};

fn small_workload() -> (BuiltWorkload, WorkPlan) {
    let mut params = find_benchmark("fop").expect("fop in catalog");
    params.support_methods = 120;
    let built = programs::build(&params);
    let plan = calibrate(&built, 0.02);
    (built, plan)
}

fn bench_run_modes(c: &mut Criterion) {
    let (built, plan) = small_workload();
    let _ = HarnessOpts::from_env();
    let mut group = c.benchmark_group("run_fop_2pct");
    group.sample_size(20);
    group.bench_function("base", |b| {
        b.iter(|| {
            black_box(run_benchmark(&built, &plan, ProfilerKind::None, 1, false).cycles)
        })
    });
    group.bench_function("oprofile_90k", |b| {
        b.iter(|| {
            black_box(
                run_benchmark(&built, &plan, ProfilerKind::oprofile_at(90_000), 1, false).cycles,
            )
        })
    });
    group.bench_function("viprof_90k", |b| {
        b.iter(|| {
            black_box(
                run_benchmark(&built, &plan, ProfilerKind::viprof_at(90_000), 1, false).cycles,
            )
        })
    });
    group.finish();
}

fn bench_postprocess(c: &mut Criterion) {
    let (built, plan) = small_workload();
    let out = run_benchmark(&built, &plan, ProfilerKind::viprof_at(20_000), 1, false);
    let db = out.db.expect("profiled run");
    let kernel = &out.machine.kernel;
    let mut group = c.benchmark_group("postprocess");
    group.bench_function("opreport", |b| {
        b.iter(|| black_box(opreport(&db, kernel, &ReportOptions::default()).rows.len()))
    });
    group.bench_function("viprof_report", |b| {
        b.iter(|| {
            black_box(
                Viprof::make_report(&db, kernel, &ReportSpec::default())
                    .expect("report")
                    .lines
                    .rows
                    .len(),
            )
        })
    });
    let sharded = ReportSpec::default().threads(4);
    group.bench_function("viprof_report_4_shards", |b| {
        b.iter(|| {
            black_box(
                Viprof::make_report(&db, kernel, &sharded)
                    .expect("report")
                    .lines
                    .rows
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_run_modes, bench_postprocess);
criterion_main!(benches);
