//! Criterion micro-benchmarks of the hot paths the paper argues must
//! be cheap: the NMI logging paths (VMA walk, registered-range check,
//! ring-buffer push), the agent's GC move flag, the code-map write,
//! and the post-processor's epoch-chained resolution.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use oprofile::{RingBuffer, SampleBucket, SampleOrigin};
use sim_cpu::{Cache, CacheConfig, Counter, CounterSpec, FracAcc, HwEvent, Pid};
use sim_os::{AddressSpace, Image, Symbol, Vma};
use viprof::codemap::{CodeMapEntry, CodeMapSet, EpochMap};
use viprof::registry::JitRegistry;

fn bench_vma_lookup(c: &mut Criterion) {
    // A realistic process map: binary + 30 libraries + heap.
    let mut space = AddressSpace::new();
    space.map(Vma::anon(0x6000_0000, 0x6800_0000)).unwrap();
    for i in 0..30u64 {
        space
            .map(Vma::image(
                0x4000_0000 + i * 0x10_0000,
                0x4000_0000 + i * 0x10_0000 + 0x8_0000,
                sim_os::ImageId(i as u32),
                0,
            ))
            .unwrap();
    }
    c.bench_function("vma_lookup_hit", |b| {
        b.iter(|| space.lookup(black_box(0x4000_5123 + 7 * 0x10_0000)))
    });
    c.bench_function("vma_lookup_anon", |b| {
        b.iter(|| space.lookup(black_box(0x6400_0000)))
    });
}

fn bench_registry_classify(c: &mut Criterion) {
    let mut reg = JitRegistry::new();
    reg.register(Pid(4), 0, (0x6000_0000, 0x6800_0000)).unwrap();
    reg.register(Pid(9), 0, (0x7000_0000, 0x7800_0000)).unwrap();
    c.bench_function("registry_classify_hit", |b| {
        b.iter(|| reg.classify(black_box(Pid(4)), black_box(0x6400_0000)))
    });
    c.bench_function("registry_classify_miss", |b| {
        b.iter(|| reg.classify(black_box(Pid(4)), black_box(0x9000_0000)))
    });
}

fn bench_ring_buffer(c: &mut Criterion) {
    let sample = SampleBucket {
        origin: SampleOrigin::JitApp { pid: Pid(4), gen: 0 },
        event: HwEvent::Cycles,
        addr: 0x6400_0040,
        epoch: 3,
    };
    c.bench_function("ring_push_drain_4096", |b| {
        b.iter_batched(
            || RingBuffer::new(8192),
            |mut ring| {
                for _ in 0..4096 {
                    ring.push(black_box(sample));
                }
                black_box(ring.drain().len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_counter_overflow(c: &mut Criterion) {
    c.bench_function("counter_add_batch", |b| {
        let mut counter = Counter::new(CounterSpec::new(HwEvent::Cycles, 90_000));
        b.iter(|| black_box(counter.add(black_box(123_456))))
    });
}

fn bench_symbol_resolution(c: &mut Criterion) {
    let mut img = Image::new("libbig.so", 0x40_0000);
    for i in 0..2_000u64 {
        img.add_symbol(Symbol::new(format!("fn_{i}"), i * 0x200, 0x180));
    }
    c.bench_function("symbol_resolve_2000", |b| {
        b.iter(|| img.resolve(black_box(1_234 * 0x200 + 0x40)))
    });
}

fn bench_epoch_resolution(c: &mut Criterion) {
    // 50 epochs × 200 entries each; resolve from the newest epoch with
    // a hit 10 epochs back (a mature method).
    let maps: Vec<EpochMap> = (0..50u64)
        .map(|e| {
            let entries: Vec<CodeMapEntry> = (0..200u64)
                .map(|i| CodeMapEntry {
                    addr: 0x6000_0000 + e * 0x10_0000 + i * 0x400,
                    size: 0x300,
                    level: "O1".to_string(),
                    signature: format!("app.M{e}_{i}.run"),
                })
                .collect();
            EpochMap::new(e, entries)
        })
        .collect();
    let set = CodeMapSet::new(maps);
    c.bench_function("epoch_resolve_recent", |b| {
        b.iter(|| set.resolve(black_box(0x6000_0000 + 49 * 0x10_0000 + 0x400 * 7), 49))
    });
    c.bench_function("epoch_resolve_backward_10", |b| {
        b.iter(|| set.resolve(black_box(0x6000_0000 + 39 * 0x10_0000 + 0x400 * 7), 49))
    });
    c.bench_function("epoch_resolve_miss", |b| {
        b.iter(|| set.resolve(black_box(0x9000_0000), 49))
    });
}

fn bench_cache_access(c: &mut Criterion) {
    let mut cache = Cache::new(CacheConfig::new(16 * 1024, 64, 8));
    let mut addr = 0u64;
    c.bench_function("l1_cache_access_stream", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xF_FFFF;
            black_box(cache.access(black_box(addr)))
        })
    });
}

fn bench_fracacc(c: &mut Criterion) {
    let mut acc = FracAcc::new();
    c.bench_function("fracacc_take", |b| {
        b.iter(|| black_box(acc.take(black_box(0.0137), black_box(90_000))))
    });
}

criterion_group!(
    benches,
    bench_vma_lookup,
    bench_registry_classify,
    bench_ring_buffer,
    bench_counter_overflow,
    bench_symbol_resolution,
    bench_epoch_resolution,
    bench_cache_access,
    bench_fracacc
);
criterion_main!(benches);
