//! # viprof-workloads — the paper's benchmark suite, synthesized
//!
//! SPEC JVM98, DaCapo and pseudoJBB cannot be run on a simulated JVM,
//! so this crate builds *synthetic equivalents*: mini-bytecode programs
//! whose knobs (hot-method count, method-table size, allocation rate,
//! native-call share, cache behaviour, run length) are set per benchmark
//! to reproduce the *activity profile* that drives every quantity the
//! paper measures — sample distribution across layers (Figure 1),
//! profiling overhead vs. run length and GC/compile frequency
//! (Figure 2), and base execution times (Figure 3).
//!
//! The [`background`] module supplies the desktop/system noise the
//! paper's full-system measurements ride on (`libxul.so`/`libfb.so`
//! rows in Figure 1; the sub-1.0 "speedup" bars of Figure 2).

pub mod background;
pub mod plan;
pub mod programs;
pub mod runner;
pub mod spec;

pub use background::BackgroundLoad;
pub use plan::{calibrate, WorkPlan};
pub use programs::BuiltWorkload;
pub use runner::{run_benchmark, ProfilerKind, RunOutcome};
pub use spec::{catalog, find_benchmark, BenchParams, Suite};
