//! Work-plan calibration.
//!
//! The paper's benchmarks do a *fixed amount of work*; profiling
//! overhead then shows up as longer execution time. To reproduce that,
//! each benchmark's invocation counts are calibrated once on an
//! unprofiled, noise-free machine so the base run hits its Figure-3
//! target, and the *same plan* is reused for every profiled run — any
//! extra cycles the profiler steals lengthen the run instead of
//! shrinking the work.

use crate::programs::BuiltWorkload;
use crate::runner::{execute_plan, vm_config};
use serde::{Deserialize, Serialize};
use sim_cpu::clock::DEFAULT_FREQ_HZ;
use sim_jvm::{NullHooks, Vm};
use sim_os::{Machine, MachineConfig};

/// Calibrated invocation counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkPlan {
    /// Main-phase invocations per worker.
    pub invocations: Vec<u64>,
    /// Interleaving granularity: each slice runs every worker once.
    pub slices: u32,
    /// Fraction of the paper's base time this plan targets (1.0 = the
    /// full Figure-3 seconds; harnesses may scale down for turnaround).
    pub scale: f64,
}

impl WorkPlan {
    /// Invocations of worker `i` in slice `s` (remainder goes to the
    /// last slice).
    pub fn slice_share(&self, worker: usize, slice: u32) -> u64 {
        let n = self.invocations[worker];
        let per = n / self.slices as u64;
        if slice + 1 == self.slices {
            per + n % self.slices as u64
        } else {
            per
        }
    }

    pub fn total_invocations(&self) -> u64 {
        self.invocations.iter().sum()
    }
}

fn fresh_machine() -> Machine {
    // Calibration runs on a quiet machine: no profiler, no background.
    Machine::new(MachineConfig::default())
}

/// Calibrate a plan targeting `base_seconds × scale` of simulated time.
pub fn calibrate(built: &BuiltWorkload, scale: f64) -> WorkPlan {
    assert!(scale > 0.0 && scale <= 4.0, "scale must be in (0, 4]");
    let target_cycles =
        (built.params.base_seconds * scale * DEFAULT_FREQ_HZ as f64) as u64;

    // Probe: startup cost + steady-state cycles-per-invocation of each
    // worker (second batch, after tiering has settled).
    let mut machine = fresh_machine();
    let mut vm = Vm::boot(
        &mut machine,
        built.program.clone(),
        built.natives.clone(),
        vm_config(&built.params),
        Box::new(NullHooks),
    );
    let t0 = machine.cpu.clock.cycles();
    vm.call(&mut machine, built.startup, &[]);
    let startup_cycles = machine.cpu.clock.cycles() - t0;

    let probe = 48u64;
    let mut cpi = Vec::with_capacity(built.workers.len());
    for w in &built.workers {
        vm.run_batched(&mut machine, *w, &[], probe); // warm: compile + promote
        let t = machine.cpu.clock.cycles();
        vm.run_batched(&mut machine, *w, &[], probe);
        cpi.push(((machine.cpu.clock.cycles() - t) as f64 / probe as f64).max(1.0));
    }

    let remaining = target_cycles.saturating_sub(startup_cycles).max(1) as f64;
    let share = remaining / built.workers.len() as f64;
    let mut invocations: Vec<u64> = cpi.iter().map(|c| ((share / c) as u64).max(1)).collect();

    // Refinement: execute the *full* plan on a fresh quiet machine and
    // rescale by the observed error. A full-scale dry run is cheap in
    // real time (batched execution costs O(blocks), not O(cycles)) and,
    // unlike a fractional dry run, sees the same tier schedule —
    // baseline → O1 → O2 promotions land at the same invocation counts
    // as the measured runs will.
    for _ in 0..4 {
        let plan = WorkPlan {
            invocations: invocations.clone(),
            slices: 48,
            scale,
        };
        let mut machine = fresh_machine();
        execute_plan(&mut machine, built, &plan, Box::new(NullHooks));
        let actual = machine.cpu.clock.cycles() as f64;
        if (actual / target_cycles as f64 - 1.0).abs() < 0.02 {
            break;
        }
        // Rescale only the main phase (startup is fixed work).
        let main_actual = (actual - startup_cycles as f64).max(1.0);
        let main_target = (target_cycles as f64 - startup_cycles as f64).max(1.0);
        let factor = (main_target / main_actual).clamp(0.1, 10.0);
        for n in &mut invocations {
            *n = (((*n as f64) * factor) as u64).max(1);
        }
    }

    WorkPlan {
        invocations,
        slices: 48,
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::build;
    use crate::spec::find_benchmark;

    fn small_fop() -> BuiltWorkload {
        let mut p = find_benchmark("fop").unwrap();
        p.support_methods = 60; // keep the unit test fast
        build(&p)
    }

    #[test]
    fn calibrated_plan_hits_target_within_tolerance() {
        let built = small_fop();
        let scale = 0.01; // 32 ms of simulated time
        let plan = calibrate(&built, scale);
        let mut machine = fresh_machine();
        execute_plan(&mut machine, &built, &plan, Box::new(NullHooks));
        let target = built.params.base_seconds * scale;
        let got = machine.seconds();
        let err = (got - target).abs() / target;
        assert!(
            err < 0.20,
            "calibration error {err:.3}: target {target:.4}s got {got:.4}s"
        );
    }

    #[test]
    fn plan_slices_partition_invocations() {
        let plan = WorkPlan {
            invocations: vec![100, 7],
            slices: 8,
            scale: 1.0,
        };
        for w in 0..2 {
            let sum: u64 = (0..8).map(|s| plan.slice_share(w, s)).sum();
            assert_eq!(sum, plan.invocations[w]);
        }
        assert_eq!(plan.total_invocations(), 107);
    }

    #[test]
    fn calibration_is_deterministic() {
        let built = small_fop();
        let a = calibrate(&built, 0.005);
        let b = calibrate(&built, 0.005);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let built = small_fop();
        calibrate(&built, 0.0);
    }
}
