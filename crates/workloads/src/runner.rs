//! Run orchestration: one benchmark run under a chosen profiler.

use crate::background::{BackgroundConfig, BackgroundLoad};
use crate::plan::WorkPlan;
use crate::programs::BuiltWorkload;
use crate::spec::BenchParams;
use oprofile::{DriverStats, OpConfig, Oprofile, SampleDb, SupervisorStats};
use parking_lot::Mutex;
use sim_jvm::{NullHooks, Vm, VmConfig, VmProfilerHooks, VmStats};
use sim_os::{Machine, MachineConfig};
use std::sync::Arc;
use viprof::agent::AgentStats;
use viprof::{FaultPlan, FaultReport, Viprof};
use viprof_telemetry::TelemetrySnapshot;

/// Which profiler (if any) observes the run.
#[derive(Debug, Clone)]
pub enum ProfilerKind {
    /// Unprofiled base run (Figure 2's 1.0 line, Figure 3's table).
    None,
    /// Stock OProfile.
    Oprofile(OpConfig),
    /// VIProf (extended driver + VM agent).
    Viprof(OpConfig),
    /// VIProf with the precise-move agent extension (E4 ablation).
    ViprofPreciseMoves(OpConfig),
    /// VIProf under a seeded fault schedule (robustness matrix).
    ViprofFaulty(OpConfig, FaultPlan),
    /// [`ProfilerKind::ViprofFaulty`] with the crash-consistency layer
    /// on: map + sample journaling plus the daemon watchdog/restart
    /// supervisor (both seeded from the plan, so runs replay).
    ViprofSupervised(OpConfig, FaultPlan),
}

impl ProfilerKind {
    /// Cycle sampling at `period` (the Figure-2 configurations).
    pub fn oprofile_at(period: u64) -> ProfilerKind {
        ProfilerKind::Oprofile(OpConfig::time_at(period))
    }

    pub fn viprof_at(period: u64) -> ProfilerKind {
        ProfilerKind::Viprof(OpConfig::time_at(period))
    }

    /// VIProf at `period` with faults injected per `plan`.
    pub fn viprof_faulty_at(period: u64, plan: FaultPlan) -> ProfilerKind {
        ProfilerKind::ViprofFaulty(OpConfig::time_at(period), plan)
    }

    /// Faulted VIProf at `period` with journaling + supervision on.
    pub fn viprof_supervised_at(period: u64, plan: FaultPlan) -> ProfilerKind {
        ProfilerKind::ViprofSupervised(OpConfig::time_at(period), plan)
    }
}

/// Everything a harness wants from one run.
pub struct RunOutcome {
    /// Simulated wall-clock of the whole run (the paper's measured
    /// quantity).
    pub seconds: f64,
    pub cycles: u64,
    pub vm: VmStats,
    /// Final sample database (profiled runs).
    pub db: Option<SampleDb>,
    pub driver: Option<DriverStats>,
    pub agent: Option<Arc<Mutex<AgentStats>>>,
    /// Injected-fault counters (fault-plan runs only).
    pub faults: Option<FaultReport>,
    /// Watchdog/restart counters (supervised runs only).
    pub supervisor: Option<SupervisorStats>,
    /// The session's final self-telemetry (profiled runs): counters,
    /// stage timings and the flight-recorder tail, snapshotted after
    /// the stop-time flush.
    pub telemetry: Option<TelemetrySnapshot>,
    /// The machine, for post-processing (reports read images + VFS).
    pub machine: Machine,
}

/// VM configuration for a benchmark.
pub fn vm_config(params: &BenchParams) -> VmConfig {
    VmConfig {
        heap_bytes: params.heap_mb * 1024 * 1024,
        ..VmConfig::default()
    }
}

/// Execute a calibrated plan on an existing machine. Returns the VM's
/// final stats.
pub fn execute_plan(
    machine: &mut Machine,
    built: &BuiltWorkload,
    plan: &WorkPlan,
    hooks: Box<dyn VmProfilerHooks>,
) -> VmStats {
    execute_plan_with_config(machine, built, plan, hooks, vm_config(&built.params))
}

/// [`execute_plan`] with an explicit VM configuration (GC-mode and
/// AOS ablations).
pub fn execute_plan_with_config(
    machine: &mut Machine,
    built: &BuiltWorkload,
    plan: &WorkPlan,
    hooks: Box<dyn VmProfilerHooks>,
    config: VmConfig,
) -> VmStats {
    let mut vm = Vm::boot(
        machine,
        built.program.clone(),
        built.natives.clone(),
        config,
        hooks,
    );
    // Long-lived data first (tables/caches), then class loading work.
    vm.alloc_retained(machine, built.params.retained_kb as u64 * 1024);
    vm.call(machine, built.startup, &[]);
    for slice in 0..plan.slices {
        for (i, w) in built.workers.iter().enumerate() {
            let n = plan.slice_share(i, slice);
            if n > 0 {
                vm.run_batched(machine, *w, &[], n);
            }
        }
    }
    vm.shutdown(machine);
    vm.stats
}

/// Run `built` once with `plan` under `profiler`. `seed` drives the
/// background-noise model (pass a different seed per trial, as the
/// paper's ten repeated measurements implicitly did).
pub fn run_benchmark(
    built: &BuiltWorkload,
    plan: &WorkPlan,
    profiler: ProfilerKind,
    seed: u64,
    background: bool,
) -> RunOutcome {
    let mut machine = Machine::new(MachineConfig {
        seed,
        ..MachineConfig::default()
    });
    if background {
        let bg = BackgroundLoad::install(&mut machine.kernel, BackgroundConfig::default());
        machine.add_service(Box::new(bg));
    }

    let precise = matches!(&profiler, ProfilerKind::ViprofPreciseMoves(_));
    let supervised = matches!(&profiler, ProfilerKind::ViprofSupervised(..));
    let fault_plan = match &profiler {
        ProfilerKind::ViprofFaulty(_, fp) | ProfilerKind::ViprofSupervised(_, fp) => {
            Some(fp.clone())
        }
        _ => None,
    };
    let (vm_stats, db, driver, agent, faults, supervisor, telemetry) = match profiler {
        ProfilerKind::None => {
            let stats = execute_plan(&mut machine, built, plan, Box::new(NullHooks));
            (stats, None, None, None, None, None, None)
        }
        ProfilerKind::Oprofile(config) => {
            let op = Oprofile::start(&mut machine, config);
            let stats = execute_plan(&mut machine, built, plan, Box::new(NullHooks));
            let db = op.stop(&mut machine);
            let telemetry = Some(op.telemetry().snapshot());
            (
                stats,
                Some(db),
                Some(op.driver_stats()),
                None,
                None,
                None,
                telemetry,
            )
        }
        // Every VIProf flavour is one builder chain now: faults and
        // supervision are orthogonal toggles, not enum plumbing.
        ProfilerKind::Viprof(config)
        | ProfilerKind::ViprofPreciseMoves(config)
        | ProfilerKind::ViprofFaulty(config, _)
        | ProfilerKind::ViprofSupervised(config, _) => {
            let mut builder = Viprof::builder().config(config);
            if let Some(fp) = &fault_plan {
                builder = builder.faults(fp);
            }
            if supervised {
                builder = builder.journal(true).supervised(true);
            }
            let vp = builder.start(&mut machine);
            let agent = vp.make_agent_with(precise);
            let agent_stats = agent.stats_handle();
            // The VM shares the session registry so GC collections and
            // pause cycles land in the same snapshot.
            let config = VmConfig {
                telemetry: Some(vp.telemetry()),
                ..vm_config(&built.params)
            };
            let stats =
                execute_plan_with_config(&mut machine, built, plan, Box::new(agent), config);
            let db = vp.stop(&mut machine);
            let telemetry = Some(vp.telemetry().snapshot());
            let report = fault_plan.is_some().then(|| FaultReport {
                driver: vp.driver_fault_stats().unwrap_or_default(),
                daemon: vp.daemon_fault_stats().unwrap_or_default(),
                maps: vp.map_fault_stats().unwrap_or_default(),
            });
            (
                stats,
                Some(db),
                Some(vp.driver_stats()),
                Some(agent_stats),
                report,
                vp.supervisor_stats(),
                telemetry,
            )
        }
    };

    RunOutcome {
        seconds: machine.seconds(),
        cycles: machine.cpu.clock.cycles(),
        vm: vm_stats,
        db,
        driver,
        agent,
        faults,
        supervisor,
        telemetry,
        machine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::calibrate;
    use crate::programs::build;
    use crate::spec::find_benchmark;

    fn small_built() -> (BuiltWorkload, WorkPlan) {
        let mut p = find_benchmark("fop").unwrap();
        p.support_methods = 60;
        // Small heap so GCs (and VIProf map writes) happen even at 1 %
        // scale.
        p.heap_mb = 2;
        let built = build(&p);
        let plan = calibrate(&built, 0.01);
        (built, plan)
    }

    #[test]
    fn base_run_produces_no_profile() {
        let (built, plan) = small_built();
        let out = run_benchmark(&built, &plan, ProfilerKind::None, 1, false);
        assert!(out.db.is_none());
        assert!(out.seconds > 0.0);
        assert!(out.vm.compiles > 60);
    }

    #[test]
    fn profiled_runs_are_slower_and_produce_samples() {
        let (built, plan) = small_built();
        let base = run_benchmark(&built, &plan, ProfilerKind::None, 1, false);
        let oprof = run_benchmark(&built, &plan, ProfilerKind::oprofile_at(90_000), 1, false);
        let viprof = run_benchmark(&built, &plan, ProfilerKind::viprof_at(90_000), 1, false);
        assert!(oprof.seconds > base.seconds);
        assert!(viprof.seconds > base.seconds);
        assert!(oprof.db.unwrap().total_samples() > 0);
        assert!(viprof.db.unwrap().total_samples() > 0);
        // Classification differs: OProfile sees anon, VIProf sees JIT.
        assert!(oprof.driver.unwrap().anon > 0);
        let vd = viprof.driver.unwrap();
        assert_eq!(vd.anon, 0);
        assert!(vd.jit > 0);
        // The agent wrote maps.
        assert!(viprof.agent.unwrap().lock().maps_written >= 1);
        // Telemetry rode along the profiled runs (and only those).
        assert!(base.telemetry.is_none());
        use viprof_telemetry::names;
        let ot = oprof.telemetry.unwrap();
        assert!(ot.counter(names::CPU_SAMPLES_DELIVERED) > 0);
        let vt = viprof.telemetry.unwrap();
        assert!(vt.counter(names::AGENT_MAPS_WRITTEN) >= 1);
        assert!(vt.counter(names::VM_GC_COLLECTIONS) > 0, "VM shares the registry");
    }

    #[test]
    fn same_seed_same_cycles() {
        let (built, plan) = small_built();
        let a = run_benchmark(&built, &plan, ProfilerKind::None, 7, true);
        let b = run_benchmark(&built, &plan, ProfilerKind::None, 7, true);
        assert_eq!(a.cycles, b.cycles);
        let c = run_benchmark(&built, &plan, ProfilerKind::None, 8, true);
        assert_ne!(a.cycles, c.cycles, "different noise seed");
    }

    #[test]
    fn supervised_run_exposes_watchdog_stats_and_journals() {
        let (built, plan) = small_built();
        let out = run_benchmark(
            &built,
            &plan,
            ProfilerKind::viprof_supervised_at(90_000, FaultPlan::new(5)),
            1,
            false,
        );
        let sup = out.supervisor.expect("supervised run carries stats");
        assert_eq!(sup.restarts, 0, "no faults injected, no restarts");
        // The sample journal replays to exactly the persisted database.
        let replayed = viprof::recover::recover_sample_db(&out.machine.kernel.vfs)
            .expect("journaling was on");
        assert_eq!(&replayed.db, out.db.as_ref().unwrap());
        assert_eq!(replayed.truncated_bytes, 0);
        // Unsupervised runs carry no stats.
        let plain = run_benchmark(
            &built,
            &plan,
            ProfilerKind::viprof_faulty_at(90_000, FaultPlan::new(5)),
            1,
            false,
        );
        assert!(plain.supervisor.is_none());
    }

    #[test]
    fn faster_sampling_costs_more() {
        let (built, plan) = small_built();
        let slow = run_benchmark(&built, &plan, ProfilerKind::viprof_at(450_000), 1, false);
        let fast = run_benchmark(&built, &plan, ProfilerKind::viprof_at(45_000), 1, false);
        assert!(
            fast.cycles > slow.cycles,
            "45K sampling must cost more than 450K"
        );
    }
}
