//! Run orchestration: one benchmark run under a chosen profiler.

use crate::background::{BackgroundConfig, BackgroundLoad};
use crate::plan::WorkPlan;
use crate::programs::BuiltWorkload;
use crate::spec::BenchParams;
use oprofile::{DriverStats, OpConfig, Oprofile, SampleDb, SupervisorStats};
use parking_lot::Mutex;
use sim_jvm::{NullHooks, Vm, VmConfig, VmProfilerHooks, VmStats};
use sim_os::{Machine, MachineConfig};
use std::sync::Arc;
use viprof::agent::AgentStats;
use viprof::{ChurnSchedule, FaultPlan, FaultReport, LiveSpec, ReportSpec, SessionReport, Viprof};
use viprof_telemetry::{TelemetrySnapshot, TraceSnapshot};

/// Which profiler (if any) observes the run.
#[derive(Debug, Clone)]
pub enum ProfilerKind {
    /// Unprofiled base run (Figure 2's 1.0 line, Figure 3's table).
    None,
    /// Stock OProfile.
    Oprofile(OpConfig),
    /// VIProf (extended driver + VM agent).
    Viprof(OpConfig),
    /// VIProf with the precise-move agent extension (E4 ablation).
    ViprofPreciseMoves(OpConfig),
    /// VIProf under a seeded fault schedule (robustness matrix).
    ViprofFaulty(OpConfig, FaultPlan),
    /// [`ProfilerKind::ViprofFaulty`] with the crash-consistency layer
    /// on: map + sample journaling plus the daemon watchdog/restart
    /// supervisor (both seeded from the plan, so runs replay).
    ViprofSupervised(OpConfig, FaultPlan),
    /// VIProf with the streaming resolution engine riding the daemon's
    /// drain sink (journaled, so replayed batches exercise the
    /// sequence dedup). The optional fault plan puts the stream under
    /// the robustness matrix; the sealed final snapshot comes back in
    /// [`RunOutcome::live`].
    ViprofLive(OpConfig, Option<FaultPlan>),
}

impl ProfilerKind {
    /// Cycle sampling at `period` (the Figure-2 configurations).
    pub fn oprofile_at(period: u64) -> ProfilerKind {
        ProfilerKind::Oprofile(OpConfig::time_at(period))
    }

    pub fn viprof_at(period: u64) -> ProfilerKind {
        ProfilerKind::Viprof(OpConfig::time_at(period))
    }

    /// VIProf at `period` with faults injected per `plan`.
    pub fn viprof_faulty_at(period: u64, plan: FaultPlan) -> ProfilerKind {
        ProfilerKind::ViprofFaulty(OpConfig::time_at(period), plan)
    }

    /// Faulted VIProf at `period` with journaling + supervision on.
    pub fn viprof_supervised_at(period: u64, plan: FaultPlan) -> ProfilerKind {
        ProfilerKind::ViprofSupervised(OpConfig::time_at(period), plan)
    }

    /// VIProf at `period` with the live engine attached.
    pub fn viprof_live_at(period: u64) -> ProfilerKind {
        ProfilerKind::ViprofLive(OpConfig::time_at(period), None)
    }
}

/// Everything a harness wants from one run.
pub struct RunOutcome {
    /// Simulated wall-clock of the whole run (the paper's measured
    /// quantity).
    pub seconds: f64,
    pub cycles: u64,
    pub vm: VmStats,
    /// Final sample database (profiled runs).
    pub db: Option<SampleDb>,
    pub driver: Option<DriverStats>,
    pub agent: Option<Arc<Mutex<AgentStats>>>,
    /// Injected-fault counters (fault-plan runs only).
    pub faults: Option<FaultReport>,
    /// Watchdog/restart counters (supervised runs only).
    pub supervisor: Option<SupervisorStats>,
    /// The session's final self-telemetry (profiled runs): counters,
    /// stage timings and the flight-recorder tail, snapshotted after
    /// the stop-time flush.
    pub telemetry: Option<TelemetrySnapshot>,
    /// The session's causal span tree (profiled runs), snapshotted
    /// after the stop-time flush — same data the session persists as
    /// Chrome trace JSON at `oprofile::TRACE_PATH`.
    pub trace: Option<TraceSnapshot>,
    /// The live engine's sealed final snapshot
    /// ([`ProfilerKind::ViprofLive`] runs only) — bit-identical to
    /// `Viprof::make_report` over [`RunOutcome::db`].
    pub live: Option<SessionReport>,
    /// The machine, for post-processing (reports read images + VFS).
    pub machine: Machine,
}

/// VM configuration for a benchmark.
pub fn vm_config(params: &BenchParams) -> VmConfig {
    VmConfig {
        heap_bytes: params.heap_mb * 1024 * 1024,
        ..VmConfig::default()
    }
}

/// Execute a calibrated plan on an existing machine. Returns the VM's
/// final stats.
pub fn execute_plan(
    machine: &mut Machine,
    built: &BuiltWorkload,
    plan: &WorkPlan,
    hooks: Box<dyn VmProfilerHooks>,
) -> VmStats {
    execute_plan_with_config(machine, built, plan, hooks, vm_config(&built.params))
}

/// [`execute_plan`] with an explicit VM configuration (GC-mode and
/// AOS ablations).
pub fn execute_plan_with_config(
    machine: &mut Machine,
    built: &BuiltWorkload,
    plan: &WorkPlan,
    hooks: Box<dyn VmProfilerHooks>,
    config: VmConfig,
) -> VmStats {
    let mut vm = Vm::boot(
        machine,
        built.program.clone(),
        built.natives.clone(),
        config,
        hooks,
    );
    // Long-lived data first (tables/caches), then class loading work.
    vm.alloc_retained(machine, built.params.retained_kb as u64 * 1024);
    vm.call(machine, built.startup, &[]);
    for slice in 0..plan.slices {
        for (i, w) in built.workers.iter().enumerate() {
            let n = plan.slice_share(i, slice);
            if n > 0 {
                vm.run_batched(machine, *w, &[], n);
            }
        }
    }
    vm.shutdown(machine);
    vm.stats
}

/// [`execute_plan_with_config`] under a process-churn schedule: at each
/// scheduled slice the running VM is *killed* — no final map flush, no
/// unregistration, pid back on the kernel's LIFO free list — optionally
/// a decoy process cycles the freed pid, and a fresh incarnation boots
/// with its own agent (same session registry, bumped generation).
/// Returns the summed stats of every incarnation.
fn execute_plan_churn(
    machine: &mut Machine,
    built: &BuiltWorkload,
    plan: &WorkPlan,
    viprof: &Viprof,
    precise: bool,
    config: &VmConfig,
    churn: &ChurnSchedule,
) -> VmStats {
    let mut total = VmStats::default();
    let absorb = |total: &mut VmStats, s: VmStats| {
        total.compiles += s.compiles;
        total.recompiles += s.recompiles;
        total.gcs += s.gcs;
        total.ops_interpreted += s.ops_interpreted;
        total.ops_jit += s.ops_jit;
        total.native_calls += s.native_calls;
        total.batched_invocations += s.batched_invocations;
        total.classloads += s.classloads;
    };
    let boot = |machine: &mut Machine| {
        Vm::boot(
            machine,
            built.program.clone(),
            built.natives.clone(),
            config.clone(),
            Box::new(viprof.make_agent_with(precise)),
        )
    };
    let mut vm = boot(machine);
    vm.alloc_retained(machine, built.params.retained_kb as u64 * 1024);
    vm.call(machine, built.startup, &[]);
    for slice in 0..plan.slices {
        for (i, w) in built.workers.iter().enumerate() {
            let n = plan.slice_share(i, slice);
            if n > 0 {
                vm.run_batched(machine, *w, &[], n);
            }
        }
        if churn.restart_after(slice as u64) && slice + 1 < plan.slices {
            absorb(&mut total, vm.kill(machine));
            if churn.reuse_collision {
                let decoy = machine.kernel.spawn("decoy");
                machine.kernel.exit_process(decoy);
            }
            vm = boot(machine);
            vm.call(machine, built.startup, &[]);
        }
    }
    vm.shutdown(machine);
    absorb(&mut total, vm.stats);
    total
}

/// Run `built` once with `plan` under `profiler`. `seed` drives the
/// background-noise model (pass a different seed per trial, as the
/// paper's ten repeated measurements implicitly did).
pub fn run_benchmark(
    built: &BuiltWorkload,
    plan: &WorkPlan,
    profiler: ProfilerKind,
    seed: u64,
    background: bool,
) -> RunOutcome {
    let mut machine = Machine::new(MachineConfig {
        seed,
        ..MachineConfig::default()
    });
    if background {
        let bg = BackgroundLoad::install(&mut machine.kernel, BackgroundConfig::default());
        machine.add_service(Box::new(bg));
    }

    let precise = matches!(&profiler, ProfilerKind::ViprofPreciseMoves(_));
    let supervised = matches!(&profiler, ProfilerKind::ViprofSupervised(..));
    let live = matches!(&profiler, ProfilerKind::ViprofLive(..));
    let fault_plan = match &profiler {
        ProfilerKind::ViprofFaulty(_, fp) | ProfilerKind::ViprofSupervised(_, fp) => {
            Some(fp.clone())
        }
        ProfilerKind::ViprofLive(_, fp) => fp.clone(),
        _ => None,
    };
    let (vm_stats, db, driver, agent, faults, supervisor, telemetry, trace, live_report) =
        match profiler {
        ProfilerKind::None => {
            let stats = execute_plan(&mut machine, built, plan, Box::new(NullHooks));
            (stats, None, None, None, None, None, None, None, None)
        }
        ProfilerKind::Oprofile(config) => {
            let op = Oprofile::start(&mut machine, config);
            let stats = execute_plan(&mut machine, built, plan, Box::new(NullHooks));
            let db = op.stop(&mut machine);
            let telemetry = Some(op.telemetry().snapshot());
            let trace = Some(op.telemetry().trace_snapshot());
            (
                stats,
                Some(db),
                Some(op.driver_stats()),
                None,
                None,
                None,
                telemetry,
                trace,
                None,
            )
        }
        // Every VIProf flavour is one builder chain now: faults and
        // supervision are orthogonal toggles, not enum plumbing.
        ProfilerKind::Viprof(config)
        | ProfilerKind::ViprofPreciseMoves(config)
        | ProfilerKind::ViprofFaulty(config, _)
        | ProfilerKind::ViprofSupervised(config, _)
        | ProfilerKind::ViprofLive(config, _) => {
            let mut builder = Viprof::builder().config(config);
            if let Some(fp) = &fault_plan {
                builder = builder.faults(fp);
            }
            if supervised {
                builder = builder.journal(true).supervised(true);
            }
            if live {
                builder = builder.journal(true).live(LiveSpec::new());
            }
            let vp = builder.start(&mut machine);
            let agent = vp.make_agent_with(precise);
            let agent_stats = agent.stats_handle();
            // The VM shares the session registry so GC collections and
            // pause cycles land in the same snapshot.
            let config = VmConfig {
                telemetry: Some(vp.telemetry()),
                ..vm_config(&built.params)
            };
            let churn = fault_plan
                .as_ref()
                .and_then(|fp| fp.churn_schedule(plan.slices as u64));
            let stats = match &churn {
                Some(schedule) => {
                    drop(agent); // churn boots its own per-incarnation agents
                    execute_plan_churn(
                        &mut machine,
                        built,
                        plan,
                        &vp,
                        precise,
                        &config,
                        schedule,
                    )
                }
                None => {
                    execute_plan_with_config(&mut machine, built, plan, Box::new(agent), config)
                }
            };
            let db = vp.stop(&mut machine);
            let live_report = vp.live_snapshot(&machine.kernel, &ReportSpec::default());
            let telemetry = Some(vp.telemetry().snapshot());
            let trace = Some(vp.telemetry().trace_snapshot());
            let report = fault_plan.is_some().then(|| FaultReport {
                driver: vp.driver_fault_stats().unwrap_or_default(),
                daemon: vp.daemon_fault_stats().unwrap_or_default(),
                maps: vp.map_fault_stats().unwrap_or_default(),
            });
            (
                stats,
                Some(db),
                Some(vp.driver_stats()),
                Some(agent_stats),
                report,
                vp.supervisor_stats(),
                telemetry,
                trace,
                live_report,
            )
        }
    };

    RunOutcome {
        seconds: machine.seconds(),
        cycles: machine.cpu.clock.cycles(),
        vm: vm_stats,
        db,
        driver,
        agent,
        faults,
        supervisor,
        telemetry,
        trace,
        live: live_report,
        machine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::calibrate;
    use crate::programs::build;
    use crate::spec::find_benchmark;

    fn small_built() -> (BuiltWorkload, WorkPlan) {
        let mut p = find_benchmark("fop").unwrap();
        p.support_methods = 60;
        // Small heap so GCs (and VIProf map writes) happen even at 1 %
        // scale.
        p.heap_mb = 2;
        let built = build(&p);
        let plan = calibrate(&built, 0.01);
        (built, plan)
    }

    #[test]
    fn base_run_produces_no_profile() {
        let (built, plan) = small_built();
        let out = run_benchmark(&built, &plan, ProfilerKind::None, 1, false);
        assert!(out.db.is_none());
        assert!(out.seconds > 0.0);
        assert!(out.vm.compiles > 60);
    }

    #[test]
    fn profiled_runs_are_slower_and_produce_samples() {
        let (built, plan) = small_built();
        let base = run_benchmark(&built, &plan, ProfilerKind::None, 1, false);
        let oprof = run_benchmark(&built, &plan, ProfilerKind::oprofile_at(90_000), 1, false);
        let viprof = run_benchmark(&built, &plan, ProfilerKind::viprof_at(90_000), 1, false);
        assert!(oprof.seconds > base.seconds);
        assert!(viprof.seconds > base.seconds);
        assert!(oprof.db.unwrap().total_samples() > 0);
        assert!(viprof.db.unwrap().total_samples() > 0);
        // Classification differs: OProfile sees anon, VIProf sees JIT.
        assert!(oprof.driver.unwrap().anon > 0);
        let vd = viprof.driver.unwrap();
        assert_eq!(vd.anon, 0);
        assert!(vd.jit > 0);
        // The agent wrote maps.
        assert!(viprof.agent.unwrap().lock().maps_written >= 1);
        // Telemetry rode along the profiled runs (and only those).
        assert!(base.telemetry.is_none());
        use viprof_telemetry::names;
        let ot = oprof.telemetry.unwrap();
        assert!(ot.counter(names::CPU_SAMPLES_DELIVERED) > 0);
        let vt = viprof.telemetry.unwrap();
        assert!(vt.counter(names::AGENT_MAPS_WRITTEN) >= 1);
        assert!(vt.counter(names::VM_GC_COLLECTIONS) > 0, "VM shares the registry");
    }

    #[test]
    fn same_seed_same_cycles() {
        let (built, plan) = small_built();
        let a = run_benchmark(&built, &plan, ProfilerKind::None, 7, true);
        let b = run_benchmark(&built, &plan, ProfilerKind::None, 7, true);
        assert_eq!(a.cycles, b.cycles);
        let c = run_benchmark(&built, &plan, ProfilerKind::None, 8, true);
        assert_ne!(a.cycles, c.cycles, "different noise seed");
    }

    #[test]
    fn supervised_run_exposes_watchdog_stats_and_journals() {
        let (built, plan) = small_built();
        let out = run_benchmark(
            &built,
            &plan,
            ProfilerKind::viprof_supervised_at(90_000, FaultPlan::new(5)),
            1,
            false,
        );
        let sup = out.supervisor.expect("supervised run carries stats");
        assert_eq!(sup.restarts, 0, "no faults injected, no restarts");
        // The sample journal replays to exactly the persisted database.
        let replayed = viprof::recover::recover_sample_db(&out.machine.kernel.vfs)
            .expect("journaling was on");
        assert_eq!(&replayed.db, out.db.as_ref().unwrap());
        assert_eq!(replayed.truncated_bytes, 0);
        // Unsupervised runs carry no stats.
        let plain = run_benchmark(
            &built,
            &plan,
            ProfilerKind::viprof_faulty_at(90_000, FaultPlan::new(5)),
            1,
            false,
        );
        assert!(plain.supervisor.is_none());
    }

    #[test]
    fn live_run_sealed_snapshot_matches_offline_report() {
        let (built, plan) = small_built();
        // Fast wakeups so the stream sees several incremental batches.
        let config = OpConfig {
            daemon_period_cycles: 300_000,
            ..OpConfig::time_at(90_000)
        };
        let out = run_benchmark(
            &built,
            &plan,
            ProfilerKind::ViprofLive(config, None),
            1,
            false,
        );
        let db = out.db.as_ref().unwrap();
        let live = out.live.expect("live run carries a sealed snapshot");
        let offline = Viprof::make_report(db, &out.machine.kernel, &ReportSpec::default()).unwrap();
        assert_eq!(live.lines, offline.lines);
        assert_eq!(live.quality, offline.quality);
        assert_eq!(live.incarnations, offline.incarnations);
        use viprof_telemetry::names;
        let t = out.telemetry.as_ref().unwrap();
        assert!(t.counter(names::LIVE_BATCHES) > 0);
        // Non-live runs don't carry one.
        let plain = run_benchmark(&built, &plan, ProfilerKind::viprof_at(90_000), 1, false);
        assert!(plain.live.is_none());
    }

    #[test]
    fn churned_run_restarts_the_vm_and_stays_accounted() {
        let (built, plan) = small_built();
        let fp = FaultPlan::new(21).with_vm_restarts(2).with_pid_reuse_collision();
        assert!(fp.churn_schedule(plan.slices as u64).is_some());
        // Fast daemon wakeups: each incarnation's samples must reach
        // the database *before* its death, or the whole run collapses
        // into dead-generation drops (the default 170M-cycle period can
        // outlast a 1%-scale workload).
        let config = || OpConfig {
            daemon_period_cycles: 300_000,
            ..OpConfig::time_at(90_000)
        };
        let out = run_benchmark(
            &built,
            &plan,
            ProfilerKind::ViprofFaulty(config(), fp.clone()),
            1,
            false,
        );
        let db = out.db.unwrap();
        assert!(db.total_samples() > 0);
        let rep = Viprof::make_report(&db, &out.machine.kernel, &ReportSpec::default()).unwrap();
        assert_eq!(rep.quality.accounted(), db.total_samples());
        // The restarts left more than one incarnation in the profile,
        // and none of them borrowed another's maps.
        assert!(rep.incarnations.len() >= 2, "{:?}", rep.incarnations);
        // Same plan, same seed: the churned run replays bit-for-bit.
        let again = run_benchmark(
            &built,
            &plan,
            ProfilerKind::ViprofFaulty(config(), fp),
            1,
            false,
        );
        assert_eq!(out.cycles, again.cycles);
        assert_eq!(&db, again.db.as_ref().unwrap());
    }

    #[test]
    fn faster_sampling_costs_more() {
        let (built, plan) = small_built();
        let slow = run_benchmark(&built, &plan, ProfilerKind::viprof_at(450_000), 1, false);
        let fast = run_benchmark(&built, &plan, ProfilerKind::viprof_at(45_000), 1, false);
        assert!(
            fast.cycles > slow.cycles,
            "45K sampling must cost more than 450K"
        );
    }
}
