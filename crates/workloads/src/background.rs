//! Background system load: the desktop the paper's testbed was not
//! quite able to keep quiet.
//!
//! Two deterministic (seeded) components:
//!
//! * **desktop bursts** — small, frequent slices of X server / browser
//!   work in `libfb.so` / `libxul.so.0d`. These produce the stray
//!   Figure-1 rows (`fbCopyAreammx`, `fbCompositeSolidMask…`,
//!   `libxul.so.0d (no symbols)`) in every system-wide profile;
//! * **system events** — rare, heavy kernel-side bursts (page-cache
//!   writeback, cron). Their Poisson-like arrival is what makes
//!   repeated runs differ by ±1 % — the paper's "system noise and the
//!   uncertainty involved in full system measurements" that shows up as
//!   sub-1.0 bars in Figure 2.

use sim_cpu::{Addr, BlockExec, CpuMode, MemActivity, Pid};
use sim_os::loader::LIB_HINT;
use sim_os::{Image, Kernel, Loader, MachineCtx, MachineService, Symbol};

/// Load-model parameters.
#[derive(Debug, Clone, Copy)]
pub struct BackgroundConfig {
    /// Mean gap between desktop bursts (cycles).
    pub desktop_gap: u64,
    /// Desktop burst size range (cycles).
    pub desktop_burst: (u64, u64),
    /// Mean gap between heavy system events (cycles).
    pub system_gap: u64,
    /// Heavy event size range (cycles).
    pub system_burst: (u64, u64),
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            desktop_gap: 3_000_000,
            desktop_burst: (5_000, 40_000),
            // Rare, heavy system events (writeback storms, cron): their
            // Poisson-like arrival gives repeated runs a ~1–2 % spread —
            // enough that a lightly-profiled run occasionally measures
            // *faster* than base, the paper's hsqldb/bloat observation.
            system_gap: 7_000_000_000,
            system_burst: (100_000_000, 600_000_000),
        }
    }
}

/// One target the load can execute in.
#[derive(Debug, Clone, Copy)]
struct Target {
    pid: Pid,
    mode: CpuMode,
    pc_range: (Addr, Addr),
    /// L2 misses per 1000 cycles (blitting is memory-bound).
    l2_per_kcycle: u64,
}

/// The background-load machine service.
pub struct BackgroundLoad {
    config: BackgroundConfig,
    desktop: Vec<Target>,
    system: Vec<Target>,
    next_desktop: u64,
    next_system: u64,
    pub desktop_bursts: u64,
    pub system_events: u64,
}

impl BackgroundLoad {
    /// Spawn the desktop processes (Xorg, firefox-bin) and build the
    /// service.
    pub fn install(kernel: &mut Kernel, config: BackgroundConfig) -> BackgroundLoad {
        // Xorg with the fb blitters from Figure 1.
        let libfb = match kernel.images.find_by_name("libfb.so") {
            Some(id) => id,
            None => kernel.images.insert(Image::new("libfb.so", 0x3000).with_symbols([
                Symbol::new("fbCopyAreammx", 0x0000, 0x1000),
                Symbol::new("fbCompositeSolidMask_nx8x8888mmx", 0x1000, 0x1000),
                Symbol::new("fbSolidFillmmx", 0x2000, 0x1000),
            ])),
        };
        // Firefox: big, stripped library (shows as "(no symbols)").
        let libxul = match kernel.images.find_by_name("libxul.so.0d") {
            Some(id) => id,
            None => kernel.images.insert(Image::new("libxul.so.0d", 0x200000)),
        };
        let xorg = kernel.spawn("Xorg");
        let fb_base = Loader::load_image(kernel, xorg, libfb, LIB_HINT);
        let firefox = kernel.spawn("firefox-bin");
        let xul_base = Loader::load_image(kernel, firefox, libxul, LIB_HINT);

        let desktop = vec![
            Target {
                pid: xorg,
                mode: CpuMode::User,
                pc_range: (fb_base, fb_base + 0x1000), // fbCopyAreammx
                l2_per_kcycle: 3,
            },
            Target {
                pid: xorg,
                mode: CpuMode::User,
                pc_range: (fb_base + 0x1000, fb_base + 0x2000),
                l2_per_kcycle: 4,
            },
            Target {
                pid: firefox,
                mode: CpuMode::User,
                pc_range: (xul_base, xul_base + 0x200000),
                l2_per_kcycle: 1,
            },
        ];
        let system = vec![
            Target {
                pid: Pid::KERNEL,
                mode: CpuMode::Kernel,
                pc_range: kernel.kernel_symbol_range("clear_page"),
                l2_per_kcycle: 6,
            },
            Target {
                pid: Pid::KERNEL,
                mode: CpuMode::Kernel,
                pc_range: kernel.kernel_symbol_range("sys_write"),
                l2_per_kcycle: 2,
            },
        ];
        BackgroundLoad {
            config,
            desktop,
            system,
            next_desktop: config.desktop_gap,
            next_system: config.system_gap / 2,
            desktop_bursts: 0,
            system_events: 0,
        }
    }

    fn burst(ctx: &mut MachineCtx<'_>, t: &Target, cycles: u64) {
        let l2 = cycles / 1_000 * t.l2_per_kcycle;
        ctx.exec(&BlockExec {
            pid: t.pid,
            mode: t.mode,
            pc_range: t.pc_range,
            cycles,
            instructions: cycles,
            branches: cycles / 24,
            mem: MemActivity::Stats {
                l1d_misses: l2 * 3,
                l2_misses: l2,
            },
        });
    }
}

impl MachineService for BackgroundLoad {
    fn poll(&mut self, ctx: &mut MachineCtx<'_>) {
        let now = ctx.cpu.clock.cycles();
        if now >= self.next_desktop {
            let (lo, hi) = self.config.desktop_burst;
            let cycles = ctx.rng.range_u64(lo, hi);
            let t = self.desktop[ctx.rng.range_u64(0, self.desktop.len() as u64) as usize];
            Self::burst(ctx, &t, cycles);
            self.desktop_bursts += 1;
            // Re-arm past *now* so long blocks don't cause burst storms.
            let gap = ctx.rng.range_u64(self.config.desktop_gap / 2, self.config.desktop_gap * 2);
            self.next_desktop = now + gap;
        }
        if now >= self.next_system {
            let (lo, hi) = self.config.system_burst;
            let cycles = ctx.rng.range_u64(lo, hi);
            let t = self.system[ctx.rng.range_u64(0, self.system.len() as u64) as usize];
            Self::burst(ctx, &t, cycles);
            self.system_events += 1;
            let gap = ctx.rng.range_u64(self.config.system_gap / 2, self.config.system_gap * 2);
            self.next_system = now + gap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_os::{Machine, MachineConfig};

    fn run_with_seed(seed: u64) -> u64 {
        let mut m = Machine::new(MachineConfig {
            seed,
            ..MachineConfig::default()
        });
        let bg = BackgroundLoad::install(&mut m.kernel, BackgroundConfig::default());
        m.add_service(Box::new(bg));
        // 2 simulated seconds of foreground work in 10ms chunks.
        let app = m.kernel.spawn("app");
        for _ in 0..200 {
            m.exec(&BlockExec::compute(
                app,
                CpuMode::User,
                (0x1000, 0x2000),
                34_000_000,
            ));
        }
        m.cpu.clock.cycles()
    }

    #[test]
    fn background_adds_small_load() {
        let total = run_with_seed(1);
        let work = 200u64 * 34_000_000;
        let extra = (total - work) as f64 / work as f64;
        assert!(extra > 0.002 && extra < 0.10, "background load {extra}");
    }

    #[test]
    fn different_seeds_give_different_elapsed() {
        let a = run_with_seed(1);
        let b = run_with_seed(2);
        assert_ne!(a, b);
        // Same seed → exactly reproducible.
        assert_eq!(a, run_with_seed(1));
    }

    #[test]
    fn desktop_images_installed_for_figure1() {
        let mut m = Machine::new(MachineConfig::default());
        BackgroundLoad::install(&mut m.kernel, BackgroundConfig::default());
        assert!(m.kernel.images.find_by_name("libfb.so").is_some());
        let xul = m.kernel.images.find_by_name("libxul.so.0d").unwrap();
        assert!(!m.kernel.images.get(xul).has_symbols());
    }

    #[test]
    fn double_install_reuses_images() {
        let mut m = Machine::new(MachineConfig::default());
        BackgroundLoad::install(&mut m.kernel, BackgroundConfig::default());
        let before = m.kernel.images.len();
        BackgroundLoad::install(&mut m.kernel, BackgroundConfig::default());
        assert_eq!(m.kernel.images.len(), before);
    }
}
