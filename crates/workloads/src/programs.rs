//! Bytecode generation: turn a [`BenchParams`] into a runnable program.
//!
//! Each benchmark becomes:
//!
//! * `workers` hot methods — inner loop of arithmetic + array reads and
//!   writes, allocation churn, optional `memset`/`write(2)` calls;
//! * `support_methods` cold methods — each compiled exactly once when
//!   the startup method calls it (compile pressure and code-map bulk);
//! * one startup method that touches every support method.
//!
//! The driver ([`crate::runner`]) invokes the workers via the VM's
//! batched path according to a calibrated [`crate::plan::WorkPlan`].

use crate::spec::BenchParams;
use sim_jvm::{
    ClassId, MethodAsm, MethodId, NativeFn, NativeRegistry, Op, ProgramBuilder, ProgramDef,
};

/// A program plus the handles the runner needs.
#[derive(Debug, Clone)]
pub struct BuiltWorkload {
    pub params: BenchParams,
    pub program: ProgramDef,
    pub natives: NativeRegistry,
    pub startup: MethodId,
    pub workers: Vec<MethodId>,
}

/// Generate the worker body described by `params`.
fn worker_body(
    params: &BenchParams,
    salt: i64,
    memset: Option<sim_jvm::NativeFnId>,
    write: Option<sim_jvm::NativeFnId>,
) -> Vec<Op> {
    // locals: 0 = loop counter, 1 = acc, 2 = array, 3 = churn counter,
    //         4 = syscall counter
    let len = params.array_len.max(1) as i64;
    let mut a = MethodAsm::new();
    // Fresh scratch array each invocation.
    a.op(Op::Const(len)).op(Op::NewArray).op(Op::Store(2));
    a.op(Op::Const(0)).op(Op::Store(1));
    a.counted_loop(0, params.inner_iters.max(1) as i64, |l| {
        // acc = (acc + salt) % 9973  — stays non-negative.
        l.op(Op::Load(1))
            .op(Op::Const(3 + salt))
            .op(Op::Add)
            .op(Op::Const(9_973))
            .op(Op::Rem)
            .op(Op::Store(1));
        // read a[acc % len]
        l.op(Op::Load(2))
            .op(Op::Load(1))
            .op(Op::Const(len))
            .op(Op::Rem)
            .op(Op::ALoad)
            .op(Op::Pop);
        // a[(acc*7) % len] = acc
        l.op(Op::Load(2))
            .op(Op::Load(1))
            .op(Op::Const(7))
            .op(Op::Mul)
            .op(Op::Const(len))
            .op(Op::Rem)
            .op(Op::Load(1))
            .op(Op::AStore);
    });
    // Allocation churn.
    if params.alloc_objs_per_inv > 0 {
        a.counted_loop(3, params.alloc_objs_per_inv as i64, |l| {
            l.op(Op::New(ClassId(0))).op(Op::Pop);
        });
    }
    // Native share.
    if let Some(ms) = memset {
        a.op(Op::Const(params.memset_bytes as i64))
            .op(Op::NativeCall(ms))
            .op(Op::Pop);
    }
    if let Some(wr) = write {
        a.counted_loop(4, params.syscalls_per_inv as i64, |l| {
            l.op(Op::Const(128)).op(Op::NativeCall(wr)).op(Op::Pop);
        });
    }
    a.op(Op::Load(1)).op(Op::Ret);
    a.assemble().expect("generated worker must assemble")
}

/// Build the whole program.
pub fn build(params: &BenchParams) -> BuiltWorkload {
    let mut natives = NativeRegistry::new();
    let memset = (params.memset_bytes > 0).then(|| natives.register(NativeFn::memset()));
    let write = (params.syscalls_per_inv > 0).then(|| natives.register(NativeFn::sys_write()));

    let mut b = ProgramBuilder::new();
    let data_class = b.add_class(format!("{}.Record", params.package), 6);
    assert_eq!(data_class, ClassId(0), "worker bodies allocate ClassId(0)");
    let main_class = b.add_class(format!("{}.Main", params.package), 0);

    // Workers.
    let mut workers = Vec::with_capacity(params.workers as usize);
    for i in 0..params.workers {
        let name = params
            .worker_names
            .get(i as usize)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("{}.Worker{i}.run", params.package));
        let body = worker_body(params, i as i64, memset, write);
        workers.push(b.add_method(main_class, name, 0, 5, body));
    }
    for w in &workers {
        b.set_mem(*w, params.mem);
    }

    // Support methods: tiny distinct bodies (sizes vary so code-map
    // entries aren't uniform).
    let mut support = Vec::with_capacity(params.support_methods as usize);
    for i in 0..params.support_methods {
        let pad = (i % 7) as usize;
        let mut code = vec![Op::Const(i as i64)];
        code.extend(std::iter::repeat_n(Op::Dup, pad));
        code.extend(std::iter::repeat_n(Op::Pop, pad));
        code.push(Op::Ret);
        support.push(b.add_method(
            main_class,
            format!("{}.Support{i}.init", params.package),
            0,
            0,
            code,
        ));
    }

    // Startup: call every support method once (first-use compilation).
    let mut startup_code = Vec::with_capacity(support.len() * 2 + 2);
    for s in &support {
        startup_code.push(Op::Call(*s));
        startup_code.push(Op::Pop);
    }
    startup_code.push(Op::Const(0));
    startup_code.push(Op::Ret);
    let startup = b.add_method(main_class, format!("{}.Main.startup", params.package), 0, 0, startup_code);

    b.set_entry(startup);
    let program = b
        .build_with_natives(&natives)
        .expect("generated program must validate");
    BuiltWorkload {
        params: params.clone(),
        program,
        natives,
        startup,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::find_benchmark;
    use sim_jvm::{NullHooks, Value, Vm, VmConfig};
    use sim_os::{Machine, MachineConfig};

    #[test]
    fn every_catalog_benchmark_builds_and_validates() {
        for params in crate::spec::catalog() {
            let w = build(&params);
            assert_eq!(w.workers.len(), params.workers as usize, "{}", params.name);
            assert!(
                w.program.methods.len() as u32 >= params.workers + params.support_methods + 1
            );
        }
    }

    #[test]
    fn ps_worker_names_come_from_figure1() {
        let w = build(&find_benchmark("ps").unwrap());
        let names: Vec<&str> = w
            .workers
            .iter()
            .map(|m| w.program.method(*m).name.as_str())
            .collect();
        assert!(names.contains(
            &"edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner.parseLine"
        ));
    }

    #[test]
    fn worker_executes_and_terminates() {
        let mut p = find_benchmark("fop").unwrap();
        p.inner_iters = 50;
        p.alloc_objs_per_inv = 5;
        let w = build(&p);
        let mut m = Machine::new(MachineConfig::default());
        let mut vm = Vm::boot(
            &mut m,
            w.program,
            w.natives,
            VmConfig {
                heap_bytes: 4 * 1024 * 1024,
                ..VmConfig::default()
            },
            Box::new(NullHooks),
        );
        let r = vm.call(&mut m, w.workers[0], &[]);
        assert!(matches!(r, Value::I64(v) if (0..9_973).contains(&v)));
    }

    #[test]
    fn startup_compiles_every_support_method() {
        let mut p = find_benchmark("fop").unwrap();
        p.support_methods = 40;
        let w = build(&p);
        let mut m = Machine::new(MachineConfig::default());
        let mut vm = Vm::boot(
            &mut m,
            w.program,
            w.natives,
            VmConfig {
                heap_bytes: 8 * 1024 * 1024,
                ..VmConfig::default()
            },
            Box::new(NullHooks),
        );
        vm.call(&mut m, w.startup, &[]);
        // startup + 40 supports compiled.
        assert_eq!(vm.stats.compiles, 41);
    }
}
