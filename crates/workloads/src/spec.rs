//! Benchmark descriptors.
//!
//! One [`BenchParams`] per benchmark the paper evaluates. The shape
//! parameters are chosen so that each synthetic program stresses the
//! profiler the way its namesake stressed the real system:
//!
//! * `support_methods` — breadth of the compiled method table
//!   (compile-time pressure and code-map size; antlr is the outlier);
//! * `heap_mb` + `alloc_objs_per_inv` — GC (= epoch = map-write)
//!   frequency;
//! * `memset_bytes`/`syscalls_per_inv` — native and kernel shares
//!   (`ps` is memset-heavy, pseudoJBB transaction-logs via `write`);
//! * `base_seconds` — the Figure-3 target run length, which controls
//!   how well fixed costs amortize (§4.3).

use serde::{Deserialize, Serialize};
use sim_jvm::classes::MemSpec;

/// Which suite a benchmark belongs to (Figure 2 groups JVM98 into one
/// averaged bar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Suite {
    Jvm98,
    Dacapo,
    PseudoJbb,
}

impl Suite {
    pub fn as_str(self) -> &'static str {
        match self {
            Suite::Jvm98 => "JVM98",
            Suite::Dacapo => "DaCapo",
            Suite::PseudoJbb => "pseudoJBB",
        }
    }
}

/// Full description of one synthetic benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct BenchParams {
    pub name: &'static str,
    pub suite: Suite,
    /// Java-package-style prefix for generated method names.
    pub package: &'static str,
    /// Explicit hot-method names (Figure-1 fidelity for `ps`); padded
    /// with generated names up to `workers`.
    pub worker_names: &'static [&'static str],
    /// Figure-3 target base execution time (seconds, simulated).
    pub base_seconds: f64,
    /// VM heap size (MiB): GC/epoch frequency lever.
    pub heap_mb: u64,
    /// Number of hot worker methods (JIT.App breadth).
    pub workers: u32,
    /// Cold methods compiled once at startup (method-table size).
    pub support_methods: u32,
    /// Inner-loop iterations per worker invocation (~26 ops each).
    pub inner_iters: u32,
    /// Short-lived objects allocated per invocation (~64 B each).
    pub alloc_objs_per_inv: u32,
    /// Scratch-array length per invocation.
    pub array_len: u32,
    /// Bytes memset per invocation (0 = none).
    pub memset_bytes: u32,
    /// `write(2)` calls per invocation.
    pub syscalls_per_inv: u32,
    /// Long-lived object graph allocated at startup (KiB): survives
    /// every GC, matures after a few collections — the workload's
    /// caches/tables/warehouses.
    pub retained_kb: u32,
    /// Cache behaviour of worker heap accesses.
    pub mem: MemSpec,
}

/// The nine Figure-2 bars expand to these benchmarks (JVM98 is its
/// seven programs, averaged at reporting time).
pub fn catalog() -> Vec<BenchParams> {
    let jvm98 = |name, base_seconds, inner_iters, alloc, mem: (f64, f64)| BenchParams {
        name,
        suite: Suite::Jvm98,
        package: "spec.benchmarks",
        worker_names: &[],
        base_seconds,
        heap_mb: 64,
        workers: 10,
        support_methods: 500,
        inner_iters,
        alloc_objs_per_inv: alloc,
        array_len: 32,
        memset_bytes: 0,
        syscalls_per_inv: 0,
        retained_kb: 2_048,
        mem: MemSpec::new(mem.0, mem.1),
    };
    vec![
        // ---- SPEC JVM98 (average 5.74 s over the seven programs) ----
        jvm98("compress", 6.5, 800, 4, (0.015, 0.002)),
        jvm98("jess", 4.2, 400, 1, (0.03, 0.004)),
        jvm98("db", 9.1, 600, 1, (0.09, 0.03)), // pointer-chasing
        jvm98("javac", 7.8, 350, 1, (0.04, 0.008)),
        jvm98("mpegaudio", 5.9, 1_000, 5, (0.01, 0.001)),
        jvm98("mtrt", 3.4, 500, 2, (0.05, 0.01)),
        jvm98("jack", 3.3, 300, 1, (0.035, 0.006)),
        // ---- DaCapo ----
        BenchParams {
            name: "antlr",
            suite: Suite::Dacapo,
            package: "dacapo.antlr",
            worker_names: &[],
            base_seconds: 8.7,
            // Small heap + churn: frequent collections → frequent
            // partial-map writes → the paper's >10 % outlier.
            heap_mb: 24,
            workers: 24,
            support_methods: 3_500,
            inner_iters: 350,
            alloc_objs_per_inv: 8,
            array_len: 32,
            memset_bytes: 0,
            syscalls_per_inv: 0,
            retained_kb: 4096,
            mem: MemSpec::new(0.035, 0.006),
        },
        BenchParams {
            name: "bloat",
            suite: Suite::Dacapo,
            package: "dacapo.bloat",
            worker_names: &[],
            base_seconds: 28.5,
            heap_mb: 64,
            workers: 20,
            support_methods: 2_200,
            inner_iters: 500,
            alloc_objs_per_inv: 1,
            array_len: 32,
            memset_bytes: 0,
            syscalls_per_inv: 0,
            retained_kb: 8192,
            mem: MemSpec::new(0.03, 0.005),
        },
        BenchParams {
            name: "fop",
            suite: Suite::Dacapo,
            package: "dacapo.fop",
            worker_names: &[],
            base_seconds: 3.2,
            heap_mb: 48,
            workers: 12,
            support_methods: 1_200,
            inner_iters: 400,
            alloc_objs_per_inv: 1,
            array_len: 32,
            memset_bytes: 0,
            syscalls_per_inv: 0,
            retained_kb: 2048,
            mem: MemSpec::new(0.025, 0.004),
        },
        BenchParams {
            name: "hsqldb",
            suite: Suite::Dacapo,
            package: "dacapo.hsqldb",
            worker_names: &[],
            base_seconds: 43.0,
            heap_mb: 128,
            workers: 16,
            support_methods: 1_600,
            inner_iters: 700,
            alloc_objs_per_inv: 10,
            array_len: 32,
            memset_bytes: 0,
            syscalls_per_inv: 1,
            retained_kb: 24576,
            mem: MemSpec::new(0.07, 0.02),
        },
        BenchParams {
            name: "pmd",
            suite: Suite::Dacapo,
            package: "dacapo.pmd",
            worker_names: &[],
            base_seconds: 16.3,
            heap_mb: 64,
            workers: 18,
            support_methods: 1_800,
            inner_iters: 450,
            alloc_objs_per_inv: 1,
            array_len: 32,
            memset_bytes: 0,
            syscalls_per_inv: 0,
            retained_kb: 6144,
            mem: MemSpec::new(0.03, 0.005),
        },
        BenchParams {
            name: "xalan",
            suite: Suite::Dacapo,
            package: "dacapo.xalan",
            worker_names: &[],
            base_seconds: 22.2,
            heap_mb: 64,
            workers: 20,
            support_methods: 1_500,
            inner_iters: 420,
            alloc_objs_per_inv: 1,
            array_len: 32,
            memset_bytes: 0,
            syscalls_per_inv: 0,
            retained_kb: 6144,
            mem: MemSpec::new(0.04, 0.007),
        },
        BenchParams {
            name: "ps",
            suite: Suite::Dacapo,
            package: "edu.unm.cs.oal.dacapo.javapostscript.red",
            // Figure-1 fidelity: the hot app method the paper shows.
            worker_names: &[
                "edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner.parseLine",
                "edu.unm.cs.oal.dacapo.javapostscript.red.interp.Interp.execute",
                "edu.unm.cs.oal.dacapo.javapostscript.red.graphics.Raster.fill",
            ],
            base_seconds: 12.0, // absent from the garbled Figure 3; see DESIGN.md
            heap_mb: 48,
            workers: 12,
            support_methods: 900,
            inner_iters: 500,
            alloc_objs_per_inv: 1,
            array_len: 32,
            memset_bytes: 24_576, // rasterization: the memset Dmiss row
            syscalls_per_inv: 0,
            retained_kb: 4096,
            mem: MemSpec::new(0.05, 0.012),
        },
        // ---- pseudoJBB ----
        BenchParams {
            name: "pseudojbb",
            suite: Suite::PseudoJbb,
            package: "spec.jbb",
            worker_names: &[],
            base_seconds: 31.0,
            heap_mb: 160,
            workers: 15, // 3 warehouses × 5 transaction types
            support_methods: 1_000,
            inner_iters: 600,
            alloc_objs_per_inv: 10,
            array_len: 32,
            memset_bytes: 0,
            syscalls_per_inv: 1, // transaction log
            retained_kb: 16384,
            mem: MemSpec::new(0.045, 0.009),
        },
    ]
}

/// Look a benchmark up by name.
pub fn find_benchmark(name: &str) -> Option<BenchParams> {
    catalog().into_iter().find(|b| b.name == name)
}

/// The Figure-2 bar order: pseudojbb, JVM98(avg), then DaCapo.
pub const FIGURE2_ORDER: &[&str] = &[
    "pseudojbb", "JVM98", "antlr", "bloat", "fop", "hsqldb", "pmd", "xalan", "ps",
];

/// Names of the seven JVM98 programs.
pub fn jvm98_members() -> Vec<&'static str> {
    catalog()
        .iter()
        .filter(|b| b.suite == Suite::Jvm98)
        .map(|b| b.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_figure2_bar() {
        let names: Vec<&str> = catalog().iter().map(|b| b.name).collect();
        for required in ["pseudojbb", "antlr", "bloat", "fop", "hsqldb", "pmd", "xalan", "ps"] {
            assert!(names.contains(&required), "missing {required}");
        }
        assert_eq!(jvm98_members().len(), 7);
    }

    #[test]
    fn jvm98_average_matches_figure3() {
        let avg: f64 = catalog()
            .iter()
            .filter(|b| b.suite == Suite::Jvm98)
            .map(|b| b.base_seconds)
            .sum::<f64>()
            / 7.0;
        assert!((avg - 5.74).abs() < 0.02, "JVM98 average {avg}");
    }

    #[test]
    fn figure3_base_times_recorded() {
        // The reconstructed Figure-3 values (see DESIGN.md for the
        // garbled-table note).
        for (name, secs) in [
            ("pseudojbb", 31.0),
            ("antlr", 8.7),
            ("bloat", 28.5),
            ("fop", 3.2),
            ("hsqldb", 43.0),
            ("pmd", 16.3),
            ("xalan", 22.2),
        ] {
            assert_eq!(find_benchmark(name).unwrap().base_seconds, secs);
        }
    }

    #[test]
    fn antlr_is_the_churn_outlier() {
        let antlr = find_benchmark("antlr").unwrap();
        let others = catalog();
        assert!(antlr.support_methods >= others.iter().map(|b| b.support_methods).max().unwrap());
        assert!(antlr.heap_mb <= others.iter().map(|b| b.heap_mb).min().unwrap());
    }

    #[test]
    fn ps_has_figure1_names_and_memset() {
        let ps = find_benchmark("ps").unwrap();
        assert!(ps.memset_bytes > 0);
        assert!(ps.worker_names[0].contains("Scanner.parseLine"));
    }

    #[test]
    fn find_benchmark_misses_gracefully() {
        assert!(find_benchmark("nope").is_none());
    }
}
