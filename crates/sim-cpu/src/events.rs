//! Event derivation for executed blocks.
//!
//! A block can describe its memory behaviour in two fidelities:
//!
//! * [`MemActivity::Detailed`] — an explicit access list, pushed through
//!   the cache hierarchy (used by the Figure-1 case study and tests);
//! * [`MemActivity::Stats`] — precomputed miss counts (used by the long
//!   Figure-2/3 runs, where per-access simulation of 10^11 cycles would
//!   be intractable).
//!
//! [`FracAcc`] converts fractional rates (e.g. 3.7 L2 misses per 1000
//! instructions) into exact integer event counts deterministically: the
//! fractional remainder is carried, never rounded away, so the long-run
//! event total is exact to ±1 regardless of how execution is chopped
//! into blocks.

use serde::{Deserialize, Serialize};

/// Memory behaviour of one block.
#[derive(Debug, Clone, PartialEq)]
pub enum MemActivity {
    /// No memory activity beyond what the cycle count already reflects.
    None,
    /// Explicit accesses for the detailed cache model.
    Detailed(Vec<crate::cache::MemAccess>),
    /// Aggregate miss counts from the statistical model.
    Stats { l1d_misses: u64, l2_misses: u64 },
}

impl Default for MemActivity {
    fn default() -> Self {
        MemActivity::None
    }
}

/// Fully-resolved event counts for one block, ready for the counter bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockEvents {
    pub cycles: u64,
    pub instructions: u64,
    pub l1d_misses: u64,
    pub l2_misses: u64,
    pub branches: u64,
}

impl BlockEvents {
    pub fn merge(&mut self, other: &BlockEvents) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.l1d_misses += other.l1d_misses;
        self.l2_misses += other.l2_misses;
        self.branches += other.branches;
    }
}

/// Deterministic fractional accumulator.
///
/// `take(rate, n)` returns `floor(rate * n + carry)` and retains the
/// remainder, so that the sum of `take` results over any partition of a
/// total `N` equals `floor(rate * N)` (within one unit at the very end).
/// Fixed-point (2^32 denominator) keeps it exactly reproducible across
/// platforms — no floating-point drift between runs.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct FracAcc {
    /// Carried numerator, always `< 2^32`.
    carry: u64,
}

const FRAC_ONE: u128 = 1 << 32;

impl FracAcc {
    pub fn new() -> Self {
        FracAcc::default()
    }

    /// Accumulate `rate * n` events; returns the integer part, carrying
    /// the fraction. `rate` must be finite and non-negative.
    pub fn take(&mut self, rate: f64, n: u64) -> u64 {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be ≥ 0, got {rate}");
        // Convert the rate once to fixed point; the per-call conversion is
        // deterministic because it goes through the same f64 value.
        let rate_fp = (rate * FRAC_ONE as f64).round() as u128;
        let total = rate_fp * n as u128 + self.carry as u128;
        let whole = (total / FRAC_ONE) as u64;
        self.carry = (total % FRAC_ONE) as u64;
        whole
    }

    pub fn reset(&mut self) {
        self.carry = 0;
    }
}

/// A bundle of accumulators for deriving all statistical events of a
/// code region from its rates.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RateAccs {
    pub instructions: FracAcc,
    pub l1d: FracAcc,
    pub l2: FracAcc,
    pub branches: FracAcc,
}

/// Architectural rates of a region of code, per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventRates {
    /// Instructions per cycle.
    pub ipc: f64,
    /// L1D misses per cycle.
    pub l1d_miss_per_cycle: f64,
    /// L2 misses per cycle.
    pub l2_miss_per_cycle: f64,
    /// Branches per cycle.
    pub branches_per_cycle: f64,
}

impl Default for EventRates {
    fn default() -> Self {
        EventRates {
            ipc: 1.0,
            l1d_miss_per_cycle: 0.0,
            l2_miss_per_cycle: 0.0,
            branches_per_cycle: 0.1,
        }
    }
}

impl EventRates {
    /// Derive exact event counts for a stretch of `cycles` cycles,
    /// carrying fractions in `accs`.
    pub fn events_for(&self, cycles: u64, accs: &mut RateAccs) -> BlockEvents {
        BlockEvents {
            cycles,
            instructions: accs.instructions.take(self.ipc, cycles),
            l1d_misses: accs.l1d.take(self.l1d_miss_per_cycle, cycles),
            l2_misses: accs.l2.take(self.l2_miss_per_cycle, cycles),
            branches: accs.branches.take(self.branches_per_cycle, cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fracacc_is_partition_invariant() {
        let rate = 0.0137;
        let total = 1_000_000u64;
        let mut whole = FracAcc::new();
        let expect = whole.take(rate, total);

        let mut split = FracAcc::new();
        let mut got = 0;
        let mut left = total;
        let chunks = [1u64, 7, 90_000, 45_000, 123_456, 3];
        let mut i = 0;
        while left > 0 {
            let c = chunks[i % chunks.len()].min(left);
            got += split.take(rate, c);
            left -= c;
            i += 1;
        }
        assert_eq!(got, expect, "chunked accumulation must match one-shot");
    }

    #[test]
    fn fracacc_zero_rate_yields_nothing() {
        let mut a = FracAcc::new();
        assert_eq!(a.take(0.0, u64::MAX >> 40), 0);
    }

    #[test]
    fn fracacc_integral_rate_is_exact() {
        let mut a = FracAcc::new();
        assert_eq!(a.take(3.0, 1000), 3000);
        assert_eq!(a.take(3.0, 1), 3);
    }

    #[test]
    #[should_panic(expected = "≥ 0")]
    fn fracacc_rejects_negative_rate() {
        FracAcc::new().take(-0.1, 10);
    }

    #[test]
    fn rates_produce_expected_magnitudes() {
        let rates = EventRates {
            ipc: 1.5,
            l1d_miss_per_cycle: 0.01,
            l2_miss_per_cycle: 0.001,
            branches_per_cycle: 0.2,
        };
        let mut accs = RateAccs::default();
        let ev = rates.events_for(1_000_000, &mut accs);
        // Fixed-point rate conversion is exact to ±1 (see FracAcc docs).
        let close = |got: u64, want: u64| (got as i64 - want as i64).abs() <= 1;
        assert_eq!(ev.cycles, 1_000_000);
        assert!(close(ev.instructions, 1_500_000), "{}", ev.instructions);
        assert!(close(ev.l1d_misses, 10_000), "{}", ev.l1d_misses);
        assert!(close(ev.l2_misses, 1_000), "{}", ev.l2_misses);
        assert!(close(ev.branches, 200_000), "{}", ev.branches);
    }

    #[test]
    fn block_events_merge() {
        let mut a = BlockEvents {
            cycles: 10,
            instructions: 20,
            l1d_misses: 1,
            l2_misses: 0,
            branches: 2,
        };
        let b = BlockEvents {
            cycles: 5,
            instructions: 5,
            l1d_misses: 1,
            l2_misses: 1,
            branches: 0,
        };
        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.instructions, 25);
        assert_eq!(a.l2_misses, 1);
    }
}
