//! Basic hardware-level types shared by the whole simulated stack.

use serde::{Deserialize, Serialize};

/// A simulated virtual address. The stack uses a flat 64-bit space.
pub type Addr = u64;

/// Process identifier. Defined here (rather than in `sim-os`) because
/// samples captured at NMI time carry the active PID, mirroring how real
/// HPC drivers read the current task from the interrupted context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pid(pub u32);

impl Pid {
    /// PID of the idle/kernel context.
    pub const KERNEL: Pid = Pid(0);
}

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Generation-tagged process identity: a PID plus the incarnation
/// counter the kernel bumps each time that PID is reused. A `Pid` alone
/// names a slot in the process table; a `ProcKey` names one *lifetime*
/// of a process, so attribution survives exit/respawn and pid reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcKey {
    pub pid: Pid,
    pub gen: u32,
}

impl ProcKey {
    pub fn new(pid: Pid, gen: u32) -> ProcKey {
        ProcKey { pid, gen }
    }
}

/// A bare `Pid` converts to the first incarnation (generation 0), so
/// churn-free call sites keep their pre-generation signatures.
impl From<Pid> for ProcKey {
    fn from(pid: Pid) -> ProcKey {
        ProcKey { pid, gen: 0 }
    }
}

impl std::fmt::Display for ProcKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.pid, self.gen)
    }
}

/// Privilege mode the CPU was in when an event fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuMode {
    User,
    Kernel,
}

impl CpuMode {
    pub fn is_kernel(self) -> bool {
        matches!(self, CpuMode::Kernel)
    }
}

/// Hardware events the counter bank can be programmed to count.
///
/// `Cycles` stands in for the Pentium 4's `GLOBAL_POWER_EVENTS` (the
/// "time" event of the paper's Figure 1) and `L2Miss` for
/// `BSQ_CACHE_REFERENCE` with the read-miss unit mask (the "Dmiss"
/// column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HwEvent {
    /// Unhalted core cycles (`GLOBAL_POWER_EVENTS`).
    Cycles,
    /// Retired instructions (`INSTR_RETIRED`).
    Instructions,
    /// L1 data-cache misses.
    L1DMiss,
    /// L2 cache misses (`BSQ_CACHE_REFERENCE`, read-miss mask).
    L2Miss,
    /// Retired branches.
    Branches,
}

impl HwEvent {
    /// All programmable events, in a stable order.
    pub const ALL: [HwEvent; 5] = [
        HwEvent::Cycles,
        HwEvent::Instructions,
        HwEvent::L1DMiss,
        HwEvent::L2Miss,
        HwEvent::Branches,
    ];

    /// The OProfile-style event name printed in reports.
    pub fn unit_name(self) -> &'static str {
        match self {
            HwEvent::Cycles => "GLOBAL_POWER_EVENTS",
            HwEvent::Instructions => "INSTR_RETIRED",
            HwEvent::L1DMiss => "L1D_CACHE_MISS",
            HwEvent::L2Miss => "BSQ_CACHE_REFERENCE",
            HwEvent::Branches => "RETIRED_BRANCH_TYPE",
        }
    }

    /// Short column label used by the merged VIProf report.
    pub fn column_label(self) -> &'static str {
        match self {
            HwEvent::Cycles => "Time %",
            HwEvent::Instructions => "Instr %",
            HwEvent::L1DMiss => "L1miss %",
            HwEvent::L2Miss => "Dmiss %",
            HwEvent::Branches => "Branch %",
        }
    }
}

impl std::fmt::Display for HwEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.unit_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_display_and_kernel_constant() {
        assert_eq!(Pid::KERNEL.0, 0);
        assert_eq!(format!("{}", Pid(42)), "42");
    }

    #[test]
    fn prockey_from_pid_is_generation_zero() {
        let key: ProcKey = Pid(7).into();
        assert_eq!(key, ProcKey::new(Pid(7), 0));
        assert_eq!(format!("{}", ProcKey::new(Pid(7), 2)), "7#2");
    }

    #[test]
    fn prockey_orders_by_pid_then_generation() {
        let mut keys = vec![
            ProcKey::new(Pid(2), 0),
            ProcKey::new(Pid(1), 1),
            ProcKey::new(Pid(1), 0),
        ];
        keys.sort_unstable();
        assert_eq!(
            keys,
            vec![
                ProcKey::new(Pid(1), 0),
                ProcKey::new(Pid(1), 1),
                ProcKey::new(Pid(2), 0),
            ]
        );
    }

    #[test]
    fn mode_kernel_predicate() {
        assert!(CpuMode::Kernel.is_kernel());
        assert!(!CpuMode::User.is_kernel());
    }

    #[test]
    fn event_names_are_distinct() {
        let mut names: Vec<&str> = HwEvent::ALL.iter().map(|e| e.unit_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HwEvent::ALL.len());
    }

    #[test]
    fn figure1_column_labels() {
        // Figure 1 of the paper headers the two columns "Time %" and "Dmiss %".
        assert_eq!(HwEvent::Cycles.column_label(), "Time %");
        assert_eq!(HwEvent::L2Miss.column_label(), "Dmiss %");
    }
}
