//! # sim-cpu — simulated CPU substrate
//!
//! This crate models the hardware layer the VIProf paper depends on:
//! a 3.4 GHz single-core CPU with a bank of hardware performance counters
//! (HPCs), non-maskable-interrupt (NMI) delivery on counter overflow, and
//! a set-associative cache hierarchy that generates L2-miss events
//! (the paper's `BSQ_CACHE_REFERENCE`).
//!
//! Execution is fed to the CPU as *blocks*: contiguous stretches of
//! simulated execution with a PC range, cycle/instruction counts and
//! memory activity. Counter overflow positions are computed analytically
//! inside each block, so simulating a 10^11-cycle benchmark costs
//! O(#samples + #blocks), not O(#cycles). This is what makes reproducing
//! the paper's 31-second pseudoJBB runs tractable on a laptop while
//! preserving the exact quantities the paper measures: *which PC* each
//! sample lands on, and *how many cycles* the profiling machinery steals.
//!
//! The [`cost::CostModel`] is the single source of truth for those stolen
//! cycles; Figure 2's overhead numbers are emergent from it plus the
//! sampling frequency and workload activity, never hard-coded.

pub mod cache;
pub mod clock;
pub mod cost;
pub mod counters;
pub mod events;
pub mod exec;
pub mod nmi;
pub mod types;

pub use cache::{AccessKind, Cache, CacheConfig, CacheHierarchy, HierarchyConfig, MemAccess};
pub use clock::Clock;
pub use cost::CostModel;
pub use counters::{Counter, CounterBank, CounterSpec, Overflows};
pub use events::{BlockEvents, FracAcc, MemActivity};
pub use exec::{BlockExec, Cpu, CpuConfig};
pub use nmi::{CountingHandler, NmiHandler, NullHandler, SampleContext};
pub use types::{Addr, CpuMode, HwEvent, Pid, ProcKey};
