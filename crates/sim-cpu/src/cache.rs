//! Set-associative cache hierarchy.
//!
//! Generates the L2-miss events (`BSQ_CACHE_REFERENCE`) of the paper's
//! Figure 1. The detailed model is a classic tag array with true-LRU
//! replacement; the default geometry approximates the Pentium 4 Xeon
//! used in the paper (16 KiB L1D, 12K-uop trace cache stood in for by a
//! 16 KiB L1I, 1 MiB unified L2, 64-byte lines).
//!
//! Long benchmark runs use the statistical path in [`crate::events`]
//! instead; the detailed model backs the short Figure-1 case study,
//! tests, and the examples.

use crate::types::Addr;
use serde::{Deserialize, Serialize};

/// What a memory access is doing. Instruction fetches go through L1I,
/// data reads/writes through L1D; everything shares L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    Read,
    Write,
    Fetch,
}

/// A single simulated memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    pub addr: Addr,
    pub kind: AccessKind,
}

impl MemAccess {
    pub fn read(addr: Addr) -> Self {
        MemAccess {
            addr,
            kind: AccessKind::Read,
        }
    }
    pub fn write(addr: Addr) -> Self {
        MemAccess {
            addr,
            kind: AccessKind::Write,
        }
    }
    pub fn fetch(addr: Addr) -> Self {
        MemAccess {
            addr,
            kind: AccessKind::Fetch,
        }
    }
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    pub size_bytes: usize,
    pub line_bytes: usize,
    pub associativity: usize,
}

impl CacheConfig {
    pub fn new(size_bytes: usize, line_bytes: usize, associativity: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(associativity >= 1);
        assert!(
            size_bytes % (line_bytes * associativity) == 0,
            "size must be a whole number of sets"
        );
        CacheConfig {
            size_bytes,
            line_bytes,
            associativity,
        }
    }

    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.associativity)
    }
}

/// One cache level with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[s]` holds up to `associativity` (tag, last_use) pairs.
    sets: Vec<Vec<(u64, u64)>>,
    tick: u64,
    pub hits: u64,
    pub misses: u64,
}

impl Cache {
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![Vec::with_capacity(config.associativity); config.num_sets()];
        Cache {
            config,
            sets,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn index_and_tag(&self, addr: Addr) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.config.num_sets() as u64) as usize;
        let tag = line / self.config.num_sets() as u64;
        (set, tag)
    }

    /// Access `addr`; returns `true` on hit. On miss the line is filled,
    /// evicting the LRU way if the set is full.
    pub fn access(&mut self, addr: Addr) -> bool {
        self.tick += 1;
        let (set_idx, tag) = self.index_and_tag(addr);
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() < self.config.associativity {
            set.push((tag, self.tick));
        } else {
            // Replace the least-recently-used way.
            let lru = set
                .iter_mut()
                .min_by_key(|(_, last)| *last)
                .expect("non-empty set");
            *lru = (tag, self.tick);
        }
        false
    }

    /// Whether `addr`'s line is currently resident (no LRU update).
    pub fn probe(&self, addr: Addr) -> bool {
        let (set_idx, tag) = self.index_and_tag(addr);
        self.sets[set_idx].iter().any(|(t, _)| *t == tag)
    }

    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// Geometry of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    pub l1i: CacheConfig,
    pub l1d: CacheConfig,
    pub l2: CacheConfig,
    /// Extra cycles charged per L1 miss that hits L2.
    pub l2_hit_penalty: u64,
    /// Extra cycles charged per access that misses L2 (memory latency).
    pub mem_penalty: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::new(16 * 1024, 64, 4),
            l1d: CacheConfig::new(16 * 1024, 64, 8),
            l2: CacheConfig::new(1024 * 1024, 64, 8),
            l2_hit_penalty: 18,
            mem_penalty: 200,
        }
    }
}

/// Result of pushing one access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemResult {
    pub l1_miss: bool,
    pub l2_miss: bool,
    /// Latency cycles beyond the L1-hit baseline.
    pub penalty_cycles: u64,
}

/// L1I + L1D over a unified L2.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    pub l1i: Cache,
    pub l1d: Cache,
    pub l2: Cache,
}

impl CacheHierarchy {
    pub fn new(config: HierarchyConfig) -> Self {
        CacheHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            config,
        }
    }

    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    pub fn access(&mut self, a: MemAccess) -> MemResult {
        let l1 = match a.kind {
            AccessKind::Fetch => &mut self.l1i,
            AccessKind::Read | AccessKind::Write => &mut self.l1d,
        };
        if l1.access(a.addr) {
            return MemResult::default();
        }
        if self.l2.access(a.addr) {
            return MemResult {
                l1_miss: true,
                l2_miss: false,
                penalty_cycles: self.config.l2_hit_penalty,
            };
        }
        MemResult {
            l1_miss: true,
            l2_miss: true,
            penalty_cycles: self.config.mem_penalty,
        }
    }

    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        // 4 sets × 2 ways × 16-byte lines = 128 bytes.
        CacheConfig::new(128, 16, 2)
    }

    #[test]
    fn geometry_math() {
        let c = tiny();
        assert_eq!(c.num_sets(), 4);
        let big = CacheConfig::new(1024 * 1024, 64, 8);
        assert_eq!(big.num_sets(), 2048);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(tiny());
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x108)); // same 16-byte line
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(tiny());
        // Three lines mapping to the same set (stride = sets*line = 64).
        c.access(0x000);
        c.access(0x040);
        c.access(0x000); // touch 0x000: 0x040 becomes LRU
        c.access(0x080); // evicts 0x040
        assert!(c.probe(0x000));
        assert!(!c.probe(0x040));
        assert!(c.probe(0x080));
    }

    #[test]
    fn hierarchy_penalties_and_event_counts() {
        let mut h = CacheHierarchy::new(HierarchyConfig {
            l1i: tiny(),
            l1d: tiny(),
            l2: CacheConfig::new(512, 16, 4),
            l2_hit_penalty: 10,
            mem_penalty: 100,
        });
        // Cold: misses both levels.
        let r = h.access(MemAccess::read(0x1000));
        assert!(r.l1_miss && r.l2_miss);
        assert_eq!(r.penalty_cycles, 100);
        // Warm in both: free.
        let r = h.access(MemAccess::read(0x1000));
        assert!(!r.l1_miss);
        assert_eq!(r.penalty_cycles, 0);
        // Fetches go through L1I, separate from L1D.
        let r = h.access(MemAccess::fetch(0x1000));
        assert!(r.l1_miss, "L1I is cold even though L1D holds the line");
        assert!(!r.l2_miss, "L2 already holds the line");
        assert_eq!(r.penalty_cycles, 10);
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let mut c = Cache::new(tiny());
        c.access(0x000);
        c.access(0x040);
        // Probing 0x000 must NOT refresh it...
        assert!(c.probe(0x000));
        c.access(0x080); // ...so 0x000 is evicted as LRU.
        assert!(!c.probe(0x000));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_lines() {
        let _ = CacheConfig::new(120, 12, 2);
    }
}
