//! NMI delivery: the hardware→profiler seam.
//!
//! When a counter overflows, the simulated CPU calls the registered
//! [`NmiHandler`] with a [`SampleContext`] describing the interrupted
//! instruction. The handler (OProfile's kernel driver, or VIProf's
//! extended one) does whatever logging it wants and *returns the number
//! of cycles it consumed*. The CPU charges those cycles to the clock —
//! this is precisely the mechanism by which profiling overhead becomes
//! measurable in the reproduction, as it is on real hardware.

use crate::types::{Addr, CpuMode, HwEvent, Pid};

/// Everything the hardware knows at the moment a counter overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleContext {
    /// Program counter of the interrupted instruction.
    pub pc: Addr,
    /// Active process.
    pub pid: Pid,
    /// Privilege mode at interrupt time.
    pub mode: CpuMode,
    /// Which event's counter overflowed.
    pub event: HwEvent,
    /// Index of the overflowing counter in the bank.
    pub counter: usize,
    /// Cycle timestamp of the overflow.
    pub cycle: u64,
}

/// A profiler's interrupt handler.
///
/// The overflow period that paces these interrupts is not fixed for the
/// life of a session: the overload governor (see `oprofile::governor`)
/// may rescale it between blocks via [`crate::Cpu::reprogram_period`]
/// when the sampling pipeline falls behind. Handlers must therefore not
/// assume a constant inter-sample distance.
pub trait NmiHandler {
    /// Handle one overflow sample. Returns the cycles the handler spent,
    /// which the CPU will charge to simulated time (and which count as
    /// kernel-mode execution for any cycle counter).
    fn handle_overflow(&mut self, ctx: &SampleContext) -> u64;
}

/// Handler that drops every sample at zero cost. Used when profiling is
/// off (the "base" bars of Figure 2).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHandler;

impl NmiHandler for NullHandler {
    fn handle_overflow(&mut self, _ctx: &SampleContext) -> u64 {
        0
    }
}

/// Test helper: records every sample it sees and charges a fixed cost.
#[derive(Debug, Default)]
pub struct CountingHandler {
    pub samples: Vec<SampleContext>,
    pub cost_per_sample: u64,
}

impl CountingHandler {
    pub fn new(cost_per_sample: u64) -> Self {
        CountingHandler {
            samples: Vec::new(),
            cost_per_sample,
        }
    }
}

impl NmiHandler for CountingHandler {
    fn handle_overflow(&mut self, ctx: &SampleContext) -> u64 {
        self.samples.push(*ctx);
        self.cost_per_sample
    }
}

/// Adapter so `&mut H` is itself a handler (lets callers lend a handler
/// without giving up ownership).
impl<H: NmiHandler + ?Sized> NmiHandler for &mut H {
    fn handle_overflow(&mut self, ctx: &SampleContext) -> u64 {
        (**self).handle_overflow(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pc: Addr) -> SampleContext {
        SampleContext {
            pc,
            pid: Pid(1),
            mode: CpuMode::User,
            event: HwEvent::Cycles,
            counter: 0,
            cycle: 123,
        }
    }

    #[test]
    fn null_handler_is_free() {
        let mut h = NullHandler;
        assert_eq!(h.handle_overflow(&ctx(0x1000)), 0);
    }

    #[test]
    fn counting_handler_records_and_charges() {
        let mut h = CountingHandler::new(250);
        assert_eq!(h.handle_overflow(&ctx(0x1000)), 250);
        assert_eq!(h.handle_overflow(&ctx(0x2000)), 250);
        assert_eq!(h.samples.len(), 2);
        assert_eq!(h.samples[1].pc, 0x2000);
    }

    #[test]
    fn mut_ref_adapter_forwards() {
        let mut h = CountingHandler::new(7);
        let r: &mut dyn NmiHandler = &mut h;
        assert_eq!(r.handle_overflow(&ctx(0x42)), 7);
        assert_eq!(h.samples.len(), 1);
    }
}
