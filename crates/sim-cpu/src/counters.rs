//! Hardware performance counter bank.
//!
//! Mirrors how OProfile programs the Pentium 4 counters: each counter is
//! loaded with a *reset value* so that after `period` events it overflows
//! and raises an NMI. The paper's Figure 2 sweeps the period over
//! 45 000 / 90 000 / 450 000 cycles.
//!
//! Events are delivered to the bank in batches (one batch per executed
//! block); overflow positions *within* the batch are computed
//! analytically by [`Counter::add`] so the execution engine can
//! interpolate the program counter at the exact event that tripped the
//! counter.

use crate::types::HwEvent;
use serde::{Deserialize, Serialize};

/// Maximum number of simultaneously programmed counters. The Pentium 4
/// had 18 but OProfile-era kernels commonly exposed a handful; 4 is
/// plenty for every experiment in the paper (which uses at most 2).
pub const MAX_COUNTERS: usize = 4;

/// Static configuration of one counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSpec {
    pub event: HwEvent,
    /// Overflow period: an NMI fires every `period` occurrences.
    pub period: u64,
}

impl CounterSpec {
    pub fn new(event: HwEvent, period: u64) -> Self {
        assert!(period > 0, "counter period must be positive");
        CounterSpec { event, period }
    }
}

/// Overflow positions produced by one batch of events.
///
/// If `count > 0`, the first overflow happened at the `first`-th event of
/// the batch (1-based: `first == 1` means the very first event in the
/// batch tripped the counter), and subsequent overflows occur every
/// `period` events after that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflows {
    pub count: u64,
    pub first: u64,
    pub period: u64,
}

impl Overflows {
    pub const NONE: Overflows = Overflows {
        count: 0,
        first: 0,
        period: 1,
    };

    /// 1-based event position of the `i`-th overflow (0-indexed `i`).
    pub fn position(&self, i: u64) -> u64 {
        debug_assert!(i < self.count);
        self.first + i * self.period
    }

    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count).map(move |i| self.position(i))
    }
}

/// One live counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Counter {
    spec: CounterSpec,
    /// Events remaining until the next overflow.
    remaining: u64,
    /// Total events observed (including those during NMI handlers).
    total: u64,
    /// Total overflows (== samples requested) so far.
    overflows: u64,
}

impl Counter {
    pub fn new(spec: CounterSpec) -> Self {
        Counter {
            remaining: spec.period,
            spec,
            total: 0,
            overflows: 0,
        }
    }

    pub fn spec(&self) -> CounterSpec {
        self.spec
    }

    pub fn total_events(&self) -> u64 {
        self.total
    }

    pub fn total_overflows(&self) -> u64 {
        self.overflows
    }

    /// Events remaining until the next overflow fires.
    pub fn until_overflow(&self) -> u64 {
        self.remaining
    }

    /// Deliver `n` events; returns the overflow positions within the
    /// batch (see [`Overflows`]).
    pub fn add(&mut self, n: u64) -> Overflows {
        self.total += n;
        if n < self.remaining {
            self.remaining -= n;
            return Overflows::NONE;
        }
        let first = self.remaining;
        let after_first = n - first;
        let count = 1 + after_first / self.spec.period;
        let leftover = after_first % self.spec.period;
        self.remaining = self.spec.period - leftover;
        self.overflows += count;
        Overflows {
            count,
            first,
            period: self.spec.period,
        }
    }

    /// Reprogram the overflow period in place, as the overload governor
    /// does when it backs the sample rate off (or recovers it). The
    /// in-flight countdown is clamped to the new period: shrinking the
    /// period takes effect within one window instead of waiting out the
    /// old reset value, while growing it never *lengthens* an already
    /// armed countdown — both choices are deterministic functions of the
    /// counter state, so replays stay bit-identical.
    pub fn set_period(&mut self, period: u64) {
        assert!(period > 0, "counter period must be positive");
        self.spec.period = period;
        self.remaining = self.remaining.min(period);
    }

    /// Deliver `n` events while NMIs are masked: events are counted but
    /// at most the final overflow state is preserved (extra overflows are
    /// coalesced, as on real hardware where the counter wraps while the
    /// handler runs). Returns the number of overflows that were lost to
    /// coalescing (0 or more); a pending overflow is reflected by
    /// `remaining` being reloaded.
    pub fn add_masked(&mut self, n: u64) -> u64 {
        let o = self.add(n);
        // `add` already reloaded the counter; report how many NMIs were
        // suppressed so the driver can account for them if it wants to.
        o.count
    }
}

/// The bank of programmed counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CounterBank {
    counters: Vec<Counter>,
}

impl CounterBank {
    pub fn new() -> Self {
        CounterBank::default()
    }

    /// Program a new counter; returns its index. Panics if the bank is
    /// full or the event is already being counted (one counter per event,
    /// as OProfile configures it).
    pub fn program(&mut self, spec: CounterSpec) -> usize {
        assert!(
            self.counters.len() < MAX_COUNTERS,
            "counter bank full ({MAX_COUNTERS} max)"
        );
        assert!(
            !self.counters.iter().any(|c| c.spec().event == spec.event),
            "event {:?} already programmed",
            spec.event
        );
        self.counters.push(Counter::new(spec));
        self.counters.len() - 1
    }

    pub fn clear(&mut self) {
        self.counters.clear();
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    pub fn len(&self) -> usize {
        self.counters.len()
    }

    pub fn counter(&self, idx: usize) -> &Counter {
        &self.counters[idx]
    }

    pub fn counters(&self) -> &[Counter] {
        &self.counters
    }

    /// Index of the counter watching `event`, if programmed.
    pub fn index_of(&self, event: HwEvent) -> Option<usize> {
        self.counters.iter().position(|c| c.spec().event == event)
    }

    /// Reprogram the period of the counter watching `event` without
    /// losing its accumulated state (totals, overflow counts, countdown).
    /// Returns `false` if no counter watches the event. This is the
    /// actuator of the overload governor: the daemon rescales the NMI
    /// rate while the session keeps running.
    pub fn reprogram_period(&mut self, event: HwEvent, period: u64) -> bool {
        match self.index_of(event) {
            Some(idx) => {
                self.counters[idx].set_period(period);
                true
            }
            None => false,
        }
    }

    /// Deliver a batch of `n` events of `event` type. Returns
    /// `(counter_index, overflows)` if a counter watches this event and
    /// overflowed.
    pub fn add_events(&mut self, event: HwEvent, n: u64) -> Option<(usize, Overflows)> {
        if n == 0 {
            return None;
        }
        let idx = self.index_of(event)?;
        let o = self.counters[idx].add(n);
        if o.count > 0 {
            Some((idx, o))
        } else {
            None
        }
    }

    /// Deliver events with NMIs masked (used while a handler runs).
    pub fn add_events_masked(&mut self, event: HwEvent, n: u64) -> u64 {
        match self.index_of(event) {
            Some(idx) if n > 0 => self.counters[idx].add_masked(n),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyc(period: u64) -> CounterSpec {
        CounterSpec::new(HwEvent::Cycles, period)
    }

    #[test]
    fn no_overflow_below_period() {
        let mut c = Counter::new(cyc(100));
        assert_eq!(c.add(99), Overflows::NONE);
        assert_eq!(c.until_overflow(), 1);
        assert_eq!(c.total_events(), 99);
    }

    #[test]
    fn exact_period_overflows_once() {
        let mut c = Counter::new(cyc(100));
        let o = c.add(100);
        assert_eq!(o.count, 1);
        assert_eq!(o.first, 100);
        assert_eq!(c.until_overflow(), 100);
    }

    #[test]
    fn multiple_overflows_in_one_batch() {
        let mut c = Counter::new(cyc(100));
        c.add(30); // 70 remaining
        let o = c.add(250); // overflows at 70, 170; leftover 80 → 20 remaining... check
        assert_eq!(o.count, 2);
        assert_eq!(o.first, 70);
        assert_eq!(o.position(1), 170);
        // 250 - 70 = 180; 180 % 100 = 80 consumed after last overflow
        assert_eq!(c.until_overflow(), 20);
        assert_eq!(c.total_overflows(), 2);
    }

    #[test]
    fn overflow_positions_are_one_based() {
        let mut c = Counter::new(cyc(1));
        let o = c.add(3);
        let positions: Vec<u64> = o.iter().collect();
        assert_eq!(positions, vec![1, 2, 3]);
    }

    #[test]
    fn total_events_accumulate_across_batches() {
        let mut c = Counter::new(cyc(90_000));
        for _ in 0..10 {
            c.add(45_000);
        }
        assert_eq!(c.total_events(), 450_000);
        assert_eq!(c.total_overflows(), 5);
    }

    #[test]
    fn bank_routes_events_to_matching_counter() {
        let mut bank = CounterBank::new();
        bank.program(CounterSpec::new(HwEvent::Cycles, 10));
        bank.program(CounterSpec::new(HwEvent::L2Miss, 5));
        assert!(bank.add_events(HwEvent::Cycles, 9).is_none());
        let (idx, o) = bank.add_events(HwEvent::Cycles, 1).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(o.count, 1);
        let (idx, o) = bank.add_events(HwEvent::L2Miss, 12).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(o.count, 2);
        // Unwatched event type is ignored.
        assert!(bank.add_events(HwEvent::Branches, 1_000).is_none());
    }

    #[test]
    #[should_panic(expected = "already programmed")]
    fn bank_rejects_duplicate_event() {
        let mut bank = CounterBank::new();
        bank.program(cyc(10));
        bank.program(cyc(20));
    }

    #[test]
    fn masked_delivery_counts_but_coalesces() {
        let mut c = Counter::new(cyc(10));
        let lost = c.add_masked(35);
        assert_eq!(lost, 3);
        assert_eq!(c.total_events(), 35);
        assert_eq!(c.until_overflow(), 5);
    }

    #[test]
    fn set_period_preserves_state_and_clamps_countdown() {
        let mut c = Counter::new(cyc(100));
        c.add(30); // 70 remaining
        c.set_period(40); // shrink: countdown clamps to 40
        assert_eq!(c.until_overflow(), 40);
        assert_eq!(c.spec().period, 40);
        assert_eq!(c.total_events(), 30, "totals survive reprogramming");
        let o = c.add(40);
        assert_eq!(o.count, 1);
        assert_eq!(o.period, 40);
        // Growing the period never lengthens an armed countdown.
        c.add(10); // 30 remaining of 40
        c.set_period(1_000);
        assert_eq!(c.until_overflow(), 30);
        let o = c.add(30);
        assert_eq!(o.count, 1);
        assert_eq!(c.until_overflow(), 1_000, "reload uses the new period");
    }

    #[test]
    fn bank_reprograms_only_the_matching_event() {
        let mut bank = CounterBank::new();
        bank.program(CounterSpec::new(HwEvent::Cycles, 10));
        bank.program(CounterSpec::new(HwEvent::L2Miss, 5));
        assert!(bank.reprogram_period(HwEvent::Cycles, 20));
        assert!(!bank.reprogram_period(HwEvent::Branches, 20));
        assert_eq!(bank.counter(0).spec().period, 20);
        assert_eq!(bank.counter(1).spec().period, 5, "other counters untouched");
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn set_period_rejects_zero() {
        let mut c = Counter::new(cyc(10));
        c.set_period(0);
    }

    #[test]
    fn zero_events_is_a_noop() {
        let mut bank = CounterBank::new();
        bank.program(cyc(10));
        assert!(bank.add_events(HwEvent::Cycles, 0).is_none());
        assert_eq!(bank.counter(0).total_events(), 0);
    }
}
