//! The block-execution engine.
//!
//! Everything that "runs" on the simulated machine — interpreted
//! bytecode, JIT-compiled method bodies, VM-internal work, libc calls,
//! kernel code, the profiling daemon itself — is presented to the CPU as
//! a sequence of [`BlockExec`]s. The CPU:
//!
//! 1. resolves the block's event counts (through the detailed cache
//!    model or from precomputed statistics),
//! 2. feeds them to the counter bank and, for every overflow, delivers
//!    an NMI to the registered handler with the interpolated PC,
//! 3. advances the clock by the block's cycles *plus whatever the NMI
//!    handler consumed* — which is how profiling overhead becomes part
//!    of measured execution time, exactly as on the paper's hardware.
//!
//! Handler cycles are delivered to the counters in *masked* mode: they
//! are counted (the profiler's own overhead is visible to the counters,
//! as on real hardware) but cannot recursively trigger more NMIs;
//! coalesced overflows are tallied in [`CpuStats::samples_suppressed`].

use crate::cache::{CacheHierarchy, HierarchyConfig};
use crate::clock::{Clock, DEFAULT_FREQ_HZ};
use crate::counters::{CounterBank, CounterSpec};
use crate::events::{BlockEvents, MemActivity};
use crate::nmi::{NmiHandler, SampleContext};
use crate::types::{Addr, CpuMode, HwEvent, Pid};
use viprof_telemetry::{names, Counter, Stage, Telemetry};

/// Static machine configuration.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    pub freq_hz: u64,
    /// Detailed cache hierarchy. `None` disables the detailed model
    /// (blocks must then carry `MemActivity::Stats` or `None`).
    pub hierarchy: Option<HierarchyConfig>,
    /// PC range of the kernel's NMI vector; handler cycles execute here.
    pub nmi_vector: (Addr, Addr),
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            freq_hz: DEFAULT_FREQ_HZ,
            hierarchy: Some(HierarchyConfig::default()),
            nmi_vector: (0xffff_ffff_8000_0000, 0xffff_ffff_8000_1000),
        }
    }
}

/// One contiguous stretch of execution.
#[derive(Debug, Clone)]
pub struct BlockExec {
    pub pid: Pid,
    pub mode: CpuMode,
    /// Half-open PC range the block's instructions live in. Overflow PCs
    /// are interpolated linearly across it.
    pub pc_range: (Addr, Addr),
    pub cycles: u64,
    pub instructions: u64,
    pub branches: u64,
    pub mem: MemActivity,
}

impl BlockExec {
    /// Convenience constructor for a compute-only block.
    pub fn compute(pid: Pid, mode: CpuMode, pc_range: (Addr, Addr), cycles: u64) -> Self {
        BlockExec {
            pid,
            mode,
            pc_range,
            cycles,
            instructions: cycles, // IPC 1 unless caller says otherwise
            branches: 0,
            mem: MemActivity::None,
        }
    }
}

/// Counters of interest for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    pub blocks_executed: u64,
    pub samples_delivered: u64,
    /// Overflows coalesced because they fired while NMIs were masked.
    pub samples_suppressed: u64,
    /// Total cycles consumed by NMI handlers.
    pub handler_cycles: u64,
    /// Cycles added by cache-miss penalties in detailed mode.
    pub penalty_cycles: u64,
}

/// Telemetry handles the hot path touches, resolved once at attach
/// time so `execute_block` never takes a registry lock.
#[derive(Debug, Clone)]
struct CpuTelemetry {
    registry: Telemetry,
    delivered: Counter,
    suppressed: Counter,
    handler: Stage,
}

impl CpuTelemetry {
    fn attach(registry: &Telemetry) -> CpuTelemetry {
        CpuTelemetry {
            delivered: registry.counter(names::CPU_SAMPLES_DELIVERED),
            suppressed: registry.counter(names::CPU_SAMPLES_SUPPRESSED),
            handler: registry.stage(names::STAGE_NMI_HANDLER),
            registry: registry.clone(),
        }
    }
}

/// The simulated CPU.
pub struct Cpu {
    pub clock: Clock,
    pub bank: CounterBank,
    pub caches: Option<CacheHierarchy>,
    nmi_vector: (Addr, Addr),
    pub stats: CpuStats,
    telemetry: Option<CpuTelemetry>,
}

impl Cpu {
    pub fn new(config: CpuConfig) -> Self {
        Cpu {
            clock: Clock::new(config.freq_hz),
            bank: CounterBank::new(),
            caches: config.hierarchy.map(CacheHierarchy::new),
            nmi_vector: config.nmi_vector,
            stats: CpuStats::default(),
            telemetry: None,
        }
    }

    /// Attach a telemetry registry: sample delivery/suppression and
    /// handler time get recorded, and the registry's virtual "now" is
    /// kept in step with the clock. Costs zero simulated cycles.
    pub fn attach_telemetry(&mut self, registry: &Telemetry) {
        registry.set_now(self.clock.cycles());
        self.telemetry = Some(CpuTelemetry::attach(registry));
    }

    /// Program a counter (delegates to the bank).
    pub fn program_counter(&mut self, spec: CounterSpec) -> usize {
        self.bank.program(spec)
    }

    /// Remove all programmed counters (profiling off).
    pub fn clear_counters(&mut self) {
        self.bank.clear();
    }

    /// Rescale the overflow period of the counter watching `event`
    /// without disturbing its accumulated state. Returns `false` if no
    /// such counter is programmed. Reprogramming itself is free — on
    /// real hardware it is a pair of MSR writes the daemon performs
    /// inside cycles it is already charged for.
    pub fn reprogram_period(&mut self, event: HwEvent, period: u64) -> bool {
        self.bank.reprogram_period(event, period)
    }

    /// Interpolate the PC of the `pos`-th event (1-based) out of `n`
    /// within `range`.
    fn interpolate_pc(range: (Addr, Addr), pos: u64, n: u64) -> Addr {
        debug_assert!(pos >= 1 && pos <= n);
        let (start, end) = range;
        if end <= start || n == 0 {
            return start;
        }
        let span = end - start;
        start + ((span as u128 * (pos - 1) as u128) / n as u128) as u64
    }

    /// Execute one block, delivering NMIs to `handler`.
    /// Returns the resolved event counts (after cache simulation).
    pub fn execute_block(&mut self, block: &BlockExec, handler: &mut dyn NmiHandler) -> BlockEvents {
        let mut events = BlockEvents {
            cycles: block.cycles,
            instructions: block.instructions,
            branches: block.branches,
            ..BlockEvents::default()
        };

        match &block.mem {
            MemActivity::None => {}
            MemActivity::Stats {
                l1d_misses,
                l2_misses,
            } => {
                events.l1d_misses = *l1d_misses;
                events.l2_misses = *l2_misses;
            }
            MemActivity::Detailed(accesses) => {
                let caches = self
                    .caches
                    .as_mut()
                    .expect("detailed memory activity requires a cache hierarchy");
                let mut penalty = 0u64;
                for a in accesses {
                    let r = caches.access(*a);
                    events.l1d_misses += r.l1_miss as u64;
                    events.l2_misses += r.l2_miss as u64;
                    penalty += r.penalty_cycles;
                }
                events.cycles += penalty;
                self.stats.penalty_cycles += penalty;
            }
        }

        self.stats.blocks_executed += 1;

        // Deliver events to the bank, firing NMIs on overflow.
        let mut handler_cost = 0u64;
        let mut delivered = 0u64;
        let deliveries = [
            (HwEvent::Cycles, events.cycles),
            (HwEvent::Instructions, events.instructions),
            (HwEvent::L1DMiss, events.l1d_misses),
            (HwEvent::L2Miss, events.l2_misses),
            (HwEvent::Branches, events.branches),
        ];
        for (event, n) in deliveries {
            if n == 0 {
                continue;
            }
            let Some((counter, overflows)) = self.bank.add_events(event, n) else {
                continue;
            };
            for pos in overflows.iter() {
                let frac_cycles = ((events.cycles as u128 * pos as u128) / n as u128) as u64;
                let ctx = SampleContext {
                    pc: Self::interpolate_pc(block.pc_range, pos, n),
                    pid: block.pid,
                    mode: block.mode,
                    event,
                    counter,
                    cycle: self.clock.cycles() + frac_cycles,
                };
                handler_cost += handler.handle_overflow(&ctx);
                self.stats.samples_delivered += 1;
                delivered += 1;
            }
        }

        self.clock.advance(events.cycles);

        let mut suppressed = 0u64;
        if handler_cost > 0 {
            // Handler runs in kernel mode at the NMI vector with further
            // NMIs masked: events are counted, overflows coalesced.
            self.stats.handler_cycles += handler_cost;
            suppressed = self.bank.add_events_masked(HwEvent::Cycles, handler_cost);
            self.stats.samples_suppressed += suppressed;
            self.clock.advance(handler_cost);
        }

        if let Some(t) = &self.telemetry {
            t.registry.set_now(self.clock.cycles());
            if delivered > 0 {
                t.delivered.add(delivered);
            }
            if suppressed > 0 {
                t.suppressed.add(suppressed);
            }
            if handler_cost > 0 {
                t.handler.record(handler_cost);
            }
        }

        events
    }

    /// PC range of the NMI vector (where handler time is attributed).
    pub fn nmi_vector(&self) -> (Addr, Addr) {
        self.nmi_vector
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, MemAccess};
    use crate::nmi::{CountingHandler, NullHandler};

    fn cpu_no_cache() -> Cpu {
        Cpu::new(CpuConfig {
            freq_hz: 1_000_000,
            hierarchy: None,
            nmi_vector: (0xF000, 0xF100),
        })
    }

    fn user_block(cycles: u64) -> BlockExec {
        BlockExec::compute(Pid(7), CpuMode::User, (0x1000, 0x2000), cycles)
    }

    #[test]
    fn clock_advances_by_block_cycles() {
        let mut cpu = cpu_no_cache();
        cpu.execute_block(&user_block(500), &mut NullHandler);
        assert_eq!(cpu.clock.cycles(), 500);
    }

    #[test]
    fn samples_fire_at_period_with_interpolated_pc() {
        let mut cpu = cpu_no_cache();
        cpu.program_counter(CounterSpec::new(HwEvent::Cycles, 100));
        let mut h = CountingHandler::new(0);
        cpu.execute_block(&user_block(250), &mut h);
        assert_eq!(h.samples.len(), 2);
        // Overflows at events 100 and 200 of 250 over a 0x1000-wide range.
        assert_eq!(h.samples[0].pc, 0x1000 + 0x1000 * 99 / 250);
        assert_eq!(h.samples[1].pc, 0x1000 + 0x1000 * 199 / 250);
        assert_eq!(h.samples[0].pid, Pid(7));
        assert_eq!(h.samples[0].event, HwEvent::Cycles);
    }

    #[test]
    fn handler_cost_extends_execution_time() {
        let mut cpu = cpu_no_cache();
        cpu.program_counter(CounterSpec::new(HwEvent::Cycles, 100));
        let mut h = CountingHandler::new(30);
        cpu.execute_block(&user_block(1_000), &mut h);
        // 10 samples × 30 cycles on top of the block's 1000.
        assert_eq!(cpu.clock.cycles(), 1_000 + 10 * 30);
        assert_eq!(cpu.stats.handler_cycles, 300);
        assert_eq!(cpu.stats.samples_delivered, 10);
    }

    #[test]
    fn base_run_has_zero_overhead() {
        // Profiling off = no counters = clock advances exactly.
        let mut cpu = cpu_no_cache();
        let mut h = CountingHandler::new(1_000_000);
        cpu.execute_block(&user_block(10_000), &mut h);
        assert_eq!(cpu.clock.cycles(), 10_000);
        assert!(h.samples.is_empty());
    }

    #[test]
    fn sampling_rate_matches_period_over_long_run() {
        let mut cpu = cpu_no_cache();
        cpu.program_counter(CounterSpec::new(HwEvent::Cycles, 90_000));
        let mut h = CountingHandler::new(0);
        // 9 million cycles in uneven chunks → exactly 100 samples.
        let chunks = [1_234_567u64, 2_000_000, 3_456_789, 2_308_644];
        for c in chunks {
            cpu.execute_block(&user_block(c), &mut h);
        }
        assert_eq!(chunks.iter().sum::<u64>(), 9_000_000);
        assert_eq!(h.samples.len(), 100);
    }

    #[test]
    fn masked_overflows_during_handler_are_suppressed_not_lost() {
        let mut cpu = cpu_no_cache();
        cpu.program_counter(CounterSpec::new(HwEvent::Cycles, 100));
        // Handler costs 350 cycles: while it runs, 3 more overflows would
        // fire; they must be coalesced, not delivered.
        let mut h = CountingHandler::new(350);
        cpu.execute_block(&user_block(100), &mut h);
        assert_eq!(h.samples.len(), 1);
        assert_eq!(cpu.stats.samples_suppressed, 3);
        // The counter still observed every cycle.
        assert_eq!(cpu.bank.counter(0).total_events(), 450);
    }

    #[test]
    fn l2_miss_counter_fires_on_detailed_accesses() {
        let mut cpu = Cpu::new(CpuConfig {
            freq_hz: 1_000_000,
            hierarchy: Some(HierarchyConfig {
                l1i: CacheConfig::new(128, 16, 2),
                l1d: CacheConfig::new(128, 16, 2),
                l2: CacheConfig::new(512, 16, 4),
                l2_hit_penalty: 10,
                mem_penalty: 100,
            }),
            nmi_vector: (0xF000, 0xF100),
        });
        cpu.program_counter(CounterSpec::new(HwEvent::L2Miss, 1));
        let mut h = CountingHandler::new(0);
        // 4 cold reads at line-distinct addresses: 4 L2 misses.
        let accesses = (0..4).map(|i| MemAccess::read(i * 0x1000)).collect();
        let mut b = user_block(100);
        b.mem = MemActivity::Detailed(accesses);
        let ev = cpu.execute_block(&b, &mut h);
        assert_eq!(ev.l2_misses, 4);
        assert_eq!(h.samples.len(), 4);
        assert_eq!(h.samples[0].event, HwEvent::L2Miss);
        // Miss penalties extend the block's cycles.
        assert_eq!(ev.cycles, 100 + 4 * 100);
        assert_eq!(cpu.stats.penalty_cycles, 400);
    }

    #[test]
    fn stats_mem_activity_feeds_counters_without_caches() {
        let mut cpu = cpu_no_cache();
        cpu.program_counter(CounterSpec::new(HwEvent::L2Miss, 10));
        let mut h = CountingHandler::new(0);
        let mut b = user_block(1_000);
        b.mem = MemActivity::Stats {
            l1d_misses: 50,
            l2_misses: 25,
        };
        cpu.execute_block(&b, &mut h);
        assert_eq!(h.samples.len(), 2);
    }

    #[test]
    fn empty_pc_range_pins_samples_to_start() {
        let mut cpu = cpu_no_cache();
        cpu.program_counter(CounterSpec::new(HwEvent::Cycles, 10));
        let mut h = CountingHandler::new(0);
        let b = BlockExec::compute(Pid(1), CpuMode::Kernel, (0x500, 0x500), 10);
        cpu.execute_block(&b, &mut h);
        assert_eq!(h.samples[0].pc, 0x500);
        assert_eq!(h.samples[0].mode, CpuMode::Kernel);
    }

    #[test]
    fn sample_cycle_timestamps_are_monotone_within_block() {
        let mut cpu = cpu_no_cache();
        cpu.program_counter(CounterSpec::new(HwEvent::Cycles, 100));
        let mut h = CountingHandler::new(0);
        cpu.execute_block(&user_block(1_000), &mut h);
        let ts: Vec<u64> = h.samples.iter().map(|s| s.cycle).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
        assert!(ts[0] >= 100 && *ts.last().unwrap() <= 1_000);
    }

    #[test]
    fn reprogrammed_period_takes_effect_mid_run() {
        let mut cpu = cpu_no_cache();
        cpu.program_counter(CounterSpec::new(HwEvent::Cycles, 100));
        let mut h = CountingHandler::new(0);
        cpu.execute_block(&user_block(1_000), &mut h);
        assert_eq!(h.samples.len(), 10);
        // Governor backs off 100 → 500: sample rate drops 5×.
        assert!(cpu.reprogram_period(HwEvent::Cycles, 500));
        cpu.execute_block(&user_block(1_000), &mut h);
        assert_eq!(h.samples.len(), 12);
        assert!(!cpu.reprogram_period(HwEvent::Branches, 500));
    }

    #[test]
    fn telemetry_mirrors_stats_without_touching_the_clock() {
        let run = |telemetry: Option<&Telemetry>| {
            let mut cpu = cpu_no_cache();
            if let Some(t) = telemetry {
                cpu.attach_telemetry(t);
            }
            cpu.program_counter(CounterSpec::new(HwEvent::Cycles, 100));
            let mut h = CountingHandler::new(350);
            cpu.execute_block(&user_block(100), &mut h);
            (cpu.clock.cycles(), cpu.stats)
        };
        let t = Telemetry::new();
        let (cycles_on, stats_on) = run(Some(&t));
        let (cycles_off, stats_off) = run(None);
        assert_eq!(cycles_on, cycles_off, "telemetry charges no cycles");
        assert_eq!(stats_on, stats_off);
        let snap = t.snapshot();
        assert_eq!(snap.counter(names::CPU_SAMPLES_DELIVERED), stats_on.samples_delivered);
        assert_eq!(snap.counter(names::CPU_SAMPLES_SUPPRESSED), stats_on.samples_suppressed);
        let handler = snap.stage(names::STAGE_NMI_HANDLER).unwrap();
        assert_eq!(handler.cycles, stats_on.handler_cycles);
        assert_eq!(t.now(), cycles_on, "virtual now tracks the clock");
    }
}
