//! The global cycle clock.
//!
//! All simulated time in the stack is expressed in core cycles of a
//! single simulated CPU. Wall-clock seconds (what the paper's Figure 3
//! reports) are derived by dividing by the core frequency, which defaults
//! to the paper's 3.4 GHz Pentium 4 Xeon. (The paper's text says
//! "3.4MHz"; that is an obvious typo for GHz.)

use serde::{Deserialize, Serialize};

/// Default core frequency in Hz (3.4 GHz).
pub const DEFAULT_FREQ_HZ: u64 = 3_400_000_000;

/// Monotone cycle counter with a fixed frequency for cycle↔second
/// conversion.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Clock {
    cycles: u64,
    freq_hz: u64,
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new(DEFAULT_FREQ_HZ)
    }
}

impl Clock {
    pub fn new(freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "clock frequency must be positive");
        Clock { cycles: 0, freq_hz }
    }

    /// Current cycle count since machine start.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    pub fn freq_hz(&self) -> u64 {
        self.freq_hz
    }

    /// Advance the clock by `n` cycles.
    pub fn advance(&mut self, n: u64) {
        self.cycles = self
            .cycles
            .checked_add(n)
            .expect("simulated clock overflowed u64");
    }

    /// Simulated elapsed seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / self.freq_hz as f64
    }

    /// Convert a number of seconds to cycles at this clock's frequency.
    pub fn seconds_to_cycles(&self, secs: f64) -> u64 {
        (secs * self.freq_hz as f64).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = Clock::default();
        assert_eq!(c.cycles(), 0);
        c.advance(100);
        c.advance(23);
        assert_eq!(c.cycles(), 123);
    }

    #[test]
    fn seconds_round_trip() {
        let mut c = Clock::new(1_000_000);
        c.advance(2_500_000);
        assert!((c.seconds() - 2.5).abs() < 1e-12);
        assert_eq!(c.seconds_to_cycles(2.5), 2_500_000);
    }

    #[test]
    fn default_frequency_is_papers_machine() {
        assert_eq!(Clock::default().freq_hz(), 3_400_000_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = Clock::new(0);
    }
}
