//! The profiling cost model.
//!
//! Every cycle the profiling machinery steals from the workload flows
//! through this table. Figure 2's slowdown bars are *emergent* from
//! these constants plus the sampling frequency and workload activity —
//! they are never hard-coded downstream. The defaults are calibrated
//! (see EXPERIMENTS.md) so that OProfile at the paper's median 90K-cycle
//! period costs ≈5 % on the benchmark mix, the paper's headline number;
//! the relative structure (anon logging dearer than VIProf's range
//! check, map writes amortized by run length) encodes the paper's §3–§4
//! claims and is what the ablation experiments vary.

use serde::{Deserialize, Serialize};

/// Cycle costs of the individual profiling mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    // ---- NMI handler (kernel driver) ----
    /// Fixed cost of taking the NMI: save state, read PC/PID, restore.
    pub nmi_base_cycles: u64,
    /// Walking the interrupted process's VMA list to classify the PC.
    pub nmi_vma_lookup_cycles: u64,
    /// OProfile's anonymous-region logging path (cookie lookup, range
    /// bookkeeping). VIProf *replaces* this path for registered VMs —
    /// the paper credits its occasional wins over OProfile to exactly
    /// this (§4.3).
    pub nmi_anon_log_cycles: u64,
    /// VIProf's registered-heap-range check + epoch tag read.
    pub nmi_jit_check_cycles: u64,
    /// Pushing one compact sample into the per-CPU ring buffer.
    pub buffer_push_cycles: u64,

    // ---- userspace daemon ----
    /// Fixed cost of one daemon wakeup (context switch, syscall).
    pub daemon_wakeup_cycles: u64,
    /// Processing one buffered sample (hash, accumulate, spill).
    pub daemon_per_sample_cycles: u64,

    // ---- VM agent ----
    /// Logging one compile/recompile event into the agent buffer.
    pub agent_compile_log_cycles: u64,
    /// Flagging one moved code body during GC (flag only — the paper is
    /// explicit that the GC hot path must not call out, §3).
    pub agent_move_flag_cycles: u64,
    /// Fixed cost of writing one partial code map (file create, flush,
    /// daemon notification).
    pub mapwrite_base_cycles: u64,
    /// Per-entry cost of a code map write (format one method record).
    pub mapwrite_per_entry_cycles: u64,
    /// The "few other limited VM probing routines" (§3): charged once
    /// per daemon wakeup when a VM is registered.
    pub vm_probe_cycles: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            nmi_base_cycles: 1_450,
            nmi_vma_lookup_cycles: 600,
            nmi_anon_log_cycles: 1_400,
            nmi_jit_check_cycles: 180,
            buffer_push_cycles: 90,
            daemon_wakeup_cycles: 55_000,
            daemon_per_sample_cycles: 900,
            agent_compile_log_cycles: 1_100,
            agent_move_flag_cycles: 45,
            // A partial-map write is a synchronous small-file write plus
            // a daemon notification — single-digit milliseconds on the
            // paper's 2007 disk-backed system (12M cycles ≈ 3.5 ms at
            // 3.4 GHz). This constant is the lever behind the paper's
            // two Figure-2 observations: short, GC-frequent benchmarks
            // (antlr) exceed 10 % slowdown, while long runs amortize the
            // writes (§4.3).
            mapwrite_base_cycles: 12_000_000,
            mapwrite_per_entry_cycles: 2_000,
            vm_probe_cycles: 2_200,
        }
    }
}

impl CostModel {
    /// A zero-cost model: profiling mechanisms run but steal no cycles.
    /// Used by tests that check *functional* behaviour in isolation from
    /// overhead, and by the "free profiling" ablation.
    pub fn free() -> Self {
        CostModel {
            nmi_base_cycles: 0,
            nmi_vma_lookup_cycles: 0,
            nmi_anon_log_cycles: 0,
            nmi_jit_check_cycles: 0,
            buffer_push_cycles: 0,
            daemon_wakeup_cycles: 0,
            daemon_per_sample_cycles: 0,
            agent_compile_log_cycles: 0,
            agent_move_flag_cycles: 0,
            mapwrite_base_cycles: 0,
            mapwrite_per_entry_cycles: 0,
            vm_probe_cycles: 0,
        }
    }

    /// Cost of one OProfile NMI for a PC that resolves to a mapped image.
    pub fn nmi_mapped(&self) -> u64 {
        self.nmi_base_cycles + self.nmi_vma_lookup_cycles + self.buffer_push_cycles
    }

    /// Cost of one OProfile NMI for a PC in an anonymous region.
    pub fn nmi_anon(&self) -> u64 {
        self.nmi_base_cycles
            + self.nmi_vma_lookup_cycles
            + self.nmi_anon_log_cycles
            + self.buffer_push_cycles
    }

    /// Cost of one VIProf NMI for a PC inside a registered VM heap: the
    /// VMA walk still happens, but the anon-logging step is replaced by
    /// the cheap registered-range check + epoch read (paper §3).
    pub fn nmi_jit(&self) -> u64 {
        self.nmi_base_cycles
            + self.nmi_vma_lookup_cycles
            + self.nmi_jit_check_cycles
            + self.buffer_push_cycles
    }

    /// Cost of one daemon wakeup that drains `n` samples.
    pub fn daemon_drain(&self, n: u64) -> u64 {
        self.daemon_wakeup_cycles + n * self.daemon_per_sample_cycles
    }

    /// Cost of writing a partial code map with `entries` records.
    pub fn map_write(&self, entries: u64) -> u64 {
        self.mapwrite_base_cycles + entries * self.mapwrite_per_entry_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_structure_matches_paper_claims() {
        let m = CostModel::default();
        // §4.3: the anon path VIProf replaces is dearer than its check.
        assert!(m.nmi_anon() > m.nmi_jit());
        // The JIT path = mapped path + the cheap range check.
        assert_eq!(m.nmi_jit(), m.nmi_mapped() + m.nmi_jit_check_cycles);
        assert!(m.nmi_mapped() < m.nmi_anon());
    }

    #[test]
    fn default_overhead_near_headline_five_percent() {
        // Paper §4.3: OProfile at one sample per 90K cycles slows the
        // system ~5 % on average. Sanity-check the raw driver-side cost
        // sits in the right regime (daemon + VM activity add the rest).
        let m = CostModel::default();
        let per_sample = m.nmi_mapped() + m.daemon_per_sample_cycles;
        let frac = per_sample as f64 / 90_000.0;
        assert!(
            frac > 0.025 && frac < 0.06,
            "per-sample cost fraction {frac} out of calibration range"
        );
    }

    #[test]
    fn free_model_is_actually_free() {
        let m = CostModel::free();
        assert_eq!(m.nmi_anon(), 0);
        assert_eq!(m.nmi_jit(), 0);
        assert_eq!(m.daemon_drain(1_000), 0);
        assert_eq!(m.map_write(1_000), 0);
    }

    #[test]
    fn map_write_scales_with_entries() {
        let m = CostModel::default();
        assert_eq!(
            m.map_write(10) - m.map_write(0),
            10 * m.mapwrite_per_entry_cycles
        );
    }

    #[test]
    fn free_is_distinct_from_default() {
        assert_ne!(CostModel::free(), CostModel::default());
    }
}
