//! Boot-image map reading (`RVM.map`).
//!
//! Paper §3.2: Jikes RVM is written mostly in Java, so OProfile cannot
//! profile the VM itself — but "the build mechanism for Jikes RVM
//! produces a static image (in a Jikes internal format) and an
//! associated map. We modify the OProfile post processing tool to read
//! in the Jikes RVM internal map and use it to process samples
//! associated with the VM component of the execution."

use crate::error::ViprofError;
use sim_jvm::bootimage::{parse_map, BootMethod, RVM_MAP_PATH};
use sim_os::Vfs;

/// Loaded boot-image method map, indexed for offset lookup.
#[derive(Debug, Clone, Default)]
pub struct BootMap {
    /// Sorted by offset.
    methods: Vec<BootMethod>,
}

impl BootMap {
    pub fn new(mut methods: Vec<BootMethod>) -> Self {
        methods.sort_by_key(|m| m.offset);
        BootMap { methods }
    }

    /// Load `RVM.map` from the VFS (absent file → empty map; the
    /// post-processor then degrades to OProfile behaviour).
    pub fn load(vfs: &Vfs) -> Result<BootMap, ViprofError> {
        match vfs.read(RVM_MAP_PATH) {
            None => Ok(BootMap::default()),
            Some(raw) => {
                let text = std::str::from_utf8(raw).map_err(|e| ViprofError::Corrupt {
                    path: RVM_MAP_PATH.to_string(),
                    detail: format!("not UTF-8: {e}"),
                })?;
                let methods = parse_map(text).map_err(|detail| ViprofError::Corrupt {
                    path: RVM_MAP_PATH.to_string(),
                    detail,
                })?;
                Ok(BootMap::new(methods))
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }

    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// The loaded methods, sorted by offset — the flattening input for
    /// [`crate::engine::ResolutionEngine`].
    pub fn methods(&self) -> &[BootMethod] {
        &self.methods
    }

    /// Resolve an offset *within the boot image* to a VM method.
    pub fn resolve(&self, offset: u64) -> Option<&BootMethod> {
        let pos = self.methods.partition_point(|m| m.offset <= offset);
        if pos == 0 {
            return None;
        }
        let cand = &self.methods[pos - 1];
        (offset < cand.offset + cand.size).then_some(cand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    
    use sim_jvm::BootImage;
    use sim_os::Kernel;

    #[test]
    fn load_resolves_installed_boot_image() {
        let mut k = Kernel::new();
        let pid = k.spawn("jikesrvm");
        let mut boot = BootImage::jikes_standard();
        boot.install(&mut k, pid, 0x0900_0000);
        let map = BootMap::load(&k.vfs).unwrap();
        assert_eq!(map.len(), boot.methods().len());
        // First method starts at offset 0.
        let m = map.resolve(0x10).unwrap();
        assert_eq!(m.name, sim_jvm::bootimage::well_known::INTERPRET);
        // Past the end: none.
        assert!(map.resolve(boot.total_size()).is_none());
    }

    #[test]
    fn missing_map_degrades_to_empty() {
        let vfs = Vfs::new();
        let map = BootMap::load(&vfs).unwrap();
        assert!(map.is_empty());
        assert!(map.resolve(0).is_none());
    }

    #[test]
    fn resolve_respects_method_bounds() {
        let map = BootMap::new(vec![
            BootMethod {
                name: "a".into(),
                offset: 0x100,
                size: 0x100,
            },
            BootMethod {
                name: "b".into(),
                offset: 0x300,
                size: 0x100,
            },
        ]);
        assert!(map.resolve(0x0ff).is_none());
        assert_eq!(map.resolve(0x100).unwrap().name, "a");
        assert_eq!(map.resolve(0x1ff).unwrap().name, "a");
        assert!(map.resolve(0x200).is_none(), "gap between methods");
        assert_eq!(map.resolve(0x3ff).unwrap().name, "b");
    }
}
